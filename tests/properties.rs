//! Cross-crate property tests: invariants that must hold for *any*
//! generated dataset, query and score vector.

use proptest::prelude::*;
use qdgnn::prelude::*;

/// Strategy: a small random generator configuration.
fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (2usize..5, 8.0f64..20.0, 20usize..60, 1u64..500).prop_map(
        |(communities, size, vocab, seed)| {
            GeneratorConfig {
                num_communities: communities,
                community_size_mean: size,
                vocab_size: vocab,
                topics_per_community: (vocab / 4).max(3),
                attrs_per_vertex_mean: 4.0,
                seed,
                ..Default::default()
            }
            .generate("prop")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn generated_communities_are_connected_and_in_range(data in dataset_strategy()) {
        let n = data.graph.num_vertices() as VertexId;
        for members in &data.communities {
            prop_assert!(!members.is_empty());
            prop_assert!(members.iter().all(|&v| v < n));
            prop_assert!(qdgnn::graph::traversal::is_connected_subset(
                data.graph.graph(),
                members
            ));
        }
    }

    #[test]
    fn identification_output_contains_query_and_respects_threshold(
        data in dataset_strategy(),
        seed in 0u64..1000,
        gamma in 0.05f32..0.95,
    ) {
        let config = ModelConfig::fast();
        let tensors = GraphTensors::new(
            &data.graph,
            config.adj_norm,
            config.fusion_graph_attr_cap,
        );
        let queries = qdgnn::data::queries::generate(&data, 4, 1, 3, AttrMode::Empty, seed);
        // Scores from a deterministic hash — arbitrary but reproducible.
        let scores: Vec<f32> = (0..tensors.n)
            .map(|v| ((v as u64).wrapping_mul(2654435761).wrapping_add(seed) % 1000) as f32 / 1000.0)
            .collect();
        for q in &queries {
            let c = identify_community(&tensors, &q.vertices, &scores, gamma, false);
            // Query vertices always present.
            for v in &q.vertices {
                prop_assert!(c.binary_search(v).is_ok());
            }
            // Every non-query member passed the threshold.
            for &v in &c {
                if !q.vertices.contains(&v) {
                    prop_assert!(scores[v as usize] >= gamma);
                }
            }
            // Sorted and duplicate-free.
            prop_assert!(c.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn metrics_are_bounded_and_symmetric_on_perfection(
        data in dataset_strategy(),
        seed in 0u64..1000,
    ) {
        let queries = qdgnn::data::queries::generate(&data, 6, 1, 2, AttrMode::Empty, seed);
        let truth: Vec<Vec<VertexId>> = queries.iter().map(|q| q.truth.clone()).collect();
        let m = CommunityMetrics::micro(&truth, &truth);
        prop_assert!((m.f1 - 1.0).abs() < 1e-12);
        // Random half predictions stay within [0, 1].
        let half: Vec<Vec<VertexId>> = truth
            .iter()
            .map(|t| t[..t.len() / 2].to_vec())
            .collect();
        let m = CommunityMetrics::micro(&half, &truth);
        prop_assert!((0.0..=1.0).contains(&m.precision));
        prop_assert!((0.0..=1.0).contains(&m.recall));
        prop_assert!((0.0..=1.0).contains(&m.f1));
    }

    #[test]
    fn model_inference_is_pure(
        data in dataset_strategy(),
        seed in 0u64..1000,
    ) {
        let config = ModelConfig { layers: 2, hidden: 8, ..ModelConfig::fast() };
        let tensors = GraphTensors::new(
            &data.graph,
            config.adj_norm,
            config.fusion_graph_attr_cap,
        );
        let model = AqdGnn::new(config, tensors.d);
        let q = qdgnn::data::queries::generate(&data, 1, 1, 2, AttrMode::FromNode, seed).remove(0);
        let qv = QueryVectors::encode(tensors.n, tensors.d, &q.vertices, &q.attrs);
        let s1 = predict_scores(&model, &tensors, &qv);
        let s2 = predict_scores(&model, &tensors, &qv);
        prop_assert_eq!(s1.clone(), s2);
        prop_assert!(s1.iter().all(|s| (0.0..=1.0).contains(s) && s.is_finite()));
    }

    #[test]
    fn fusion_graph_is_supergraph_of_structure(data in dataset_strategy()) {
        let fusion = data.graph.fusion_graph(50);
        for (u, v) in data.graph.graph().edges() {
            prop_assert!(fusion.has_edge(u, v));
        }
        prop_assert!(fusion.num_edges() >= data.graph.graph().num_edges());
    }

    #[test]
    fn core_and_truss_invariants(data in dataset_strategy()) {
        let g = data.graph.graph();
        let cores = qdgnn::graph::core_decomp::core_numbers(g);
        // Core number never exceeds degree.
        for v in g.vertices() {
            prop_assert!(cores[v as usize] <= g.degree(v));
        }
        let decomp = qdgnn::graph::truss::truss_decomposition(g);
        // Trussness of an edge ≤ min endpoint core number + 2 is not a
        // theorem; the sound invariant is truss ≥ 2 and ≤ support + 2.
        for (i, &(u, v)) in decomp.edges().iter().enumerate() {
            let t = decomp.trussness()[i];
            prop_assert!(t >= 2);
            let support = g
                .neighbors(u)
                .iter()
                .filter(|&&w| w != v && g.has_edge(v, w))
                .count();
            prop_assert!(t <= support + 2, "edge ({u},{v}) truss {t} support {support}");
        }
    }
}
