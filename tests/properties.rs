//! Cross-crate property tests: invariants that must hold for *any*
//! generated dataset, query and score vector.

use proptest::prelude::*;
use qdgnn::prelude::*;

/// Strategy: a small random generator configuration.
fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (2usize..5, 8.0f64..20.0, 20usize..60, 1u64..500).prop_map(
        |(communities, size, vocab, seed)| {
            GeneratorConfig {
                num_communities: communities,
                community_size_mean: size,
                vocab_size: vocab,
                topics_per_community: (vocab / 4).max(3),
                attrs_per_vertex_mean: 4.0,
                seed,
                ..Default::default()
            }
            .generate("prop")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn generated_communities_are_connected_and_in_range(data in dataset_strategy()) {
        let n = data.graph.num_vertices() as VertexId;
        for members in &data.communities {
            prop_assert!(!members.is_empty());
            prop_assert!(members.iter().all(|&v| v < n));
            prop_assert!(qdgnn::graph::traversal::is_connected_subset(
                data.graph.graph(),
                members
            ));
        }
    }

    #[test]
    fn identification_output_contains_query_and_respects_threshold(
        data in dataset_strategy(),
        seed in 0u64..1000,
        gamma in 0.05f32..0.95,
    ) {
        let config = ModelConfig::fast();
        let tensors = GraphTensors::new(
            &data.graph,
            config.adj_norm,
            config.fusion_graph_attr_cap,
        );
        let queries = qdgnn::data::queries::generate(&data, 4, 1, 3, AttrMode::Empty, seed);
        // Scores from a deterministic hash — arbitrary but reproducible.
        let scores: Vec<f32> = (0..tensors.n)
            .map(|v| ((v as u64).wrapping_mul(2654435761).wrapping_add(seed) % 1000) as f32 / 1000.0)
            .collect();
        for q in &queries {
            let c = identify_community(&tensors, &q.vertices, &scores, gamma, false);
            // Query vertices always present.
            for v in &q.vertices {
                prop_assert!(c.binary_search(v).is_ok());
            }
            // Every non-query member passed the threshold.
            for &v in &c {
                if !q.vertices.contains(&v) {
                    prop_assert!(scores[v as usize] >= gamma);
                }
            }
            // Sorted and duplicate-free.
            prop_assert!(c.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn metrics_are_bounded_and_symmetric_on_perfection(
        data in dataset_strategy(),
        seed in 0u64..1000,
    ) {
        let queries = qdgnn::data::queries::generate(&data, 6, 1, 2, AttrMode::Empty, seed);
        let truth: Vec<Vec<VertexId>> = queries.iter().map(|q| q.truth.clone()).collect();
        let m = CommunityMetrics::micro(&truth, &truth);
        prop_assert!((m.f1 - 1.0).abs() < 1e-12);
        // Random half predictions stay within [0, 1].
        let half: Vec<Vec<VertexId>> = truth
            .iter()
            .map(|t| t[..t.len() / 2].to_vec())
            .collect();
        let m = CommunityMetrics::micro(&half, &truth);
        prop_assert!((0.0..=1.0).contains(&m.precision));
        prop_assert!((0.0..=1.0).contains(&m.recall));
        prop_assert!((0.0..=1.0).contains(&m.f1));
    }

    #[test]
    fn model_inference_is_pure(
        data in dataset_strategy(),
        seed in 0u64..1000,
    ) {
        let config = ModelConfig { layers: 2, hidden: 8, ..ModelConfig::fast() };
        let tensors = GraphTensors::new(
            &data.graph,
            config.adj_norm,
            config.fusion_graph_attr_cap,
        );
        let model = AqdGnn::new(config, tensors.d);
        let q = qdgnn::data::queries::generate(&data, 1, 1, 2, AttrMode::FromNode, seed).remove(0);
        let qv = QueryVectors::encode(tensors.n, tensors.d, &q.vertices, &q.attrs);
        let s1 = predict_scores(&model, &tensors, &qv);
        let s2 = predict_scores(&model, &tensors, &qv);
        prop_assert_eq!(s1.clone(), s2);
        prop_assert!(s1.iter().all(|s| (0.0..=1.0).contains(s) && s.is_finite()));
    }

    #[test]
    fn fusion_graph_is_supergraph_of_structure(data in dataset_strategy()) {
        let fusion = data.graph.fusion_graph(50);
        for (u, v) in data.graph.graph().edges() {
            prop_assert!(fusion.has_edge(u, v));
        }
        prop_assert!(fusion.num_edges() >= data.graph.graph().num_edges());
    }

    #[test]
    fn core_and_truss_invariants(data in dataset_strategy()) {
        let g = data.graph.graph();
        let cores = qdgnn::graph::core_decomp::core_numbers(g);
        // Core number never exceeds degree.
        for v in g.vertices() {
            prop_assert!(cores[v as usize] <= g.degree(v));
        }
        let decomp = qdgnn::graph::truss::truss_decomposition(g);
        // Trussness of an edge ≤ min endpoint core number + 2 is not a
        // theorem; the sound invariant is truss ≥ 2 and ≤ support + 2.
        for (i, &(u, v)) in decomp.edges().iter().enumerate() {
            let t = decomp.trussness()[i];
            prop_assert!(t >= 2);
            let support = g
                .neighbors(u)
                .iter()
                .filter(|&&w| w != v && g.has_edge(v, w))
                .count();
            prop_assert!(t <= support + 2, "edge ({u},{v}) truss {t} support {support}");
        }
    }
}

// ---------------------------------------------------------------------------
// Finite-difference gradient checks for every op registered on the tape.
//
// These are the ground truth for the hand-written backward pass: each
// `fd_<op>` test compares the analytic gradient from `Tape::backward`
// against a central difference of the recomputed forward loss. QD003 in
// `qdgnn-analyze` enforces that every `enum Op` variant is referenced by
// one of these tests.
// ---------------------------------------------------------------------------

use qdgnn::tensor::{Csr, Dense, Tape, Var};
use std::sync::Arc;

/// Deterministic pseudo-random values in roughly [-1.5, 1.5], kept away
/// from zero so kinked ops (relu) see both branches but never straddle
/// the kink within the fd step.
fn fd_vals_signed(n: usize, seed: u64) -> Vec<f32> {
    (0..n)
        .map(|k| {
            let h = (k as u64)
                .wrapping_mul(2654435761)
                .wrapping_add(seed.wrapping_mul(1099087573));
            let u = (h % 1000) as f32 / 1000.0;
            let v = u * 3.0 - 1.5;
            if v.abs() < 0.3 {
                if h & 1 == 0 { 0.45 } else { -0.45 }
            } else {
                v
            }
        })
        .collect()
}

/// Deterministic pseudo-random values in [0.25, 1.75) — strictly
/// positive, for rsqrt inputs and loss weights.
fn fd_vals_pos(n: usize, seed: u64) -> Vec<f32> {
    (0..n)
        .map(|k| {
            let h = (k as u64)
                .wrapping_mul(2654435761)
                .wrapping_add(seed.wrapping_mul(1099087573));
            (h % 1000) as f32 / 1000.0 * 1.5 + 0.25
        })
        .collect()
}

/// Central-difference check of `Tape::backward` for the graph built by
/// `build` over leaf inputs with the given shapes.
///
/// Non-scalar outputs are reduced to a scalar loss through a constant
/// element-weight hadamard + mean, so the seed gradient is non-uniform
/// and transposition/scaling mistakes in an op's backward cannot cancel.
fn fd_check(shapes: &[(usize, usize)], positive: bool, build: &dyn Fn(&mut Tape, &[Var]) -> Var) {
    let eps = 1e-2f32;
    let tol = 2e-2f32;
    let inputs: Vec<Dense> = shapes
        .iter()
        .enumerate()
        .map(|(i, &(r, c))| {
            let vals = if positive {
                fd_vals_pos(r * c, i as u64 + 1)
            } else {
                fd_vals_signed(r * c, i as u64 + 1)
            };
            Dense::from_vec(r, c, vals)
        })
        .collect();

    let loss_of = |inputs: &[Dense]| -> (Tape, Vec<Var>, Var) {
        let mut t = Tape::new();
        let leaves: Vec<Var> = inputs.iter().map(|d| t.leaf(Arc::new(d.clone()))).collect();
        let out = build(&mut t, &leaves);
        let loss = if t.shape(out) == (1, 1) {
            out
        } else {
            let (r, c) = t.shape(out);
            let w = t.constant(Dense::from_vec(r, c, fd_vals_pos(r * c, 77)));
            let weighted = t.hadamard(out, w);
            t.mean_all(weighted)
        };
        (t, leaves, loss)
    };

    let (tape, leaves, loss) = loss_of(&inputs);
    let grads = tape.backward(loss);

    for (i, leaf) in leaves.iter().enumerate() {
        let g = grads.get(*leaf).unwrap_or_else(|| panic!("no gradient for input {i}"));
        for r in 0..inputs[i].rows() {
            for c in 0..inputs[i].cols() {
                let base = inputs[i].get(r, c);
                let mut plus = inputs.clone();
                plus[i].set(r, c, base + eps);
                let (tp, _, lp) = loss_of(&plus);
                let fplus = tp.value(lp).get(0, 0);
                let mut minus = inputs.clone();
                minus[i].set(r, c, base - eps);
                let (tm, _, lm) = loss_of(&minus);
                let fminus = tm.value(lm).get(0, 0);
                let fd = (fplus - fminus) / (2.0 * eps);
                let an = g.get(r, c);
                assert!(
                    (fd - an).abs() <= tol * an.abs().max(1.0),
                    "input {i} element [{r},{c}]: finite difference {fd} vs analytic {an}"
                );
            }
        }
    }
}

#[test]
fn fd_matmul() {
    fd_check(&[(3, 4), (4, 2)], false, &|t, l| t.matmul(l[0], l[1]));
}

#[test]
fn fd_spmm() {
    let m = Arc::new(Csr::from_triplets(
        3,
        3,
        &[(0, 0, 1.0), (0, 1, 0.5), (1, 2, 0.7), (2, 0, 0.3), (2, 2, 1.2)],
    ));
    let mt = Arc::new(m.transpose());
    fd_check(&[(3, 2)], false, &move |t, l| t.spmm(&m, &mt, l[0]));
}

#[test]
fn fd_spmm_blocked() {
    let m = Arc::new(Csr::from_triplets(
        3,
        3,
        &[(0, 0, 1.0), (0, 1, 0.5), (1, 2, 0.7), (2, 0, 0.3), (2, 2, 1.2)],
    ));
    let mt = Arc::new(m.transpose());
    // Two stacked 3-row blocks flow through the same sparse matrix.
    fd_check(&[(6, 2)], false, &move |t, l| t.spmm_blocked(&m, &mt, l[0], 2));
}

#[test]
fn fd_add() {
    fd_check(&[(3, 4), (3, 4)], false, &|t, l| t.add(l[0], l[1]));
}

#[test]
fn fd_sub() {
    fd_check(&[(3, 4), (3, 4)], false, &|t, l| t.sub(l[0], l[1]));
}

#[test]
fn fd_hadamard() {
    fd_check(&[(3, 4), (3, 4)], false, &|t, l| t.hadamard(l[0], l[1]));
}

#[test]
fn fd_add_row() {
    fd_check(&[(3, 4), (1, 4)], false, &|t, l| t.add_row(l[0], l[1]));
}

#[test]
fn fd_mul_row() {
    fd_check(&[(3, 4), (1, 4)], false, &|t, l| t.mul_row(l[0], l[1]));
}

#[test]
fn fd_mul_col() {
    fd_check(&[(3, 4), (3, 1)], false, &|t, l| t.mul_col(l[0], l[1]));
}

#[test]
fn fd_col_mean() {
    fd_check(&[(3, 4)], false, &|t, l| t.col_mean(l[0]));
}

#[test]
fn fd_relu() {
    fd_check(&[(3, 4)], false, &|t, l| t.relu(l[0]));
}

#[test]
fn fd_sigmoid() {
    fd_check(&[(3, 4)], false, &|t, l| t.sigmoid(l[0]));
}

#[test]
fn fd_scale() {
    fd_check(&[(3, 4)], false, &|t, l| t.scale(l[0], 1.7));
}

#[test]
fn fd_add_scalar() {
    fd_check(&[(3, 4)], false, &|t, l| t.add_scalar(l[0], 0.3));
}

#[test]
fn fd_rsqrt() {
    fd_check(&[(3, 4)], true, &|t, l| t.rsqrt(l[0]));
}

#[test]
fn fd_concat_cols() {
    fd_check(&[(3, 2), (3, 3)], false, &|t, l| t.concat_cols(&[l[0], l[1]]));
}

#[test]
fn fd_mean_all() {
    fd_check(&[(3, 4)], false, &|t, l| t.mean_all(l[0]));
}

#[test]
fn fd_bce_with_logits_mean() {
    let target = Arc::new(Dense::from_vec(3, 2, vec![1.0, 0.0, 1.0, 1.0, 0.0, 0.0]));
    let weights = Arc::new(Dense::from_vec(3, 2, fd_vals_pos(6, 11)));
    fd_check(&[(3, 2)], false, &move |t, l| {
        t.bce_with_logits(l[0], Arc::clone(&target), Some(Arc::clone(&weights)))
    });
}
