//! Crash-resume integration: a checkpointed run killed part-way and
//! resumed with `Trainer::resume_from` must reproduce the uninterrupted
//! run exactly — same loss history, same validation history, same final
//! weights, same selected γ.

use qdgnn::prelude::*;

#[test]
fn resume_from_checkpoint_matches_uninterrupted_run() {
    let data = qdgnn::data::presets::toy();
    let config = ModelConfig::fast();
    let tensors =
        GraphTensors::new(&data.graph, config.adj_norm, config.fusion_graph_attr_cap);
    let queries = qdgnn::data::queries::generate(&data, 40, 1, 2, AttrMode::Empty, 13);
    let split = QuerySplit::new(queries, 20, 10, 10);

    let dir = std::env::temp_dir().join("qdgnn_fault_tolerance_test");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("run.ckpt");
    let _ = std::fs::remove_file(&ckpt);

    let base = TrainConfig {
        epochs: 10,
        validate_every: 5,
        threads: 1,
        gamma_grid: vec![0.3, 0.5, 0.7],
        ..TrainConfig::default()
    };

    // Reference: one uninterrupted 10-epoch run.
    let full = Trainer::new(base.clone()).train(
        QdGnn::new(config.clone(), tensors.d),
        &tensors,
        &split.train,
        &split.val,
    );
    assert_eq!(full.report.skipped_steps, 0, "clean run must not skip steps");
    assert_eq!(full.report.recoveries, 0, "clean run must not roll back");
    assert!(!full.report.diverged);

    // "Killed" run: the process dies after epoch 5; all that survives is
    // the checkpoint written at epoch 5.
    let killed_cfg = TrainConfig {
        epochs: 5,
        checkpoint_path: Some(ckpt.clone()),
        checkpoint_every: 5,
        ..base.clone()
    };
    Trainer::new(killed_cfg).train(
        QdGnn::new(config.clone(), tensors.d),
        &tensors,
        &split.train,
        &split.val,
    );
    assert!(ckpt.exists(), "checkpoint must have been written at epoch 5");

    // Resume the remaining epochs from disk into a fresh model.
    let resumed = Trainer::new(base)
        .resume_from(&ckpt, QdGnn::new(config.clone(), tensors.d), &tensors, &split.train, &split.val)
        .expect("valid checkpoint must resume");

    assert_eq!(
        resumed.report.loss_history, full.report.loss_history,
        "resumed run must replay the remaining epochs exactly"
    );
    assert_eq!(resumed.report.val_history, full.report.val_history);
    assert_eq!(resumed.gamma, full.gamma, "γ selection must be identical");
    assert_eq!(resumed.report.best_val_f1, full.report.best_val_f1);
    let full_weights = full.model.store().snapshot();
    let resumed_weights = resumed.model.store().snapshot();
    for (a, b) in full_weights.iter().zip(&resumed_weights) {
        assert!(a.approx_eq(b, 0.0), "final weights must match bit-for-bit");
    }

    // A mangled checkpoint is rejected with an error, never a panic.
    let content = std::fs::read_to_string(&ckpt).unwrap();
    std::fs::write(&ckpt, &content[..content.len() / 2]).unwrap();
    assert!(Trainer::new(TrainConfig::default())
        .resume_from(&ckpt, QdGnn::new(config, tensors.d), &tensors, &split.train, &split.val)
        .is_err());
}
