//! Profiling-layer properties: the obs histogram's interpolated
//! quantiles must track the exact sample quantiles within the error its
//! log₂ bucketing permits, for *any* sample set.
//!
//! The bound under test: the estimator picks the same log₂ bucket as
//! the exact quantile, and any two values in one bucket `(2^(i-1), 2^i]`
//! differ by at most a factor of two — so `p ≤ 2·exact + 1` and
//! `exact ≤ 2·p + 1` (the `+1` absorbs bucket 0, which spans `[0, 1]`
//! and has unbounded *relative* width near zero).

use proptest::prelude::*;
use qdgnn_obs::metrics::Histogram;

/// Exact quantile under the histogram's rank convention (first value
/// whose 1-based rank reaches `q * n`).
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = (q * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Both directions of the factor-2-plus-1 bucket bound.
fn within_bucket_bound(est: f64, exact: f64) -> bool {
    est <= 2.0 * exact + 1.0 && exact <= 2.0 * est + 1.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interpolated_quantiles_stay_within_log2_bucket_error(
        mut values in proptest::collection::vec(0.0f64..1.0e7, 1..200),
        scale in 1.0f64..1000.0,
    ) {
        // Spread the raw uniform samples across several orders of
        // magnitude so many buckets are exercised, not just the top one.
        for (i, v) in values.iter_mut().enumerate() {
            if i % 3 == 0 {
                *v = (*v / scale).min(1.0e7);
            }
            if i % 7 == 0 {
                *v /= scale * scale;
            }
        }
        let h = Histogram::new();
        for &v in &values {
            h.observe(v);
        }
        let snap = h.snapshot("prop");
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));

        prop_assert_eq!(snap.count, sorted.len() as u64);
        for (q, est) in [(0.50, snap.p50), (0.95, snap.p95), (0.99, snap.p99)] {
            let exact = exact_quantile(&sorted, q);
            // Clamping keeps every estimate inside the observed range.
            prop_assert!(est >= snap.min - 1e-9 && est <= snap.max + 1e-9,
                "q{q}: {est} outside [{}, {}]", snap.min, snap.max);
            prop_assert!(within_bucket_bound(est, exact),
                "q{q}: est {est} vs exact {exact} breaks the log2-bucket bound");
        }
        // Quantiles are monotone in q.
        prop_assert!(snap.p50 <= snap.p95 + 1e-9 && snap.p95 <= snap.p99 + 1e-9);
    }

    #[test]
    fn point_mass_quantiles_are_exact(
        v in 0.0f64..1.0e6,
        n in 1usize..100,
    ) {
        // All mass on one value: clamping to [min, max] must make every
        // quantile exact regardless of bucket width.
        let h = Histogram::new();
        for _ in 0..n {
            h.observe(v);
        }
        let snap = h.snapshot("prop");
        for q in [0.5, 0.95, 0.99] {
            prop_assert!((snap.quantile(q) - v).abs() < 1e-9);
        }
    }
}
