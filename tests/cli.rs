//! Integration tests driving the `qdgnn` CLI binary end-to-end:
//! generate → stats → train → query → evaluate.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_qdgnn"))
}

fn workdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qdgnn_cli_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_cli_workflow() {
    let dir = workdir();
    let data = dir.join("toy.txt");
    let queries = dir.join("queries.txt");
    let model = dir.join("toy.model");

    // generate
    let out = bin()
        .args(["generate", "--preset", "toy", "--out"])
        .arg(&data)
        .arg("--queries")
        .arg(&queries)
        .args(["--mode", "afc", "--count", "60", "--seed", "3"])
        .output()
        .expect("run generate");
    assert!(out.status.success(), "generate failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(data.exists() && queries.exists());

    // stats
    let out = bin().args(["stats", "--data"]).arg(&data).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("|V|="), "stats output: {stdout}");

    // train (tiny settings for test speed)
    let out = bin()
        .args(["train", "--data"])
        .arg(&data)
        .arg("--queries")
        .arg(&queries)
        .args(["--model", "aqd", "--epochs", "10", "--hidden", "16", "--split", "30,15,15"])
        .arg("--out")
        .arg(&model)
        .output()
        .unwrap();
    assert!(out.status.success(), "train failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(model.exists());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("held-out test"), "train output: {stdout}");

    // query
    let out = bin()
        .args(["query", "--data"])
        .arg(&data)
        .arg("--model-file")
        .arg(&model)
        .args(["--model", "aqd", "--hidden", "16", "--vertices", "0,1"])
        .output()
        .unwrap();
    assert!(out.status.success(), "query failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("community of"), "query output: {stdout}");

    // evaluate
    let out = bin()
        .args(["evaluate", "--data"])
        .arg(&data)
        .arg("--queries")
        .arg(&queries)
        .arg("--model-file")
        .arg(&model)
        .args(["--model", "aqd", "--hidden", "16", "--split", "30,15,15"])
        .output()
        .unwrap();
    assert!(out.status.success(), "evaluate failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("F1"));
}

#[test]
fn cli_rejects_mismatched_architecture() {
    let dir = workdir();
    let data = dir.join("arch.txt");
    let queries = dir.join("arch_q.txt");
    let model = dir.join("arch.model");
    assert!(bin()
        .args(["generate", "--preset", "toy", "--out"])
        .arg(&data)
        .arg("--queries")
        .arg(&queries)
        .args(["--count", "40"])
        .status()
        .unwrap()
        .success());
    assert!(bin()
        .args(["train", "--data"])
        .arg(&data)
        .arg("--queries")
        .arg(&queries)
        .args(["--model", "qd", "--epochs", "2", "--hidden", "16", "--split", "20,10,10"])
        .arg("--out")
        .arg(&model)
        .status()
        .unwrap()
        .success());
    // Loading with a different hidden width must fail cleanly.
    let out = bin()
        .args(["query", "--data"])
        .arg(&data)
        .arg("--model-file")
        .arg(&model)
        .args(["--model", "qd", "--hidden", "32", "--vertices", "0"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("mismatch"));
}

#[test]
fn cli_usage_on_bad_input() {
    let out = bin().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    let out = bin().args(["train", "--data"]).output().unwrap();
    assert!(!out.status.success());
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}
