//! Run-registry integration: the step-indexed series journal written
//! through the process-global sink must be resume-continuous — a
//! checkpointed run killed part-way and resumed with
//! `Trainer::resume_from` must leave a `series.ndjson` byte-identical
//! to the journal of an uninterrupted run, with the resumed run's
//! manifest recording its parent in `resumed_from`.

use std::path::PathBuf;
use std::sync::Arc;

use qdgnn::obs::runs::{self, RunRecorder};
use qdgnn::obs::series::SeriesStore;
use qdgnn::prelude::*;

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qdgnn-runobs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp run root");
    dir
}

#[test]
fn resumed_run_journal_is_byte_identical_to_uninterrupted_run() {
    let data = qdgnn::data::presets::toy();
    let config = ModelConfig::fast();
    let tensors =
        GraphTensors::new(&data.graph, config.adj_norm, config.fusion_graph_attr_cap);
    let queries = qdgnn::data::queries::generate(&data, 40, 1, 2, AttrMode::Empty, 13);
    let split = QuerySplit::new(queries, 20, 10, 10);

    let base = TrainConfig {
        epochs: 10,
        validate_every: 5,
        threads: 1,
        gamma_grid: vec![0.3, 0.5, 0.7],
        ..TrainConfig::default()
    };

    // Reference: one uninterrupted 10-epoch run journaled under root A.
    let root_a = tmp_root("full");
    let rec = Arc::new(RunRecorder::create(&root_a, 13, "toy", "cfg").unwrap());
    let full_id = rec.id().to_string();
    runs::install(rec);
    Trainer::new(base.clone()).train(
        QdGnn::new(config.clone(), tensors.d),
        &tensors,
        &split.train,
        &split.val,
    );
    runs::uninstall();
    let full_journal =
        std::fs::read_to_string(root_a.join(&full_id).join("series.ndjson")).unwrap();
    assert!(!full_journal.is_empty(), "the trainer must journal through the sink");
    let full_store = SeriesStore::from_ndjson(&full_journal).expect("journal validator-clean");
    assert!(full_store.names().iter().any(|n| *n == "train.loss"));
    assert!(
        full_store.names().iter().any(|n| *n == "train.val_f1"),
        "validate_every=5 over 10 epochs must journal validation series: {:?}",
        full_store.names()
    );

    // "Killed" run under root B: dies after the epoch-5 checkpoint; all
    // that survives is the checkpoint and the journal written so far.
    let root_b = tmp_root("killed");
    let ckpt = root_b.join("run.ckpt");
    let killed_cfg = TrainConfig {
        epochs: 5,
        checkpoint_path: Some(ckpt.clone()),
        checkpoint_every: 5,
        ..base.clone()
    };
    let rec = Arc::new(RunRecorder::create(&root_b, 13, "toy", "cfg").unwrap());
    let parent_id = rec.id().to_string();
    runs::install(rec);
    Trainer::new(killed_cfg).train(
        QdGnn::new(config.clone(), tensors.d),
        &tensors,
        &split.train,
        &split.val,
    );
    runs::uninstall();
    assert!(ckpt.exists(), "checkpoint must have been written at epoch 5");

    // Resume: a new run id whose journal starts as a copy of the
    // parent's; the trainer truncates it at the resume epoch and
    // replays the remaining epochs.
    let rec = Arc::new(RunRecorder::resume(&root_b, &parent_id).unwrap());
    let child_id = rec.id().to_string();
    assert_ne!(child_id, parent_id, "a resumed run gets a fresh id");
    assert_eq!(rec.manifest().resumed_from.as_deref(), Some(parent_id.as_str()));
    runs::install(rec);
    Trainer::new(base)
        .resume_from(
            &ckpt,
            QdGnn::new(config, tensors.d),
            &tensors,
            &split.train,
            &split.val,
        )
        .expect("valid checkpoint must resume");
    runs::uninstall();

    let child_journal =
        std::fs::read_to_string(root_b.join(&child_id).join("series.ndjson")).unwrap();
    // The resume contract: prefix + replay reproduces the uninterrupted
    // journal byte for byte, and the result has no duplicate or
    // regressed steps (from_ndjson rejects both).
    assert_eq!(
        child_journal, full_journal,
        "resumed journal must be byte-identical to the uninterrupted run's"
    );
    SeriesStore::from_ndjson(&child_journal).expect("resumed journal validator-clean");

    let _ = std::fs::remove_dir_all(&root_a);
    let _ = std::fs::remove_dir_all(&root_b);
}
