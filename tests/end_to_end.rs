//! End-to-end integration: offline training + online query for all three
//! models, exactly as a library user would drive them.

use qdgnn::prelude::*;

fn toy_split(mode: AttrMode) -> (Dataset, GraphTensors, QuerySplit) {
    let data = qdgnn::data::presets::toy();
    let config = ModelConfig::fast();
    let tensors = GraphTensors::new(&data.graph, config.adj_norm, config.fusion_graph_attr_cap);
    let queries = qdgnn::data::queries::generate(&data, 60, 1, 2, mode, 17);
    let split = QuerySplit::new(queries, 30, 15, 15);
    (data, tensors, split)
}

fn fast_trainer(epochs: usize) -> Trainer {
    Trainer::new(TrainConfig { epochs, ..TrainConfig::fast() })
}

#[test]
fn qdgnn_full_pipeline_beats_trivial_baseline() {
    let (_, tensors, split) = toy_split(AttrMode::Empty);
    let trained = fast_trainer(30).train(
        QdGnn::new(ModelConfig::fast(), tensors.d),
        &tensors,
        &split.train,
        &split.val,
    );
    let metrics = evaluate(&trained.model, &tensors, &split.test, trained.gamma);

    // Trivial baseline: answer only the query vertices.
    let trivial: Vec<Vec<VertexId>> = split.test.iter().map(|q| q.vertices.clone()).collect();
    let truth: Vec<Vec<VertexId>> = split.test.iter().map(|q| q.truth.clone()).collect();
    let trivial_f1 = CommunityMetrics::micro(&trivial, &truth).f1;

    assert!(
        metrics.f1 > trivial_f1 + 0.15,
        "QD-GNN ({:.3}) must clearly beat query-echo ({:.3})",
        metrics.f1,
        trivial_f1
    );
}

#[test]
fn aqdgnn_attributed_pipeline_works() {
    let (_, tensors, split) = toy_split(AttrMode::FromCommunity);
    let trained = fast_trainer(30).train(
        AqdGnn::new(ModelConfig::fast(), tensors.d),
        &tensors,
        &split.train,
        &split.val,
    );
    let metrics = evaluate(&trained.model, &tensors, &split.test, trained.gamma);
    assert!(metrics.f1 > 0.5, "AQD-GNN should learn toy communities, got {:.3}", metrics.f1);
    assert!(metrics.precision > 0.0 && metrics.recall > 0.0);
}

#[test]
fn simple_model_full_pipeline_runs() {
    let (_, tensors, split) = toy_split(AttrMode::Empty);
    let trained = fast_trainer(20).train(
        SimpleQdGnn::new(ModelConfig::fast()),
        &tensors,
        &split.train,
        &split.val,
    );
    let communities = predict_communities(&trained.model, &tensors, &split.test, trained.gamma);
    assert_eq!(communities.len(), split.test.len());
    for (c, q) in communities.iter().zip(&split.test) {
        for v in &q.vertices {
            assert!(c.contains(v), "query vertex must be in its community");
        }
    }
}

#[test]
fn predicted_communities_are_connected_with_queries() {
    let (data, tensors, split) = toy_split(AttrMode::Empty);
    let trained = fast_trainer(15).train(
        QdGnn::new(ModelConfig::fast(), tensors.d),
        &tensors,
        &split.train,
        &split.val,
    );
    for q in &split.test {
        if q.vertices.len() > 1 {
            continue; // multi-vertex queries may legitimately split
        }
        let c = predict_community(&trained.model, &tensors, q, trained.gamma);
        assert!(
            qdgnn::graph::traversal::is_connected_subset(data.graph.graph(), &c),
            "single-vertex query answer must be connected"
        );
    }
}

#[test]
fn training_is_reproducible_bitwise() {
    let (_, tensors, split) = toy_split(AttrMode::Empty);
    let run = || {
        let trained = fast_trainer(8).train(
            QdGnn::new(ModelConfig::fast(), tensors.d),
            &tensors,
            &split.train,
            &split.val,
        );
        (trained.report.loss_history.clone(), trained.gamma)
    };
    assert_eq!(run(), run());
}

#[test]
fn gamma_selected_from_validation_grid() {
    let (_, tensors, split) = toy_split(AttrMode::Empty);
    let cfg = TrainConfig { epochs: 10, gamma_grid: vec![0.25, 0.5], ..TrainConfig::fast() };
    let trained = Trainer::new(cfg).train(
        QdGnn::new(ModelConfig::fast(), tensors.d),
        &tensors,
        &split.train,
        &split.val,
    );
    assert!(trained.gamma == 0.25 || trained.gamma == 0.5);
    assert!(!trained.report.val_history.is_empty());
}
