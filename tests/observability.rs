//! Observability integration: the obs layer must record the documented
//! spans/metrics during serving, survive JSONL round-trips, and — the
//! hard requirement — leave crash-resume bit-identity untouched while
//! fully instrumented.
//!
//! These tests adapt to the build: with the `obs` feature off (plain
//! `cargo test -p qdgnn`) the recording assertions are skipped and only
//! the determinism/no-op contracts are checked.

use std::sync::{Mutex, MutexGuard};

use qdgnn::prelude::*;

/// The obs registry is process-global; tests touching it serialize here.
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn toy_split() -> (GraphTensors, QuerySplit) {
    let data = qdgnn::data::presets::toy();
    let config = ModelConfig::fast();
    let tensors =
        GraphTensors::new(&data.graph, config.adj_norm, config.fusion_graph_attr_cap);
    let queries = qdgnn::data::queries::generate(&data, 40, 1, 2, AttrMode::FromCommunity, 17);
    (tensors, QuerySplit::new(queries, 20, 10, 10))
}

/// Crash-resume must stay bit-identical with the full instrumentation
/// stack live (spans, event buffering, per-op tape timers): the metrics
/// layer observes time but the computation must never depend on it.
#[test]
fn instrumented_resume_is_bit_identical() {
    let _l = obs_lock();
    qdgnn_obs::reset();
    qdgnn_obs::record_events(true);

    let data = qdgnn::data::presets::toy();
    let config = ModelConfig::fast();
    let tensors =
        GraphTensors::new(&data.graph, config.adj_norm, config.fusion_graph_attr_cap);
    let queries = qdgnn::data::queries::generate(&data, 40, 1, 2, AttrMode::Empty, 13);
    let split = QuerySplit::new(queries, 20, 10, 10);

    let dir = std::env::temp_dir().join("qdgnn_obs_resume_test");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("run.ckpt");
    let _ = std::fs::remove_file(&ckpt);

    let base = TrainConfig {
        epochs: 8,
        validate_every: 4,
        threads: 1,
        gamma_grid: vec![0.3, 0.5, 0.7],
        ..TrainConfig::default()
    };
    let full = Trainer::new(base.clone()).train(
        QdGnn::new(config.clone(), tensors.d),
        &tensors,
        &split.train,
        &split.val,
    );
    Trainer::new(TrainConfig {
        epochs: 4,
        checkpoint_path: Some(ckpt.clone()),
        checkpoint_every: 4,
        ..base.clone()
    })
    .train(QdGnn::new(config.clone(), tensors.d), &tensors, &split.train, &split.val);
    let resumed = Trainer::new(base)
        .resume_from(&ckpt, QdGnn::new(config, tensors.d), &tensors, &split.train, &split.val)
        .expect("valid checkpoint must resume");

    assert_eq!(resumed.report.loss_history, full.report.loss_history);
    assert_eq!(resumed.report.val_history, full.report.val_history);
    assert_eq!(resumed.gamma, full.gamma);
    let full_weights = full.model.store().snapshot();
    let resumed_weights = resumed.model.store().snapshot();
    for (a, b) in full_weights.iter().zip(&resumed_weights) {
        assert!(a.approx_eq(b, 0.0), "instrumented resume must stay bit-identical");
    }
    assert_eq!(full.report.checkpoint_write_failures, 0);

    if qdgnn_obs::enabled() {
        // Training under `--metrics-out`-style recording produced the
        // documented event stream.
        let events = qdgnn_obs::take_events();
        assert!(
            events.iter().any(|e| e.name() == "train.epoch"),
            "per-epoch events must be recorded"
        );
        let snap = qdgnn_obs::snapshot();
        assert!(snap.hist("train.epoch_time").is_some_and(|h| h.count > 0));
        assert!(snap.hist("train.grad_norm").is_some_and(|h| h.count > 0));
        assert!(snap.hist("tensor.matmul").is_some_and(|h| h.count > 0));
        assert!(snap.counter("train.checkpoint_write").unwrap_or(0) > 0);
    }
    qdgnn_obs::reset();
}

/// `TrainReport::train_seconds` reads the injectable obs wall clock, so
/// a frozen [`FakeClock`] pins it to exactly zero — in plain builds too
/// (the wall clock is compiled unconditionally, unlike the registry).
#[test]
fn train_seconds_follows_injected_wall_clock() {
    use qdgnn_obs::clock::{self, FakeClock, MonotonicClock};
    use std::sync::Arc;

    let _l = obs_lock();
    clock::set_wall(Arc::new(FakeClock::new()));
    let (tensors, split) = toy_split();
    let trained = Trainer::new(TrainConfig { epochs: 2, ..TrainConfig::fast() }).train(
        AqdGnn::new(ModelConfig::fast(), tensors.d),
        &tensors,
        &split.train,
        &split.val,
    );
    // `reset()` does not restore the clock in plain builds; do it by hand.
    clock::set_wall(Arc::new(MonotonicClock::new()));
    qdgnn_obs::reset();
    assert_eq!(
        trained.report.train_seconds, 0.0,
        "frozen fake clock must yield zero train_seconds"
    );
}

/// The terminal `TrainReport` fields are mirrored as `train.report.*`
/// gauges at report time, so a metrics scrape (or `--metrics-out` file)
/// carries the run outcome without parsing stdout.
#[test]
fn train_report_fields_are_mirrored_as_gauges() {
    if !qdgnn_obs::enabled() {
        return; // plain build: nothing is recorded, by design
    }
    let _l = obs_lock();
    qdgnn_obs::reset();
    let (tensors, split) = toy_split();
    let trained = Trainer::new(TrainConfig { epochs: 3, ..TrainConfig::fast() }).train(
        AqdGnn::new(ModelConfig::fast(), tensors.d),
        &tensors,
        &split.train,
        &split.val,
    );
    let snap = qdgnn_obs::snapshot();
    let gauge =
        |n: &str| snap.gauge(n).unwrap_or_else(|| panic!("gauge {n} must be recorded"));
    let r = &trained.report;
    assert_eq!(gauge("train.report.epochs_run"), r.epochs_run as f64);
    assert_eq!(gauge("train.report.best_val_f1"), r.best_val_f1);
    assert_eq!(gauge("train.report.best_gamma"), f64::from(r.best_gamma));
    assert_eq!(gauge("train.report.train_seconds"), r.train_seconds);
    assert_eq!(gauge("train.report.skipped_steps"), r.skipped_steps as f64);
    assert_eq!(gauge("train.report.recoveries"), r.recoveries as f64);
    assert_eq!(
        gauge("train.report.checkpoint_write_failures"),
        r.checkpoint_write_failures as f64
    );
    assert_eq!(gauge("train.report.diverged"), f64::from(u8::from(r.diverged)));
    qdgnn_obs::reset();
}

/// Serving one query must produce the serve.encode / serve.forward /
/// serve.bfs breakdown nested under serve.query, plus the counters and
/// size histograms the docs promise — and the stream must survive a
/// JSONL write / validate round-trip.
#[test]
fn serving_records_stage_breakdown() {
    if !qdgnn_obs::enabled() {
        return; // plain build: nothing is recorded, by design
    }
    let _l = obs_lock();
    let (tensors, split) = toy_split();
    let trained = Trainer::new(TrainConfig { epochs: 6, ..TrainConfig::fast() }).train(
        AqdGnn::new(ModelConfig::fast(), tensors.d),
        &tensors,
        &split.train,
        &split.val,
    );
    qdgnn_obs::reset();
    qdgnn_obs::record_events(true);

    let stage = OnlineStage::new(&trained.model, &tensors, trained.gamma);
    for q in &split.test {
        stage.try_query(q).expect("test query must serve");
    }
    let served = split.test.len() as u64;

    let events = qdgnn_obs::take_events();
    for name in ["serve.encode", "serve.forward", "serve.bfs"] {
        let spans: Vec<_> = events.iter().filter(|e| e.name() == name).collect();
        assert_eq!(spans.len() as u64, served, "one `{name}` span per query");
    }
    let parents: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            qdgnn_obs::events::Event::Span { name, parent, .. } if name == "serve.bfs" => {
                Some(parent.clone())
            }
            _ => None,
        })
        .collect();
    assert!(
        parents.iter().all(|p| p.as_deref() == Some("serve.query")),
        "stage spans must nest under serve.query: {parents:?}"
    );

    let snap = qdgnn_obs::snapshot();
    assert_eq!(snap.counter("serve.queries"), Some(served));
    assert_eq!(snap.hist("serve.query").map(|h| h.count), Some(served));
    assert_eq!(snap.hist("serve.community_size").map(|h| h.count), Some(served));
    assert!(snap.hist("identify.candidates").is_some_and(|h| h.count >= served));

    // JSONL round-trip: the final snapshot line parses back identically.
    let line = snap.to_json();
    let back = qdgnn_obs::metrics::MetricsSnapshot::from_json(&line).unwrap();
    assert_eq!(back.to_json(), line);
    qdgnn_obs::reset();
}
