//! Integration of the serving extensions: graph-cache endpoint, model
//! persistence across processes-worth of state, and the extra k-clique
//! substrate method.

use qdgnn::prelude::*;

#[test]
fn train_save_load_serve_round_trip() {
    let data = qdgnn::data::presets::toy();
    let config = ModelConfig::fast();
    let tensors = GraphTensors::new(&data.graph, config.adj_norm, config.fusion_graph_attr_cap);
    let queries = qdgnn::data::queries::generate(&data, 50, 1, 2, AttrMode::FromCommunity, 13);
    let split = QuerySplit::new(queries, 25, 13, 12);
    let trained = Trainer::new(TrainConfig { epochs: 20, ..TrainConfig::fast() }).train(
        AqdGnn::new(config.clone(), tensors.d),
        &tensors,
        &split.train,
        &split.val,
    );

    // Persist + reload into a fresh model.
    let dir = std::env::temp_dir().join("qdgnn_serving_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("served.model");
    save_model(&path, &trained.model, trained.gamma).unwrap();
    let mut fresh = AqdGnn::new(ModelConfig { seed: 4242, ..config }, tensors.d);
    let gamma = load_model(&path, &mut fresh).unwrap();
    assert_eq!(gamma, trained.gamma);

    // The reloaded model serves identically through the cached endpoint.
    let original = OnlineStage::new(&trained.model, &tensors, trained.gamma);
    let reloaded = OnlineStage::new(&fresh, &tensors, gamma);
    assert!(original.is_cached() && reloaded.is_cached());
    for q in &split.test {
        assert_eq!(original.query(q), reloaded.query(q));
    }
    let m1 = original.evaluate(&split.test);
    let m2 = reloaded.evaluate(&split.test);
    assert_eq!(m1.f1, m2.f1);
    assert!(m1.f1 > 0.4, "served model should still be good, F1={:.3}", m1.f1);
}

#[test]
fn cached_endpoint_agrees_with_reference_pipeline_on_attributed_queries() {
    let data = qdgnn::data::presets::toy();
    let config = ModelConfig::fast();
    let tensors = GraphTensors::new(&data.graph, config.adj_norm, config.fusion_graph_attr_cap);
    let model = AqdGnn::new(config, tensors.d);
    let stage = OnlineStage::new(&model, &tensors, 0.5);
    let queries = qdgnn::data::queries::generate(&data, 8, 1, 3, AttrMode::FromNode, 77);
    for q in &queries {
        assert_eq!(stage.query(q), predict_community(&model, &tensors, q, 0.5));
    }
}

#[test]
fn kclique_method_participates_in_common_interface() {
    let data = qdgnn::data::presets::toy();
    let kc = KClique::new();
    let queries = qdgnn::data::queries::generate(&data, 6, 1, 1, AttrMode::Empty, 3);
    for q in &queries {
        let c = kc.search(&data.graph, q);
        assert!(c.contains(&q.vertices[0]));
        assert!(
            qdgnn::graph::traversal::is_connected_subset(data.graph.graph(), &c),
            "percolated community must be connected"
        );
    }
}

#[test]
fn attention_fusion_trains_through_public_api() {
    let data = qdgnn::data::presets::toy();
    let config = ModelConfig { fusion: FusionAgg::Attention, ..ModelConfig::fast() };
    let tensors = GraphTensors::new(&data.graph, config.adj_norm, config.fusion_graph_attr_cap);
    let queries = qdgnn::data::queries::generate(&data, 40, 1, 2, AttrMode::FromCommunity, 21);
    let split = QuerySplit::new(queries, 20, 10, 10);
    let trained = Trainer::new(TrainConfig { epochs: 20, ..TrainConfig::fast() }).train(
        AqdGnn::new(config, tensors.d),
        &tensors,
        &split.train,
        &split.val,
    );
    let m = evaluate(&trained.model, &tensors, &split.test, trained.gamma);
    assert!(m.f1 > 0.4, "attention fusion should learn toy data, F1={:.3}", m.f1);
}
