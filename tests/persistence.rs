//! Persistence integration: a dataset and its queries survive a
//! save/load round trip and produce identical training outcomes.

use qdgnn::data::io;
use qdgnn::prelude::*;

#[test]
fn loaded_dataset_trains_identically() {
    let data = qdgnn::data::presets::toy();
    let dir = std::env::temp_dir().join("qdgnn_persistence_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("toy.txt");
    io::save_dataset(&path, &data).unwrap();
    let loaded = io::load_dataset(&path).unwrap();

    let run = |d: &Dataset| {
        let config = ModelConfig::fast();
        let tensors =
            GraphTensors::new(&d.graph, config.adj_norm, config.fusion_graph_attr_cap);
        let queries = qdgnn::data::queries::generate(d, 40, 1, 2, AttrMode::Empty, 3);
        let split = QuerySplit::new(queries, 20, 10, 10);
        let trained = Trainer::new(TrainConfig { epochs: 6, ..TrainConfig::fast() }).train(
            QdGnn::new(config, tensors.d),
            &tensors,
            &split.train,
            &split.val,
        );
        trained.report.loss_history
    };
    assert_eq!(run(&data), run(&loaded));
}

#[test]
fn query_files_round_trip_through_disk() {
    let data = qdgnn::data::presets::toy();
    let queries = qdgnn::data::queries::generate(&data, 25, 1, 3, AttrMode::FromNode, 9);
    let dir = std::env::temp_dir().join("qdgnn_persistence_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("queries.txt");
    io::save_queries(&path, &queries).unwrap();
    assert_eq!(io::load_queries(&path).unwrap(), queries);
}

#[test]
fn enlarged_dataset_round_trips() {
    let data = qdgnn::data::presets::toy();
    let enlarged = qdgnn::data::enlarge_within_communities(&data, 0.7, 5);
    let dir = std::env::temp_dir().join("qdgnn_persistence_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("enlarged.txt");
    io::save_dataset(&path, &enlarged).unwrap();
    let loaded = io::load_dataset(&path).unwrap();
    assert_eq!(loaded.communities, enlarged.communities);
    assert_eq!(loaded.graph.graph().num_edges(), enlarged.graph.graph().num_edges());
}
