//! Persistence integration: a dataset and its queries survive a
//! save/load round trip and produce identical training outcomes.

use qdgnn::data::io;
use qdgnn::prelude::*;

#[test]
fn loaded_dataset_trains_identically() {
    let data = qdgnn::data::presets::toy();
    let dir = std::env::temp_dir().join("qdgnn_persistence_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("toy.txt");
    io::save_dataset(&path, &data).unwrap();
    let loaded = io::load_dataset(&path).unwrap();

    let run = |d: &Dataset| {
        let config = ModelConfig::fast();
        let tensors =
            GraphTensors::new(&d.graph, config.adj_norm, config.fusion_graph_attr_cap);
        let queries = qdgnn::data::queries::generate(d, 40, 1, 2, AttrMode::Empty, 3);
        let split = QuerySplit::new(queries, 20, 10, 10);
        let trained = Trainer::new(TrainConfig { epochs: 6, ..TrainConfig::fast() }).train(
            QdGnn::new(config, tensors.d),
            &tensors,
            &split.train,
            &split.val,
        );
        trained.report.loss_history
    };
    assert_eq!(run(&data), run(&loaded));
}

#[test]
fn query_files_round_trip_through_disk() {
    let data = qdgnn::data::presets::toy();
    let queries = qdgnn::data::queries::generate(&data, 25, 1, 3, AttrMode::FromNode, 9);
    let dir = std::env::temp_dir().join("qdgnn_persistence_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("queries.txt");
    io::save_queries(&path, &queries).unwrap();
    assert_eq!(io::load_queries(&path).unwrap(), queries);
}

/// Satellite robustness check: every possible truncation and per-line
/// corruption of a saved model file must surface as `Err` (never a
/// panic), must leave the in-memory model untouched and usable, and a
/// subsequent load of the pristine file must still be bit-identical.
#[test]
fn model_file_corruption_sweep_never_panics() {
    let data = qdgnn::data::presets::toy();
    let config = ModelConfig { hidden: 8, layers: 2, ..ModelConfig::fast() };
    let tensors = GraphTensors::new(&data.graph, config.adj_norm, config.fusion_graph_attr_cap);
    let queries = qdgnn::data::queries::generate(&data, 20, 1, 2, AttrMode::Empty, 5);
    let split = QuerySplit::new(queries, 10, 5, 5);
    let trained = Trainer::new(TrainConfig { epochs: 2, ..TrainConfig::fast() }).train(
        SimpleQdGnn::new(config.clone()),
        &tensors,
        &split.train,
        &split.val,
    );

    let dir = std::env::temp_dir().join("qdgnn_persistence_test");
    std::fs::create_dir_all(&dir).unwrap();
    let good_path = dir.join("sweep_good.model");
    save_model(&good_path, &trained.model, trained.gamma).unwrap();
    let good = std::fs::read_to_string(&good_path).unwrap();
    let lines: Vec<&str> = good.lines().collect();

    let victim = SimpleQdGnn::new(config.clone());
    let q = QueryVectors::encode(tensors.n, tensors.d, &[0, 1], &[]);
    let pristine_scores = predict_scores(&victim, &tensors, &q);

    let bad_path = dir.join("sweep_bad.model");
    let mut victim = victim;
    for i in 0..lines.len() {
        // Variant 1: file truncated after line i.
        let truncated: String = lines[..i].iter().map(|l| format!("{l}\n")).collect();
        std::fs::write(&bad_path, truncated).unwrap();
        assert!(
            load_model(&bad_path, &mut victim).is_err(),
            "truncation at line {i} must be rejected"
        );
        // Variant 2: line i replaced with garbage.
        let mangled: String = lines
            .iter()
            .enumerate()
            .map(|(j, l)| if j == i { "@@ not hex @@\n".to_string() } else { format!("{l}\n") })
            .collect();
        std::fs::write(&bad_path, mangled).unwrap();
        assert!(
            load_model(&bad_path, &mut victim).is_err(),
            "garbage at line {i} must be rejected"
        );
        // A failed load must not have committed anything.
        assert_eq!(
            predict_scores(&victim, &tensors, &q),
            pristine_scores,
            "rejected load at line {i} modified the model"
        );
    }

    // After surviving the sweep the pristine file still loads, and the
    // round trip is bit-identical.
    let gamma = load_model(&good_path, &mut victim).unwrap();
    assert_eq!(gamma, trained.gamma);
    let reload_path = dir.join("sweep_reload.model");
    save_model(&reload_path, &victim, gamma).unwrap();
    assert_eq!(
        std::fs::read_to_string(&reload_path).unwrap(),
        good,
        "round trip after the corruption sweep must be bit-identical"
    );
}

#[test]
fn enlarged_dataset_round_trips() {
    let data = qdgnn::data::presets::toy();
    let enlarged = qdgnn::data::enlarge_within_communities(&data, 0.7, 5);
    let dir = std::env::temp_dir().join("qdgnn_persistence_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("enlarged.txt");
    io::save_dataset(&path, &enlarged).unwrap();
    let loaded = io::load_dataset(&path).unwrap();
    assert_eq!(loaded.communities, enlarged.communities);
    assert_eq!(loaded.graph.graph().num_edges(), enlarged.graph.graph().num_edges());
}
