//! Integration of the five baselines against generated datasets: every
//! method must return a community containing its query, and the
//! classical methods must behave per their definitions.

use qdgnn::prelude::*;

fn toy_queries(mode: AttrMode, single: bool) -> (Dataset, Vec<Query>) {
    let data = qdgnn::data::presets::toy();
    let max_v = if single { 1 } else { 3 };
    let queries = qdgnn::data::queries::generate(&data, 12, 1, max_v, mode, 23);
    (data, queries)
}

#[test]
fn every_method_contains_its_query_vertices() {
    let (data, queries) = toy_queries(AttrMode::FromCommunity, true);
    let ctc = Ctc::index(data.graph.graph());
    let atc = Atc::index(data.graph.graph());
    let kecc = KEcc::new();
    let acq = Acq::new();
    let methods: Vec<&dyn CommunityMethod> = vec![&ctc, &kecc, &acq, &atc];
    for method in methods {
        for q in &queries {
            let c = method.search(&data.graph, q);
            assert!(!c.is_empty(), "{} returned empty community", method.name());
            for v in &q.vertices {
                assert!(
                    c.contains(v),
                    "{} dropped query vertex {v} (community {c:?})",
                    method.name()
                );
            }
        }
    }
}

#[test]
fn icsgnn_contains_query_and_respects_k() {
    let (data, queries) = toy_queries(AttrMode::Empty, false);
    let ics = IcsGnn::new(qdgnn::baselines::IcsGnnConfig {
        hidden: 16,
        epochs: 15,
        candidate_size: 50,
        ..Default::default()
    });
    for q in queries.iter().take(3) {
        let c = ics.search(&data.graph, q);
        for v in &q.vertices {
            assert!(c.contains(v));
        }
        // k-sized selection: no larger than the candidate could support.
        assert!(c.len() <= data.graph.num_vertices());
    }
}

#[test]
fn acq_attribute_filtering_only_restricts() {
    // ACQ's attribute stage filters the structural k-core community; the
    // attributed answer is therefore always a subset of the structural
    // one (exactly the rigidity the paper's AQD-GNN is built to avoid).
    let (data, afc) = toy_queries(AttrMode::FromCommunity, true);
    let acq = Acq::new();
    for q in &afc {
        let with_attrs = acq.search(&data.graph, q);
        let structural = acq.search(&data.graph, &Query { attrs: vec![], ..q.clone() });
        assert!(
            with_attrs.iter().all(|v| structural.contains(v)),
            "attributed ACQ answer must be a subset of the structural one"
        );
        assert!(with_attrs.len() <= structural.len());
    }
}

#[test]
fn methods_report_capabilities_consistently() {
    let data = qdgnn::data::presets::toy();
    let ctc = Ctc::index(data.graph.graph());
    let atc = Atc::index(data.graph.graph());
    assert!(!ctc.supports_attrs());
    assert!(ctc.supports_multi_vertex());
    assert!(!KEcc::new().supports_attrs());
    assert!(Acq::new().supports_attrs());
    assert!(!Acq::new().supports_multi_vertex());
    assert!(atc.supports_attrs());
    assert!(atc.supports_multi_vertex());
}

#[test]
fn baseline_communities_are_connected() {
    let (data, queries) = toy_queries(AttrMode::FromCommunity, true);
    let ctc = Ctc::index(data.graph.graph());
    let atc = Atc::index(data.graph.graph());
    for q in &queries {
        for (name, c) in [
            ("CTC", ctc.search(&data.graph, q)),
            ("ATC", atc.search(&data.graph, q)),
            ("ACQ", Acq::new().search(&data.graph, q)),
            ("ECC", KEcc::new().search(&data.graph, q)),
        ] {
            assert!(
                qdgnn::graph::traversal::is_connected_subset(data.graph.graph(), &c),
                "{name} answer must be connected, got {c:?}"
            );
        }
    }
}
