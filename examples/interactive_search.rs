//! Interactive community search (§7.3): the ICS-GNN candidate-subgraph
//! loop with three different embedding engines — the original per-query
//! re-trained Vanilla GCN, a pre-trained QD-GNN, and a pre-trained
//! AQD-GNN — with simulated user feedback between rounds.
//!
//! ```sh
//! cargo run --release -p qdgnn --example interactive_search
//! ```

use qdgnn::prelude::*;

fn session(
    label: &str,
    graph: &AttributedGraph,
    scorer: &dyn SubgraphScorer,
    queries: &[Query],
) {
    let cfg = InteractiveConfig { rounds: 3, feedback_per_round: 2, ..Default::default() };
    let mut per_round = vec![0.0f64; cfg.rounds];
    let mut secs = 0.0;
    for (i, q) in queries.iter().enumerate() {
        let outcome = run_interactive(graph, scorer, q, &cfg, i as u64);
        for (r, f1) in outcome.f1_per_round.iter().enumerate() {
            per_round[r] += f1;
        }
        secs += outcome.avg_seconds();
    }
    let n = queries.len() as f64;
    let rounds: Vec<String> =
        per_round.iter().map(|f| format!("{:.3}", f / n)).collect();
    println!(
        "  {label:<22}  F1 per round: [{}]   {:.3}s/interaction",
        rounds.join(" → "),
        secs / n
    );
}

fn main() {
    let data = qdgnn::data::presets::fb_686();
    println!("dataset: {}", data.stats_line());

    let config = ModelConfig { hidden: 48, ..ModelConfig::default() };
    let tensors = GraphTensors::new(&data.graph, config.adj_norm, config.fusion_graph_attr_cap);
    let bases = qdgnn::data::queries::generate_bases(&data, 130, 1, 3, 5);
    let ema = QuerySplit::new(
        qdgnn::data::queries::materialize(&data, &bases, AttrMode::Empty),
        70,
        30,
        30,
    );
    let afc = QuerySplit::new(
        qdgnn::data::queries::materialize(&data, &bases, AttrMode::FromCommunity),
        70,
        30,
        30,
    );
    let eval = &ema.test[..10];
    let eval_afc = &afc.test[..10];

    println!("\ninteractive sessions (3 rounds, simulated feedback):");

    // Original ICS-GNN: re-trains a GCN for every query, every round.
    let ics = IcsGnn::new(qdgnn::baselines::IcsGnnConfig {
        hidden: 48,
        epochs: 50,
        ..Default::default()
    });
    session("ICS-GNN (re-trained)", &data.graph, &ics, eval);

    // Pre-trained QD-GNN in the same pipeline: inference only.
    let trainer = Trainer::new(TrainConfig { epochs: 60, ..TrainConfig::default() });
    let qd = trainer.train(QdGnn::new(config.clone(), tensors.d), &tensors, &ema.train, &ema.val);
    session("QD-GNN (pre-trained)", &data.graph, &ModelScorer { model: &qd.model }, eval);

    // Pre-trained AQD-GNN extends the loop to *attributed* queries —
    // something ICS-GNN's architecture cannot accept.
    let aqd =
        trainer.train(AqdGnn::new(config, tensors.d), &tensors, &afc.train, &afc.val);
    session("AQD-GNN (pre-trained)", &data.graph, &ModelScorer { model: &aqd.model }, eval_afc);
}
