//! Quickstart: train QD-GNN on a synthetic graph and answer a community
//! search query online.
//!
//! ```sh
//! cargo run --release -p qdgnn --example quickstart
//! ```

use qdgnn::prelude::*;

fn main() {
    // 1. A synthetic attributed graph with planted ground-truth
    //    communities (a replica of the paper's Cornell dataset).
    let data = qdgnn::data::presets::cornell();
    println!("dataset: {}", data.stats_line());

    // 2. Precompute the query-independent tensors: normalized adjacency,
    //    attribute matrix, bipartite incidence, fusion graph.
    let config = ModelConfig { hidden: 64, ..ModelConfig::default() };
    let tensors = GraphTensors::new(&data.graph, config.adj_norm, config.fusion_graph_attr_cap);

    // 3. Generate training/validation/test queries: 1–3 query vertices
    //    drawn from a ground-truth community, no query attributes (EmA).
    let queries = qdgnn::data::queries::generate(&data, 160, 1, 3, AttrMode::Empty, 7);
    let split = QuerySplit::new(queries, 80, 40, 40);

    // 4. Offline training stage (§4.2): BCE loss, Adam, batch size 4;
    //    best weights and threshold γ are selected on validation.
    let trainer = Trainer::new(TrainConfig { epochs: 60, ..TrainConfig::default() });
    let trained = trainer.train(QdGnn::new(config, tensors.d), &tensors, &split.train, &split.val);
    println!(
        "trained in {:.1}s, best validation F1 {:.3}, γ = {:.2}",
        trained.report.train_seconds, trained.report.best_val_f1, trained.gamma
    );

    // 5. Online query stage (§4.3): one inference pass + constrained BFS.
    let query = &split.test[0];
    let t0 = std::time::Instant::now();
    let community = predict_community(&trained.model, &tensors, query, trained.gamma);
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "query {:?} → community of {} vertices in {ms:.2} ms (truth: {})",
        query.vertices,
        community.len(),
        query.truth.len()
    );

    // 6. Evaluate on the whole held-out test set.
    let metrics = evaluate(&trained.model, &tensors, &split.test, trained.gamma);
    println!(
        "test micro metrics: precision {:.3}  recall {:.3}  F1 {:.3}",
        metrics.precision, metrics.recall, metrics.f1
    );
}
