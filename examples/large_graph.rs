//! ACS on a large graph (§7.4): the subgraph-training mechanism — each
//! query is served on a 1–2-hop fusion-graph candidate subgraph, so
//! neither training nor inference ever touches the full graph.
//!
//! ```sh
//! cargo run --release -p qdgnn --example large_graph
//! ```

use std::time::Instant;

use qdgnn::core::subgraph::{evaluate_subgraph, predict_community_subgraph};
use qdgnn::prelude::*;

fn main() {
    // A scaled-down Reddit-like graph (50 communities at 1/8 scale would
    // be the paper profile; this example uses a laptop-friendly size).
    let data = GeneratorConfig {
        num_communities: 15,
        community_size_mean: 200.0,
        community_size_jitter: 0.4,
        intra_degree: 8.0,
        inter_degree: 4.0,
        vocab_size: 602,
        topics_per_community: 60,
        attrs_per_vertex_mean: 30.0,
        seed: 0x4EDD17,
        ..Default::default()
    }
    .generate("Reddit-mini");
    println!("dataset: {}", data.stats_line());

    let config = ModelConfig { hidden: 48, ..ModelConfig::default() };
    let queries = qdgnn::data::queries::generate(&data, 70, 1, 1, AttrMode::FromCommunity, 3);
    let split = QuerySplit::new(queries, 40, 15, 15);

    // Build the fusion graph once; candidates are its 1–2-hop balls.
    let t0 = Instant::now();
    let fusion = data.graph.fusion_graph(config.fusion_graph_attr_cap);
    println!(
        "fusion graph: {} edges (structure: {}), built in {:.2}s",
        fusion.num_edges(),
        data.graph.graph().num_edges(),
        t0.elapsed().as_secs_f64()
    );

    // Train on per-query candidate subgraphs.
    let sub_cfg = SubgraphConfig::default();
    let trainer = SubgraphTrainer::new(
        TrainConfig { epochs: 40, ..TrainConfig::default() },
        sub_cfg.clone(),
    );
    let t0 = Instant::now();
    let trained = trainer.train(
        AqdGnn::new(config, data.graph.num_attrs()),
        &data.graph,
        &fusion,
        &split.train,
        &split.val,
    );
    println!(
        "subgraph training: {:.1}s, best validation F1 {:.3}, γ={:.2}",
        t0.elapsed().as_secs_f64(),
        trained.report.best_val_f1,
        trained.gamma
    );

    // Online queries never touch the full graph.
    let q = &split.test[0];
    let t0 = Instant::now();
    let community =
        predict_community_subgraph(&trained.model, &data.graph, &fusion, q, trained.gamma, &sub_cfg);
    println!(
        "query {:?} → {} vertices in {:.2} ms",
        q.vertices,
        community.len(),
        t0.elapsed().as_secs_f64() * 1e3
    );

    let metrics = evaluate_subgraph(
        &trained.model,
        &data.graph,
        &fusion,
        &split.test,
        trained.gamma,
        &sub_cfg,
    );
    println!(
        "test micro metrics: precision {:.3}  recall {:.3}  F1 {:.3}",
        metrics.precision, metrics.recall, metrics.f1
    );
}
