//! Attributed community search: AQD-GNN versus the ACQ and ATC
//! baselines under the paper's AFC and AFN query-attribute regimes —
//! the scenario of the paper's introduction, where "ML"/"DL"/"CV"-style
//! related attributes defeat exact-match methods.
//!
//! ```sh
//! cargo run --release -p qdgnn --example attributed_search
//! ```

use qdgnn::prelude::*;

fn evaluate_baseline(
    name: &str,
    method: &dyn CommunityMethod,
    data: &Dataset,
    test: &[Query],
) {
    let predicted: Vec<Vec<VertexId>> =
        test.iter().map(|q| method.search(&data.graph, q)).collect();
    let truth: Vec<Vec<VertexId>> = test.iter().map(|q| q.truth.clone()).collect();
    let m = CommunityMetrics::micro(&predicted, &truth);
    println!("  {name:<8}  F1 {:.3}  (precision {:.3}, recall {:.3})", m.f1, m.precision, m.recall);
}

fn main() {
    let data = qdgnn::data::presets::fb_414();
    println!("dataset: {}", data.stats_line());

    let config = ModelConfig { hidden: 48, ..ModelConfig::default() };
    let tensors = GraphTensors::new(&data.graph, config.adj_norm, config.fusion_graph_attr_cap);

    // Shared query vertex sets, two attribute regimes (§7.1.3).
    let bases = qdgnn::data::queries::generate_bases(&data, 160, 1, 3, 11);
    for (label, mode) in [
        ("AFC (attributes from community)", AttrMode::FromCommunity),
        ("AFN (attributes from query vertices)", AttrMode::FromNode),
    ] {
        println!("\n== {label} ==");
        let queries = qdgnn::data::queries::materialize(&data, &bases, mode);
        let split = QuerySplit::new(queries, 80, 40, 40);

        evaluate_baseline("ACQ", &Acq::new(), &data, &split.test);
        evaluate_baseline("ATC", &Atc::index(data.graph.graph()), &data, &split.test);

        let trainer = Trainer::new(TrainConfig { epochs: 60, ..TrainConfig::default() });
        let trained = trainer.train(
            AqdGnn::new(config.clone(), tensors.d),
            &tensors,
            &split.train,
            &split.val,
        );
        let m = evaluate(&trained.model, &tensors, &split.test, trained.gamma);
        println!(
            "  AQD-GNN   F1 {:.3}  (precision {:.3}, recall {:.3})  γ={:.2}",
            m.f1, m.precision, m.recall, trained.gamma
        );
    }
}
