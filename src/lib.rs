#![warn(missing_docs)]

//! # qdgnn — Query-Driven GNNs for Community Search
//!
//! A from-scratch Rust implementation of
//! *"Query Driven-Graph Neural Networks for Community Search: From
//! Non-Attributed, Attributed, to Interactive Attributed"*
//! (Jiang et al., PVLDB 15(6), 2022): the **Simple QD-GNN**, **QD-GNN**
//! and **AQD-GNN** models, their offline-training / online-query
//! framework, the large-graph subgraph mechanism, the interactive
//! framework, and the five baselines the paper compares against —
//! together with the tensor/autodiff engine and graph-algorithm
//! substrate they run on.
//!
//! ## Quickstart
//!
//! ```
//! use qdgnn::prelude::*;
//!
//! // A small synthetic attributed graph with ground-truth communities.
//! let data = qdgnn::data::presets::toy();
//!
//! // Precompute query-independent tensors.
//! let config = ModelConfig::fast();
//! let tensors = GraphTensors::new(&data.graph, config.adj_norm, config.fusion_graph_attr_cap);
//!
//! // Generate (query, ground-truth) pairs and split them.
//! let queries = qdgnn::data::queries::generate(&data, 60, 1, 3, AttrMode::FromCommunity, 7);
//! let split = QuerySplit::new(queries, 30, 15, 15);
//!
//! // Offline: train AQD-GNN once.
//! let model = AqdGnn::new(config, tensors.d);
//! let trainer = Trainer::new(TrainConfig { epochs: 5, ..TrainConfig::fast() });
//! let trained = trainer.train(model, &tensors, &split.train, &split.val);
//!
//! // Online: answer queries with one inference pass + constrained BFS.
//! let community = predict_community(&trained.model, &tensors, &split.test[0], trained.gamma);
//! assert!(!community.is_empty());
//! ```
//!
//! ## Crate map
//!
//! | Layer | Crate | Re-exported as |
//! |---|---|---|
//! | Tensors + autodiff + optimizers | `qdgnn-tensor` | [`tensor`] |
//! | Layers and losses | `qdgnn-nn` | [`nn`] |
//! | Graphs + classical algorithms | `qdgnn-graph` | [`graph`] |
//! | Synthetic datasets + queries | `qdgnn-data` | [`data`] |
//! | The paper's models + framework | `qdgnn-core` | [`core`] |
//! | CTC / k-ECC / ACQ / ATC / ICS-GNN | `qdgnn-baselines` | [`baselines`] |
//! | Tracing + metrics (feature `obs`) | `qdgnn-obs` | [`obs`] |

pub use qdgnn_baselines as baselines;
pub use qdgnn_core as core;
pub use qdgnn_data as data;
pub use qdgnn_graph as graph;
pub use qdgnn_nn as nn;
pub use qdgnn_obs as obs;
pub use qdgnn_tensor as tensor;

/// The most common imports for working with the library.
pub mod prelude {
    pub use qdgnn_baselines::{Acq, Atc, CommunityMethod, Ctc, IcsGnn, KClique, KEcc};
    pub use qdgnn_core::config::{FusionAgg, ModelConfig};
    pub use qdgnn_core::error::QdgnnError;
    pub use qdgnn_core::identify::{identify_community, try_identify_community};
    pub use qdgnn_core::inputs::{GraphTensors, QueryVectors};
    pub use qdgnn_core::interactive::{
        run_interactive, InteractiveConfig, ModelScorer, SubgraphScorer,
    };
    pub use qdgnn_core::models::{
        predict_scores, predict_scores_cached, AqdGnn, CsModel, GraphCache, QdGnn, SimpleQdGnn,
    };
    pub use qdgnn_core::persist::{load_model, save_model};
    pub use qdgnn_core::serve::OnlineStage;
    pub use qdgnn_core::subgraph::{SubgraphConfig, SubgraphTrainer};
    pub use qdgnn_core::train::{
        evaluate, predict_communities, predict_community, select_gamma, TrainConfig,
        TrainReport, TrainedModel, Trainer,
    };
    pub use qdgnn_data::{AttrMode, Dataset, GeneratorConfig, Query, QuerySplit};
    pub use qdgnn_graph::{AttributedGraph, CommunityMetrics, Graph, VertexId};
}
