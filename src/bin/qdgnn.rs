//! `qdgnn` — command-line interface to the library.
//!
//! Subcommands mirror the paper's workflow:
//!
//! ```text
//! qdgnn generate --preset cornell --out data.txt [--queries q.txt --mode afc]
//! qdgnn stats    --data data.txt
//! qdgnn train    --data data.txt --queries q.txt --model aqd --out m.model
//! qdgnn query    --data data.txt --model-file m.model --model aqd \
//!                --vertices 3,17 [--attrs 5,9]
//! qdgnn evaluate --data data.txt --queries q.txt --model-file m.model --model aqd
//! ```
//!
//! Model architecture flags (`--hidden`, `--layers`) must match between
//! `train` and later `query`/`evaluate` invocations; the loader rejects
//! mismatched weight shapes.

use std::collections::HashMap;
use std::process::ExitCode;

use qdgnn::core::persist::{load_model, save_model};
use qdgnn::data::io;
use qdgnn::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let opts = match Options::parse(rest) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(&opts),
        "stats" => cmd_stats(&opts),
        "train" => cmd_train(&opts),
        "resume" => cmd_resume(&opts),
        "query" => cmd_query(&opts),
        "evaluate" => cmd_evaluate(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
qdgnn — query-driven GNNs for community search

USAGE:
  qdgnn generate --preset NAME --out FILE [--queries FILE --mode ema|afc|afn
                 --count N --seed N]
  qdgnn stats    --data FILE
  qdgnn train    --data FILE --queries FILE --model simple|qd|aqd --out FILE
                 [--epochs N --hidden N --layers N --split T,V,S --seed N
                  --checkpoint FILE --checkpoint-every N]
  qdgnn resume   --data FILE --queries FILE --model simple|qd|aqd --out FILE
                 --checkpoint FILE [--epochs N --hidden N --layers N
                  --split T,V,S --seed N --checkpoint-every N]
  qdgnn query    --data FILE --model-file FILE --model simple|qd|aqd
                 --vertices a,b[,c] [--attrs x,y --gamma G --hidden N --layers N]
  qdgnn evaluate --data FILE --queries FILE --model-file FILE
                 --model simple|qd|aqd [--split T,V,S --hidden N --layers N]

Presets: toy cornell texas washington wisconsin cora citeseer
         fb-0 fb-107 fb-1684 fb-1912 fb-3437 fb-348 fb-414 fb-686 reddit";

/// Parsed `--key value` options.
struct Options(HashMap<String, String>);

impl Options {
    fn parse(args: &[String]) -> Result<Options, String> {
        let mut map = HashMap::new();
        let mut i = 0;
        while i < args.len() {
            let key = args[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected `--option`, got `{}`", args[i]))?;
            let value =
                args.get(i + 1).ok_or_else(|| format!("missing value for --{key}"))?;
            map.insert(key.to_string(), value.clone());
            i += 2;
        }
        Ok(Options(map))
    }

    fn required(&self, key: &str) -> Result<&str, String> {
        self.0.get(key).map(String::as_str).ok_or_else(|| format!("--{key} is required"))
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0.get(key).map(String::as_str)
    }

    fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value for --{key}: `{v}`")),
        }
    }

    fn list(&self, key: &str) -> Result<Vec<u32>, String> {
        match self.get(key) {
            None => Ok(Vec::new()),
            Some(v) => v
                .split(',')
                .map(|t| t.trim().parse().map_err(|_| format!("bad --{key} entry `{t}`")))
                .collect(),
        }
    }
}

fn preset(name: &str) -> Result<Dataset, String> {
    use qdgnn::data::presets as p;
    Ok(match name.to_lowercase().as_str() {
        "toy" => p::toy(),
        "cornell" => p::cornell(),
        "texas" => p::texas(),
        "washington" | "washt" => p::washington(),
        "wisconsin" | "wiscs" => p::wisconsin(),
        "cora" => p::cora(),
        "citeseer" => p::citeseer(),
        "fb-0" => p::fb_0(),
        "fb-107" => p::fb_107(),
        "fb-1684" => p::fb_1684(),
        "fb-1912" => p::fb_1912(),
        "fb-3437" => p::fb_3437(),
        "fb-348" => p::fb_348(),
        "fb-414" => p::fb_414(),
        "fb-686" => p::fb_686(),
        "reddit" => p::reddit(),
        other => return Err(format!("unknown preset `{other}`")),
    })
}

fn attr_mode(name: &str) -> Result<AttrMode, String> {
    match name.to_lowercase().as_str() {
        "ema" => Ok(AttrMode::Empty),
        "afc" => Ok(AttrMode::FromCommunity),
        "afn" => Ok(AttrMode::FromNode),
        other => Err(format!("unknown attribute mode `{other}` (ema|afc|afn)")),
    }
}

fn model_config(opts: &Options) -> Result<ModelConfig, String> {
    Ok(ModelConfig {
        hidden: opts.parse_or("hidden", 64usize)?,
        layers: opts.parse_or("layers", 3usize)?,
        seed: opts.parse_or("seed", 1u64)?,
        ..ModelConfig::default()
    })
}

fn build_model(kind: &str, config: ModelConfig, attr_dim: usize) -> Result<Box<dyn CsModel>, String> {
    Ok(match kind.to_lowercase().as_str() {
        "simple" => Box::new(SimpleQdGnn::new(config)),
        "qd" | "qdgnn" | "qd-gnn" => Box::new(QdGnn::new(config, attr_dim)),
        "aqd" | "aqdgnn" | "aqd-gnn" => Box::new(AqdGnn::new(config, attr_dim)),
        other => return Err(format!("unknown model `{other}` (simple|qd|aqd)")),
    })
}

fn split_spec(opts: &Options, total: usize) -> Result<(usize, usize, usize), String> {
    match opts.get("split") {
        None => {
            // Default proportions 3:2:2, the paper's 150:100:100 shape.
            let train = total * 3 / 7;
            let val = total * 2 / 7;
            Ok((train, val, total - train - val))
        }
        Some(s) => {
            let parts: Vec<usize> = s
                .split(',')
                .map(|t| t.trim().parse().map_err(|_| format!("bad --split entry `{t}`")))
                .collect::<Result<_, String>>()?;
            if parts.len() != 3 {
                return Err("--split needs three comma-separated sizes".into());
            }
            Ok((parts[0], parts[1], parts[2]))
        }
    }
}

fn cmd_generate(opts: &Options) -> Result<(), String> {
    let data = preset(opts.required("preset")?)?;
    let out = opts.required("out")?;
    io::save_dataset(out, &data).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {} ({})", out, data.stats_line());
    if let Some(qpath) = opts.get("queries") {
        let mode = attr_mode(opts.get("mode").unwrap_or("afc"))?;
        let count = opts.parse_or("count", 350usize)?;
        let seed = opts.parse_or("seed", 7u64)?;
        let queries = qdgnn::data::queries::generate(&data, count, 1, 3, mode, seed);
        io::save_queries(qpath, &queries).map_err(|e| format!("writing {qpath}: {e}"))?;
        println!("wrote {count} {} queries to {qpath}", mode.label());
    }
    Ok(())
}

fn cmd_stats(opts: &Options) -> Result<(), String> {
    let path = opts.required("data")?;
    let data = io::load_dataset(path).map_err(|e| format!("reading {path}: {e}"))?;
    println!("{}", data.stats_line());
    println!(
        "max degree {}, fusion graph edges (cap 100): {}",
        data.graph.graph().max_degree(),
        data.graph.fusion_graph(100).num_edges()
    );
    Ok(())
}

/// Everything `train` and `resume` share: dataset, split, tensors, a
/// freshly built model and the training configuration.
struct TrainSetup {
    data: Dataset,
    split: QuerySplit,
    tensors: GraphTensors,
    model: Box<dyn CsModel>,
    tc: TrainConfig,
}

fn train_setup(opts: &Options) -> Result<TrainSetup, String> {
    let data = io::load_dataset(opts.required("data")?).map_err(|e| e.to_string())?;
    let queries = io::load_queries(opts.required("queries")?).map_err(|e| e.to_string())?;
    let (train, val, test) = split_spec(opts, queries.len())?;
    let split = QuerySplit::new(queries, train, val, test);
    let config = model_config(opts)?;
    let tensors =
        GraphTensors::new(&data.graph, config.adj_norm, config.fusion_graph_attr_cap);
    let model = build_model(opts.required("model")?, config, tensors.d)?;
    let tc = TrainConfig {
        epochs: opts.parse_or("epochs", 100usize)?,
        seed: opts.parse_or("seed", 1u64)?,
        checkpoint_path: opts.get("checkpoint").map(std::path::PathBuf::from),
        checkpoint_every: opts.parse_or("checkpoint-every", 10usize)?,
        ..TrainConfig::default()
    };
    Ok(TrainSetup { data, split, tensors, model, tc })
}

fn finish_training(
    opts: &Options,
    tensors: &GraphTensors,
    test: &[Query],
    trained: TrainedModel<Box<dyn CsModel>>,
) -> Result<(), String> {
    if trained.report.diverged {
        eprintln!(
            "warning: training diverged after {} rollbacks; keeping the best weights seen",
            trained.report.recoveries
        );
    } else if trained.report.recoveries > 0 || trained.report.skipped_steps > 0 {
        eprintln!(
            "note: recovered from {} divergence rollback(s), skipped {} non-finite step(s)",
            trained.report.recoveries, trained.report.skipped_steps
        );
    }
    println!(
        "done in {:.1}s — best validation F1 {:.3}, γ = {:.2}",
        trained.report.train_seconds, trained.report.best_val_f1, trained.gamma
    );
    let out = opts.required("out")?;
    save_model(out, trained.model.as_ref(), trained.gamma).map_err(|e| e.to_string())?;
    println!("wrote {out}");
    let metrics = evaluate(trained.model.as_ref(), tensors, test, trained.gamma);
    println!(
        "held-out test: precision {:.3}  recall {:.3}  F1 {:.3}",
        metrics.precision, metrics.recall, metrics.f1
    );
    Ok(())
}

fn cmd_train(opts: &Options) -> Result<(), String> {
    let TrainSetup { data, split, tensors, model, tc } = train_setup(opts)?;
    println!(
        "training {} on {} ({} train / {} val queries, {} epochs)…",
        model.name(),
        data.name,
        split.train.len(),
        split.val.len(),
        tc.epochs
    );
    let trained = Trainer::new(tc).train(model, &tensors, &split.train, &split.val);
    finish_training(opts, &tensors, &split.test, trained)
}

fn cmd_resume(opts: &Options) -> Result<(), String> {
    let TrainSetup { data, split, tensors, model, tc } = train_setup(opts)?;
    let ckpt = opts.required("checkpoint")?;
    println!(
        "resuming {} on {} from {ckpt} (target: {} epochs)…",
        model.name(),
        data.name,
        tc.epochs
    );
    let trained = Trainer::new(tc)
        .resume_from(ckpt, model, &tensors, &split.train, &split.val)
        .map_err(|e| format!("resuming from {ckpt}: {e}"))?;
    finish_training(opts, &tensors, &split.test, trained)
}

fn load_trained(
    opts: &Options,
    data: &Dataset,
) -> Result<(Box<dyn CsModel>, GraphTensors, f32), String> {
    let config = model_config(opts)?;
    let tensors =
        GraphTensors::new(&data.graph, config.adj_norm, config.fusion_graph_attr_cap);
    let mut model = build_model(opts.required("model")?, config, tensors.d)?;
    let gamma = load_model(opts.required("model-file")?, model.as_mut())
        .map_err(|e| format!("loading model: {e}"))?;
    Ok((model, tensors, gamma))
}

fn cmd_query(opts: &Options) -> Result<(), String> {
    let data = io::load_dataset(opts.required("data")?).map_err(|e| e.to_string())?;
    let (model, tensors, stored_gamma) = load_trained(opts, &data)?;
    let gamma = opts.parse_or("gamma", stored_gamma)?;
    let vertices = opts.list("vertices")?;
    if vertices.is_empty() {
        return Err("--vertices is required".into());
    }
    let attrs = opts.list("attrs")?;
    let query = Query { vertices, attrs, truth: vec![] };
    // Serve through the validating path: a vertex or attribute id outside
    // the graph is a user error that must exit non-zero with a message,
    // not a panic.
    let stage = OnlineStage::new(model.as_ref(), &tensors, gamma);
    let t0 = std::time::Instant::now();
    let community = stage.try_query(&query).map_err(|e| format!("invalid query: {e}"))?;
    println!(
        "community of {} vertices (γ={gamma:.2}, {:.2} ms):",
        community.len(),
        t0.elapsed().as_secs_f64() * 1e3
    );
    let rendered: Vec<String> = community.iter().map(ToString::to_string).collect();
    println!("{}", rendered.join(" "));
    Ok(())
}

fn cmd_evaluate(opts: &Options) -> Result<(), String> {
    let data = io::load_dataset(opts.required("data")?).map_err(|e| e.to_string())?;
    let queries = io::load_queries(opts.required("queries")?).map_err(|e| e.to_string())?;
    let (train, val, test) = split_spec(opts, queries.len())?;
    let split = QuerySplit::new(queries, train, val, test);
    let (model, tensors, gamma) = load_trained(opts, &data)?;
    let metrics = evaluate(model.as_ref(), &tensors, &split.test, gamma);
    println!(
        "{} on {} ({} test queries, γ={gamma:.2}): precision {:.3}  recall {:.3}  F1 {:.3}",
        model.name(),
        data.name,
        split.test.len(),
        metrics.precision,
        metrics.recall,
        metrics.f1
    );
    Ok(())
}
