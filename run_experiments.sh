#!/bin/bash
# Runs the full experiment campaign at the fast profile (single-core box).
# Tables land in results/logs/<name>.txt, CSVs in results/, and each
# binary's obs event stream in results/logs/<name>.jsonl (the
# qdgnn-obs-validate / qdgnn-obs-flame input format).
cd /root/repo
BIN=target/release
mkdir -p results/logs
run() {
  name=$1; bin=$2; shift 2
  start=$SECONDS
  "$BIN/$bin" "$@" --metrics-out results/logs/$name.jsonl \
    > results/logs/$name.txt 2> results/logs/$name.err
  rc=$?
  echo "=== $name done rc=$rc in $((SECONDS-start))s ==="
}
run datasets datasets --profile fast
run fig6   fig6   --profile fast
run fig7a  fig7a  --profile fast
run fig7b  fig7b  --profile fast
run table2 table2 --profile fast
run table3 table3 --profile fast
run fig8a  fig8a  --profile fast
run fig8b  fig8b  --profile fast
run fig10  fig10  --profile fast --datasets FB-414,FB-686
run fig9   fig9   --profile fast --datasets FB-414,FB-686
run table4 table4 --profile fast
echo ALL_DONE
