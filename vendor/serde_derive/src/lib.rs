//! No-op `Serialize`/`Deserialize` derive macros for the vendored serde
//! shim. The workspace annotates types with these derives (and inert
//! `#[serde(...)]` helper attributes) but never serializes through a
//! format crate, so the derives only need to be *accepted*, not to emit
//! trait implementations.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and its `#[serde(...)]` helpers.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and its `#[serde(...)]` helpers.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
