//! Vendored, dependency-free subset of the `crossbeam` 0.8 API.
//!
//! Only [`thread::scope`] is provided, implemented on top of
//! `std::thread::scope` (stable since Rust 1.63). Matching crossbeam's
//! contract, a panicking child thread does not abort the process: the
//! panic payload is captured and surfaced as the scope's `Err` value.

pub mod thread {
    //! Scoped threads with crossbeam's error-reporting contract.

    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Result of a scope: `Err` carries the payload of a panicked child.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// Handle passed to the scope closure; spawns scoped worker threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope handle
        /// (crossbeam's signature), enabling nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which spawned threads are joined before
    /// `scope` returns. Returns `Err` when any child panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| std::thread::scope(|s| f(&Scope { inner: s }))))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let counter = AtomicUsize::new(0);
        let out = crate::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert!(out.is_ok());
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn child_panic_becomes_err() {
        let out = crate::thread::scope(|scope| {
            scope.spawn(|_| panic!("child down"));
        });
        assert!(out.is_err());
    }
}
