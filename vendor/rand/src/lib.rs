//! Vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements exactly the surface the workspace uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], the [`Rng`] extension
//! methods (`gen`, `gen_range`, `gen_bool`), and
//! [`seq::SliceRandom`] (`shuffle`, `choose`, `choose_multiple`).
//!
//! The generator is xoshiro256** seeded through SplitMix64 — high-quality
//! and deterministic, though its streams differ from upstream `rand`'s
//! ChaCha-based `StdRng`. Every consumer in this workspace treats the RNG
//! as an opaque deterministic source, so only self-consistency matters.

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Values that can be drawn uniformly from an `RngCore` (the subset of
/// `rand`'s `Standard` distribution the workspace uses).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A type that can be sampled uniformly from a half-open or inclusive
/// range (the subset of `rand`'s `SampleUniform` the workspace uses).
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                lo + (rng.next_u64() as u128 % span) as $t
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_uniform_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded through SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of
            // state; guarantees a non-zero state vector.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related helpers (`shuffle`, `choose`, `choose_multiple`).

    use super::{Rng, RngCore};

    /// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements in random order (fewer when the
        /// slice is shorter than `amount`).
        fn choose_multiple<R: RngCore>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: RngCore>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index vector.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            idx[..amount].iter().map(|&i| &self[i]).collect::<Vec<_>>().into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-1.5f32..=1.5);
            assert!((-1.5..=1.5).contains(&w));
            let z = rng.gen_range(5u64..6);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn shuffle_and_choose_are_permutations() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let picked: Vec<u32> = v.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let mut uniq = picked.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 10, "choose_multiple must return distinct elements");
    }
}
