//! Vendored, dependency-free subset of the `criterion` API.
//!
//! Provides the types and macros the workspace's benches use
//! ([`Criterion::benchmark_group`], `sample_size`, `measurement_time`,
//! `bench_function`, [`Bencher::iter`], [`criterion_group!`],
//! [`criterion_main!`]). Measurement is a simple warmup + timed-batch
//! mean/min report — no statistics engine, no HTML output.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
        }
    }

    /// Runs a single benchmark outside a group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(name, 100, Duration::from_secs(5), f);
        self
    }
}

/// A named set of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, self.sample_size, self.measurement_time, f);
        self
    }

    /// Ends the group (reports are printed as benchmarks run).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs and times the workload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `f`, collecting up to `sample_size` samples within the
    /// measurement budget.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warmup (also primes caches/allocators).
        black_box(f());
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            if budget.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

fn run_bench(name: &str, sample_size: usize, measurement_time: Duration, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher { samples: Vec::new(), sample_size, measurement_time };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {name}: no samples collected");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    println!("  {name}: mean {mean:?}, min {min:?} ({} samples)", b.samples.len());
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5).measurement_time(Duration::from_millis(50));
        let mut ran = 0u32;
        group.bench_function("noop", |b| {
            b.iter(|| ran += 1);
        });
        group.finish();
        assert!(ran > 0);
    }
}
