//! Vendored, dependency-free subset of the `proptest` API.
//!
//! Implements exactly what the workspace's property tests use: the
//! [`proptest!`] macro with a `#![proptest_config(...)]` header, range
//! and tuple strategies, [`collection::vec`], [`bool::ANY`],
//! `prop_map`/`prop_flat_map`, and the `prop_assert*`/`prop_assume!`
//! macros. Failing cases report their seed; there is no shrinking.
//!
//! Determinism: each test function derives its base seed from its own
//! name, so runs are reproducible without an environment variable, and
//! every case perturbs the seed with a fixed odd constant.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod test_runner {
    //! Runner configuration and the per-case error type.

    /// Subset of proptest's runner configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// An assertion failed — the whole test fails.
        Fail(String),
        /// `prop_assume!` rejected the inputs — the case is retried.
        Reject(String),
    }
}

/// The RNG handed to strategies (deterministic, seeded per case).
pub type TestRng = StdRng;

/// Derives a stable 64-bit seed from a test name (FNV-1a).
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Builds the RNG for one case.
pub fn rng_for(seed: u64) -> TestRng {
    StdRng::seed_from_u64(seed)
}

/// A generator of random values (no shrinking in this shim).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then generates from the strategy
    /// `f` builds out of it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rand::Rng::gen_range(rng, self.start..self.end)
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rand::Rng::gen_range(rng, *self.start()..=*self.end())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// A strategy producing a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange { lo: exact, hi: exact }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length lies within `size` (a `usize`, range, or inclusive range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rand::Rng::gen_range(rng, self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::{Strategy, TestRng};

    /// Strategy generating uniform booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniformly random `bool`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rand::Rng::gen::<u64>(rng) & 1 == 1
        }
    }
}

/// Defines property tests. Supports the form used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///
///     #[test]
///     fn my_property(x in 0u32..100, (a, b) in pair_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut passed = 0u32;
                let mut attempts = 0u32;
                let max_attempts = config.cases.saturating_mul(20).max(200);
                let mut case_seed = $crate::seed_for(stringify!($name));
                while passed < config.cases {
                    assert!(
                        attempts < max_attempts,
                        "proptest: too many rejected cases ({attempts} attempts for {} passes)",
                        passed
                    );
                    attempts += 1;
                    case_seed = case_seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    let mut proptest_rng = $crate::rng_for(case_seed);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut proptest_rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest case failed (seed {case_seed:#x}): {msg}")
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case (without aborting the process) when `cond` is
/// false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case when `left != right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Rejects the current case (it is regenerated, not counted) when `cond`
/// is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*` usage.

    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{Just, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn even(limit: u32) -> impl Strategy<Value = u32> {
        (0..limit).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u32..10, y in -1.0f32..=1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-1.0..=1.0).contains(&y));
        }

        #[test]
        fn maps_and_tuples((a, b) in (0u32..4, 0u32..4), e in even(50)) {
            prop_assert!(a < 4 && b < 4);
            prop_assert_eq!(e % 2, 0);
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0u8..5, 2..=6), flag in crate::bool::ANY) {
            prop_assert!(v.len() >= 2 && v.len() <= 6);
            let _ = flag;
        }

        #[test]
        fn assume_rejects(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
