//! Vendored, dependency-free subset of the `parking_lot` 0.12 API.
//!
//! Wraps `std::sync` primitives while keeping parking_lot's ergonomics:
//! `lock()` returns the guard directly (no `Result`), and poisoning is
//! transparently ignored — a panicked critical section does not poison
//! the lock for later users, matching parking_lot semantics.
//!
//! # The `lockcheck` feature
//!
//! With `--features lockcheck`, every `Mutex`/`RwLock` is lazily
//! assigned a site id on first acquisition, each thread tracks its
//! held-lock set in TLS, and a process-global acquired-after graph
//! records every "lock B taken while holding lock A" edge together with
//! both acquisition sites (`#[track_caller]` locations). The first
//! acquisition that would close a cycle in that graph panics — *before*
//! blocking on the inner lock — naming the current site and the site
//! where the opposite order was established. A lock-order inversion is
//! therefore detected deterministically on first occurrence, without
//! needing the two threads to actually interleave into a deadlock.
//! This is the runtime twin of the static QD010 rule in
//! `qdgnn-analyze`; the serve concurrency suites run with it armed in
//! CI (`cargo test -p qdgnn-serve --features chaos,sanitize,lockcheck`).

use std::mem::ManuallyDrop;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

#[cfg(feature = "lockcheck")]
use std::sync::atomic::AtomicU32;

#[cfg(feature = "lockcheck")]
pub mod lockcheck;

/// A mutual-exclusion primitive with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "lockcheck")]
    id: AtomicU32,
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    #[cfg(feature = "lockcheck")]
    id: u32,
    /// `ManuallyDrop` so [`Condvar::wait_for`] can temporarily move the
    /// std guard out (the wait consumes and returns it) and so the
    /// lockcheck release hook can run after the actual unlock.
    inner: ManuallyDrop<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Safety: `inner` is never used again; `wait_for` always
        // restores it before returning.
        unsafe { ManuallyDrop::drop(&mut self.inner) };
        #[cfg(feature = "lockcheck")]
        lockcheck::on_release(self.id);
    }
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            #[cfg(feature = "lockcheck")]
            id: AtomicU32::new(0),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never panics on
    /// poisoning — the guard of a panicked holder is recovered. Under
    /// `lockcheck`, panics instead of blocking when this acquisition
    /// would invert an established lock order.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "lockcheck")]
        let id = lockcheck::before_acquire(&self.id);
        let inner =
            ManuallyDrop::new(self.inner.lock().unwrap_or_else(PoisonError::into_inner));
        MutexGuard {
            #[cfg(feature = "lockcheck")]
            id,
            inner,
        }
    }

    /// Attempts to acquire the lock without blocking. Under `lockcheck`
    /// a successful try still records (and checks) the ordering edge:
    /// try-locks cannot deadlock by themselves, but an inverted order
    /// observed through one is the same latent bug.
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(feature = "lockcheck")]
        let id = lockcheck::before_acquire(&self.id);
        Some(MutexGuard {
            #[cfg(feature = "lockcheck")]
            id,
            inner: ManuallyDrop::new(inner),
        })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "lockcheck")]
    id: AtomicU32,
    inner: std::sync::RwLock<T>,
}

/// Shared read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg(feature = "lockcheck")]
    id: u32,
    inner: ManuallyDrop<std::sync::RwLockReadGuard<'a, T>>,
}

/// Exclusive write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(feature = "lockcheck")]
    id: u32,
    inner: ManuallyDrop<std::sync::RwLockWriteGuard<'a, T>>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        unsafe { ManuallyDrop::drop(&mut self.inner) };
        #[cfg(feature = "lockcheck")]
        lockcheck::on_release(self.id);
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        unsafe { ManuallyDrop::drop(&mut self.inner) };
        #[cfg(feature = "lockcheck")]
        lockcheck::on_release(self.id);
    }
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            #[cfg(feature = "lockcheck")]
            id: AtomicU32::new(0),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "lockcheck")]
        let id = lockcheck::before_acquire(&self.id);
        RwLockReadGuard {
            #[cfg(feature = "lockcheck")]
            id,
            inner: ManuallyDrop::new(
                self.inner.read().unwrap_or_else(PoisonError::into_inner),
            ),
        }
    }

    /// Acquires an exclusive write lock.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "lockcheck")]
        let id = lockcheck::before_acquire(&self.id);
        RwLockWriteGuard {
            #[cfg(feature = "lockcheck")]
            id,
            inner: ManuallyDrop::new(
                self.inner.write().unwrap_or_else(PoisonError::into_inner),
            ),
        }
    }
}

/// Result of a bounded [`Condvar::wait_for`]: did the wait time out?
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` when the wait returned because the timeout elapsed rather
    /// than a notification.
    pub fn timed_out(self) -> bool {
        self.0
    }
}

/// A condition variable usable with this crate's [`MutexGuard`],
/// mirroring parking_lot's `&mut guard` API: the wait atomically
/// releases the mutex while blocked and reacquires it before returning,
/// with the guard usable again afterwards.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Waits on this condition for at most `timeout`, releasing the
    /// guard's mutex while blocked. Spurious wakeups are possible, as
    /// with any condvar. Under `lockcheck` the lock stays in the
    /// thread's held set across the wait: conservatively, an order
    /// violation on reacquire is indistinguishable from one on a plain
    /// `lock()`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        // Safety: the std guard is moved out only for the duration of
        // the wait and unconditionally restored below; `wait_timeout`
        // returns the guard even on poisoning.
        let inner = unsafe { ManuallyDrop::take(&mut guard.inner) };
        let (inner, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = ManuallyDrop::new(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every waiting thread.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn panicked_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(0u32);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wait_for_times_out_and_returns_guard_usable() {
        let m = Mutex::new(7u32);
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
        *g += 1;
        drop(g);
        assert_eq!(*m.lock(), 8);
    }

    #[test]
    fn condvar_notification_crosses_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        let mut rounds = 0;
        while !*done && rounds < 1000 {
            cv.wait_for(&mut done, Duration::from_millis(10));
            rounds += 1;
        }
        assert!(*done, "notification must arrive");
        drop(done);
        t.join().expect("notifier thread");
    }
}
