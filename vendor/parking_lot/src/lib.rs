//! Vendored, dependency-free subset of the `parking_lot` 0.12 API.
//!
//! Wraps `std::sync` primitives while keeping parking_lot's ergonomics:
//! `lock()` returns the guard directly (no `Result`), and poisoning is
//! transparently ignored — a panicked critical section does not poison
//! the lock for later users, matching parking_lot semantics.

use std::sync::PoisonError;

/// A mutual-exclusion primitive with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never panics on
    /// poisoning — the guard of a panicked holder is recovered.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn panicked_holder_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
