//! Runtime lock-order checking (the `lockcheck` feature).
//!
//! Every lock is lazily assigned a small integer id on first
//! acquisition. Each thread keeps its held-lock set in TLS; a global
//! registry accumulates the *acquired-after* graph — an edge `A → B`
//! means some thread acquired `B` while holding `A`, recorded with both
//! `#[track_caller]` sites. Before an acquisition blocks, the would-be
//! new edges are checked against the graph: if `B` already reaches `A`,
//! the two orders form a cycle and the acquisition panics, naming the
//! current site and the previously recorded opposite-order site. The
//! check is ordering-based, not wait-for-based: an inversion is caught
//! the first time either order executes, on a single thread, without
//! the actual deadlock interleaving.
//!
//! The registry's own mutex is a leaf: no user lock is ever acquired
//! while it is held, so the checker cannot deadlock the program it
//! watches.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::Location;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Id source; 0 is reserved for "not yet assigned".
static NEXT_ID: AtomicU32 = AtomicU32::new(1);

type Site = &'static Location<'static>;

/// The global acquired-after graph.
#[derive(Default)]
struct Registry {
    /// `(held, acquired)` → (site holding `held`, site acquiring
    /// `acquired`): the first observation of each ordering edge.
    edges: HashMap<(u32, u32), (Site, Site)>,
    /// Adjacency of the edge relation, for reachability.
    adj: HashMap<u32, Vec<u32>>,
}

impl Registry {
    /// Is `to` reachable from `from` through recorded edges?
    fn reaches(&self, from: u32, to: u32) -> bool {
        let mut stack = vec![from];
        let mut seen = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            for &next in self.adj.get(&n).map(Vec::as_slice).unwrap_or(&[]) {
                if !seen.contains(&next) {
                    seen.push(next);
                    stack.push(next);
                }
            }
        }
        false
    }
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

thread_local! {
    /// Locks this thread currently holds, in acquisition order, with
    /// the site of each acquisition.
    static HELD: RefCell<Vec<(u32, Site)>> = const { RefCell::new(Vec::new()) };
}

/// Returns the lock's id, assigning one on first use.
fn site_id(slot: &AtomicU32) -> u32 {
    let id = slot.load(Ordering::Relaxed);
    if id != 0 {
        return id;
    }
    let fresh = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    match slot.compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => fresh,
        Err(raced) => raced,
    }
}

/// Called by every `lock()`/`read()`/`write()`/`try_lock()` *before*
/// blocking on the inner primitive: records the acquired-after edges
/// from every currently-held lock, panicking on the first edge that
/// closes a cycle. Returns the lock's id for the guard to release.
#[track_caller]
pub(crate) fn before_acquire(slot: &AtomicU32) -> u32 {
    let id = site_id(slot);
    let site: Site = Location::caller();
    HELD.with(|held| {
        let snapshot: Vec<(u32, Site)> = held.borrow().clone();
        if !snapshot.is_empty() {
            let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
            for &(held_id, held_site) in &snapshot {
                if held_id == id {
                    // Reentrant same-lock acquisition (shared RwLock
                    // reads): not an ordering edge.
                    continue;
                }
                if reg.reaches(id, held_id) {
                    let opposite = reg
                        .edges
                        .get(&(id, held_id))
                        .map(|(h, a)| {
                            format!(
                                "the opposite order was established at {a} (lock #{held_id} acquired while holding lock #{id}, held since {h})"
                            )
                        })
                        .unwrap_or_else(|| {
                            format!(
                                "lock #{id} already reaches lock #{held_id} through recorded intermediate acquisitions"
                            )
                        });
                    panic!(
                        "lockcheck: lock-order inversion: acquiring lock #{id} at {site} \
                         while holding lock #{held_id} (acquired at {held_site}), but {opposite} \
                         — two threads interleaving these orders deadlock"
                    );
                }
                let reg = &mut *reg;
                reg.edges.entry((held_id, id)).or_insert((held_site, site));
                let out = reg.adj.entry(held_id).or_default();
                if !out.contains(&id) {
                    out.push(id);
                }
            }
        }
        held.borrow_mut().push((id, site));
    });
    id
}

/// Called by guard `Drop` after the inner unlock: removes the most
/// recent entry for `id` from the thread's held set (most recent,
/// because shared RwLock reads can nest the same id).
pub(crate) fn on_release(id: u32) {
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(pos) = held.iter().rposition(|&(h, _)| h == id) {
            held.remove(pos);
        }
    });
}

#[cfg(test)]
mod tests {
    use crate::{Mutex, RwLock};

    // Lock ids and the acquired-after graph are process-global, so each
    // test uses its own fresh locks; inversions seeded here cannot
    // collide with other tests' edges.

    #[test]
    fn consistent_order_is_silent() {
        let a = Mutex::new(0u32);
        let b = Mutex::new(0u32);
        for _ in 0..3 {
            let ga = a.lock();
            let gb = b.lock();
            drop(gb);
            drop(ga);
        }
    }

    #[test]
    fn seeded_inversion_panics_with_both_sites() {
        let a = std::sync::Arc::new(Mutex::new(0u32));
        let b = std::sync::Arc::new(Mutex::new(0u32));
        // Thread 1 establishes a → b.
        {
            let (a, b) = (std::sync::Arc::clone(&a), std::sync::Arc::clone(&b));
            std::thread::spawn(move || {
                let _ga = a.lock();
                let _gb = b.lock();
            })
            .join()
            .expect("establishing order a → b must succeed");
        }
        // Thread 2 attempts b → a: must panic deterministically, before
        // any blocking, with both acquisition sites in the message.
        let err = std::thread::spawn(move || {
            let _gb = b.lock();
            let _ga = a.lock();
        })
        .join()
        .expect_err("inverted order must panic under lockcheck");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload is a string");
        assert!(msg.contains("lock-order inversion"), "{msg}");
        assert!(
            msg.contains("the opposite order was established at"),
            "must carry the prior acquisition site: {msg}"
        );
        // Both sites are in this file.
        assert!(msg.matches("lockcheck.rs").count() >= 2, "both sites named: {msg}");
    }

    #[test]
    fn rwlock_participates_in_ordering() {
        let a = std::sync::Arc::new(RwLock::new(0u32));
        let b = std::sync::Arc::new(Mutex::new(0u32));
        {
            let (a, b) = (std::sync::Arc::clone(&a), std::sync::Arc::clone(&b));
            std::thread::spawn(move || {
                let _ga = a.read();
                let _gb = b.lock();
            })
            .join()
            .expect("establishing order must succeed");
        }
        let err = std::thread::spawn(move || {
            let _gb = b.lock();
            let _ga = a.write();
        })
        .join()
        .expect_err("rwlock inversion must panic");
        drop(err);
    }

    #[test]
    fn release_unwinds_held_set() {
        let a = Mutex::new(0u32);
        let b = Mutex::new(0u32);
        // a then b, released, then b alone, then a alone: no inversion —
        // the edge a → b exists but b is never taken while a is held in
        // the other order.
        let ga = a.lock();
        let gb = b.lock();
        drop(gb);
        drop(ga);
        let gb = b.lock();
        drop(gb);
        let ga = a.lock();
        drop(ga);
    }

    #[test]
    fn reentrant_rwlock_reads_are_not_edges() {
        let l = RwLock::new(0u32);
        let g1 = l.read();
        let g2 = l.read();
        drop(g2);
        drop(g1);
    }
}
