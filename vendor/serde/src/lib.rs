//! Vendored stub of the `serde` facade.
//!
//! The workspace derives `Serialize`/`Deserialize` on a few config
//! structs but has no format crate (serde_json etc.), so nothing ever
//! calls the traits. This stub provides the two marker traits and no-op
//! derive macros so those annotations keep compiling offline.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
