//! Behavioural tests of the model layer: checkpointing, trait-object
//! training, parameter accounting, and fusion wiring.

use rand::rngs::StdRng;
use rand::SeedableRng;

use qdgnn_core::config::{FusionAgg, ModelConfig};
use qdgnn_core::inputs::{GraphTensors, QueryVectors};
use qdgnn_core::models::{predict_scores, AqdGnn, CsModel, QdGnn, SimpleQdGnn};
use qdgnn_core::train::{TrainConfig, Trainer};
use qdgnn_data::{presets, queries as qgen, AttrMode, QuerySplit};
use qdgnn_graph::attributed::AdjNorm;
use qdgnn_nn::Mode;
use qdgnn_tensor::Tape;

fn setup() -> (GraphTensors, qdgnn_data::Dataset) {
    let data = presets::toy();
    let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
    (t, data)
}

#[test]
fn checkpoint_restores_exact_predictions_after_further_training() {
    let (t, data) = setup();
    let queries = qgen::generate(&data, 40, 1, 2, AttrMode::Empty, 4);
    let split = QuerySplit::new(queries, 20, 10, 10);
    let mut model = QdGnn::new(ModelConfig::fast(), t.d);
    let q = QueryVectors::encode(t.n, t.d, &[0], &[]);

    let ckpt = model.checkpoint();
    let before = predict_scores(&model, &t, &q);

    // Train a bit (mutates parameters and BN running stats).
    let trained = Trainer::new(TrainConfig { epochs: 4, ..TrainConfig::fast() }).train(
        model,
        &t,
        &split.train,
        &split.val,
    );
    model = trained.model;
    let after_training = predict_scores(&model, &t, &q);
    assert_ne!(before, after_training, "training must change predictions");

    model.restore(&ckpt);
    let restored = predict_scores(&model, &t, &q);
    assert_eq!(before, restored, "restore must be exact");
}

#[test]
fn boxed_trait_object_trains_like_concrete_model() {
    let (t, data) = setup();
    let queries = qgen::generate(&data, 40, 1, 2, AttrMode::FromCommunity, 9);
    let split = QuerySplit::new(queries, 20, 10, 10);
    let cfg = TrainConfig { epochs: 5, ..TrainConfig::fast() };

    let concrete = Trainer::new(cfg.clone()).train(
        AqdGnn::new(ModelConfig::fast(), t.d),
        &t,
        &split.train,
        &split.val,
    );
    let boxed: Box<dyn CsModel> = Box::new(AqdGnn::new(ModelConfig::fast(), t.d));
    let boxed = Trainer::new(cfg).train(boxed, &t, &split.train, &split.val);

    assert_eq!(concrete.report.loss_history, boxed.report.loss_history);
    assert_eq!(concrete.gamma, boxed.gamma);
    assert!(boxed.model.uses_attributes());
}

#[test]
fn parameter_counts_match_architecture() {
    let (t, _) = setup();
    let h = 32;
    let cfg = ModelConfig { hidden: h, layers: 3, ..ModelConfig::fast() };
    let d = t.d;

    // Simple QD-GNN: per layer w_self + w_agg + b_agg (+2 BN params for
    // the 2 hidden layers), plus the 2-param output head.
    let simple = SimpleQdGnn::new(cfg.clone());
    assert_eq!(simple.store().len(), 3 * 3 + 2 * 2 + 2);

    // QD-GNN: two branches.
    let qd = QdGnn::new(cfg.clone(), d);
    assert_eq!(qd.store().len(), 2 * (3 * 3) + 2 * (2 * 2) + 2);

    // AQD-GNN: + A→N layers (2 params each, no self) and 2 N→A layers
    // (3 params each), + one more BN pair per hidden layer.
    let aqd = AqdGnn::new(cfg.clone(), d);
    let expected = 2 * (3 * 3)      // q, g branches
        + 3 * (2 * 2)               // BN γ/β for 3 branches × 2 hidden layers
        + 3 * 2                     // A→N layers (w_agg + b_agg)
        + 2 * 3                     // N→A layers (w_self + w_agg + b_agg)
        + 2; // output head
    assert_eq!(aqd.store().len(), expected);

    // Scalar counts grow with the vocabulary only in first-layer weights.
    let qd_scalars = qd.store().num_scalars();
    let qd_bigger = QdGnn::new(cfg, d + 10);
    assert_eq!(
        qd_bigger.store().num_scalars() - qd_scalars,
        10 * h * 2, // graph-encoder layer-1 w_self and w_agg
    );
}

#[test]
fn fusion_wiring_feeds_queries_through_attributes() {
    // With feature fusion ON, changing the query *vertex* must change the
    // attribute-encoder-dependent output even for a fixed attribute set —
    // because fused features flow into the Attribute Encoder (Eq. 12).
    let (t, data) = setup();
    let model = AqdGnn::new(ModelConfig::fast(), t.d);
    let attrs = data.graph.most_common_attrs(&data.communities[0], 3);
    let s1 = predict_scores(&model, &t, &QueryVectors::encode(t.n, t.d, &[0], &attrs));
    let s2 = predict_scores(&model, &t, &QueryVectors::encode(t.n, t.d, &[5], &attrs));
    assert_ne!(s1, s2);
}

#[test]
fn sum_fusion_trains_end_to_end() {
    let (t, data) = setup();
    let queries = qgen::generate(&data, 30, 1, 2, AttrMode::FromCommunity, 2);
    let split = QuerySplit::new(queries, 15, 8, 7);
    let cfg = ModelConfig { fusion: FusionAgg::Sum, ..ModelConfig::fast() };
    let trained = Trainer::new(TrainConfig { epochs: 10, ..TrainConfig::fast() }).train(
        AqdGnn::new(cfg, t.d),
        &t,
        &split.train,
        &split.val,
    );
    let m = qdgnn_core::train::evaluate(&trained.model, &t, &split.test, trained.gamma);
    assert!(m.f1 > 0.0, "sum-fusion variant must still learn something");
}

#[test]
fn train_and_eval_modes_differ_only_through_bn_and_dropout() {
    let (t, _) = setup();
    // With dropout 0 and fresh BN (running stats = identity-ish), train
    // and eval modes still differ because train mode uses batch stats.
    let cfg = ModelConfig { dropout: 0.0, ..ModelConfig::fast() };
    let model = QdGnn::new(cfg, t.d);
    let q = QueryVectors::encode(t.n, t.d, &[1], &[]);
    let mut rng = StdRng::seed_from_u64(0);

    let mut tape = Tape::new();
    let train_out = model.forward(&mut tape, &t, &q, Mode::Train, &mut rng);
    let train_logits = tape.value(train_out.logits).clone();
    assert!(!train_out.bn_stats.is_empty());

    let mut tape = Tape::new();
    let eval_out = model.forward(&mut tape, &t, &q, Mode::Eval, &mut rng);
    assert!(eval_out.bn_stats.is_empty());
    let eval_logits = tape.value(eval_out.logits).clone();
    assert_ne!(
        train_logits.as_slice(),
        eval_logits.as_slice(),
        "batch statistics differ from fresh running statistics"
    );
}

#[test]
fn two_layer_and_four_layer_variants_run() {
    let (t, _) = setup();
    for layers in [2usize, 4] {
        let cfg = ModelConfig { layers, ..ModelConfig::fast() };
        let model = AqdGnn::new(cfg, t.d);
        let q = QueryVectors::encode(t.n, t.d, &[0], &[1]);
        let scores = predict_scores(&model, &t, &q);
        assert_eq!(scores.len(), t.n, "k={layers} forward must work");
        assert_eq!(model.bns().len(), 3 * (layers - 1));
    }
}
