//! Batched inference must be bit-identical to sequential inference.
//!
//! The batched path stacks `K` encoded queries vertically and runs one
//! forward pass; every eval-mode op it uses is per-row except `spmm`,
//! whose blocked variant applies the same adjacency to each row block.
//! These tests pin the resulting guarantee — per-query scores from
//! `predict_scores_batch` carry the exact bits of `predict_scores` /
//! `predict_scores_cached` — across all three models, cached and
//! uncached, for fixed and property-sampled batch sizes including K=1.

use std::sync::Arc;

use proptest::prelude::*;

use qdgnn_core::config::ModelConfig;
use qdgnn_core::inputs::{GraphTensors, QueryBatch, QueryVectors};
use qdgnn_core::models::{
    predict_scores, predict_scores_batch, predict_scores_cached, AqdGnn, CsModel, QdGnn,
    SimpleQdGnn,
};
use qdgnn_core::{OnlineStage, TrainConfig, Trainer};
use qdgnn_data::{presets, queries as qgen, AttrMode, Query, QuerySplit};
use qdgnn_graph::attributed::AdjNorm;
use qdgnn_graph::CommunityMetrics;

fn setup() -> (GraphTensors, Vec<Query>) {
    let data = presets::toy();
    let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
    let queries = qgen::generate(&data, 32, 1, 3, AttrMode::FromCommunity, 11);
    (t, queries)
}

fn models(d: usize) -> Vec<Box<dyn CsModel>> {
    vec![
        Box::new(SimpleQdGnn::new(ModelConfig::fast())),
        Box::new(QdGnn::new(ModelConfig::fast(), d)),
        Box::new(AqdGnn::new(ModelConfig::fast(), d)),
    ]
}

fn encode_all(model: &dyn CsModel, t: &GraphTensors, queries: &[Query]) -> Vec<QueryVectors> {
    queries
        .iter()
        .map(|q| {
            let attrs: &[u32] = if model.uses_attributes() { &q.attrs } else { &[] };
            QueryVectors::try_encode(t.n, t.d, &q.vertices, attrs).expect("generated query encodes")
        })
        .collect()
}

/// Asserts `predict_scores_batch` == sequential scoring, bit for bit,
/// for the given queries, with and without the graph cache.
fn assert_batch_matches_sequential(model: &dyn CsModel, t: &GraphTensors, queries: &[Query]) {
    let vectors = encode_all(model, t, queries);
    let batch = QueryBatch::try_stack(&vectors).expect("same-graph vectors stack");
    let cache = model.build_graph_cache(t);

    let batched_uncached = predict_scores_batch(model, t, None, &batch);
    assert_eq!(batched_uncached.len(), queries.len());
    for (qv, got) in vectors.iter().zip(&batched_uncached) {
        let want = predict_scores(model, t, qv);
        assert_eq!(
            want.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            got.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            "{}: uncached batch diverged from sequential",
            model.name()
        );
    }

    if let Some(cache) = cache {
        let batched_cached = predict_scores_batch(model, t, Some(&cache), &batch);
        for (qv, got) in vectors.iter().zip(&batched_cached) {
            let want = predict_scores_cached(model, t, &cache, qv);
            assert_eq!(
                want.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                got.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                "{}: cached batch diverged from sequential",
                model.name()
            );
        }
    }
}

#[test]
fn all_models_are_bit_identical_at_fixed_batch_sizes() {
    let (t, queries) = setup();
    for model in models(t.d) {
        for k in [1usize, 2, 5, 8] {
            assert_batch_matches_sequential(model.as_ref(), &t, &queries[..k]);
        }
    }
}

#[test]
fn trained_weights_preserve_bit_identity() {
    // Random init exercises the math, but serving happens on trained
    // weights — BN running stats and a selected γ included.
    let (t, queries) = setup();
    let split = QuerySplit::new(queries, 16, 8, 8);
    let trained = Trainer::new(TrainConfig { epochs: 5, ..TrainConfig::fast() }).train(
        AqdGnn::new(ModelConfig::fast(), t.d),
        &t,
        &split.train,
        &split.val,
    );
    assert_batch_matches_sequential(&trained.model, &t, &split.test);
}

#[test]
fn evaluate_through_batched_path_reproduces_sequential_f1() {
    // `OnlineStage::evaluate` now scores through try_query_batch in
    // chunks; the micro-F1 must carry the exact value of the sequential
    // path (scores are bit-identical, so communities are equal).
    let (t, queries) = setup();
    let split = QuerySplit::new(queries, 16, 8, 8);
    let trained = Trainer::new(TrainConfig { epochs: 5, ..TrainConfig::fast() }).train(
        AqdGnn::new(ModelConfig::fast(), t.d),
        &t,
        &split.train,
        &split.val,
    );
    let stage = OnlineStage::new(&trained.model, &t, trained.gamma);
    let batched = stage.evaluate(&split.test);

    let predicted: Vec<Vec<_>> = split
        .test
        .iter()
        .map(|q| stage.try_query(q).expect("test query is valid"))
        .collect();
    let truth: Vec<Vec<_>> = split.test.iter().map(|q| q.truth.clone()).collect();
    let sequential = CommunityMetrics::micro(&predicted, &truth);
    assert_eq!(batched.f1.to_bits(), sequential.f1.to_bits());
    assert_eq!(batched.precision.to_bits(), sequential.precision.to_bits());
    assert_eq!(batched.recall.to_bits(), sequential.recall.to_bits());
}

#[test]
fn chunked_evaluate_crosses_chunk_boundaries_cleanly() {
    // A query set larger than EVAL_CHUNK forces multiple batches.
    let data = presets::toy();
    let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
    let queries = qgen::generate(&data, OnlineStage::EVAL_CHUNK + 7, 1, 2, AttrMode::Empty, 3);
    let model = QdGnn::new(ModelConfig::fast(), t.d);
    let stage = OnlineStage::new(&model, &t, 0.5);
    let m = stage.evaluate(&queries);
    assert!((0.0..=1.0).contains(&m.f1));
}

#[test]
fn shared_stage_batches_identically_to_borrowed() {
    let (t, queries) = setup();
    let model = AqdGnn::new(ModelConfig::fast(), t.d);
    let borrowed = OnlineStage::new(&model, &t, 0.5);
    let want: Vec<_> = borrowed.try_scores_batch(&queries[..6]);

    let t2 = {
        let data = presets::toy();
        GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100)
    };
    let shared = OnlineStage::new_shared(Arc::new(model), Arc::new(t2), 0.5);
    let got = shared.try_scores_batch(&queries[..6]);
    for (w, g) in want.iter().zip(&got) {
        let (w, g) = (w.as_ref().expect("valid"), g.as_ref().expect("valid"));
        assert_eq!(
            w.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            g.iter().map(|s| s.to_bits()).collect::<Vec<_>>()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_batch_sizes_stay_bit_identical(k in 1usize..12, offset in 0usize..20, seed in 0u64..1000) {
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
        let queries = qgen::generate(&data, 32, 1, 3, AttrMode::FromCommunity, seed);
        let end = (offset + k).min(queries.len());
        let slice = &queries[offset.min(queries.len() - 1)..end.max(offset.min(queries.len() - 1) + 1)];
        let model = AqdGnn::new(ModelConfig::fast(), t.d);
        assert_batch_matches_sequential(&model, &t, slice);
    }

    #[test]
    fn random_batch_sizes_without_attributes(k in 1usize..10, seed in 0u64..1000) {
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
        let queries = qgen::generate(&data, 16, 1, 2, AttrMode::Empty, seed);
        let model = QdGnn::new(ModelConfig::fast(), t.d);
        assert_batch_matches_sequential(&model, &t, &queries[..k.min(queries.len())]);
    }
}
