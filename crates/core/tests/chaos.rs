//! Chaos suite: drives the fault-injection harness (`faultless`) against
//! the training loop, persistence and serving, proving the system
//! degrades gracefully — poisoned steps are skipped, NaN epochs roll
//! back, damaged files are rejected with `InvalidData`, malformed
//! queries return typed errors, and nothing ever panics.
//!
//! Compiled only with `--features chaos`.
#![cfg(feature = "chaos")]

use std::sync::{Mutex, MutexGuard, OnceLock};

use qdgnn_core::config::ModelConfig;
use qdgnn_core::faultless::{self, GradFault};
use qdgnn_core::inputs::GraphTensors;
use qdgnn_core::models::QdGnn;
use qdgnn_core::persist::{load_model, save_model};
use qdgnn_core::serve::OnlineStage;
use qdgnn_core::train::{evaluate, TrainConfig, Trainer};
use qdgnn_core::QdgnnError;
use qdgnn_data::{presets, queries as qgen, AttrMode, Query, QuerySplit};
use qdgnn_graph::attributed::AdjNorm;

/// The fault registry is process-global, so tests that train must not
/// interleave: each takes this lock and starts from a clean registry.
fn chaos_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    faultless::clear();
    guard
}

fn setup() -> (GraphTensors, Vec<Query>, Vec<Query>, Vec<Query>) {
    let data = presets::toy();
    let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
    let all = qgen::generate(&data, 40, 1, 2, AttrMode::Empty, 11);
    let split = QuerySplit::new(all, 20, 10, 10);
    (t, split.train, split.val, split.test)
}

/// 20 training queries at batch size 4 → 5 optimizer step attempts per
/// epoch; 0-based epoch `e` covers attempts `e*5+1 ..= e*5+5`.
const STEPS_PER_EPOCH: u64 = 5;

fn cfg(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        validate_every: 4,
        threads: 1,
        gamma_grid: vec![0.3, 0.5, 0.7],
        ..TrainConfig::default()
    }
}

#[test]
fn isolated_nan_steps_are_skipped_and_f1_stays_within_noise() {
    let _guard = chaos_lock();
    let (t, train, val, test) = setup();

    let clean =
        Trainer::new(cfg(16)).train(QdGnn::new(ModelConfig::fast(), t.d), &t, &train, &val);
    assert_eq!(clean.report.skipped_steps, 0);
    assert_eq!(clean.report.recoveries, 0);
    let f1_clean = evaluate(&clean.model, &t, &test, clean.gamma).f1;

    // Poison two isolated mid-training steps (epochs 4 and 6).
    faultless::inject_at_step(4 * STEPS_PER_EPOCH + 3, GradFault::NanGrads);
    faultless::inject_at_step(6 * STEPS_PER_EPOCH + 2, GradFault::NanGrads);
    let faulty =
        Trainer::new(cfg(16)).train(QdGnn::new(ModelConfig::fast(), t.d), &t, &train, &val);
    assert_eq!(faultless::pending(), 0, "both faults must have fired");
    assert_eq!(faulty.report.skipped_steps, 2, "each NaN step must be skipped, not applied");
    assert!(!faulty.report.diverged);
    assert_eq!(faulty.report.epochs_run, 16, "training must complete");
    let f1_faulty = evaluate(&faulty.model, &t, &test, faulty.gamma).f1;
    assert!(
        (f1_clean - f1_faulty).abs() <= 0.2,
        "skipping two steps must stay within noise: clean {f1_clean:.3} vs faulty {f1_faulty:.3}"
    );
}

#[test]
fn fully_poisoned_epoch_rolls_back_and_training_completes() {
    let _guard = chaos_lock();
    let (t, train, val, test) = setup();

    // Every step of 0-based epoch 6 produces NaN gradients: all five are
    // skipped, the epoch's mean loss is NaN, and divergence recovery must
    // roll back to the end of epoch 5 and halve the learning rate.
    faultless::inject_at_steps(
        6 * STEPS_PER_EPOCH + 1..=7 * STEPS_PER_EPOCH,
        GradFault::NanGrads,
    );
    let report = {
        let trained =
            Trainer::new(cfg(16)).train(QdGnn::new(ModelConfig::fast(), t.d), &t, &train, &val);
        let f1 = evaluate(&trained.model, &t, &test, trained.gamma).f1;
        assert!(f1 > 0.4, "recovered run should still learn toy communities, got {f1:.3}");
        trained.report
    };
    assert_eq!(report.skipped_steps, STEPS_PER_EPOCH as usize);
    assert!(report.recoveries >= 1, "NaN epoch must trigger a rollback");
    assert!(!report.diverged, "one rollback is within budget");
    assert_eq!(report.epochs_run, 16, "training must run to completion despite the fault");
}

#[test]
fn exhausted_recovery_budget_stops_early_with_best_weights() {
    let _guard = chaos_lock();
    let (t, train, val, _) = setup();

    // Epochs 4 and 5 fully poisoned with a budget of one recovery: the
    // second NaN epoch exhausts it and training must stop early, keeping
    // the best weights from the epoch-4 validation.
    faultless::inject_at_steps(
        4 * STEPS_PER_EPOCH + 1..=6 * STEPS_PER_EPOCH,
        GradFault::NanGrads,
    );
    let config = TrainConfig { max_recoveries: 1, ..cfg(12) };
    let trained =
        Trainer::new(config).train(QdGnn::new(ModelConfig::fast(), t.d), &t, &train, &val);
    assert!(trained.report.diverged, "budget exhaustion must be reported");
    assert!(trained.report.epochs_run < 12, "diverged training must stop early");
    assert!(
        trained.report.best_val_f1 > 0.0,
        "best weights from before the faults must be returned"
    );
    faultless::clear();
}

#[test]
fn exploded_gradients_are_neutralized_by_clipping() {
    let _guard = chaos_lock();
    let (t, train, val, _) = setup();

    faultless::inject_at_step(3 * STEPS_PER_EPOCH + 1, GradFault::ExplodeGrads(1e6));
    let trained =
        Trainer::new(cfg(8)).train(QdGnn::new(ModelConfig::fast(), t.d), &t, &train, &val);
    assert_eq!(faultless::pending(), 0);
    // The global-norm clip caps the blown-up step, so no skip and no
    // rollback are needed.
    assert_eq!(trained.report.skipped_steps, 0);
    assert_eq!(trained.report.recoveries, 0);
    assert!(!trained.report.diverged);
}

#[test]
fn mid_epoch_panic_flushes_flight_recorder_and_leaves_clean_journal() {
    let _guard = chaos_lock();
    let (t, train, val, _) = setup();

    let root = std::env::temp_dir()
        .join(format!("qdgnn_chaos_flight_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    let rec = std::sync::Arc::new(
        qdgnn_obs::runs::RunRecorder::create(&root, 11, "toy", "chaos-cfg").unwrap(),
    );
    let run_dir = rec.dir().to_path_buf();
    qdgnn_obs::runs::install(rec);
    qdgnn_obs::runs::install_panic_flush();

    // A hard crash in the middle of 0-based epoch 3: the process "dies"
    // (here: the unwind is caught), and the panic hook must have flushed
    // the flight ring to disk before anything else ran.
    faultless::inject_at_step(3 * STEPS_PER_EPOCH + 2, GradFault::PanicInStep);
    let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        Trainer::new(cfg(8)).train(QdGnn::new(ModelConfig::fast(), t.d), &t, &train, &val)
    }));
    assert!(crashed.is_err(), "the injected fault must panic mid-epoch");
    assert_eq!(faultless::pending(), 0, "the fault must have fired");
    qdgnn_obs::runs::uninstall();

    let flight = std::fs::read_to_string(run_dir.join("flight.ndjson"))
        .expect("panic hook must flush flight.ndjson");
    assert!(
        flight.contains("\"series\":\"train.loss\""),
        "flight ring must hold the pre-crash loss trail: {flight}"
    );
    // Every flight line is schema-valid (a series point or an event).
    for (i, line) in flight.lines().enumerate() {
        let ok = qdgnn_obs::series::SeriesPoint::from_json(line).is_ok()
            || qdgnn_obs::events::Event::from_json(line).is_ok();
        assert!(ok, "flight line {} malformed: {line}", i + 1);
    }
    // The journal written before the crash stays validator-clean: epochs
    // 0..=2 completed, so their steps are present, in order, no dupes.
    let journal = std::fs::read_to_string(run_dir.join("series.ndjson")).unwrap();
    let store = qdgnn_obs::series::SeriesStore::from_ndjson(&journal)
        .expect("journal must stay parseable after a crash");
    assert_eq!(store.last("train.loss").map(|(step, _)| step), Some(2));

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn damaged_model_files_are_rejected_with_invalid_data() {
    let (t, ..) = setup();
    let model = QdGnn::new(ModelConfig::fast(), t.d);
    let dir = std::env::temp_dir().join("qdgnn_chaos_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("chaos.model");
    save_model(&path, &model, 0.5).unwrap();
    let total_lines = std::fs::read_to_string(&path).unwrap().lines().count();

    faultless::corrupt_file_line(&path, total_lines / 2).unwrap();
    let mut fresh = QdGnn::new(ModelConfig::fast(), t.d);
    assert!(matches!(load_model(&path, &mut fresh), Err(QdgnnError::InvalidData(_))));

    save_model(&path, &model, 0.5).unwrap();
    faultless::truncate_file_at_line(&path, total_lines - 3).unwrap();
    assert!(matches!(load_model(&path, &mut fresh), Err(QdgnnError::InvalidData(_))));

    // The rejected loads must not have committed anything: the pristine
    // file still round-trips into the untouched model.
    save_model(&path, &model, 0.5).unwrap();
    assert!(load_model(&path, &mut fresh).is_ok());
}

#[test]
fn out_of_range_queries_get_typed_errors_not_panics() {
    let (t, ..) = setup();
    let model = QdGnn::new(ModelConfig::fast(), t.d);
    let stage = OnlineStage::new(&model, &t, 0.5);
    let bad = faultless::out_of_range_query(t.n, t.d);
    match stage.try_query(&bad) {
        Err(e) => assert!(e.is_bad_input(), "expected a bad-input error, got {e}"),
        Ok(_) => panic!("out-of-range query must be rejected"),
    }
}
