//! Precomputed per-dataset tensors (§4.1 input construction).
//!
//! Everything here is query-independent and shared (via `Arc`) across
//! queries, epochs and data-parallel workers: the normalized adjacency,
//! the normalized attribute matrix `F`, the bipartite incidence `B`, the
//! structure graph, and (lazily) the fusion graph used by attributed
//! community identification.

use std::sync::Arc;

use qdgnn_graph::attributed::{adjacency_matrix, AdjNorm, AttrId};
use qdgnn_graph::{AttributedGraph, Graph, VertexId};
use qdgnn_tensor::{Csr, Dense};

use crate::error::QdgnnError;

/// Query-independent tensors for one attributed graph.
#[derive(Clone)]
pub struct GraphTensors {
    /// Number of vertices `n`.
    pub n: usize,
    /// Attribute vocabulary size `d = |F̂|`.
    pub d: usize,
    /// Aggregation matrix `Â` (self-loop augmented, normalized).
    pub adj: Arc<Csr>,
    /// Transpose of `adj` (backward pass).
    pub adj_t: Arc<Csr>,
    /// Row-normalized attribute matrix `F` (n×d).
    pub feat: Arc<Csr>,
    /// Transpose of `feat`.
    pub feat_t: Arc<Csr>,
    /// Raw node–attribute incidence `B` (n×d).
    pub bip: Arc<Csr>,
    /// Transpose `Bᵀ` (d×n).
    pub bip_t: Arc<Csr>,
    /// The structure graph (community identification for CS).
    pub graph: Arc<Graph>,
    /// The fusion graph (community identification for ACS), built with
    /// the configured attribute-frequency cap.
    pub fusion: Arc<Graph>,
}

impl GraphTensors {
    /// Builds all tensors for `graph`.
    pub fn new(graph: &AttributedGraph, adj_norm: AdjNorm, fusion_attr_cap: usize) -> Self {
        let adj = adjacency_matrix(graph.graph(), adj_norm);
        let adj_t = adj.transpose();
        let feat = graph.attribute_matrix();
        let feat_t = feat.transpose();
        let bip = graph.bipartite_incidence();
        let bip_t = bip.transpose();
        let fusion = graph.fusion_graph(fusion_attr_cap);
        GraphTensors {
            n: graph.num_vertices(),
            d: graph.num_attrs(),
            adj: Arc::new(adj),
            adj_t: Arc::new(adj_t),
            feat: Arc::new(feat),
            feat_t: Arc::new(feat_t),
            bip: Arc::new(bip),
            bip_t: Arc::new(bip_t),
            graph: Arc::new(graph.graph().clone()),
            fusion: Arc::new(fusion),
        }
    }
}

/// Vectorized query inputs (§4.1): one-hot query-vertex and
/// query-attribute columns.
#[derive(Clone, Debug)]
pub struct QueryVectors {
    /// `v_q ∈ {0,1}^n` as an n×1 column.
    pub vertex_onehot: Dense,
    /// `f_q ∈ {0,1}^d` as a d×1 column (all zeros under EmA).
    pub attr_onehot: Dense,
}

impl QueryVectors {
    /// Encodes a query against a graph with `n` vertices and `d`
    /// attributes, validating every id against the graph's dimensions.
    ///
    /// This is the serving-path entry point: malformed queries surface as
    /// typed errors, never as panics.
    pub fn try_encode(
        n: usize,
        d: usize,
        vertices: &[VertexId],
        attrs: &[AttrId],
    ) -> Result<Self, QdgnnError> {
        if vertices.is_empty() {
            return Err(QdgnnError::EmptyQuery);
        }
        let mut v = Dense::zeros(n, 1);
        for &q in vertices {
            if (q as usize) >= n {
                return Err(QdgnnError::VertexOutOfRange { vertex: q, n });
            }
            v.set(q as usize, 0, 1.0);
        }
        let mut f = Dense::zeros(d, 1);
        for &a in attrs {
            if (a as usize) >= d {
                return Err(QdgnnError::AttrOutOfRange { attr: a, d });
            }
            f.set(a as usize, 0, 1.0);
        }
        Ok(QueryVectors { vertex_onehot: v, attr_onehot: f })
    }

    /// Encodes a trusted query (training data whose ids were produced
    /// against this graph). See [`QueryVectors::try_encode`] for the
    /// validating variant.
    ///
    /// # Panics
    /// Panics if a query vertex or attribute is out of range, or the
    /// query is empty.
    pub fn encode(n: usize, d: usize, vertices: &[VertexId], attrs: &[AttrId]) -> Self {
        match Self::try_encode(n, d, vertices, attrs) {
            Ok(qv) => qv,
            // qdgnn-analyze: allow(QD001, reason = "documented trusted-input variant for training data; serving uses try_encode")
            Err(e) => panic!("invalid training query: {e}"),
        }
    }

    /// Whether the query carries attributes.
    pub fn has_attrs(&self) -> bool {
        // One-hot entries are exactly 0.0 or 1.0 by construction, so a
        // strict sign test avoids exact float equality.
        self.attr_onehot.as_slice().iter().any(|&x| x > 0.0)
    }
}

/// `K` encoded queries stacked vertically for one batched forward pass
/// (the serving engine's unit of work).
///
/// Block `i` of [`QueryBatch::vertex_onehot`] (rows `i·n .. (i+1)·n`) is
/// query `i`'s `v_q` column, and likewise for the attribute one-hots —
/// the layout `Csr::spmm_blocked` and every row-wise tape op consume
/// without reshuffling, which is what keeps batched scores bit-identical
/// to the sequential path.
#[derive(Clone, Debug)]
pub struct QueryBatch {
    /// Stacked `v_q` columns, `K·n × 1`.
    pub vertex_onehot: Dense,
    /// Stacked `f_q` columns, `K·d × 1`.
    pub attr_onehot: Dense,
    queries: Vec<QueryVectors>,
    n: usize,
    d: usize,
}

impl QueryBatch {
    /// Stacks already-encoded queries into one batch.
    ///
    /// Every query must have been encoded against the same graph
    /// dimensions; a mismatch (or an empty slice) surfaces as a typed
    /// error, never a panic — this is a serving-path entry point.
    pub fn try_stack(queries: &[QueryVectors]) -> Result<Self, QdgnnError> {
        let Some(first) = queries.first() else {
            return Err(QdgnnError::invalid("query batch must contain at least one query"));
        };
        let n = first.vertex_onehot.rows();
        let d = first.attr_onehot.rows();
        let k = queries.len();
        let mut v = Dense::zeros(n * k, 1);
        let mut f = Dense::zeros(d * k, 1);
        for (i, q) in queries.iter().enumerate() {
            if q.vertex_onehot.shape() != (n, 1) || q.attr_onehot.shape() != (d, 1) {
                return Err(QdgnnError::invalid(format!(
                    "query {i} shaped {:?}/{:?} does not match batch dimensions ({n}, 1)/({d}, 1)",
                    q.vertex_onehot.shape(),
                    q.attr_onehot.shape()
                )));
            }
        }
        // Shapes validated above, so each query fills exactly one chunk
        // (chunks_mut needs a positive chunk size; a zero dim has no
        // data to copy anyway).
        if n > 0 {
            for (chunk, q) in v.as_mut_slice().chunks_mut(n).zip(queries) {
                chunk.copy_from_slice(q.vertex_onehot.as_slice());
            }
        }
        if d > 0 {
            for (chunk, q) in f.as_mut_slice().chunks_mut(d).zip(queries) {
                chunk.copy_from_slice(q.attr_onehot.as_slice());
            }
        }
        Ok(QueryBatch { vertex_onehot: v, attr_onehot: f, queries: queries.to_vec(), n, d })
    }

    /// Number of queries `K` in the batch.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the batch is empty (never true for a constructed batch).
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Vertex count `n` the queries were encoded against.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Attribute vocabulary size `d` the queries were encoded against.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The stacked queries, in batch order.
    pub fn queries(&self) -> &[QueryVectors] {
        &self.queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdgnn_data::presets;

    #[test]
    fn tensors_have_consistent_shapes() {
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
        assert_eq!(t.adj.rows(), t.n);
        assert_eq!(t.adj.cols(), t.n);
        assert_eq!(t.feat.rows(), t.n);
        assert_eq!(t.feat.cols(), t.d);
        assert_eq!(t.bip_t.rows(), t.d);
        assert_eq!(t.bip_t.cols(), t.n);
        assert!(t.fusion.num_edges() >= t.graph.num_edges());
    }

    #[test]
    fn adjacency_transpose_is_consistent() {
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::Mean, 100);
        // Mean normalization is asymmetric; transpose must still match.
        let dense = t.adj.to_dense().transpose();
        assert!(t.adj_t.to_dense().approx_eq(&dense, 1e-6));
    }

    #[test]
    fn query_vectors_one_hot() {
        let q = QueryVectors::encode(5, 3, &[1, 3], &[2]);
        assert_eq!(q.vertex_onehot.as_slice(), &[0.0, 1.0, 0.0, 1.0, 0.0]);
        assert_eq!(q.attr_onehot.as_slice(), &[0.0, 0.0, 1.0]);
        assert!(q.has_attrs());
        let empty = QueryVectors::encode(2, 2, &[0], &[]);
        assert!(!empty.has_attrs());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn query_vertex_out_of_range() {
        let _ = QueryVectors::encode(3, 1, &[7], &[]);
    }

    #[test]
    fn query_batch_stacks_blockwise() {
        let q0 = QueryVectors::encode(4, 2, &[1], &[0]);
        let q1 = QueryVectors::encode(4, 2, &[0, 3], &[]);
        let b = QueryBatch::try_stack(&[q0.clone(), q1.clone()]).unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!((b.n(), b.d()), (4, 2));
        assert_eq!(b.vertex_onehot.shape(), (8, 1));
        assert_eq!(&b.vertex_onehot.as_slice()[..4], q0.vertex_onehot.as_slice());
        assert_eq!(&b.vertex_onehot.as_slice()[4..], q1.vertex_onehot.as_slice());
        assert_eq!(&b.attr_onehot.as_slice()[..2], q0.attr_onehot.as_slice());
        assert_eq!(&b.attr_onehot.as_slice()[2..], q1.attr_onehot.as_slice());
    }

    #[test]
    fn query_batch_rejects_empty_and_mismatched() {
        assert!(QueryBatch::try_stack(&[]).is_err());
        let q0 = QueryVectors::encode(4, 2, &[1], &[]);
        let q1 = QueryVectors::encode(5, 2, &[1], &[]);
        assert!(QueryBatch::try_stack(&[q0, q1]).is_err());
    }
}
