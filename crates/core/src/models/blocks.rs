//! Shared building blocks for the three models: the self-feature +
//! neighborhood-aggregation layer (Eq. 4/5/8/9/10) and the forward-pass
//! context threading the tape, parameter leaves and batch-norm
//! statistics through encoder code.

use std::sync::Arc;

use rand::Rng;

use qdgnn_nn::{BatchNorm1d, BnStats, Dropout, Mode};
use qdgnn_tensor::{Csr, ParamId, ParamStore, Tape, Var};

/// Mutable state threaded through one forward pass.
pub(crate) struct ForwardCtx<'a, R: Rng> {
    pub tape: &'a mut Tape,
    pub store: &'a ParamStore,
    pub bns: &'a [BatchNorm1d],
    pub mode: Mode,
    pub dropout: Dropout,
    pub rng: &'a mut R,
    /// Tape leaves created for parameters, for gradient extraction.
    pub leaves: Vec<(Var, ParamId)>,
    /// Train-mode batch-norm statistics, tagged by BN index.
    pub stats: Vec<(usize, BnStats)>,
    /// Query blocks stacked vertically through the pass (1 = unbatched).
    /// When > 1, encoder aggregation uses the block-diagonal SpMM so each
    /// stacked query propagates only over its own copy of the graph.
    pub blocks: usize,
}

impl<'a, R: Rng> ForwardCtx<'a, R> {
    pub fn new(
        tape: &'a mut Tape,
        store: &'a ParamStore,
        bns: &'a [BatchNorm1d],
        mode: Mode,
        dropout: Dropout,
        rng: &'a mut R,
    ) -> Self {
        ForwardCtx {
            tape,
            store,
            bns,
            mode,
            dropout,
            rng,
            leaves: Vec::new(),
            stats: Vec::new(),
            blocks: 1,
        }
    }

    /// Records a parameter as a tape leaf (and remembers the mapping).
    pub fn param(&mut self, id: ParamId) -> Var {
        let var = self.tape.leaf(Arc::clone(self.store.value(id)));
        self.leaves.push((var, id));
        var
    }
}

/// Feature input of a layer: either a dense tape variable or a constant
/// sparse matrix (first-layer attribute matrix / query one-hots are
/// cheapest as sparse operands on the left of the weight product).
#[derive(Clone, Copy)]
pub(crate) enum FeatureInput<'m> {
    /// Dense features already on the tape.
    Dense(Var),
    /// Constant sparse features `(M, Mᵀ)`; the layer computes `M · W`.
    Sparse(&'m Arc<Csr>, &'m Arc<Csr>),
}

/// Post-aggregation pipeline of Eq. 1 applied to a layer's output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Post {
    /// BatchNorm → ReLU → Dropout (hidden layers; BN index given).
    Full(usize),
    /// ReLU only (attribute-side updates).
    Relu,
    /// Raw output (the model's final layer, §7.1.6).
    None,
}

/// One propagation layer:
/// `out = [self_in · W_self] + AGG( (agg_in · W_agg) + b )`,
/// where `AGG` left-multiplies by the constant aggregation matrix
/// (normalized adjacency `Â` or bipartite incidence `B`/`Bᵀ`), followed by
/// the configured post-processing.
///
/// `w_self = None` drops the self-feature term (Eq. 9's plain bipartite
/// propagation).
pub(crate) struct EncoderLayer {
    w_self: Option<ParamId>,
    w_agg: ParamId,
    b_agg: ParamId,
    post: Post,
}

impl EncoderLayer {
    /// Registers the layer's parameters.
    ///
    /// `self_in_dim = None` omits the self-feature term; `post` selects
    /// the Eq. 1 pipeline (a `Post::Full` BN must already exist in the
    /// model's BN table at the given index).
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        self_in_dim: Option<usize>,
        agg_in_dim: usize,
        out_dim: usize,
        post: Post,
        rng: &mut impl Rng,
    ) -> Self {
        let w_self =
            self_in_dim.map(|d| store.xavier(format!("{name}.w_self"), d, out_dim, rng));
        let w_agg = store.xavier(format!("{name}.w_agg"), agg_in_dim, out_dim, rng);
        let b_agg = store.zeros(format!("{name}.b_agg"), 1, out_dim);
        EncoderLayer { w_self, w_agg, b_agg, post }
    }

    /// Records the layer on the tape.
    ///
    /// `agg_mat` is the constant aggregation matrix pair `(M, Mᵀ)` the
    /// transformed features are propagated through.
    pub fn forward<R: Rng>(
        &self,
        ctx: &mut ForwardCtx<'_, R>,
        self_in: FeatureInput<'_>,
        agg_in: FeatureInput<'_>,
        agg_mat: (&Arc<Csr>, &Arc<Csr>),
    ) -> Var {
        // (agg_in · W_agg) + b, then AGG.
        let w = ctx.param(self.w_agg);
        let transformed = match agg_in {
            FeatureInput::Dense(x) => ctx.tape.matmul(x, w),
            FeatureInput::Sparse(m, mt) => ctx.tape.spmm(m, mt, w),
        };
        let b = ctx.param(self.b_agg);
        let biased = ctx.tape.add_row(transformed, b);
        let aggregated = if ctx.blocks > 1 {
            ctx.tape.spmm_blocked(agg_mat.0, agg_mat.1, biased, ctx.blocks)
        } else {
            ctx.tape.spmm(agg_mat.0, agg_mat.1, biased)
        };

        let mut out = match self.w_self {
            Some(ws) => {
                let ws = ctx.param(ws);
                let self_term = match self_in {
                    FeatureInput::Dense(x) => ctx.tape.matmul(x, ws),
                    FeatureInput::Sparse(m, mt) => ctx.tape.spmm(m, mt, ws),
                };
                ctx.tape.add(self_term, aggregated)
            }
            None => aggregated,
        };

        match self.post {
            Post::Full(bn_idx) => {
                let bn = &ctx.bns[bn_idx];
                let (y, bn_leaves, stats) = bn.forward(ctx.tape, ctx.store, out, ctx.mode);
                ctx.leaves.extend(bn_leaves);
                if let Some(s) = stats {
                    ctx.stats.push((bn_idx, s));
                }
                out = ctx.tape.relu(y);
                out = ctx.dropout.forward(ctx.tape, out, ctx.mode, ctx.rng);
            }
            Post::Relu => {
                out = ctx.tape.relu(out);
            }
            Post::None => {}
        }
        out
    }
}

/// The Feature Fusion operator (Eq. 6 / Eq. 11) with the configured
/// aggregation. [`crate::config::FusionAgg::Attention`] owns learnable
/// per-branch gate parameters; the paper's concatenation and sum are
/// parameter-free.
pub(crate) struct FusionOp {
    kind: crate::config::FusionAgg,
    /// Per-branch `(gate weight width×1, gate bias 1×1)` — attention only.
    gates: Vec<(ParamId, ParamId)>,
}

impl FusionOp {
    /// Registers gate parameters when the aggregation needs them.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        kind: crate::config::FusionAgg,
        branches: usize,
        width: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let gates = if kind == crate::config::FusionAgg::Attention {
            (0..branches)
                .map(|b| {
                    (
                        store.xavier(format!("{name}.gate{b}.weight"), width, 1, rng),
                        store.zeros(format!("{name}.gate{b}.bias"), 1, 1),
                    )
                })
                .collect()
        } else {
            Vec::new()
        };
        FusionOp { kind, gates }
    }

    /// Fuses the branch outputs on the tape.
    pub fn apply<R: Rng>(&self, ctx: &mut ForwardCtx<'_, R>, parts: &[Var]) -> Var {
        match self.kind {
            crate::config::FusionAgg::Concat => ctx.tape.concat_cols(parts),
            crate::config::FusionAgg::Sum => {
                let mut acc = parts[0];
                for &p in &parts[1..] {
                    acc = ctx.tape.add(acc, p);
                }
                acc
            }
            crate::config::FusionAgg::Attention => {
                debug_assert_eq!(parts.len(), self.gates.len(), "one gate per branch");
                let (w0, b0) = self.gates[0];
                let mut acc = self.gated(ctx, parts[0], w0, b0);
                for (&p, &(w, b)) in parts[1..].iter().zip(&self.gates[1..]) {
                    let g = self.gated(ctx, p, w, b);
                    acc = ctx.tape.add(acc, g);
                }
                acc
            }
        }
    }

    /// One attention branch: sigmoid-gated projection of `p`.
    fn gated<R: Rng>(&self, ctx: &mut ForwardCtx<'_, R>, p: Var, w: ParamId, b: ParamId) -> Var {
        let wv = ctx.param(w);
        let bv = ctx.param(b);
        let logits = ctx.tape.matmul(p, wv);
        let logits = ctx.tape.add_row(logits, bv);
        let gate = ctx.tape.sigmoid(logits);
        ctx.tape.mul_col(p, gate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdgnn_tensor::Dense;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_adj() -> (Arc<Csr>, Arc<Csr>) {
        // 3-path with self loops, unnormalized.
        let a = Csr::from_triplets(
            3,
            3,
            &[(0, 0, 1.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 1.0), (1, 2, 1.0), (2, 1, 1.0), (2, 2, 1.0)],
        );
        let at = a.transpose();
        (Arc::new(a), Arc::new(at))
    }

    #[test]
    fn layer_output_shape_and_gradients() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let layer = EncoderLayer::new(&mut store, "l", Some(2), 2, 4, Post::Relu, &mut rng);
        let (adj, adj_t) = tiny_adj();
        let mut tape = Tape::new();
        let x = tape.constant(Dense::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]));
        let mut ctx = ForwardCtx::new(
            &mut tape,
            &store,
            &[],
            Mode::Train,
            Dropout::new(0.0),
            &mut rng,
        );
        let y = layer.forward(
            &mut ctx,
            FeatureInput::Dense(x),
            FeatureInput::Dense(x),
            (&adj, &adj_t),
        );
        assert_eq!(ctx.tape.shape(y), (3, 4));
        // Three parameter leaves recorded: w_agg, b_agg, w_self.
        assert_eq!(ctx.leaves.len(), 3);
        let leaves = ctx.leaves.clone();
        let loss = tape.mean_all(y);
        let grads = tape.backward(loss);
        // Weight gradients flow (bias may be zero if everything ReLU-dies,
        // but with random init at least one leaf should have signal).
        assert!(leaves.iter().any(|(v, _)| grads
            .get(*v)
            .map(|g| g.max_abs() > 0.0)
            .unwrap_or(false)));
    }

    #[test]
    fn layer_without_self_term() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let layer = EncoderLayer::new(&mut store, "l", None, 2, 3, Post::None, &mut rng);
        assert_eq!(store.len(), 2); // w_agg + b_agg only
        let (adj, adj_t) = tiny_adj();
        let mut tape = Tape::new();
        let x = tape.constant(Dense::zeros(3, 2));
        let mut ctx = ForwardCtx::new(
            &mut tape,
            &store,
            &[],
            Mode::Eval,
            Dropout::new(0.5),
            &mut rng,
        );
        let y = layer.forward(
            &mut ctx,
            FeatureInput::Dense(x),
            FeatureInput::Dense(x),
            (&adj, &adj_t),
        );
        assert_eq!(ctx.tape.shape(y), (3, 3));
    }
}
