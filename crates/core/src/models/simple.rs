//! Simple QD-GNN (§5.1): the query-propagation-only model.
//!
//! A single Query Encoder branch whose first-layer input is the one-hot
//! query vector `v_q`; every layer applies the self-feature + SUM
//! aggregation of Eq. 4 over the structure graph. No graph-attribute
//! branch, no fusion.

use rand::rngs::StdRng;
use rand::SeedableRng;

use qdgnn_nn::{BatchNorm1d, Dropout, Mode};
use qdgnn_tensor::{ParamId, ParamStore, Tape};

use super::blocks::{EncoderLayer, FeatureInput, ForwardCtx, Post};
use super::{apply_output_head, output_head, CsModel, ForwardResult};
use crate::config::ModelConfig;
use crate::inputs::{GraphTensors, QueryVectors};

/// The Simple QD-GNN model of §5.1.
pub struct SimpleQdGnn {
    config: ModelConfig,
    store: ParamStore,
    bns: Vec<BatchNorm1d>,
    layers: Vec<EncoderLayer>,
    head: (ParamId, ParamId),
}

impl SimpleQdGnn {
    /// Builds the model for a graph context (the Query Encoder's input
    /// width is query-membership scalars, so no graph dimensions are
    /// needed beyond the config).
    pub fn new(config: ModelConfig) -> Self {
        config.validate();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut store = ParamStore::new();
        let mut bns = Vec::new();
        let k = config.layers;
        let h = config.hidden;
        let mut layers = Vec::with_capacity(k);
        for l in 0..k {
            let in_dim = if l == 0 { 1 } else { h };
            let post = if l + 1 < k {
                let idx = bns.len();
                bns.push(BatchNorm1d::new(&mut store, &format!("simple.l{l}.bn"), h));
                Post::Full(idx)
            } else {
                Post::None
            };
            layers.push(EncoderLayer::new(
                &mut store,
                &format!("simple.l{l}"),
                Some(in_dim),
                in_dim,
                h,
                post,
                &mut rng,
            ));
        }
        let head = output_head(&mut store, "simple", h, &mut rng);
        SimpleQdGnn { config, store, bns, layers, head }
    }

    /// The single query-propagation branch plus head, from a (possibly
    /// batch-stacked) query one-hot already on the tape.
    fn branch_and_head<R: rand::Rng>(
        &self,
        ctx: &mut ForwardCtx<'_, R>,
        inputs: &GraphTensors,
        qv: qdgnn_tensor::Var,
    ) -> qdgnn_tensor::Var {
        let adj = (&inputs.adj, &inputs.adj_t);
        let mut h =
            self.layers[0].forward(ctx, FeatureInput::Dense(qv), FeatureInput::Dense(qv), adj);
        for layer in &self.layers[1..] {
            h = layer.forward(ctx, FeatureInput::Dense(h), FeatureInput::Dense(h), adj);
        }
        apply_output_head(ctx, self.head, h)
    }
}

impl CsModel for SimpleQdGnn {
    fn name(&self) -> &'static str {
        "Simple QD-GNN"
    }

    fn config(&self) -> &ModelConfig {
        &self.config
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn bns(&self) -> &[BatchNorm1d] {
        &self.bns
    }

    fn bns_mut(&mut self) -> &mut [BatchNorm1d] {
        &mut self.bns
    }

    fn forward(
        &self,
        tape: &mut Tape,
        inputs: &GraphTensors,
        query: &QueryVectors,
        mode: Mode,
        rng: &mut StdRng,
    ) -> ForwardResult {
        let mut ctx = ForwardCtx::new(
            tape,
            &self.store,
            &self.bns,
            mode,
            Dropout::new(self.config.dropout),
            rng,
        );
        let qv = ctx.tape.constant(query.vertex_onehot.clone());
        let logits = self.branch_and_head(&mut ctx, inputs, qv);
        ForwardResult { logits, leaves: ctx.leaves, bn_stats: ctx.stats }
    }

    fn forward_batched_eval(
        &self,
        tape: &mut Tape,
        inputs: &GraphTensors,
        _cache: Option<&super::GraphCache>,
        batch: &crate::inputs::QueryBatch,
    ) -> Option<qdgnn_tensor::Var> {
        // No graph branch to cache: the whole model is the query branch.
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = ForwardCtx::new(
            tape,
            &self.store,
            &self.bns,
            Mode::Eval,
            Dropout::new(self.config.dropout),
            &mut rng,
        );
        let qv = ctx.tape.constant(batch.vertex_onehot.clone());
        ctx.blocks = batch.len();
        Some(self.branch_and_head(&mut ctx, inputs, qv))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::predict_scores;
    use qdgnn_data::presets;
    use qdgnn_graph::attributed::AdjNorm;

    #[test]
    fn forward_produces_scores_in_unit_interval() {
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
        let model = SimpleQdGnn::new(ModelConfig::fast());
        let q = QueryVectors::encode(t.n, t.d, &[data.communities[0][0]], &[]);
        let scores = predict_scores(&model, &t, &q);
        assert_eq!(scores.len(), t.n);
        assert!(scores.iter().all(|&s| (0.0..=1.0).contains(&s)));
    }

    #[test]
    fn train_mode_collects_bn_stats_and_leaves() {
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
        let model = SimpleQdGnn::new(ModelConfig::fast());
        let q = QueryVectors::encode(t.n, t.d, &[0], &[]);
        let mut tape = Tape::new();
        let mut rng = StdRng::seed_from_u64(3);
        let out = model.forward(&mut tape, &t, &q, Mode::Train, &mut rng);
        // 3 layers → 2 hidden BNs; head + 3 layers → leaves present.
        assert_eq!(out.bn_stats.len(), 2);
        assert!(out.leaves.len() >= 3 * 3 + 2);
        assert_eq!(tape.shape(out.logits), (t.n, 1));
    }

    #[test]
    fn single_layer_model_works() {
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
        let model = SimpleQdGnn::new(ModelConfig { layers: 1, ..ModelConfig::fast() });
        assert!(model.bns().is_empty());
        let q = QueryVectors::encode(t.n, t.d, &[1], &[]);
        let scores = predict_scores(&model, &t, &q);
        assert_eq!(scores.len(), t.n);
    }
}
