//! QD-GNN (§5.2, Algorithm 2): Query Encoder + Graph Encoder + Feature
//! Fusion.
//!
//! * The **Query Encoder** (Eq. 4/8) takes the one-hot query vector and
//!   propagates it over the structure graph; from the second layer on it
//!   aggregates the *fused* features (Eq. 7) so vertex attributes and
//!   global structure reach the query neighbourhood.
//! * The **Graph Encoder** (Eq. 5) propagates the normalized attribute
//!   matrix; it never consumes fused features, staying query-independent.
//! * **Feature Fusion** (Eq. 6) concatenates the two branch outputs; the
//!   final fused features feed a 1-unit output head producing per-vertex
//!   logits.

use rand::rngs::StdRng;
use rand::SeedableRng;

use qdgnn_nn::{BatchNorm1d, Dropout, Mode};
use qdgnn_tensor::{ParamId, ParamStore, Tape, Var};

use super::blocks::{EncoderLayer, FeatureInput, ForwardCtx, FusionOp, Post};
use super::{apply_output_head, output_head, CsModel, ForwardResult};
use crate::config::ModelConfig;
use crate::inputs::{GraphTensors, QueryVectors};

/// The QD-GNN model of §5.2.
pub struct QdGnn {
    config: ModelConfig,
    store: ParamStore,
    bns: Vec<BatchNorm1d>,
    q_layers: Vec<EncoderLayer>,
    g_layers: Vec<EncoderLayer>,
    fusions: Vec<FusionOp>,
    head: (ParamId, ParamId),
}

impl QdGnn {
    /// Builds QD-GNN for a graph with attribute vocabulary size
    /// `attr_dim` (the Graph Encoder's first-layer input width).
    pub fn new(config: ModelConfig, attr_dim: usize) -> Self {
        config.validate();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut store = ParamStore::new();
        let mut bns = Vec::new();
        let k = config.layers;
        let h = config.hidden;
        let fused = config.fused_width(2);

        let post = |store: &mut ParamStore, bns: &mut Vec<BatchNorm1d>, l: usize, tag: &str| {
            if l + 1 < k {
                let idx = bns.len();
                bns.push(BatchNorm1d::new(store, &format!("qdgnn.{tag}{l}.bn"), h));
                Post::Full(idx)
            } else {
                Post::None
            }
        };

        let mut q_layers = Vec::with_capacity(k);
        let mut g_layers = Vec::with_capacity(k);
        for l in 0..k {
            let q_self = if l == 0 { 1 } else { h };
            let q_agg = if l == 0 {
                1
            } else if config.feature_fusion {
                fused
            } else {
                h
            };
            let p = post(&mut store, &mut bns, l, "q");
            q_layers.push(EncoderLayer::new(
                &mut store,
                &format!("qdgnn.q{l}"),
                Some(q_self),
                q_agg,
                h,
                p,
                &mut rng,
            ));
            let g_in = if l == 0 { attr_dim } else { h };
            let p = post(&mut store, &mut bns, l, "g");
            g_layers.push(EncoderLayer::new(
                &mut store,
                &format!("qdgnn.g{l}"),
                Some(g_in),
                g_in,
                h,
                p,
                &mut rng,
            ));
        }
        let fusions: Vec<FusionOp> = (0..k)
            .map(|l| {
                FusionOp::new(&mut store, &format!("qdgnn.fuse{l}"), config.fusion, 2, h, &mut rng)
            })
            .collect();
        let head = output_head(&mut store, "qdgnn", fused, &mut rng);
        QdGnn { config, store, bns, q_layers, g_layers, fusions, head }
    }

    /// Runs the query-independent Graph Encoder (Eq. 5) for all layers.
    fn graph_branch<R: rand::Rng>(
        &self,
        ctx: &mut ForwardCtx<'_, R>,
        inputs: &GraphTensors,
    ) -> Vec<Var> {
        let adj = (&inputs.adj, &inputs.adj_t);
        let feat = FeatureInput::Sparse(&inputs.feat, &inputs.feat_t);
        let mut out = Vec::with_capacity(self.config.layers);
        let mut g = self.g_layers[0].forward(ctx, feat, feat, adj);
        out.push(g);
        for layer in &self.g_layers[1..] {
            g = layer.forward(ctx, FeatureInput::Dense(g), FeatureInput::Dense(g), adj);
            out.push(g);
        }
        out
    }

    /// Runs the query-dependent part given the (possibly batch-stacked)
    /// query one-hot `qv` and per-layer Graph Encoder outputs (freshly
    /// computed, cached, or cache-tiled for a batch).
    // Several parallel arrays (layers, fusions, cached g) are indexed by
    // the same layer counter; an iterator rewrite would obscure that.
    #[allow(clippy::needless_range_loop)]
    fn query_branch_and_head<R: rand::Rng>(
        &self,
        ctx: &mut ForwardCtx<'_, R>,
        inputs: &GraphTensors,
        qv: Var,
        g_vars: &[Var],
    ) -> Var {
        let adj = (&inputs.adj, &inputs.adj_t);
        // Layer 1 (Algorithm 2, lines 6–8).
        let mut q = self.q_layers[0].forward(
            ctx,
            FeatureInput::Dense(qv),
            FeatureInput::Dense(qv),
            adj,
        );
        let mut ff = self.fusions[0].apply(ctx, &[g_vars[0], q]);
        // Intermediate + final layers (lines 10–14).
        for l in 1..self.config.layers {
            let q_agg = if self.config.feature_fusion { ff } else { q };
            q = self.q_layers[l].forward(
                ctx,
                FeatureInput::Dense(q),
                FeatureInput::Dense(q_agg),
                adj,
            );
            ff = self.fusions[l].apply(ctx, &[g_vars[l], q]);
        }
        apply_output_head(ctx, self.head, ff)
    }
}

impl CsModel for QdGnn {
    fn name(&self) -> &'static str {
        "QD-GNN"
    }

    fn config(&self) -> &ModelConfig {
        &self.config
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn bns(&self) -> &[BatchNorm1d] {
        &self.bns
    }

    fn bns_mut(&mut self) -> &mut [BatchNorm1d] {
        &mut self.bns
    }

    fn forward(
        &self,
        tape: &mut Tape,
        inputs: &GraphTensors,
        query: &QueryVectors,
        mode: Mode,
        rng: &mut StdRng,
    ) -> ForwardResult {
        let mut ctx = ForwardCtx::new(
            tape,
            &self.store,
            &self.bns,
            mode,
            Dropout::new(self.config.dropout),
            rng,
        );
        let g_vars = self.graph_branch(&mut ctx, inputs);
        let qv = ctx.tape.constant(query.vertex_onehot.clone());
        let logits = self.query_branch_and_head(&mut ctx, inputs, qv, &g_vars);
        ForwardResult { logits, leaves: ctx.leaves, bn_stats: ctx.stats }
    }

    fn build_graph_cache(&self, inputs: &GraphTensors) -> Option<super::GraphCache> {
        let mut tape = Tape::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = ForwardCtx::new(
            &mut tape,
            &self.store,
            &self.bns,
            Mode::Eval,
            Dropout::new(self.config.dropout),
            &mut rng,
        );
        let g_vars = self.graph_branch(&mut ctx, inputs);
        let layers =
            g_vars.iter().map(|&v| std::sync::Arc::clone(ctx.tape.value(v))).collect();
        Some(super::GraphCache { layers })
    }

    fn forward_cached(
        &self,
        tape: &mut Tape,
        inputs: &GraphTensors,
        cache: &super::GraphCache,
        query: &QueryVectors,
        rng: &mut StdRng,
    ) -> ForwardResult {
        assert_eq!(cache.layers.len(), self.config.layers, "cache layer-count mismatch");
        let mut ctx = ForwardCtx::new(
            tape,
            &self.store,
            &self.bns,
            Mode::Eval,
            Dropout::new(self.config.dropout),
            rng,
        );
        let g_vars: Vec<Var> = cache
            .layers
            .iter()
            .map(|layer| ctx.tape.leaf(std::sync::Arc::clone(layer)))
            .collect();
        let qv = ctx.tape.constant(query.vertex_onehot.clone());
        let logits = self.query_branch_and_head(&mut ctx, inputs, qv, &g_vars);
        ForwardResult { logits, leaves: ctx.leaves, bn_stats: ctx.stats }
    }

    fn forward_batched_eval(
        &self,
        tape: &mut Tape,
        inputs: &GraphTensors,
        cache: Option<&super::GraphCache>,
        batch: &crate::inputs::QueryBatch,
    ) -> Option<Var> {
        let k = batch.len();
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = ForwardCtx::new(
            tape,
            &self.store,
            &self.bns,
            Mode::Eval,
            Dropout::new(self.config.dropout),
            &mut rng,
        );
        // Graph branch once at n rows (cached or fresh), then tiled K×
        // so every query in the batch fuses against its own copy.
        let g_base: Vec<std::sync::Arc<qdgnn_tensor::Dense>> = match cache {
            Some(c) => {
                assert_eq!(c.layers.len(), self.config.layers, "cache layer-count mismatch");
                c.layers.iter().map(std::sync::Arc::clone).collect()
            }
            None => {
                let g_vars = self.graph_branch(&mut ctx, inputs);
                g_vars.iter().map(|&v| std::sync::Arc::clone(ctx.tape.value(v))).collect()
            }
        };
        let g_tiled: Vec<Var> =
            g_base.iter().map(|l| ctx.tape.constant(l.tile_rows(k))).collect();
        let qv = ctx.tape.constant(batch.vertex_onehot.clone());
        ctx.blocks = k;
        Some(self.query_branch_and_head(&mut ctx, inputs, qv, &g_tiled))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FusionAgg;
    use crate::models::predict_scores;
    use qdgnn_data::presets;
    use qdgnn_graph::attributed::AdjNorm;

    fn setup() -> (GraphTensors, qdgnn_data::Dataset) {
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
        (t, data)
    }

    #[test]
    fn forward_shapes_and_scores() {
        let (t, data) = setup();
        let model = QdGnn::new(ModelConfig::fast(), t.d);
        let q = QueryVectors::encode(t.n, t.d, &data.communities[1][..2], &[]);
        let scores = predict_scores(&model, &t, &q);
        assert_eq!(scores.len(), t.n);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn nofu_variant_builds_and_runs() {
        let (t, _) = setup();
        let cfg = ModelConfig { feature_fusion: false, ..ModelConfig::fast() };
        let model = QdGnn::new(cfg, t.d);
        let q = QueryVectors::encode(t.n, t.d, &[0], &[]);
        let scores = predict_scores(&model, &t, &q);
        assert_eq!(scores.len(), t.n);
    }

    #[test]
    fn sum_fusion_variant_builds_and_runs() {
        let (t, _) = setup();
        let cfg = ModelConfig { fusion: FusionAgg::Sum, ..ModelConfig::fast() };
        let model = QdGnn::new(cfg, t.d);
        let q = QueryVectors::encode(t.n, t.d, &[2], &[]);
        let scores = predict_scores(&model, &t, &q);
        assert_eq!(scores.len(), t.n);
    }

    #[test]
    fn different_queries_produce_different_scores() {
        let (t, data) = setup();
        let model = QdGnn::new(ModelConfig::fast(), t.d);
        let q1 = QueryVectors::encode(t.n, t.d, &[data.communities[0][0]], &[]);
        let q2 = QueryVectors::encode(t.n, t.d, &[data.communities[2][0]], &[]);
        let s1 = predict_scores(&model, &t, &q1);
        let s2 = predict_scores(&model, &t, &q2);
        assert_ne!(s1, s2, "query-driven model must be query-sensitive");
    }

    #[test]
    fn cached_inference_matches_full_forward() {
        let (t, data) = setup();
        let model = QdGnn::new(ModelConfig::fast(), t.d);
        let cache = model.build_graph_cache(&t).expect("QD-GNN has a graph branch");
        assert_eq!(cache.layers.len(), model.config().layers);
        for q in 0..3u32 {
            let qv = QueryVectors::encode(t.n, t.d, &[data.communities[q as usize][0]], &[]);
            let full = predict_scores(&model, &t, &qv);
            let cached = crate::models::predict_scores_cached(&model, &t, &cache, &qv);
            assert_eq!(full, cached, "cached inference must be bit-identical");
        }
    }

    #[test]
    fn bn_count_matches_two_branches() {
        let (t, _) = setup();
        let model = QdGnn::new(ModelConfig::fast(), t.d);
        // 3 layers → 2 hidden per branch → 4 BNs.
        assert_eq!(model.bns().len(), 4);
    }
}
