//! AQD-GNN (§6, Algorithm 3): QD-GNN plus the bipartite Attribute
//! Encoder for attributed community search.
//!
//! The Attribute Encoder runs a bipartite GNN (Eq. 9/10) over the
//! node–attribute incidence `B`:
//!
//! * **A→N** (Eq. 9): node-side features are the bipartite aggregation of
//!   attribute-side features — in the first layer the attribute side *is*
//!   the one-hot query attribute vector `f_q`, which is how the model
//!   ingests attributed queries;
//! * **N→A** (Eq. 10): attribute-side features are refreshed from the
//!   node side with self-feature modelling; with feature fusion enabled
//!   the node-side input is the fused feature `h_FF` (Eq. 12), coupling
//!   structure and attribute learning.
//!
//! Feature Fusion (Eq. 11) concatenates Graph, Query and Attribute
//! encoder outputs each layer.

use rand::rngs::StdRng;
use rand::SeedableRng;

use qdgnn_nn::{BatchNorm1d, Dropout, Mode};
use qdgnn_tensor::{ParamId, ParamStore, Tape, Var};

use super::blocks::{EncoderLayer, FeatureInput, ForwardCtx, FusionOp, Post};
use super::{apply_output_head, output_head, CsModel, ForwardResult};
use crate::config::ModelConfig;
use crate::inputs::{GraphTensors, QueryVectors};

/// The AQD-GNN model of §6.
pub struct AqdGnn {
    config: ModelConfig,
    store: ParamStore,
    bns: Vec<BatchNorm1d>,
    q_layers: Vec<EncoderLayer>,
    g_layers: Vec<EncoderLayer>,
    /// A→N propagations (Eq. 9), one per layer.
    an_layers: Vec<EncoderLayer>,
    /// N→A attribute-side updates (Eq. 10), layers 2..k.
    na_layers: Vec<EncoderLayer>,
    fusions: Vec<FusionOp>,
    head: (ParamId, ParamId),
}

impl AqdGnn {
    /// Builds AQD-GNN for a graph with attribute vocabulary size
    /// `attr_dim`.
    pub fn new(config: ModelConfig, attr_dim: usize) -> Self {
        config.validate();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut store = ParamStore::new();
        let mut bns = Vec::new();
        let k = config.layers;
        let h = config.hidden;
        let fused = config.fused_width(3);

        let post = |store: &mut ParamStore, bns: &mut Vec<BatchNorm1d>, l: usize, tag: &str| {
            if l + 1 < k {
                let idx = bns.len();
                bns.push(BatchNorm1d::new(store, &format!("aqdgnn.{tag}{l}.bn"), h));
                Post::Full(idx)
            } else {
                Post::None
            }
        };

        let mut q_layers = Vec::with_capacity(k);
        let mut g_layers = Vec::with_capacity(k);
        let mut an_layers = Vec::with_capacity(k);
        let mut na_layers = Vec::with_capacity(k.saturating_sub(1));
        for l in 0..k {
            let q_self = if l == 0 { 1 } else { h };
            let q_agg = if l == 0 {
                1
            } else if config.feature_fusion {
                fused
            } else {
                h
            };
            let p = post(&mut store, &mut bns, l, "q");
            q_layers.push(EncoderLayer::new(
                &mut store,
                &format!("aqdgnn.q{l}"),
                Some(q_self),
                q_agg,
                h,
                p,
                &mut rng,
            ));

            let g_in = if l == 0 { attr_dim } else { h };
            let p = post(&mut store, &mut bns, l, "g");
            g_layers.push(EncoderLayer::new(
                &mut store,
                &format!("aqdgnn.g{l}"),
                Some(g_in),
                g_in,
                h,
                p,
                &mut rng,
            ));

            // A→N: attribute-side width is 1 in layer 1 (the one-hot f_q)
            // and `h` afterwards (refreshed by N→A).
            let a_side = if l == 0 { 1 } else { h };
            let p = post(&mut store, &mut bns, l, "n");
            an_layers.push(EncoderLayer::new(
                &mut store,
                &format!("aqdgnn.an{l}"),
                None,
                a_side,
                h,
                p,
                &mut rng,
            ));

            if l >= 1 {
                // N→A for layer l: self input is the previous attribute-side
                // features (1-dim f_q before the first update), aggregation
                // input is the fused node features (Eq. 12) or, without
                // fusion, the Attribute Encoder's own node-side output.
                let a_self = if l == 1 { 1 } else { h };
                let n_in = if config.feature_fusion { fused } else { h };
                na_layers.push(EncoderLayer::new(
                    &mut store,
                    &format!("aqdgnn.na{l}"),
                    Some(a_self),
                    n_in,
                    h,
                    Post::Relu,
                    &mut rng,
                ));
            }
        }
        let fusions: Vec<FusionOp> = (0..k)
            .map(|l| {
                FusionOp::new(&mut store, &format!("aqdgnn.fuse{l}"), config.fusion, 3, h, &mut rng)
            })
            .collect();
        let head = output_head(&mut store, "aqdgnn", fused, &mut rng);
        AqdGnn { config, store, bns, q_layers, g_layers, an_layers, na_layers, fusions, head }
    }

    /// Runs the query-independent Graph Encoder (Eq. 5) for all layers.
    fn graph_branch<R: rand::Rng>(
        &self,
        ctx: &mut ForwardCtx<'_, R>,
        inputs: &GraphTensors,
    ) -> Vec<Var> {
        let adj = (&inputs.adj, &inputs.adj_t);
        let feat = FeatureInput::Sparse(&inputs.feat, &inputs.feat_t);
        let mut out = Vec::with_capacity(self.config.layers);
        let mut g = self.g_layers[0].forward(ctx, feat, feat, adj);
        out.push(g);
        for layer in &self.g_layers[1..] {
            g = layer.forward(ctx, FeatureInput::Dense(g), FeatureInput::Dense(g), adj);
            out.push(g);
        }
        out
    }

    /// Runs the query- and attribute-dependent branches plus the output
    /// head, given per-layer Graph Encoder outputs.
    // Several parallel arrays (layers, fusions, cached g) are indexed by
    // the same layer counter; an iterator rewrite would obscure that.
    #[allow(clippy::needless_range_loop)]
    fn query_branches_and_head<R: rand::Rng>(
        &self,
        ctx: &mut ForwardCtx<'_, R>,
        inputs: &GraphTensors,
        qv: Var,
        fq: Var,
        g_vars: &[Var],
    ) -> Var {
        let adj = (&inputs.adj, &inputs.adj_t);
        let bip = (&inputs.bip, &inputs.bip_t);
        let bip_rev = (&inputs.bip_t, &inputs.bip);

        // Layer 1 (Algorithm 3, lines 7–10).
        let mut q = self.q_layers[0].forward(
            ctx,
            FeatureInput::Dense(qv),
            FeatureInput::Dense(qv),
            adj,
        );
        let mut n = self.an_layers[0].forward(
            ctx,
            FeatureInput::Dense(fq),
            FeatureInput::Dense(fq),
            bip,
        );
        let mut ff = self.fusions[0].apply(ctx, &[g_vars[0], q, n]);
        let mut a = fq;

        // Intermediate + final layers (lines 12–18).
        for l in 1..self.config.layers {
            let q_agg = if self.config.feature_fusion { ff } else { q };
            q = self.q_layers[l].forward(
                ctx,
                FeatureInput::Dense(q),
                FeatureInput::Dense(q_agg),
                adj,
            );
            let node_in = if self.config.feature_fusion { ff } else { n };
            a = self.na_layers[l - 1].forward(
                ctx,
                FeatureInput::Dense(a),
                FeatureInput::Dense(node_in),
                bip_rev,
            );
            n = self.an_layers[l].forward(
                ctx,
                FeatureInput::Dense(a),
                FeatureInput::Dense(a),
                bip,
            );
            ff = self.fusions[l].apply(ctx, &[g_vars[l], q, n]);
        }
        apply_output_head(ctx, self.head, ff)
    }
}

impl CsModel for AqdGnn {
    fn name(&self) -> &'static str {
        "AQD-GNN"
    }

    fn config(&self) -> &ModelConfig {
        &self.config
    }

    fn store(&self) -> &ParamStore {
        &self.store
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn bns(&self) -> &[BatchNorm1d] {
        &self.bns
    }

    fn bns_mut(&mut self) -> &mut [BatchNorm1d] {
        &mut self.bns
    }

    fn uses_attributes(&self) -> bool {
        true
    }

    fn forward(
        &self,
        tape: &mut Tape,
        inputs: &GraphTensors,
        query: &QueryVectors,
        mode: Mode,
        rng: &mut StdRng,
    ) -> ForwardResult {
        let mut ctx = ForwardCtx::new(
            tape,
            &self.store,
            &self.bns,
            mode,
            Dropout::new(self.config.dropout),
            rng,
        );
        let g_vars = self.graph_branch(&mut ctx, inputs);
        let qv = ctx.tape.constant(query.vertex_onehot.clone());
        let fq = ctx.tape.constant(query.attr_onehot.clone());
        let logits = self.query_branches_and_head(&mut ctx, inputs, qv, fq, &g_vars);
        ForwardResult { logits, leaves: ctx.leaves, bn_stats: ctx.stats }
    }

    fn build_graph_cache(&self, inputs: &GraphTensors) -> Option<super::GraphCache> {
        let mut tape = Tape::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = ForwardCtx::new(
            &mut tape,
            &self.store,
            &self.bns,
            Mode::Eval,
            Dropout::new(self.config.dropout),
            &mut rng,
        );
        let g_vars = self.graph_branch(&mut ctx, inputs);
        let layers =
            g_vars.iter().map(|&v| std::sync::Arc::clone(ctx.tape.value(v))).collect();
        Some(super::GraphCache { layers })
    }

    fn forward_cached(
        &self,
        tape: &mut Tape,
        inputs: &GraphTensors,
        cache: &super::GraphCache,
        query: &QueryVectors,
        rng: &mut StdRng,
    ) -> ForwardResult {
        assert_eq!(cache.layers.len(), self.config.layers, "cache layer-count mismatch");
        let mut ctx = ForwardCtx::new(
            tape,
            &self.store,
            &self.bns,
            Mode::Eval,
            Dropout::new(self.config.dropout),
            rng,
        );
        let g_vars: Vec<Var> = cache
            .layers
            .iter()
            .map(|layer| ctx.tape.leaf(std::sync::Arc::clone(layer)))
            .collect();
        let qv = ctx.tape.constant(query.vertex_onehot.clone());
        let fq = ctx.tape.constant(query.attr_onehot.clone());
        let logits = self.query_branches_and_head(&mut ctx, inputs, qv, fq, &g_vars);
        ForwardResult { logits, leaves: ctx.leaves, bn_stats: ctx.stats }
    }

    fn forward_batched_eval(
        &self,
        tape: &mut Tape,
        inputs: &GraphTensors,
        cache: Option<&super::GraphCache>,
        batch: &crate::inputs::QueryBatch,
    ) -> Option<Var> {
        let k = batch.len();
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = ForwardCtx::new(
            tape,
            &self.store,
            &self.bns,
            Mode::Eval,
            Dropout::new(self.config.dropout),
            &mut rng,
        );
        let g_base: Vec<std::sync::Arc<qdgnn_tensor::Dense>> = match cache {
            Some(c) => {
                assert_eq!(c.layers.len(), self.config.layers, "cache layer-count mismatch");
                c.layers.iter().map(std::sync::Arc::clone).collect()
            }
            None => {
                let g_vars = self.graph_branch(&mut ctx, inputs);
                g_vars.iter().map(|&v| std::sync::Arc::clone(ctx.tape.value(v))).collect()
            }
        };
        let g_tiled: Vec<Var> =
            g_base.iter().map(|l| ctx.tape.constant(l.tile_rows(k))).collect();
        let qv = ctx.tape.constant(batch.vertex_onehot.clone());
        let fq = ctx.tape.constant(batch.attr_onehot.clone());
        ctx.blocks = k;
        Some(self.query_branches_and_head(&mut ctx, inputs, qv, fq, &g_tiled))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::predict_scores;
    use qdgnn_data::presets;
    use qdgnn_graph::attributed::AdjNorm;

    fn setup() -> (GraphTensors, qdgnn_data::Dataset) {
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
        (t, data)
    }

    #[test]
    fn attributed_forward_runs() {
        let (t, data) = setup();
        let model = AqdGnn::new(ModelConfig::fast(), t.d);
        assert!(model.uses_attributes());
        let attrs = data.graph.most_common_attrs(&data.communities[0], 5);
        let q = QueryVectors::encode(t.n, t.d, &[data.communities[0][0]], &attrs);
        let scores = predict_scores(&model, &t, &q);
        assert_eq!(scores.len(), t.n);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn empty_attribute_query_is_supported() {
        // §7.2.1 applies AQD-GNN with F_q = ∅ to non-attributed search.
        let (t, _) = setup();
        let model = AqdGnn::new(ModelConfig::fast(), t.d);
        let q = QueryVectors::encode(t.n, t.d, &[0], &[]);
        let scores = predict_scores(&model, &t, &q);
        assert_eq!(scores.len(), t.n);
    }

    #[test]
    fn attribute_query_changes_output() {
        let (t, data) = setup();
        let model = AqdGnn::new(ModelConfig::fast(), t.d);
        let a0 = data.graph.most_common_attrs(&data.communities[0], 5);
        let a1 = data.graph.most_common_attrs(&data.communities[2], 5);
        assert_ne!(a0, a1, "toy communities should have distinct topics");
        let q0 = QueryVectors::encode(t.n, t.d, &[0], &a0);
        let q1 = QueryVectors::encode(t.n, t.d, &[0], &a1);
        assert_ne!(
            predict_scores(&model, &t, &q0),
            predict_scores(&model, &t, &q1),
            "attribute input must influence predictions"
        );
    }

    #[test]
    fn nofu_variant_runs() {
        let (t, data) = setup();
        let cfg = ModelConfig { feature_fusion: false, ..ModelConfig::fast() };
        let model = AqdGnn::new(cfg, t.d);
        let q = QueryVectors::encode(t.n, t.d, &[1], &data.graph.attrs_of(1)[..1]);
        let scores = predict_scores(&model, &t, &q);
        assert_eq!(scores.len(), t.n);
    }

    #[test]
    fn attention_fusion_variant_runs_and_gates_add_params() {
        use crate::config::FusionAgg;
        let (t, data) = setup();
        let cfg = ModelConfig { fusion: FusionAgg::Attention, ..ModelConfig::fast() };
        let attn = AqdGnn::new(cfg.clone(), t.d);
        let plain = AqdGnn::new(ModelConfig { fusion: FusionAgg::Sum, ..cfg }, t.d);
        // Attention adds 2 gate params per branch per layer: 3×3×2 = 18.
        assert_eq!(attn.store().len(), plain.store().len() + 18);
        let attrs = data.graph.most_common_attrs(&data.communities[0], 3);
        let q = QueryVectors::encode(t.n, t.d, &[0], &attrs);
        let scores = predict_scores(&attn, &t, &q);
        assert_eq!(scores.len(), t.n);
        assert!(scores.iter().all(|s| s.is_finite()));
        // Cached inference also works for the attention variant.
        let cache = attn.build_graph_cache(&t).unwrap();
        assert_eq!(crate::models::predict_scores_cached(&attn, &t, &cache, &q), scores);
    }

    #[test]
    fn cached_attributed_inference_matches_full_forward() {
        let (t, data) = setup();
        let model = AqdGnn::new(ModelConfig::fast(), t.d);
        let cache = model.build_graph_cache(&t).expect("AQD-GNN has a graph branch");
        let attrs = data.graph.most_common_attrs(&data.communities[1], 4);
        let qv = QueryVectors::encode(t.n, t.d, &data.communities[1][..2], &attrs);
        let full = predict_scores(&model, &t, &qv);
        let cached = crate::models::predict_scores_cached(&model, &t, &cache, &qv);
        assert_eq!(full, cached);
    }

    #[test]
    fn train_mode_emits_stats_for_three_branches() {
        let (t, _) = setup();
        let model = AqdGnn::new(ModelConfig::fast(), t.d);
        let q = QueryVectors::encode(t.n, t.d, &[0], &[1]);
        let mut tape = Tape::new();
        let mut rng = StdRng::seed_from_u64(0);
        let out = model.forward(&mut tape, &t, &q, Mode::Train, &mut rng);
        // 3 branches × 2 hidden layers with BN.
        assert_eq!(out.bn_stats.len(), 6);
    }
}
