//! The three community-search models and their common interface.

pub(crate) mod blocks;
mod aqdgnn;
mod qdgnn;
mod simple;

pub use aqdgnn::AqdGnn;
pub use qdgnn::QdGnn;
pub use simple::SimpleQdGnn;

use rand::rngs::StdRng;
use rand::SeedableRng;

use qdgnn_nn::{BatchNorm1d, BnStats, Mode};
use qdgnn_tensor::{Dense, ParamId, ParamStore, Tape, Var};

use crate::config::ModelConfig;
use crate::inputs::{GraphTensors, QueryVectors};

/// Query-independent Graph Encoder activations (`h_G^(1..k)` in eval
/// mode), computed once per graph and shared across online queries.
///
/// The Graph Encoder never consumes query information (Algorithm 2/3
/// keep it feeding on its own output), so at serving time its k forward
/// layers are identical for every query — caching them turns the online
/// stage into query-branch-only work. Build with
/// [`CsModel::build_graph_cache`], use with [`predict_scores_cached`].
#[derive(Clone)]
pub struct GraphCache {
    /// Post-processed Graph Encoder output per layer (n × hidden each).
    pub layers: Vec<std::sync::Arc<Dense>>,
}

/// Output of one model forward pass.
pub struct ForwardResult {
    /// Per-vertex logits (n×1); apply a sigmoid for the paper's `h_q`.
    pub logits: Var,
    /// Parameter leaves created on the tape, for gradient extraction.
    pub leaves: Vec<(Var, ParamId)>,
    /// Train-mode batch-norm statistics (BN index, stats).
    pub bn_stats: Vec<(usize, BnStats)>,
}

/// Snapshot of a model's trainable state (parameters plus batch-norm
/// running statistics), used to keep the best-on-validation weights.
#[derive(Clone)]
pub struct Checkpoint {
    params: Vec<Dense>,
    bn_running: Vec<(Dense, Dense)>,
}

impl Checkpoint {
    /// The snapshotted parameter matrices, in store order.
    pub fn params(&self) -> &[Dense] {
        &self.params
    }

    /// The snapshotted batch-norm `(running_mean, running_var)` pairs.
    pub fn bn_running(&self) -> &[(Dense, Dense)] {
        &self.bn_running
    }

    /// Rebuilds a checkpoint from its parts (checkpoint-file loading).
    pub fn from_parts(params: Vec<Dense>, bn_running: Vec<(Dense, Dense)>) -> Self {
        Checkpoint { params, bn_running }
    }
}

/// Common interface of [`SimpleQdGnn`], [`QdGnn`] and [`AqdGnn`].
///
/// Models are `Send + Sync`: forward passes borrow the model immutably,
/// so data-parallel workers can run queries concurrently against shared
/// parameters; only the optimizer step and
/// [`CsModel::apply_bn_stats`] mutate state (on the training thread).
pub trait CsModel: Send + Sync {
    /// Display name ("QD-GNN", …).
    fn name(&self) -> &'static str;

    /// The hyper-parameters the model was built with.
    fn config(&self) -> &ModelConfig;

    /// The trainable parameters.
    fn store(&self) -> &ParamStore;

    /// Mutable access for the optimizer.
    fn store_mut(&mut self) -> &mut ParamStore;

    /// The model's batch-norm layers (flat table).
    fn bns(&self) -> &[BatchNorm1d];

    /// Mutable batch-norm access.
    fn bns_mut(&mut self) -> &mut [BatchNorm1d];

    /// Records one query's forward pass on `tape`.
    fn forward(
        &self,
        tape: &mut Tape,
        inputs: &GraphTensors,
        query: &QueryVectors,
        mode: Mode,
        rng: &mut StdRng,
    ) -> ForwardResult;

    /// Whether the model consumes query attributes (AQD-GNN).
    fn uses_attributes(&self) -> bool {
        false
    }

    /// Precomputes the query-independent Graph Encoder activations for
    /// online serving (eval mode). Returns `None` for models without a
    /// graph branch (Simple QD-GNN).
    fn build_graph_cache(&self, _inputs: &GraphTensors) -> Option<GraphCache> {
        None
    }

    /// Eval-mode forward pass reusing a [`GraphCache`] built by
    /// [`CsModel::build_graph_cache`] on the same graph and weights.
    /// The default implementation ignores the cache and runs the full
    /// forward pass.
    fn forward_cached(
        &self,
        tape: &mut Tape,
        inputs: &GraphTensors,
        _cache: &GraphCache,
        query: &QueryVectors,
        rng: &mut StdRng,
    ) -> ForwardResult {
        self.forward(tape, inputs, query, Mode::Eval, rng)
    }

    /// Records one eval-mode forward pass over a whole [`QueryBatch`] —
    /// `K` queries stacked vertically so each tape op runs once per layer
    /// instead of once per query. Returns the stacked `K·n × 1` logits,
    /// bit-identical per row block to `K` sequential [`CsModel::forward`]
    /// (or `forward_cached`) passes, or `None` when the model has no
    /// batched path (callers fall back to sequential scoring).
    ///
    /// `cache` is optional: with a cache the graph branch is reused, and
    /// without one it is still computed only once (at `n` rows) before
    /// tiling, so batching pays off either way.
    fn forward_batched_eval(
        &self,
        _tape: &mut Tape,
        _inputs: &GraphTensors,
        _cache: Option<&GraphCache>,
        _batch: &crate::inputs::QueryBatch,
    ) -> Option<Var> {
        None
    }

    /// Folds a batch's BN statistics into the running estimates.
    fn apply_bn_stats(&mut self, stats: &[(usize, BnStats)]) {
        for (idx, s) in stats {
            self.bns_mut()[*idx].apply_stats(s);
        }
    }

    /// Deep-copies the trainable state.
    fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            params: self.store().snapshot(),
            bn_running: self
                .bns()
                .iter()
                .map(|bn| (bn.running_mean().clone(), bn.running_var().clone()))
                .collect(),
        }
    }

    /// Restores a [`CsModel::checkpoint`].
    fn restore(&mut self, ckpt: &Checkpoint) {
        self.store_mut().restore(&ckpt.params);
        for (bn, (mean, var)) in self.bns_mut().iter_mut().zip(&ckpt.bn_running) {
            bn.set_running(mean.clone(), var.clone());
        }
    }
}

impl CsModel for Box<dyn CsModel> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn config(&self) -> &ModelConfig {
        (**self).config()
    }

    fn store(&self) -> &ParamStore {
        (**self).store()
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        (**self).store_mut()
    }

    fn bns(&self) -> &[BatchNorm1d] {
        (**self).bns()
    }

    fn bns_mut(&mut self) -> &mut [BatchNorm1d] {
        (**self).bns_mut()
    }

    fn forward(
        &self,
        tape: &mut Tape,
        inputs: &GraphTensors,
        query: &QueryVectors,
        mode: Mode,
        rng: &mut StdRng,
    ) -> ForwardResult {
        (**self).forward(tape, inputs, query, mode, rng)
    }

    fn uses_attributes(&self) -> bool {
        (**self).uses_attributes()
    }

    fn build_graph_cache(&self, inputs: &GraphTensors) -> Option<GraphCache> {
        (**self).build_graph_cache(inputs)
    }

    fn forward_cached(
        &self,
        tape: &mut Tape,
        inputs: &GraphTensors,
        cache: &GraphCache,
        query: &QueryVectors,
        rng: &mut StdRng,
    ) -> ForwardResult {
        (**self).forward_cached(tape, inputs, cache, query, rng)
    }

    fn forward_batched_eval(
        &self,
        tape: &mut Tape,
        inputs: &GraphTensors,
        cache: Option<&GraphCache>,
        batch: &crate::inputs::QueryBatch,
    ) -> Option<Var> {
        (**self).forward_batched_eval(tape, inputs, cache, batch)
    }
}

/// Runs an inference (eval-mode) forward pass and returns per-vertex
/// community scores `h_q ∈ [0,1]^n` (the online query stage's model
/// invocation, §4.3).
pub fn predict_scores(model: &dyn CsModel, inputs: &GraphTensors, query: &QueryVectors) -> Vec<f32> {
    let mut tape = Tape::new();
    // Eval mode: dropout off, BN uses running stats — rng is never used,
    // any fixed seed keeps the signature honest.
    let mut rng = StdRng::seed_from_u64(0);
    let result = model.forward(&mut tape, inputs, query, Mode::Eval, &mut rng);
    let scores = tape.sigmoid(result.logits);
    tape.value(scores).as_slice().to_vec()
}

/// Like [`predict_scores`], but reuses a precomputed [`GraphCache`]:
/// only the query-dependent branches are evaluated per query.
pub fn predict_scores_cached(
    model: &dyn CsModel,
    inputs: &GraphTensors,
    cache: &GraphCache,
    query: &QueryVectors,
) -> Vec<f32> {
    let mut tape = Tape::new();
    let mut rng = StdRng::seed_from_u64(0);
    let result = model.forward_cached(&mut tape, inputs, cache, query, &mut rng);
    let scores = tape.sigmoid(result.logits);
    tape.value(scores).as_slice().to_vec()
}

/// Batched inference: scores `K` stacked queries in one eval-mode
/// forward pass and splits the result back into per-query score vectors
/// (batch order). Bit-identical to calling [`predict_scores`] /
/// [`predict_scores_cached`] per query; models without a batched path
/// fall back to exactly that.
pub fn predict_scores_batch(
    model: &dyn CsModel,
    inputs: &GraphTensors,
    cache: Option<&GraphCache>,
    batch: &crate::inputs::QueryBatch,
) -> Vec<Vec<f32>> {
    // Batched buffers are K× the single-query sizes; with default malloc
    // tunables they round-trip through the kernel every batch (mmap/trim)
    // and the page faults dominate. Idempotent, one-time tuning.
    qdgnn_tensor::tune_for_batch_serving();
    let mut tape = Tape::new();
    match model.forward_batched_eval(&mut tape, inputs, cache, batch) {
        Some(logits) => {
            let scores = tape.sigmoid(logits);
            let flat = tape.value(scores).as_slice();
            let n = batch.n();
            flat.chunks(n.max(1)).map(|c| c.to_vec()).collect()
        }
        None => batch
            .queries()
            .iter()
            .map(|q| match cache {
                Some(c) => predict_scores_cached(model, inputs, c, q),
                None => predict_scores(model, inputs, q),
            })
            .collect(),
    }
}

/// Builds the model's scalar output head (fused features → logits).
pub(crate) fn output_head(
    store: &mut ParamStore,
    name: &str,
    in_dim: usize,
    rng: &mut StdRng,
) -> (ParamId, ParamId) {
    let w = store.xavier(format!("{name}.out.weight"), in_dim, 1, rng);
    let b = store.zeros(format!("{name}.out.bias"), 1, 1);
    (w, b)
}

/// Applies the output head inside a forward pass.
pub(crate) fn apply_output_head<R: rand::Rng>(
    ctx: &mut blocks::ForwardCtx<'_, R>,
    head: (ParamId, ParamId),
    fused: Var,
) -> Var {
    let w = ctx.param(head.0);
    let b = ctx.param(head.1);
    let y = ctx.tape.matmul(fused, w);
    ctx.tape.add_row(y, b)
}

