//! Community identification: the online query stage's translation of
//! model scores into a community (§4.3 for CS, §6.6 for ACS).

use qdgnn_graph::{traversal, VertexId};

use crate::error::QdgnnError;
use crate::inputs::GraphTensors;

/// Converts per-vertex scores into a community via the paper's
/// constrained BFS (Algorithm 1).
///
/// Non-attributed queries expand over the **structure graph**; attributed
/// queries (`attributed = true`) expand over the **fusion graph**, whose
/// extra same-attribute edges let the answer include vertices connected
/// to the query through attribute similarity (§6.6).
pub fn identify_community(
    tensors: &GraphTensors,
    query_vertices: &[VertexId],
    scores: &[f32],
    gamma: f32,
    attributed: bool,
) -> Vec<VertexId> {
    let graph = if attributed { &tensors.fusion } else { &tensors.graph };
    // Candidate count = vertices clearing γ, i.e. the BFS's admissible
    // set. Observed here so it also covers validation γ-sweeps; per-query
    // serving latency is captured by the `serve.bfs` span at call sites.
    if qdgnn_obs::enabled() {
        let candidates = scores.iter().filter(|&&s| s >= gamma).count();
        qdgnn_obs::observe("identify.candidates", candidates as f64);
    }
    traversal::constrained_bfs(graph, query_vertices, scores, gamma)
}

/// Validating variant of [`identify_community`] for untrusted input:
/// checks every query vertex against the graph and the score vector
/// against the vertex count before traversing.
pub fn try_identify_community(
    tensors: &GraphTensors,
    query_vertices: &[VertexId],
    scores: &[f32],
    gamma: f32,
    attributed: bool,
) -> Result<Vec<VertexId>, QdgnnError> {
    if query_vertices.is_empty() {
        return Err(QdgnnError::EmptyQuery);
    }
    if let Some(&v) = query_vertices.iter().find(|&&v| (v as usize) >= tensors.n) {
        return Err(QdgnnError::VertexOutOfRange { vertex: v, n: tensors.n });
    }
    if scores.len() != tensors.n {
        return Err(QdgnnError::ScoreLengthMismatch { expected: tensors.n, got: scores.len() });
    }
    Ok(identify_community(tensors, query_vertices, scores, gamma, attributed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdgnn_data::presets;
    use qdgnn_graph::attributed::AdjNorm;

    #[test]
    fn perfect_scores_recover_connected_community() {
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
        let community = &data.communities[0];
        let mut scores = vec![0.0f32; t.n];
        for &v in community {
            scores[v as usize] = 1.0;
        }
        let found = identify_community(&t, &community[..1], &scores, 0.5, false);
        // Planted communities are connected, so BFS recovers all of them.
        assert_eq!(&found, community);
    }

    #[test]
    fn fusion_graph_can_reach_more_vertices() {
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, usize::MAX);
        let scores = vec![1.0f32; t.n];
        let on_structure = identify_community(&t, &[0], &scores, 0.5, false);
        let on_fusion = identify_community(&t, &[0], &scores, 0.5, true);
        assert!(on_fusion.len() >= on_structure.len());
    }

    #[test]
    fn gamma_one_keeps_only_queries_when_scores_low() {
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
        let scores = vec![0.4f32; t.n];
        let found = identify_community(&t, &[3, 5], &scores, 0.99, false);
        assert_eq!(found, vec![3, 5]);
    }
}
