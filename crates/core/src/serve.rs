//! The online serving stage, packaged: a trained model, its graph
//! tensors, the selected threshold γ, and the precomputed
//! query-independent Graph Encoder cache.
//!
//! This is the deployment shape the paper's framework implies (§4.3):
//! training happened offline, and each arriving query costs one
//! query-branch inference plus a constrained BFS. Queries can be served
//! one at a time ([`OnlineStage::try_query`]) or in batches
//! ([`OnlineStage::try_query_batch`]) — the batched path stacks every
//! valid query into a single forward pass (one tape op per layer instead
//! of one per query) and is bit-identical to the sequential path.

use std::sync::Arc;

use qdgnn_data::Query;
use qdgnn_graph::{CommunityMetrics, VertexId};
use qdgnn_obs::clock::{Clock, MonotonicClock};

use crate::error::QdgnnError;
use crate::identify::identify_community;
use crate::inputs::{GraphTensors, QueryBatch, QueryVectors};
use crate::models::{
    predict_scores, predict_scores_batch, predict_scores_cached, CsModel, GraphCache,
};

/// Exact per-phase timings for one [`OnlineStage::try_query_batch_timed`]
/// call, measured against the caller-supplied [`Clock`] so the serving
/// engine can attribute batch cost back to individual requests (and
/// fake-clock tests can pin the attribution exactly). Unlike the span
/// instrumentation, these timings are recorded in every build.
pub struct BatchTiming {
    /// Microseconds the whole stacked forward pass took: validation,
    /// query encoding, stacking and batched scoring for every query in
    /// the batch.
    pub forward_us: u64,
    /// Per-query microseconds spent in community identification
    /// (constrained BFS plus extraction), in input order. Zero for
    /// queries whose forward pass failed.
    pub bfs_us: Vec<u64>,
}

/// Model handle held by an [`OnlineStage`]: borrowed from the caller or
/// shared via [`Arc`] (so the stage can be `'static` for worker threads).
enum ModelRef<'a> {
    Borrowed(&'a dyn CsModel),
    Shared(Arc<dyn CsModel>),
}

impl ModelRef<'_> {
    fn get(&self) -> &dyn CsModel {
        match self {
            ModelRef::Borrowed(m) => *m,
            ModelRef::Shared(m) => m.as_ref(),
        }
    }
}

/// Graph-tensor handle: borrowed or [`Arc`]-shared, like [`ModelRef`].
enum TensorsRef<'a> {
    Borrowed(&'a GraphTensors),
    Shared(Arc<GraphTensors>),
}

impl TensorsRef<'_> {
    fn get(&self) -> &GraphTensors {
        match self {
            TensorsRef::Borrowed(t) => t,
            TensorsRef::Shared(t) => t.as_ref(),
        }
    }
}

/// A ready-to-serve community-search endpoint.
pub struct OnlineStage<'a> {
    model: ModelRef<'a>,
    tensors: TensorsRef<'a>,
    cache: Option<GraphCache>,
    gamma: f32,
}

impl<'a> OnlineStage<'a> {
    /// Prepares serving state: precomputes the Graph Encoder cache when
    /// the model has a query-independent branch.
    pub fn new(model: &'a dyn CsModel, tensors: &'a GraphTensors, gamma: f32) -> Self {
        let cache = model.build_graph_cache(tensors);
        OnlineStage {
            model: ModelRef::Borrowed(model),
            tensors: TensorsRef::Borrowed(tensors),
            cache,
            gamma,
        }
    }

    /// Like [`OnlineStage::new`], but takes shared ownership of the model
    /// and tensors, producing a `'static` stage that worker threads can
    /// hold (the serving engine's deployment shape).
    pub fn new_shared(
        model: Arc<dyn CsModel>,
        tensors: Arc<GraphTensors>,
        gamma: f32,
    ) -> OnlineStage<'static> {
        let cache = model.build_graph_cache(&tensors);
        OnlineStage {
            model: ModelRef::Shared(model),
            tensors: TensorsRef::Shared(tensors),
            cache,
            gamma,
        }
    }

    fn model(&self) -> &dyn CsModel {
        self.model.get()
    }

    /// The graph tensors this stage serves against.
    pub fn tensors(&self) -> &GraphTensors {
        self.tensors.get()
    }

    /// The serving threshold γ.
    pub fn gamma(&self) -> f32 {
        self.gamma
    }

    /// Whether the Graph Encoder cache is active.
    pub fn is_cached(&self) -> bool {
        self.cache.is_some()
    }

    /// Validates one query against the served graph and encodes it,
    /// with the exact semantics of [`OnlineStage::try_scores`] (EmA
    /// attribute dropping for non-attributed models, but out-of-range
    /// attribute ids always rejected).
    fn encode_validated(&self, query: &Query) -> Result<QueryVectors, QdgnnError> {
        let t = self.tensors();
        // Validate all attributes, including ones a non-attributed model
        // would drop (EmA semantics): an out-of-range id means the query
        // was built against a different graph, which should not pass
        // silently.
        if let Some(&a) = query.attrs.iter().find(|&&a| (a as usize) >= t.d) {
            return Err(QdgnnError::AttrOutOfRange { attr: a, d: t.d });
        }
        let attrs: &[u32] = if self.model().uses_attributes() { &query.attrs } else { &[] };
        let _s = qdgnn_obs::span!("serve.encode");
        QueryVectors::try_encode(t.n, t.d, &query.vertices, attrs)
    }

    /// Per-vertex community scores `h_q` for one query.
    ///
    /// # Panics
    /// Panics on malformed queries; serve untrusted input through
    /// [`OnlineStage::try_scores`] instead.
    pub fn scores(&self, query: &Query) -> Vec<f32> {
        match self.try_scores(query) {
            Ok(scores) => scores,
            // qdgnn-analyze: allow(QD001, reason = "documented trusted-input variant; untrusted queries go through try_scores")
            Err(e) => panic!("invalid query: {e}"),
        }
    }

    /// Validating variant of [`OnlineStage::scores`]: checks every query
    /// vertex and attribute against the served graph's dimensions and
    /// returns a typed error instead of aborting. This is the entry point
    /// for untrusted (user-supplied) queries.
    pub fn try_scores(&self, query: &Query) -> Result<Vec<f32>, QdgnnError> {
        let qv = self.encode_validated(query)?;
        let _s = qdgnn_obs::span!("serve.forward");
        Ok(match &self.cache {
            Some(cache) => predict_scores_cached(self.model(), self.tensors(), cache, &qv),
            None => predict_scores(self.model(), self.tensors(), &qv),
        })
    }

    /// Scores a slice of queries in one stacked forward pass, with
    /// per-query error isolation: a malformed query yields its own `Err`
    /// without affecting the rest of the batch. Results are returned in
    /// input order and are bit-identical to calling
    /// [`OnlineStage::try_scores`] per query.
    pub fn try_scores_batch(&self, queries: &[Query]) -> Vec<Result<Vec<f32>, QdgnnError>> {
        let _s = qdgnn_obs::span!("serve.forward_batch");
        qdgnn_obs::observe("serve.batch_size", queries.len() as f64);
        let mut out: Vec<Result<Vec<f32>, QdgnnError>> = Vec::with_capacity(queries.len());
        let mut valid: Vec<(usize, QueryVectors)> = Vec::with_capacity(queries.len());
        for (i, q) in queries.iter().enumerate() {
            match self.encode_validated(q) {
                Ok(qv) => {
                    valid.push((i, qv));
                    // placeholder, overwritten from the batch result below
                    out.push(Err(QdgnnError::EmptyQuery));
                }
                Err(e) => out.push(Err(e)),
            }
        }
        if valid.is_empty() {
            return out;
        }
        let vectors: Vec<QueryVectors> = valid.iter().map(|(_, qv)| qv.clone()).collect();
        let batch = match QueryBatch::try_stack(&vectors) {
            Ok(b) => b,
            Err(e) => {
                // Stacking only fails on shape mismatches, which encoding
                // against one graph rules out — but never panic in serving.
                let msg = e.to_string();
                for (i, _) in &valid {
                    if let Some(slot) = out.get_mut(*i) {
                        *slot = Err(QdgnnError::invalid(msg.clone()));
                    }
                }
                return out;
            }
        };
        // Chaos injection point: fire any armed serve-path fault exactly
        // where a crashing model forward fails in production — after
        // validation and stacking, before the batched forward pass.
        #[cfg(feature = "chaos")]
        crate::faultless::serve_forward_hook();
        let scores = predict_scores_batch(self.model(), self.tensors(), self.cache.as_ref(), &batch);
        for ((i, _), s) in valid.iter().zip(scores) {
            if let Some(slot) = out.get_mut(*i) {
                *slot = Ok(s);
            }
        }
        out
    }

    /// Full online answer: inference plus constrained BFS (Algorithm 1,
    /// on the fusion graph for attributed queries).
    ///
    /// # Panics
    /// Panics on malformed queries; serve untrusted input through
    /// [`OnlineStage::try_query`] instead.
    pub fn query(&self, query: &Query) -> Vec<VertexId> {
        match self.try_query(query) {
            Ok(community) => community,
            // qdgnn-analyze: allow(QD001, reason = "documented trusted-input variant; untrusted queries go through try_query")
            Err(e) => panic!("invalid query: {e}"),
        }
    }

    /// Validating variant of [`OnlineStage::query`] for untrusted input:
    /// malformed queries surface as [`QdgnnError`] values, never panics.
    pub fn try_query(&self, query: &Query) -> Result<Vec<VertexId>, QdgnnError> {
        let _query_span = qdgnn_obs::span!("serve.query");
        qdgnn_obs::counter("serve.queries").inc();
        let scores = self.try_scores(query)?;
        Ok(self.identify(query, &scores))
    }

    /// Batched variant of [`OnlineStage::try_query`]: one stacked forward
    /// pass for every valid query, then a per-query constrained BFS.
    /// Per-query error isolation and input-order results, like
    /// [`OnlineStage::try_scores_batch`].
    pub fn try_query_batch(&self, queries: &[Query]) -> Vec<Result<Vec<VertexId>, QdgnnError>> {
        self.try_query_batch_timed(queries, &MonotonicClock::new()).0
    }

    /// [`OnlineStage::try_query_batch`] plus an exact phase breakdown:
    /// how long the stacked forward pass took and how long each query's
    /// BFS took, both read from `clock`. The serving engine passes its
    /// own injected clock here so per-request attribution sums exactly
    /// even under a fake clock; plain callers use
    /// [`OnlineStage::try_query_batch`], which supplies a monotonic
    /// clock and discards the timing.
    pub fn try_query_batch_timed(
        &self,
        queries: &[Query],
        clock: &dyn Clock,
    ) -> (Vec<Result<Vec<VertexId>, QdgnnError>>, BatchTiming) {
        let _query_span = qdgnn_obs::span!("serve.query_batch");
        qdgnn_obs::counter("serve.queries").inc_by(queries.len() as u64);
        let t0 = clock.now_micros();
        let scores = self.try_scores_batch(queries);
        let forward_us = clock.now_micros().saturating_sub(t0);
        let mut bfs_us = Vec::with_capacity(queries.len());
        let mut out = Vec::with_capacity(queries.len());
        for (res, q) in scores.into_iter().zip(queries) {
            let b0 = clock.now_micros();
            let r = res.map(|s| self.identify(q, &s));
            bfs_us.push(clock.now_micros().saturating_sub(b0));
            out.push(r);
        }
        (out, BatchTiming { forward_us, bfs_us })
    }

    /// The post-inference community-identification step (constrained BFS
    /// plus community-size accounting), shared by all query entry points.
    fn identify(&self, query: &Query, scores: &[f32]) -> Vec<VertexId> {
        let attributed = self.model().uses_attributes() && !query.attrs.is_empty();
        let community = {
            let _s = qdgnn_obs::span!("serve.bfs");
            identify_community(self.tensors(), &query.vertices, scores, self.gamma, attributed)
        };
        qdgnn_obs::observe("serve.community_size", community.len() as f64);
        community
    }

    /// Evaluates the endpoint over a query set (micro metrics), scoring
    /// the queries through the batched path in chunks of
    /// [`OnlineStage::EVAL_CHUNK`].
    ///
    /// # Panics
    /// Panics on malformed queries (evaluation sets are trusted input).
    pub fn evaluate(&self, queries: &[Query]) -> CommunityMetrics {
        let predicted: Vec<Vec<VertexId>> = queries
            .chunks(Self::EVAL_CHUNK.max(1))
            .flat_map(|chunk| self.try_query_batch(chunk))
            .map(|r| match r {
                Ok(c) => c,
                // qdgnn-analyze: allow(QD001, reason = "documented trusted-input variant; untrusted queries go through try_query_batch")
                Err(e) => panic!("invalid query in evaluation set: {e}"),
            })
            .collect();
        let truth: Vec<Vec<VertexId>> = queries.iter().map(|q| q.truth.clone()).collect();
        CommunityMetrics::micro(&predicted, &truth)
    }

    /// Batch-chunk size used by [`OnlineStage::evaluate`]: bounds the
    /// stacked working set while keeping the per-layer amortization.
    pub const EVAL_CHUNK: usize = 32;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::models::{AqdGnn, SimpleQdGnn};
    use crate::train::{predict_community, TrainConfig, Trainer};
    use qdgnn_data::{presets, queries as qgen, AttrMode, QuerySplit};
    use qdgnn_graph::attributed::AdjNorm;

    #[test]
    fn cached_serving_matches_uncached_pipeline() {
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
        let queries = qgen::generate(&data, 40, 1, 2, AttrMode::FromCommunity, 8);
        let split = QuerySplit::new(queries, 20, 10, 10);
        let trained = Trainer::new(TrainConfig { epochs: 15, ..TrainConfig::fast() }).train(
            AqdGnn::new(ModelConfig::fast(), t.d),
            &t,
            &split.train,
            &split.val,
        );
        let stage = OnlineStage::new(&trained.model, &t, trained.gamma);
        assert!(stage.is_cached());
        for q in &split.test {
            assert_eq!(
                stage.query(q),
                predict_community(&trained.model, &t, q, trained.gamma),
                "cached endpoint must agree with the reference pipeline"
            );
        }
        let m = stage.evaluate(&split.test);
        assert!((0.0..=1.0).contains(&m.f1));
    }

    #[test]
    fn try_query_rejects_malformed_queries_without_panicking() {
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
        let model = AqdGnn::new(ModelConfig::fast(), t.d);
        let stage = OnlineStage::new(&model, &t, 0.5);
        let good = qgen::generate(&data, 1, 1, 1, AttrMode::FromCommunity, 3).remove(0);
        assert!(stage.try_query(&good).is_ok());

        let bad_vertex = Query { vertices: vec![t.n as u32 + 7], ..good.clone() };
        assert!(matches!(
            stage.try_query(&bad_vertex),
            Err(crate::error::QdgnnError::VertexOutOfRange { .. })
        ));
        let bad_attr = Query { attrs: vec![t.d as u32], ..good.clone() };
        assert!(matches!(
            stage.try_query(&bad_attr),
            Err(crate::error::QdgnnError::AttrOutOfRange { .. })
        ));
        let empty = Query { vertices: vec![], ..good.clone() };
        assert!(matches!(stage.try_query(&empty), Err(crate::error::QdgnnError::EmptyQuery)));
        // The stage must stay serviceable after rejecting bad input.
        assert!(stage.try_query(&good).is_ok());
    }

    #[test]
    fn non_attributed_model_still_validates_attr_ids() {
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
        let model = SimpleQdGnn::new(ModelConfig::fast());
        let stage = OnlineStage::new(&model, &t, 0.5);
        let q = Query {
            vertices: vec![0],
            attrs: vec![t.d as u32 + 1],
            truth: vec![0],
        };
        assert!(matches!(
            stage.try_query(&q),
            Err(crate::error::QdgnnError::AttrOutOfRange { .. })
        ));
    }

    #[test]
    fn simple_model_serves_without_cache() {
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
        let model = SimpleQdGnn::new(ModelConfig::fast());
        let stage = OnlineStage::new(&model, &t, 0.5);
        assert!(!stage.is_cached());
        let q = qgen::generate(&data, 1, 1, 1, AttrMode::Empty, 1).remove(0);
        let c = stage.query(&q);
        assert!(c.contains(&q.vertices[0]));
    }

    #[test]
    fn batch_results_are_bit_identical_and_error_isolated() {
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
        let model = AqdGnn::new(ModelConfig::fast(), t.d);
        let stage = OnlineStage::new(&model, &t, 0.5);
        let mut queries = qgen::generate(&data, 6, 1, 2, AttrMode::FromCommunity, 5);
        // Plant malformed queries in the middle of the batch.
        queries.insert(2, Query { vertices: vec![], attrs: vec![], truth: vec![] });
        queries.insert(4, Query { vertices: vec![t.n as u32], attrs: vec![], truth: vec![] });
        let batch = stage.try_scores_batch(&queries);
        assert_eq!(batch.len(), queries.len());
        for (q, res) in queries.iter().zip(&batch) {
            match res {
                Ok(scores) => {
                    let seq = stage.try_scores(q).unwrap();
                    let same = scores
                        .iter()
                        .zip(&seq)
                        .all(|(a, b)| a.to_bits() == b.to_bits());
                    assert!(same, "batched scores must be bit-identical to sequential");
                }
                Err(e) => assert!(e.is_bad_input(), "unexpected batch error: {e}"),
            }
        }
        assert!(batch[2].is_err() && batch[4].is_err());
        assert_eq!(batch.iter().filter(|r| r.is_ok()).count(), 6);

        let communities = stage.try_query_batch(&queries);
        for (q, res) in queries.iter().zip(&communities) {
            match res {
                Ok(c) => assert_eq!(c, &stage.try_query(q).unwrap()),
                Err(e) => assert!(e.is_bad_input()),
            }
        }
    }

    #[test]
    fn shared_stage_is_static_and_matches_borrowed() {
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
        let model = AqdGnn::new(ModelConfig::fast(), t.d);
        let q = qgen::generate(&data, 1, 1, 1, AttrMode::FromCommunity, 3).remove(0);
        let borrowed = OnlineStage::new(&model, &t, 0.5);
        let expect = borrowed.try_scores(&q).unwrap();

        let shared: OnlineStage<'static> =
            OnlineStage::new_shared(Arc::new(model), Arc::new(t), 0.5);
        fn assert_static<T: 'static + Send + Sync>(_: &T) {}
        assert_static(&shared);
        let got = shared.try_scores(&q).unwrap();
        assert_eq!(
            expect.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            got.iter().map(|s| s.to_bits()).collect::<Vec<_>>()
        );
    }
}
