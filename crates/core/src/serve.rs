//! The online serving stage, packaged: a trained model, its graph
//! tensors, the selected threshold γ, and the precomputed
//! query-independent Graph Encoder cache.
//!
//! This is the deployment shape the paper's framework implies (§4.3):
//! training happened offline, and each arriving query costs one
//! query-branch inference plus a constrained BFS.

use qdgnn_data::Query;
use qdgnn_graph::{CommunityMetrics, VertexId};

use crate::identify::identify_community;
use crate::inputs::GraphTensors;
use crate::models::{predict_scores, predict_scores_cached, CsModel, GraphCache};
use crate::train::encode_query;

/// A ready-to-serve community-search endpoint.
pub struct OnlineStage<'a> {
    model: &'a dyn CsModel,
    tensors: &'a GraphTensors,
    cache: Option<GraphCache>,
    gamma: f32,
}

impl<'a> OnlineStage<'a> {
    /// Prepares serving state: precomputes the Graph Encoder cache when
    /// the model has a query-independent branch.
    pub fn new(model: &'a dyn CsModel, tensors: &'a GraphTensors, gamma: f32) -> Self {
        let cache = model.build_graph_cache(tensors);
        OnlineStage { model, tensors, cache, gamma }
    }

    /// The serving threshold γ.
    pub fn gamma(&self) -> f32 {
        self.gamma
    }

    /// Whether the Graph Encoder cache is active.
    pub fn is_cached(&self) -> bool {
        self.cache.is_some()
    }

    /// Per-vertex community scores `h_q` for one query.
    pub fn scores(&self, query: &Query) -> Vec<f32> {
        let qv = encode_query(self.model, self.tensors, query);
        match &self.cache {
            Some(cache) => predict_scores_cached(self.model, self.tensors, cache, &qv),
            None => predict_scores(self.model, self.tensors, &qv),
        }
    }

    /// Full online answer: inference plus constrained BFS (Algorithm 1,
    /// on the fusion graph for attributed queries).
    pub fn query(&self, query: &Query) -> Vec<VertexId> {
        let scores = self.scores(query);
        let attributed = self.model.uses_attributes() && !query.attrs.is_empty();
        identify_community(self.tensors, &query.vertices, &scores, self.gamma, attributed)
    }

    /// Evaluates the endpoint over a query set (micro metrics).
    pub fn evaluate(&self, queries: &[Query]) -> CommunityMetrics {
        let predicted: Vec<Vec<VertexId>> = queries.iter().map(|q| self.query(q)).collect();
        let truth: Vec<Vec<VertexId>> = queries.iter().map(|q| q.truth.clone()).collect();
        CommunityMetrics::micro(&predicted, &truth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::models::{AqdGnn, SimpleQdGnn};
    use crate::train::{predict_community, TrainConfig, Trainer};
    use qdgnn_data::{presets, queries as qgen, AttrMode, QuerySplit};
    use qdgnn_graph::attributed::AdjNorm;

    #[test]
    fn cached_serving_matches_uncached_pipeline() {
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
        let queries = qgen::generate(&data, 40, 1, 2, AttrMode::FromCommunity, 8);
        let split = QuerySplit::new(queries, 20, 10, 10);
        let trained = Trainer::new(TrainConfig { epochs: 15, ..TrainConfig::fast() }).train(
            AqdGnn::new(ModelConfig::fast(), t.d),
            &t,
            &split.train,
            &split.val,
        );
        let stage = OnlineStage::new(&trained.model, &t, trained.gamma);
        assert!(stage.is_cached());
        for q in &split.test {
            assert_eq!(
                stage.query(q),
                predict_community(&trained.model, &t, q, trained.gamma),
                "cached endpoint must agree with the reference pipeline"
            );
        }
        let m = stage.evaluate(&split.test);
        assert!((0.0..=1.0).contains(&m.f1));
    }

    #[test]
    fn simple_model_serves_without_cache() {
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
        let model = SimpleQdGnn::new(ModelConfig::fast());
        let stage = OnlineStage::new(&model, &t, 0.5);
        assert!(!stage.is_cached());
        let q = qgen::generate(&data, 1, 1, 1, AttrMode::Empty, 1).remove(0);
        let c = stage.query(&q);
        assert!(c.contains(&q.vertices[0]));
    }
}
