//! The online serving stage, packaged: a trained model, its graph
//! tensors, the selected threshold γ, and the precomputed
//! query-independent Graph Encoder cache.
//!
//! This is the deployment shape the paper's framework implies (§4.3):
//! training happened offline, and each arriving query costs one
//! query-branch inference plus a constrained BFS.

use qdgnn_data::Query;
use qdgnn_graph::{CommunityMetrics, VertexId};

use crate::error::QdgnnError;
use crate::identify::identify_community;
use crate::inputs::{GraphTensors, QueryVectors};
use crate::models::{predict_scores, predict_scores_cached, CsModel, GraphCache};

/// A ready-to-serve community-search endpoint.
pub struct OnlineStage<'a> {
    model: &'a dyn CsModel,
    tensors: &'a GraphTensors,
    cache: Option<GraphCache>,
    gamma: f32,
}

impl<'a> OnlineStage<'a> {
    /// Prepares serving state: precomputes the Graph Encoder cache when
    /// the model has a query-independent branch.
    pub fn new(model: &'a dyn CsModel, tensors: &'a GraphTensors, gamma: f32) -> Self {
        let cache = model.build_graph_cache(tensors);
        OnlineStage { model, tensors, cache, gamma }
    }

    /// The serving threshold γ.
    pub fn gamma(&self) -> f32 {
        self.gamma
    }

    /// Whether the Graph Encoder cache is active.
    pub fn is_cached(&self) -> bool {
        self.cache.is_some()
    }

    /// Per-vertex community scores `h_q` for one query.
    ///
    /// # Panics
    /// Panics on malformed queries; serve untrusted input through
    /// [`OnlineStage::try_scores`] instead.
    pub fn scores(&self, query: &Query) -> Vec<f32> {
        match self.try_scores(query) {
            Ok(scores) => scores,
            // qdgnn-analyze: allow(QD001, reason = "documented trusted-input variant; untrusted queries go through try_scores")
            Err(e) => panic!("invalid query: {e}"),
        }
    }

    /// Validating variant of [`OnlineStage::scores`]: checks every query
    /// vertex and attribute against the served graph's dimensions and
    /// returns a typed error instead of aborting. This is the entry point
    /// for untrusted (user-supplied) queries.
    pub fn try_scores(&self, query: &Query) -> Result<Vec<f32>, QdgnnError> {
        // Validate all attributes, including ones a non-attributed model
        // would drop (EmA semantics): an out-of-range id means the query
        // was built against a different graph, which should not pass
        // silently.
        if let Some(&a) = query.attrs.iter().find(|&&a| (a as usize) >= self.tensors.d) {
            return Err(QdgnnError::AttrOutOfRange { attr: a, d: self.tensors.d });
        }
        let attrs: &[u32] = if self.model.uses_attributes() { &query.attrs } else { &[] };
        let qv = {
            let _s = qdgnn_obs::span!("serve.encode");
            QueryVectors::try_encode(self.tensors.n, self.tensors.d, &query.vertices, attrs)?
        };
        let _s = qdgnn_obs::span!("serve.forward");
        Ok(match &self.cache {
            Some(cache) => predict_scores_cached(self.model, self.tensors, cache, &qv),
            None => predict_scores(self.model, self.tensors, &qv),
        })
    }

    /// Full online answer: inference plus constrained BFS (Algorithm 1,
    /// on the fusion graph for attributed queries).
    ///
    /// # Panics
    /// Panics on malformed queries; serve untrusted input through
    /// [`OnlineStage::try_query`] instead.
    pub fn query(&self, query: &Query) -> Vec<VertexId> {
        match self.try_query(query) {
            Ok(community) => community,
            // qdgnn-analyze: allow(QD001, reason = "documented trusted-input variant; untrusted queries go through try_query")
            Err(e) => panic!("invalid query: {e}"),
        }
    }

    /// Validating variant of [`OnlineStage::query`] for untrusted input:
    /// malformed queries surface as [`QdgnnError`] values, never panics.
    pub fn try_query(&self, query: &Query) -> Result<Vec<VertexId>, QdgnnError> {
        let _query_span = qdgnn_obs::span!("serve.query");
        qdgnn_obs::counter("serve.queries").inc();
        let scores = self.try_scores(query)?;
        let attributed = self.model.uses_attributes() && !query.attrs.is_empty();
        let community = {
            let _s = qdgnn_obs::span!("serve.bfs");
            identify_community(self.tensors, &query.vertices, &scores, self.gamma, attributed)
        };
        qdgnn_obs::observe("serve.community_size", community.len() as f64);
        Ok(community)
    }

    /// Evaluates the endpoint over a query set (micro metrics).
    pub fn evaluate(&self, queries: &[Query]) -> CommunityMetrics {
        let predicted: Vec<Vec<VertexId>> = queries.iter().map(|q| self.query(q)).collect();
        let truth: Vec<Vec<VertexId>> = queries.iter().map(|q| q.truth.clone()).collect();
        CommunityMetrics::micro(&predicted, &truth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::models::{AqdGnn, SimpleQdGnn};
    use crate::train::{predict_community, TrainConfig, Trainer};
    use qdgnn_data::{presets, queries as qgen, AttrMode, QuerySplit};
    use qdgnn_graph::attributed::AdjNorm;

    #[test]
    fn cached_serving_matches_uncached_pipeline() {
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
        let queries = qgen::generate(&data, 40, 1, 2, AttrMode::FromCommunity, 8);
        let split = QuerySplit::new(queries, 20, 10, 10);
        let trained = Trainer::new(TrainConfig { epochs: 15, ..TrainConfig::fast() }).train(
            AqdGnn::new(ModelConfig::fast(), t.d),
            &t,
            &split.train,
            &split.val,
        );
        let stage = OnlineStage::new(&trained.model, &t, trained.gamma);
        assert!(stage.is_cached());
        for q in &split.test {
            assert_eq!(
                stage.query(q),
                predict_community(&trained.model, &t, q, trained.gamma),
                "cached endpoint must agree with the reference pipeline"
            );
        }
        let m = stage.evaluate(&split.test);
        assert!((0.0..=1.0).contains(&m.f1));
    }

    #[test]
    fn try_query_rejects_malformed_queries_without_panicking() {
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
        let model = AqdGnn::new(ModelConfig::fast(), t.d);
        let stage = OnlineStage::new(&model, &t, 0.5);
        let good = qgen::generate(&data, 1, 1, 1, AttrMode::FromCommunity, 3).remove(0);
        assert!(stage.try_query(&good).is_ok());

        let bad_vertex = Query { vertices: vec![t.n as u32 + 7], ..good.clone() };
        assert!(matches!(
            stage.try_query(&bad_vertex),
            Err(crate::error::QdgnnError::VertexOutOfRange { .. })
        ));
        let bad_attr = Query { attrs: vec![t.d as u32], ..good.clone() };
        assert!(matches!(
            stage.try_query(&bad_attr),
            Err(crate::error::QdgnnError::AttrOutOfRange { .. })
        ));
        let empty = Query { vertices: vec![], ..good.clone() };
        assert!(matches!(stage.try_query(&empty), Err(crate::error::QdgnnError::EmptyQuery)));
        // The stage must stay serviceable after rejecting bad input.
        assert!(stage.try_query(&good).is_ok());
    }

    #[test]
    fn non_attributed_model_still_validates_attr_ids() {
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
        let model = SimpleQdGnn::new(ModelConfig::fast());
        let stage = OnlineStage::new(&model, &t, 0.5);
        let q = Query {
            vertices: vec![0],
            attrs: vec![t.d as u32 + 1],
            truth: vec![0],
        };
        assert!(matches!(
            stage.try_query(&q),
            Err(crate::error::QdgnnError::AttrOutOfRange { .. })
        ));
    }

    #[test]
    fn simple_model_serves_without_cache() {
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
        let model = SimpleQdGnn::new(ModelConfig::fast());
        let stage = OnlineStage::new(&model, &t, 0.5);
        assert!(!stage.is_cached());
        let q = qgen::generate(&data, 1, 1, 1, AttrMode::Empty, 1).remove(0);
        let c = stage.query(&q);
        assert!(c.contains(&q.vertices[0]));
    }
}
