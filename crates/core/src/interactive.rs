//! The interactive community-search framework of §7.3.
//!
//! ICS-GNN's pipeline is: extract a candidate subgraph around the query,
//! score its vertices with a GNN, return the k vertices with maximum
//! scores reachable from the query (BFS-constrained greedy selection),
//! then let the user adjust the answer and iterate. The paper's §7.3
//! experiment keeps this pipeline and swaps the embedding model: Vanilla
//! GCN (original ICS-GNN, re-trained per query) versus the pre-trained
//! QD-GNN / AQD-GNN.
//!
//! [`SubgraphScorer`] abstracts the embedding model; `qdgnn-baselines`
//! implements it for per-query-trained GCN (ICS-GNN) and this crate for
//! any pre-trained [`CsModel`].

use rand::rngs::StdRng;
use rand::SeedableRng;

use qdgnn_data::Query;
use qdgnn_graph::{f1_score, traversal, AttributedGraph, Graph, VertexId};

use crate::inputs::GraphTensors;
use crate::models::{predict_scores, CsModel};
use crate::train::encode_query;

/// Scores the vertices of a candidate subgraph for a (localized) query.
pub trait SubgraphScorer {
    /// Human-readable method name for result tables.
    fn label(&self) -> String;

    /// Returns one score per local vertex of `sub`.
    ///
    /// `tensors` are the candidate's precomputed tensors; `query` is in
    /// local vertex ids with `truth` restricted to the candidate.
    fn score_subgraph(
        &self,
        sub: &AttributedGraph,
        tensors: &GraphTensors,
        query: &Query,
        seed: u64,
    ) -> Vec<f32>;
}

/// [`SubgraphScorer`] backed by a pre-trained model: one inference pass,
/// no per-query training (the framework contribution of §5: detaching
/// training from the online stage).
pub struct ModelScorer<'a> {
    /// The pre-trained model.
    pub model: &'a dyn CsModel,
}

impl SubgraphScorer for ModelScorer<'_> {
    fn label(&self) -> String {
        self.model.name().to_string()
    }

    fn score_subgraph(
        &self,
        _sub: &AttributedGraph,
        tensors: &GraphTensors,
        query: &Query,
        _seed: u64,
    ) -> Vec<f32> {
        let qv = encode_query(self.model, tensors, query);
        predict_scores(self.model, tensors, &qv)
    }
}

/// Interactive-loop parameters.
#[derive(Clone, Debug)]
pub struct InteractiveConfig {
    /// Candidate subgraph size cap (BFS order around the query).
    pub candidate_size: usize,
    /// Answer size k; `None` uses the ground-truth size (the "user knows
    /// how big a community they want" semantics of ICS-GNN's k).
    pub community_size: Option<usize>,
    /// Number of user-feedback rounds (including the initial one).
    pub rounds: usize,
    /// Ground-truth vertices revealed as feedback per round.
    pub feedback_per_round: usize,
}

impl Default for InteractiveConfig {
    fn default() -> Self {
        InteractiveConfig {
            candidate_size: 400,
            community_size: None,
            rounds: 3,
            feedback_per_round: 2,
        }
    }
}

/// Outcome of one interactive session.
#[derive(Clone, Debug)]
pub struct InteractiveOutcome {
    /// Per-round F1 of the returned community.
    pub f1_per_round: Vec<f64>,
    /// Per-round wall-clock seconds (candidate + scoring + selection).
    pub seconds_per_round: Vec<f64>,
    /// The final community (global vertex ids).
    pub community: Vec<VertexId>,
}

impl InteractiveOutcome {
    /// F1 after the last round.
    pub fn final_f1(&self) -> f64 {
        self.f1_per_round.last().copied().unwrap_or(0.0)
    }

    /// Mean seconds per interaction.
    pub fn avg_seconds(&self) -> f64 {
        if self.seconds_per_round.is_empty() {
            0.0
        } else {
            self.seconds_per_round.iter().sum::<f64>() / self.seconds_per_round.len() as f64
        }
    }
}

/// Runs the interactive loop for one query, simulating user feedback by
/// revealing ground-truth members missing from the current answer.
pub fn run_interactive(
    graph: &AttributedGraph,
    scorer: &dyn SubgraphScorer,
    query: &Query,
    cfg: &InteractiveConfig,
    seed: u64,
) -> InteractiveOutcome {
    let mut current = query.clone();
    let k = cfg.community_size.unwrap_or(query.truth.len());
    let mut f1_per_round = Vec::with_capacity(cfg.rounds);
    let mut seconds = Vec::with_capacity(cfg.rounds);
    let mut community: Vec<VertexId> = Vec::new();
    let mut rng = StdRng::seed_from_u64(seed);
    use rand::seq::SliceRandom;

    for round in 0..cfg.rounds {
        // Per-round wall timing via the injectable obs clock (QD007).
        let start_us = qdgnn_obs::clock::wall_micros();
        // 1. Candidate subgraph around the current query vertices.
        let candidate_vertices =
            candidate_by_bfs(graph.graph(), &current.vertices, cfg.candidate_size);
        let (sub, map) = graph.induced_subgraph(&candidate_vertices);
        let local_query = Query {
            vertices: current.vertices.iter().filter_map(|&v| map.local(v)).collect(),
            attrs: current.attrs.clone(),
            truth: {
                let mut t: Vec<VertexId> =
                    current.truth.iter().filter_map(|&v| map.local(v)).collect();
                t.sort_unstable();
                t
            },
        };
        let tensors = GraphTensors::new(&sub, qdgnn_graph::attributed::AdjNorm::GcnSym, 100);
        // 2. Score.
        let scores =
            scorer.score_subgraph(&sub, &tensors, &local_query, seed ^ (round as u64) << 8);
        // 3. k-sized greedy selection.
        let local_comm = select_k_by_scores(sub.graph(), &local_query.vertices, &scores, k);
        community = map.to_global(&local_comm);
        community.sort_unstable();
        seconds
            .push(qdgnn_obs::clock::wall_micros().saturating_sub(start_us) as f64 / 1e6);
        f1_per_round.push(f1_score(&community, &query.truth));

        // 4. Simulated feedback: reveal missing ground-truth members.
        if round + 1 < cfg.rounds {
            let mut missing: Vec<VertexId> = query
                .truth
                .iter()
                .copied()
                .filter(|v| community.binary_search(v).is_err())
                .filter(|v| !current.vertices.contains(v))
                .collect();
            if missing.is_empty() {
                // User is satisfied; later rounds repeat the answer.
                for _ in round + 1..cfg.rounds {
                    f1_per_round.push(*f1_per_round.last().unwrap());
                    seconds.push(*seconds.last().unwrap());
                }
                break;
            }
            missing.shuffle(&mut rng);
            current
                .vertices
                .extend(missing.into_iter().take(cfg.feedback_per_round));
            current.vertices.sort_unstable();
        }
    }
    InteractiveOutcome { f1_per_round, seconds_per_round: seconds, community }
}

/// BFS-order candidate extraction capped at `max_size` vertices.
pub fn candidate_by_bfs(graph: &Graph, sources: &[VertexId], max_size: usize) -> Vec<VertexId> {
    let dist = traversal::bfs_distances(graph, sources);
    let mut reached: Vec<VertexId> = (0..graph.num_vertices() as VertexId)
        .filter(|&v| dist[v as usize] != usize::MAX)
        .collect();
    reached.sort_by_key(|&v| (dist[v as usize], v));
    reached.truncate(max_size.max(sources.len()));
    reached.sort_unstable();
    reached
}

/// ICS-GNN's community selection: grow from the seeds through the graph,
/// always absorbing the reachable vertex with the highest score, until
/// `k` vertices are selected (or the component is exhausted). Seeds are
/// always included.
pub fn select_k_by_scores(
    graph: &Graph,
    seeds: &[VertexId],
    scores: &[f32],
    k: usize,
) -> Vec<VertexId> {
    assert_eq!(scores.len(), graph.num_vertices(), "one score per vertex");
    let mut selected = vec![false; graph.num_vertices()];
    let mut in_frontier = vec![false; graph.num_vertices()];
    let mut frontier: Vec<VertexId> = Vec::new();
    let mut out = Vec::with_capacity(k.max(seeds.len()));
    let push_neighbors = |v: VertexId,
                              selected: &[bool],
                              in_frontier: &mut Vec<bool>,
                              frontier: &mut Vec<VertexId>| {
        for &u in graph.neighbors(v) {
            if !selected[u as usize] && !in_frontier[u as usize] {
                in_frontier[u as usize] = true;
                frontier.push(u);
            }
        }
    };
    for &s in seeds {
        if !selected[s as usize] {
            selected[s as usize] = true;
            out.push(s);
        }
    }
    for &s in seeds {
        push_neighbors(s, &selected, &mut in_frontier, &mut frontier);
    }
    while out.len() < k && !frontier.is_empty() {
        // Pick the frontier vertex with max score (ties: smaller id).
        let (pos, _) = frontier
            .iter()
            .enumerate()
            .max_by(|(_, &a), (_, &b)| {
                scores[a as usize]
                    .partial_cmp(&scores[b as usize])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b.cmp(&a))
            })
            .expect("non-empty frontier");
        let v = frontier.swap_remove(pos);
        in_frontier[v as usize] = false;
        selected[v as usize] = true;
        out.push(v);
        push_neighbors(v, &selected, &mut in_frontier, &mut frontier);
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::models::{AqdGnn, QdGnn};
    use crate::train::{TrainConfig, Trainer};
    use qdgnn_data::{presets, queries as qgen, AttrMode};
    use qdgnn_graph::attributed::AdjNorm;

    #[test]
    fn select_k_prefers_high_scores_but_stays_connected() {
        // Path 0-1-2-3-4 with a high-score vertex 4 far away.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let scores = [0.1, 0.3, 0.2, 0.25, 0.9];
        let c = select_k_by_scores(&g, &[0], &scores, 3);
        // Must include seed 0; can only reach 4 through 1,2,3, so with k=3
        // it takes the best *reachable* ones: 0, 1, then 2 (frontier of 1).
        assert_eq!(c, vec![0, 1, 2]);
    }

    #[test]
    fn select_k_handles_k_larger_than_component() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let scores = [0.5; 4];
        let c = select_k_by_scores(&g, &[0], &scores, 10);
        assert_eq!(c, vec![0, 1]);
    }

    #[test]
    fn candidate_bfs_caps_size_and_keeps_sources() {
        let d = presets::toy();
        let cand = candidate_by_bfs(d.graph.graph(), &[0], 5);
        assert!(cand.len() <= 5);
        assert!(cand.contains(&0));
    }

    #[test]
    fn interactive_feedback_improves_or_maintains_f1() {
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
        let all = qgen::generate(&data, 40, 1, 2, AttrMode::Empty, 5);
        let split = qdgnn_data::QuerySplit::new(all, 20, 10, 10);
        let trained = Trainer::new(TrainConfig { epochs: 20, ..TrainConfig::fast() }).train(
            QdGnn::new(ModelConfig::fast(), t.d),
            &t,
            &split.train,
            &split.val,
        );
        let scorer = ModelScorer { model: &trained.model };
        let cfg = InteractiveConfig { rounds: 3, ..Default::default() };
        let outcome = run_interactive(&data.graph, &scorer, &split.test[0], &cfg, 1);
        assert_eq!(outcome.f1_per_round.len(), 3);
        assert!(outcome.final_f1() >= outcome.f1_per_round[0] - 0.25);
        assert!(!outcome.community.is_empty());
    }

    #[test]
    fn fake_clock_pins_seconds_per_round() {
        use qdgnn_obs::clock::{self, FakeClock, MonotonicClock};
        use std::sync::Arc;

        // Scorer that advances the injected wall clock by exactly 1ms per
        // scoring call, so per-round timing is deterministic.
        struct TickingScorer {
            clock: Arc<FakeClock>,
        }
        impl SubgraphScorer for TickingScorer {
            fn label(&self) -> String {
                "ticking".to_string()
            }
            fn score_subgraph(
                &self,
                sub: &AttributedGraph,
                _tensors: &GraphTensors,
                _query: &Query,
                _seed: u64,
            ) -> Vec<f32> {
                self.clock.advance_micros(1_000);
                vec![0.5; sub.num_vertices()]
            }
        }

        let fake = Arc::new(FakeClock::new());
        clock::set_wall(fake.clone());
        let data = presets::toy();
        let query = Query { vertices: vec![0], attrs: vec![], truth: vec![0, 1, 2] };
        let cfg = InteractiveConfig { rounds: 3, ..Default::default() };
        let outcome =
            run_interactive(&data.graph, &TickingScorer { clock: fake }, &query, &cfg, 7);
        // `reset()` is a no-op without the `enabled` feature, so restore
        // the monotonic wall clock by hand.
        clock::set_wall(Arc::new(MonotonicClock::new()));

        assert_eq!(outcome.seconds_per_round.len(), 3);
        for s in &outcome.seconds_per_round {
            assert!((s - 0.001).abs() < 1e-12, "round took {s}s on the fake clock");
        }
    }

    #[test]
    fn interactive_with_attributed_model() {
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
        let all = qgen::generate(&data, 30, 1, 2, AttrMode::FromCommunity, 6);
        let split = qdgnn_data::QuerySplit::new(all, 15, 8, 7);
        let trained = Trainer::new(TrainConfig { epochs: 15, ..TrainConfig::fast() }).train(
            AqdGnn::new(ModelConfig::fast(), t.d),
            &t,
            &split.train,
            &split.val,
        );
        let scorer = ModelScorer { model: &trained.model };
        let outcome = run_interactive(
            &data.graph,
            &scorer,
            &split.test[0],
            &InteractiveConfig::default(),
            2,
        );
        assert!((0.0..=1.0).contains(&outcome.final_f1()));
        assert!(outcome.avg_seconds() >= 0.0);
    }
}
