//! Model hyper-parameters (§7.1.6 defaults).

use qdgnn_graph::attributed::AdjNorm;

/// Aggregation used by the Feature Fusion operator (Eq. 6 / Eq. 11).
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FusionAgg {
    /// Column concatenation (the paper's choice, §7.1.6).
    Concat,
    /// Elementwise sum (requires equal encoder widths; kept for the
    /// fusion-aggregation ablation).
    Sum,
    /// Learned per-vertex sigmoid gates, one per branch, applied before
    /// summation — an extension in the spirit of the attention
    /// techniques the paper cites ([12, 28, 40]); evaluated by the
    /// `extras` ablation binary.
    Attention,
}

/// Hyper-parameters shared by the three models.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct ModelConfig {
    /// Number of GNN layers `k` (paper: 3).
    pub layers: usize,
    /// Hidden width per encoder (paper: 128).
    pub hidden: usize,
    /// Dropout rate (paper: 0.5).
    pub dropout: f32,
    /// Fusion aggregation (paper: concatenation).
    pub fusion: FusionAgg,
    /// Whether intermediate layers consume fused features (Eq. 7 / 12).
    /// `false` reproduces the QD-GNN-noFu / AQD-GNN-noFu ablation of
    /// §7.5.1, where encoders only fuse after the last layer.
    pub feature_fusion: bool,
    /// Adjacency normalization for the SUM aggregation (see
    /// [`AdjNorm`]; `GcnSym` is the faithful default).
    #[serde(skip, default = "default_adj_norm")]
    pub adj_norm: AdjNorm,
    /// Up-weight positive vertices in the BCE loss by `|neg|/|pos|`
    /// (stabilizes training on large graphs with small communities; the
    /// paper's plain BCE corresponds to `false`).
    pub class_balance: bool,
    /// Per-attribute frequency cap when building the fusion graph
    /// (§6.6); attributes more frequent than this add no fusion edges.
    pub fusion_graph_attr_cap: usize,
    /// RNG seed for parameter initialization and dropout streams.
    pub seed: u64,
}

fn default_adj_norm() -> AdjNorm {
    AdjNorm::GcnSym
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            layers: 3,
            hidden: 128,
            dropout: 0.5,
            fusion: FusionAgg::Concat,
            feature_fusion: true,
            adj_norm: default_adj_norm(),
            class_balance: true,
            fusion_graph_attr_cap: 100,
            seed: 1,
        }
    }
}

impl ModelConfig {
    /// A small fast configuration for tests and examples.
    pub fn fast() -> Self {
        ModelConfig { layers: 3, hidden: 32, ..Default::default() }
    }

    /// Width of the fused feature for `branches` encoder outputs.
    pub fn fused_width(&self, branches: usize) -> usize {
        match self.fusion {
            FusionAgg::Concat => self.hidden * branches,
            FusionAgg::Sum | FusionAgg::Attention => self.hidden,
        }
    }

    /// Validates invariants; call before building a model.
    ///
    /// # Panics
    /// Panics on a degenerate configuration.
    pub fn validate(&self) {
        assert!(self.layers >= 1, "need at least one layer");
        assert!(self.hidden >= 1, "hidden width must be positive");
        assert!((0.0..1.0).contains(&self.dropout), "dropout must be in [0,1)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ModelConfig::default();
        assert_eq!(c.layers, 3);
        assert_eq!(c.hidden, 128);
        assert_eq!(c.dropout, 0.5);
        assert_eq!(c.fusion, FusionAgg::Concat);
        assert!(c.feature_fusion);
    }

    #[test]
    fn fused_width_by_agg() {
        let mut c = ModelConfig::fast();
        assert_eq!(c.fused_width(3), 96);
        c.fusion = FusionAgg::Sum;
        assert_eq!(c.fused_width(3), 32);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn zero_layers_rejected() {
        ModelConfig { layers: 0, ..Default::default() }.validate();
    }
}
