//! Fault-injection harness for chaos testing (compiled only with the
//! `chaos` feature; never enable it in production builds).
//!
//! The harness drives three failure classes the robustness layer must
//! absorb:
//!
//! * **poisoned optimizer steps** — [`inject_at_step`] arms a
//!   [`GradFault`] that the training loop applies to the reduced gradient
//!   batch at a chosen step attempt, exercising the NaN/Inf skip guard
//!   and the divergence-rollback path in `run_training`;
//! * **damaged model/checkpoint files** — [`corrupt_file_line`] and
//!   [`truncate_file_at_line`] mangle persisted artifacts at any line,
//!   exercising the `InvalidData` rejection paths of `load_model` and
//!   `Trainer::resume_from`;
//! * **malformed queries** — [`out_of_range_query`] builds queries whose
//!   ids cannot belong to the served graph, exercising
//!   `OnlineStage::try_query` validation;
//! * **serve-path faults** — [`inject_serve_fault_at_call`] arms a
//!   [`ServeFault`] (panic, stall, simulated allocation failure) that
//!   fires inside `OnlineStage::try_scores_batch` at a chosen batched
//!   forward call, exercising the serving engine's worker supervision,
//!   deadline shedding, and circuit breaker.
//!
//! Step attempts are counted monotonically across divergence rollbacks
//! (the counter never rewinds), so a fault armed for step `s` fires at
//! most once. Faults are one-shot: firing removes them from the registry.
//!
//! The registries are process-global; chaos tests that train or serve
//! concurrently must serialize on their own lock.

use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::{Mutex, OnceLock};

use qdgnn_data::Query;
use qdgnn_tensor::GradStore;

/// A gradient fault to apply to one optimizer step attempt.
#[derive(Clone, Copy, Debug)]
pub enum GradFault {
    /// Replaces every accumulated gradient value with NaN — must be
    /// caught by the per-step finite guard (the step is skipped).
    NanGrads,
    /// Scales gradients by a huge factor — with clipping disabled this
    /// wrecks the weights and must trigger divergence rollback.
    ExplodeGrads(f32),
    /// Panics mid-epoch, before the optimizer step is applied — a hard
    /// crash inside training. Exercises the run registry's crash flight
    /// recorder: the panic hook must flush `flight.ndjson` and leave the
    /// series journal validator-clean.
    PanicInStep,
}

fn registry() -> &'static Mutex<HashMap<u64, GradFault>> {
    static REGISTRY: OnceLock<Mutex<HashMap<u64, GradFault>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Arms `fault` to fire at optimizer step attempt `step` (1-based).
pub fn inject_at_step(step: u64, fault: GradFault) {
    registry().lock().unwrap().insert(step, fault);
}

/// Arms `fault` for every step attempt in `steps`.
pub fn inject_at_steps(steps: impl IntoIterator<Item = u64>, fault: GradFault) {
    let mut reg = registry().lock().unwrap();
    for s in steps {
        reg.insert(s, fault);
    }
}

/// Disarms every pending fault.
pub fn clear() {
    registry().lock().unwrap().clear();
}

/// Number of faults still armed (fired faults are removed).
pub fn pending() -> usize {
    registry().lock().unwrap().len()
}

/// Training-loop hook: applies (and consumes) the fault armed for `step`,
/// if any.
pub(crate) fn mutate_gradients(step: u64, grads: &mut GradStore) {
    let fault = registry().lock().unwrap().remove(&step);
    match fault {
        None => {}
        Some(GradFault::NanGrads) => grads.scale(f32::NAN),
        Some(GradFault::ExplodeGrads(k)) => grads.scale(k),
        Some(GradFault::PanicInStep) => {
            // Panicking here is the contract: the run registry's panic
            // hook must flush the flight recorder. Not reachable from
            // any serving entry point, so no QD009 suppression needed.
            panic!("chaos: injected panic in training step (attempt {step})")
        }
    }
}

/// A fault to fire inside one batched serving forward pass.
#[derive(Clone, Copy, Debug)]
pub enum ServeFault {
    /// Panics mid-forward — the whole batch dies. Exercises worker
    /// supervision: every co-batched request must still get a typed
    /// `WorkerPanicked` reply and the worker must respawn.
    PanicInForward,
    /// Sleeps this many microseconds of *real* time before the forward
    /// pass — a slow/stuck model. Exercises deadline shedding of
    /// requests queued behind the stall.
    StallForwardMicros(u64),
    /// Simulates a failed working-buffer allocation by panicking with a
    /// capacity-overflow message, the shape a real OOM abort-avoiding
    /// allocator hook would produce. Supervision must treat it exactly
    /// like any other panic.
    AllocFailure,
}

fn serve_registry() -> &'static Mutex<HashMap<u64, ServeFault>> {
    static REGISTRY: OnceLock<Mutex<HashMap<u64, ServeFault>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn serve_call_counter() -> &'static Mutex<u64> {
    static COUNTER: OnceLock<Mutex<u64>> = OnceLock::new();
    COUNTER.get_or_init(|| Mutex::new(0))
}

/// Arms `fault` to fire at the `call`-th (1-based) batched serving
/// forward pass counted from the last [`reset_serve_calls`]. One-shot:
/// firing removes the fault.
pub fn inject_serve_fault_at_call(call: u64, fault: ServeFault) {
    serve_registry().lock().unwrap().insert(call, fault);
}

/// Disarms every pending serve fault and rewinds the call counter, so a
/// test starts from a clean slate regardless of what ran before it.
pub fn reset_serve_calls() {
    serve_registry().lock().unwrap().clear();
    *serve_call_counter().lock().unwrap() = 0;
}

/// Number of serve faults still armed (fired faults are removed).
pub fn pending_serve() -> usize {
    serve_registry().lock().unwrap().len()
}

/// Serving-path hook: counts one batched forward call and fires (and
/// consumes) the fault armed for it, if any. Panicking faults unwind out
/// of the stage into the engine's worker supervision.
pub(crate) fn serve_forward_hook() {
    let call = {
        // qdgnn-analyze: allow(QD009, reason = "chaos-only counter mutex; poisoned only if this hook already panicked, i.e. the injected fault fired")
        let mut c = serve_call_counter().lock().unwrap();
        *c += 1;
        *c
    };
    // qdgnn-analyze: allow(QD009, reason = "chaos-only registry mutex; poisoned only if this hook already panicked, i.e. the injected fault fired")
    let fault = serve_registry().lock().unwrap().remove(&call);
    match fault {
        None => {}
        Some(ServeFault::PanicInForward) => {
            // qdgnn-analyze: allow(QD009, reason = "injected chaos fault: panicking here is the contract; worker supervision contains the unwind")
            panic!("chaos: injected panic in batched serving forward (call {call})")
        }
        Some(ServeFault::StallForwardMicros(us)) => {
            std::thread::sleep(std::time::Duration::from_micros(us));
        }
        Some(ServeFault::AllocFailure) => {
            // qdgnn-analyze: allow(QD009, reason = "injected chaos fault: panicking here is the contract; worker supervision contains the unwind")
            panic!("chaos: capacity overflow allocating serving working buffers (call {call})")
        }
    }
}

/// Overwrites 0-based `line_no` of a text file with non-parsable garbage.
pub fn corrupt_file_line(path: impl AsRef<Path>, line_no: usize) -> io::Result<()> {
    let content = std::fs::read_to_string(&path)?;
    let mangled: String = content
        .lines()
        .enumerate()
        .map(|(i, l)| if i == line_no { "@@ chaos @@\n".to_string() } else { format!("{l}\n") })
        .collect();
    std::fs::write(&path, mangled)
}

/// Truncates a text file to its first `keep_lines` lines.
pub fn truncate_file_at_line(path: impl AsRef<Path>, keep_lines: usize) -> io::Result<()> {
    let content = std::fs::read_to_string(&path)?;
    let truncated: String =
        content.lines().take(keep_lines).map(|l| format!("{l}\n")).collect();
    std::fs::write(&path, truncated)
}

/// A query whose vertex and attribute ids are guaranteed out of range for
/// a graph with `n` vertices and `d` attributes.
pub fn out_of_range_query(n: usize, d: usize) -> Query {
    Query { vertices: vec![n as u32 + 1], attrs: vec![d as u32 + 1], truth: vec![] }
}
