//! The offline model-training stage (§4.2) and the evaluation helpers of
//! the online query stage.
//!
//! Training minimizes the BCE loss (Eq. 3) over the training queries with
//! Adam; gradients for the queries of a mini-batch are computed on
//! crossbeam worker threads against shared `Arc` parameters and reduced
//! in a fixed order, so runs are deterministic for a given seed and
//! thread-independent. Periodically the trainer evaluates on the
//! validation queries, sweeping the threshold γ, and keeps the
//! best-performing weights/γ (the paper selects both on validation).

use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use qdgnn_data::Query;
use qdgnn_graph::{CommunityMetrics, VertexId};
use qdgnn_nn::{positive_class_weights, Mode};
use qdgnn_tensor::{Adam, AdamConfig, Dense, GradStore, Tape};

use crate::identify::identify_community;
use crate::inputs::{GraphTensors, QueryVectors};
use crate::models::{predict_scores, CsModel};

/// Training-stage hyper-parameters (§7.1.6 defaults).
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Training epochs (paper: 300).
    pub epochs: usize,
    /// Queries per optimizer step (paper: batch size 4).
    pub batch_size: usize,
    /// Adam learning rate (paper: 0.001).
    pub lr: f32,
    /// Worker threads for per-query gradients (0 = available parallelism).
    pub threads: usize,
    /// Validate (and possibly checkpoint) every this many epochs.
    pub validate_every: usize,
    /// Threshold grid swept on validation (paper §7.5.2: 0.05–0.95).
    pub gamma_grid: Vec<f32>,
    /// Global-norm gradient clip (`None` disables).
    pub clip: Option<f32>,
    /// Early stopping: abort when this many consecutive validations fail
    /// to improve the best F1 (`None` runs all epochs, as the paper does).
    pub patience: Option<usize>,
    /// Shuffling / dropout seed.
    pub seed: u64,
    /// Loss-divergence trigger: an epoch whose mean loss is non-finite or
    /// exceeds this factor times the best epoch loss so far rolls training
    /// back to the last good state and halves the learning rate.
    pub divergence_factor: f32,
    /// Rollback budget: once exhausted, training stops early with the best
    /// weights found so far and [`TrainReport::diverged`] set.
    pub max_recoveries: usize,
    /// Crash-resume checkpoint file, written atomically during training
    /// (`None` disables; see [`Trainer::resume_from`]).
    pub checkpoint_path: Option<std::path::PathBuf>,
    /// Write the crash-resume checkpoint every this many epochs.
    pub checkpoint_every: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 300,
            batch_size: 4,
            lr: 1e-3,
            threads: 0,
            validate_every: 10,
            gamma_grid: default_gamma_grid(),
            clip: Some(5.0),
            patience: None,
            seed: 0xABCD,
            divergence_factor: 4.0,
            max_recoveries: 3,
            checkpoint_path: None,
            checkpoint_every: 10,
        }
    }
}

/// The γ grid of §7.5.2: 0.05, 0.10, …, 0.95.
pub fn default_gamma_grid() -> Vec<f32> {
    (1..=19).map(|i| i as f32 * 0.05).collect()
}

impl TrainConfig {
    /// A fast profile for tests/examples: fewer epochs, coarse γ grid.
    pub fn fast() -> Self {
        TrainConfig {
            epochs: 40,
            validate_every: 8,
            gamma_grid: vec![0.3, 0.5, 0.7],
            ..Default::default()
        }
    }
}

/// Outcome of a training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Epochs actually run.
    pub epochs_run: usize,
    /// Best validation micro-F1 observed.
    pub best_val_f1: f64,
    /// The γ achieving it (carried into the online query stage).
    pub best_gamma: f32,
    /// Mean training loss per epoch.
    pub loss_history: Vec<f32>,
    /// `(epoch, validation F1)` at each validation point — the data behind
    /// the paper's epoch-sweep ablation (Figure 10a).
    pub val_history: Vec<(usize, f64)>,
    /// Wall-clock training time in seconds.
    pub train_seconds: f64,
    /// Optimizer steps skipped because the batch loss or gradients were
    /// non-finite (each skip protects the Adam moments from poisoning).
    pub skipped_steps: usize,
    /// Divergence rollbacks performed (each halves the learning rate).
    pub recoveries: usize,
    /// Checkpoint writes that failed (training continues in memory; each
    /// failure is also counted on the `train.checkpoint_write_failures`
    /// metric). Not carried across resume — counts this run only.
    pub checkpoint_write_failures: usize,
    /// Whether training stopped early because the rollback budget
    /// ([`TrainConfig::max_recoveries`]) was exhausted. The returned
    /// weights are still the best observed on validation.
    pub diverged: bool,
}

/// A trained model bundled with its selected threshold.
pub struct TrainedModel<M> {
    /// The model, restored to its best-on-validation weights.
    pub model: M,
    /// The selected threshold γ.
    pub gamma: f32,
    /// The training report.
    pub report: TrainReport,
}

/// Per-query result of a gradient worker.
struct WorkerResult {
    loss: f32,
    grads: GradStore,
    bn_stats: Vec<(usize, qdgnn_nn::BnStats)>,
}

/// One prepared training example: its graph context (the whole graph for
/// ordinary training, a per-query candidate subgraph for §7.4's
/// large-graph mechanism), the vectorized query, and the target.
pub(crate) struct TrainItem {
    pub tensors: GraphTensors,
    pub qv: QueryVectors,
    pub target: Arc<Dense>,
    pub weights: Option<Arc<Dense>>,
}

impl TrainItem {
    /// Prepares a query against a graph context.
    pub(crate) fn prepare(model: &dyn CsModel, tensors: &GraphTensors, q: &Query) -> Self {
        let qv = encode_query(model, tensors, q);
        let target = target_vector(tensors.n, &q.truth);
        let weights = positive_class_weights(&target, model.config().class_balance);
        TrainItem { tensors: tensors.clone(), qv, target: Arc::new(target), weights }
    }
}

/// Mutable training state that survives a crash: everything
/// [`run_training`] needs to continue a run exactly where a checkpoint
/// left it (see [`crate::persist::save_train_checkpoint`]).
pub(crate) struct ResumeState {
    /// Epochs already completed (the next epoch to run).
    pub epochs_done: usize,
    /// Learning rate at checkpoint time (may have been halved by
    /// divergence recovery).
    pub lr: f32,
    /// Optimizer moments and step counter.
    pub adam: qdgnn_tensor::AdamState,
    /// Divergence rollbacks performed so far.
    pub recoveries: usize,
    /// Non-finite steps skipped so far.
    pub skipped_steps: usize,
    /// Consecutive stale validations (early-stopping state).
    pub stale_validations: usize,
    /// Mean loss per completed epoch.
    pub loss_history: Vec<f32>,
    /// `(epoch, F1)` per completed validation.
    pub val_history: Vec<(usize, f64)>,
    /// Best `(F1, γ, weights)` observed on validation.
    pub best: (f64, f32, Option<crate::models::Checkpoint>),
}

/// Deterministic per-epoch batch order. Reseeding from
/// `(seed, epoch, recoveries)` instead of threading one RNG through the
/// whole run makes the order reproducible from a checkpoint: a resumed
/// run visits the remaining epochs in exactly the order the uninterrupted
/// run would have.
fn epoch_order(len: usize, seed: u64, epoch: usize, recoveries: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..len).collect();
    let mut rng = StdRng::seed_from_u64(
        seed ^ (epoch as u64 ^ ((recoveries as u64) << 48)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    order.shuffle(&mut rng);
    order
}

/// The generic training loop shared by [`Trainer`] and the subgraph
/// trainer: mini-batch Adam over `items`, with `validate` called
/// periodically to produce `(γ, F1)` for checkpoint selection.
///
/// Fault tolerance (all bounded, all reported in [`TrainReport`]):
/// * a batch whose loss or reduced gradients are non-finite is skipped,
///   protecting the parameters and Adam moments;
/// * an epoch whose mean loss is non-finite or explodes past
///   [`TrainConfig::divergence_factor`] × the best epoch loss rolls the
///   model and optimizer back to the last good epoch and halves the
///   learning rate, up to [`TrainConfig::max_recoveries`] times;
/// * when [`TrainConfig::checkpoint_path`] is set, the full training
///   state is written (atomically) every
///   [`TrainConfig::checkpoint_every`] epochs for crash-resume.
pub(crate) fn run_training<M: CsModel>(
    model: M,
    items: &[TrainItem],
    cfg: &TrainConfig,
    validate: impl FnMut(&M) -> Option<(f32, f64)>,
) -> TrainedModel<M> {
    run_training_from(model, items, cfg, validate, None)
}

pub(crate) fn run_training_from<M: CsModel>(
    mut model: M,
    items: &[TrainItem],
    cfg: &TrainConfig,
    mut validate: impl FnMut(&M) -> Option<(f32, f64)>,
    resume: Option<ResumeState>,
) -> TrainedModel<M> {
    assert!(!items.is_empty(), "training set must be non-empty");
    // Wall-clock reporting goes through the injectable obs clock (QD007)
    // so fake-clock tests cover `train_seconds` too.
    let start_us = qdgnn_obs::clock::wall_micros();
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    } else {
        cfg.threads
    };

    let mut opt = Adam::new(AdamConfig { lr: cfg.lr, ..Default::default() }, model.store());
    let start_epoch;
    let mut loss_history;
    let mut val_history: Vec<(usize, f64)>;
    let mut best: (f64, f32, Option<crate::models::Checkpoint>);
    let mut stale_validations;
    let mut recoveries;
    let mut skipped_steps;
    match resume {
        Some(state) => {
            start_epoch = state.epochs_done;
            opt.restore_state(state.adam);
            opt.set_lr(state.lr);
            loss_history = state.loss_history;
            val_history = state.val_history;
            best = state.best;
            stale_validations = state.stale_validations;
            recoveries = state.recoveries;
            skipped_steps = state.skipped_steps;
        }
        None => {
            start_epoch = 0;
            loss_history = Vec::with_capacity(cfg.epochs);
            val_history = Vec::new();
            best = (-1.0, 0.5, None);
            stale_validations = 0;
            recoveries = 0;
            skipped_steps = 0;
        }
    }
    // Run-registry journal: a resumed run's recorder starts as a copy of
    // the parent's journal; truncating at the resume epoch and replaying
    // from there leaves `series.ndjson` byte-identical to an
    // uninterrupted run's (riding on epoch-order determinism). All
    // per-epoch series below use the loop's `epoch` index as the step,
    // so everything at or after the resume point is replayed exactly.
    if start_epoch > 0 {
        qdgnn_obs::runs::series_truncate_from(start_epoch as u64);
    }
    let mut epochs_run = start_epoch;
    let mut diverged = false;
    let mut checkpoint_write_failures = 0usize;
    // Last known-good state for divergence rollback; starts at the
    // initial (or resumed) state so even an epoch-0 explosion recovers.
    let mut good = (model.checkpoint(), opt.state());
    // Monotonic optimizer-step-attempt counter (never rewinds on
    // rollback) — the fault-injection harness keys on it.
    #[cfg(feature = "chaos")]
    let mut step_attempts: u64 = 0;

    for epoch in start_epoch..cfg.epochs {
        let _epoch_span = qdgnn_obs::span!("train.epoch_time");
        epochs_run = epoch + 1;
        let order = epoch_order(items.len(), cfg.seed, epoch, recoveries);
        let mut epoch_loss = 0.0f64;
        let mut counted = 0usize;
        for (batch_no, batch) in order.chunks(cfg.batch_size).enumerate() {
            let results: Mutex<Vec<(usize, WorkerResult)>> =
                Mutex::new(Vec::with_capacity(batch.len()));
            let model_ref = &model;
            crossbeam::thread::scope(|scope| {
                for chunk in batch.chunks(batch.len().div_ceil(threads).max(1)) {
                    let results = &results;
                    scope.spawn(move |_| {
                        for &qidx in chunk {
                            let item = &items[qidx];
                            let wr = query_gradients(
                                model_ref,
                                item,
                                cfg.seed
                                    ^ ((epoch as u64) << 32)
                                    ^ ((batch_no as u64) << 16)
                                    ^ qidx as u64,
                            );
                            results.lock().push((qidx, wr));
                        }
                    });
                }
            })
            .expect("gradient worker panicked");
            let mut results = results.into_inner();
            // Fixed reduction order for determinism.
            results.sort_by_key(|(key, _)| *key);

            let mut grads = GradStore::for_store(model.store());
            let mut all_stats = Vec::new();
            let mut batch_loss = 0.0f64;
            for (_, wr) in results {
                batch_loss += wr.loss as f64;
                grads.merge(wr.grads);
                all_stats.extend(wr.bn_stats);
            }
            grads.scale(1.0 / batch.len() as f32);
            #[cfg(feature = "chaos")]
            {
                step_attempts += 1;
                crate::faultless::mutate_gradients(step_attempts, &mut grads);
            }
            // NaN/Inf guard: one poisoned step would corrupt the Adam
            // moments for good, so drop it instead of applying it.
            if !batch_loss.is_finite() || !grads.all_finite() {
                skipped_steps += 1;
                qdgnn_obs::event(
                    "train.step_skipped",
                    &[("epoch", epoch as f64), ("batch", batch_no as f64)],
                );
                continue;
            }
            // Gradient norm is computed only to feed the metric; the
            // `const` guard folds the whole block away in plain builds.
            if qdgnn_obs::enabled() {
                qdgnn_obs::observe("train.grad_norm", grads.global_norm() as f64);
            }
            if let Some(max_norm) = cfg.clip {
                grads.clip_global_norm(max_norm);
            }
            opt.step(model.store_mut(), &grads);
            model.apply_bn_stats(&all_stats);
            #[cfg(feature = "sanitize")]
            sanitize_check_params(model.store());
            epoch_loss += batch_loss;
            counted += batch.len();
        }
        let reference = loss_history.iter().copied().filter(|l| l.is_finite()).reduce(f32::min);
        let mean =
            if counted > 0 { (epoch_loss / counted as f64) as f32 } else { f32::NAN };
        loss_history.push(mean);
        qdgnn_obs::event(
            "train.epoch",
            &[("epoch", epoch as f64), ("loss", mean as f64), ("lr", opt.lr() as f64)],
        );
        qdgnn_obs::gauge("train.loss").set(mean as f64);
        qdgnn_obs::gauge("train.lr").set(opt.lr() as f64);
        qdgnn_obs::runs::series_observe("train.loss", epoch as u64, mean as f64);
        qdgnn_obs::runs::series_observe("train.lr", epoch as u64, opt.lr() as f64);

        // Divergence detection: roll back to the last good epoch with a
        // halved learning rate rather than letting a blown-up run burn
        // the remaining epochs.
        let exploded = !mean.is_finite()
            || reference.is_some_and(|r| mean > cfg.divergence_factor * r.max(0.1));
        if exploded {
            recoveries += 1;
            if recoveries > cfg.max_recoveries {
                diverged = true;
                break;
            }
            model.restore(&good.0);
            opt.restore_state(good.1.clone());
            opt.set_lr(opt.lr() * 0.5);
            qdgnn_obs::event(
                "train.divergence_rollback",
                &[
                    ("epoch", epoch as f64),
                    ("recoveries", recoveries as f64),
                    ("lr", opt.lr() as f64),
                ],
            );
            // A rollback is exactly the moment the flight recorder is
            // for: note it in the ring and flush the recent history so a
            // later crash (or a post-mortem) can see the lead-up.
            qdgnn_obs::runs::flight_event(
                "train.divergence_rollback",
                &[
                    ("epoch", epoch as f64),
                    ("recoveries", recoveries as f64),
                    ("loss", mean as f64),
                    ("lr", opt.lr() as f64),
                ],
            );
            qdgnn_obs::runs::flight_flush();
            continue;
        }
        good = (model.checkpoint(), opt.state());

        let is_last = epoch + 1 == cfg.epochs;
        if is_last || (epoch + 1) % cfg.validate_every == 0 {
            if let Some((gamma, f1)) = validate(&model) {
                val_history.push((epoch + 1, f1));
                qdgnn_obs::event(
                    "train.validate",
                    &[("epoch", (epoch + 1) as f64), ("f1", f1), ("gamma", gamma as f64)],
                );
                qdgnn_obs::runs::series_observe("train.val_f1", epoch as u64, f1);
                qdgnn_obs::runs::series_observe("train.val_gamma", epoch as u64, gamma as f64);
                if f1 > best.0 {
                    best = (f1, gamma, Some(model.checkpoint()));
                    stale_validations = 0;
                } else {
                    stale_validations += 1;
                    if cfg.patience.is_some_and(|p| stale_validations >= p) {
                        break;
                    }
                }
            }
        }

        if let Some(path) = &cfg.checkpoint_path {
            if cfg.checkpoint_every > 0 && (epoch + 1) % cfg.checkpoint_every == 0 {
                let state = ResumeState {
                    epochs_done: epoch + 1,
                    lr: opt.lr(),
                    adam: opt.state(),
                    recoveries,
                    skipped_steps,
                    stale_validations,
                    loss_history: loss_history.clone(),
                    val_history: val_history.clone(),
                    best: (best.0, best.1, best.2.clone()),
                };
                // A failed checkpoint write must not kill training — the
                // run is still making progress in memory. The failure is
                // counted (metric + report) rather than printed so library
                // code stays quiet on stderr (QD006); harnesses surface the
                // count in their end-of-run summary.
                match crate::persist::save_train_checkpoint(path, &model, &state) {
                    Ok(()) => {
                        qdgnn_obs::event("train.checkpoint_write", &[("epoch", (epoch + 1) as f64)]);
                    }
                    Err(_) => {
                        checkpoint_write_failures += 1;
                        qdgnn_obs::counter("train.checkpoint_write_failures").inc();
                        qdgnn_obs::event(
                            "train.checkpoint_write_failed",
                            &[("epoch", (epoch + 1) as f64)],
                        );
                        qdgnn_obs::runs::flight_event(
                            "train.checkpoint_write_failed",
                            &[("epoch", (epoch + 1) as f64)],
                        );
                    }
                }
            }
        }
    }

    if let Some(ckpt) = &best.2 {
        model.restore(ckpt);
    }
    let report = TrainReport {
        epochs_run,
        best_val_f1: best.0.max(0.0),
        best_gamma: best.1,
        loss_history,
        val_history,
        train_seconds: qdgnn_obs::clock::wall_micros().saturating_sub(start_us) as f64 / 1e6,
        skipped_steps,
        recoveries,
        checkpoint_write_failures,
        diverged,
    };
    // Mirror the report's terminal fields as gauges so a scrape after
    // training sees the same numbers the report prints (the serving
    // engine does the same with its `EngineStats`).
    qdgnn_obs::gauge("train.report.epochs_run").set(report.epochs_run as f64);
    qdgnn_obs::gauge("train.report.best_val_f1").set(report.best_val_f1);
    qdgnn_obs::gauge("train.report.best_gamma").set(report.best_gamma as f64);
    qdgnn_obs::gauge("train.report.train_seconds").set(report.train_seconds);
    qdgnn_obs::gauge("train.report.skipped_steps").set(report.skipped_steps as f64);
    qdgnn_obs::gauge("train.report.recoveries").set(report.recoveries as f64);
    qdgnn_obs::gauge("train.report.checkpoint_write_failures")
        .set(report.checkpoint_write_failures as f64);
    qdgnn_obs::gauge("train.report.diverged").set(f64::from(u8::from(report.diverged)));
    TrainedModel { model, gamma: best.1, report }
}

/// The offline trainer of §4.2.
#[derive(Clone, Debug, Default)]
pub struct Trainer {
    /// Training hyper-parameters.
    pub config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: TrainConfig) -> Self {
        Trainer { config }
    }

    /// Trains `model` on `train` queries, selecting weights and γ on
    /// `val`; consumes and returns the model with its threshold.
    ///
    /// # Panics
    /// Panics if `train` is empty.
    pub fn train<M: CsModel>(
        &self,
        model: M,
        tensors: &GraphTensors,
        train: &[Query],
        val: &[Query],
    ) -> TrainedModel<M> {
        let items: Vec<TrainItem> =
            train.iter().map(|q| TrainItem::prepare(&model, tensors, q)).collect();
        let gamma_grid = self.config.gamma_grid.clone();
        run_training(model, &items, &self.config, |m| {
            if val.is_empty() {
                None
            } else {
                Some(select_gamma(m, tensors, val, &gamma_grid))
            }
        })
    }

    /// Continues a crashed or killed training run from the checkpoint a
    /// previous run wrote via [`TrainConfig::checkpoint_path`]. `model`
    /// must be freshly constructed with the same configuration and graph
    /// dimensions; its weights are replaced by the checkpoint's in-flight
    /// weights before the remaining epochs run.
    ///
    /// Batch order and dropout streams are derived statelessly from
    /// `(seed, epoch)`, and the checkpoint carries the optimizer moments,
    /// histories and best-on-validation snapshot — so a resumed run
    /// replays the remaining epochs exactly as the uninterrupted run
    /// would have, ending in the same final weight/γ selection.
    ///
    /// # Errors
    /// Returns [`crate::error::QdgnnError::InvalidData`] if the
    /// checkpoint is corrupt, truncated, or does not match `model`.
    pub fn resume_from<M: CsModel>(
        &self,
        path: impl AsRef<std::path::Path>,
        mut model: M,
        tensors: &GraphTensors,
        train: &[Query],
        val: &[Query],
    ) -> crate::error::Result<TrainedModel<M>> {
        let state = crate::persist::load_train_checkpoint(path, &mut model)?;
        let items: Vec<TrainItem> =
            train.iter().map(|q| TrainItem::prepare(&model, tensors, q)).collect();
        let gamma_grid = self.config.gamma_grid.clone();
        Ok(run_training_from(
            model,
            &items,
            &self.config,
            |m| {
                if val.is_empty() {
                    None
                } else {
                    Some(select_gamma(m, tensors, val, &gamma_grid))
                }
            },
            Some(state),
        ))
    }

    /// The model-update mechanism sketched in the paper's conclusion: as
    /// the deployed system collects more historical queries, fold them in
    /// as additional training data, **warm-starting** from the already
    /// trained weights instead of retraining from scratch.
    ///
    /// The previous weights are kept as the validation baseline: if the
    /// update never beats them on `val`, the original weights and γ are
    /// restored, so an update cannot make the deployed model worse on the
    /// validation distribution.
    pub fn update<M: CsModel>(
        &self,
        trained: TrainedModel<M>,
        tensors: &GraphTensors,
        original_queries: &[Query],
        new_queries: &[Query],
        val: &[Query],
    ) -> TrainedModel<M> {
        let TrainedModel { model, gamma: old_gamma, report: old_report } = trained;
        let baseline_ckpt = model.checkpoint();
        let baseline_f1 = if val.is_empty() {
            0.0
        } else {
            evaluate(&model, tensors, val, old_gamma).f1
        };
        let all: Vec<Query> =
            original_queries.iter().chain(new_queries).cloned().collect();
        let items: Vec<TrainItem> =
            all.iter().map(|q| TrainItem::prepare(&model, tensors, q)).collect();
        let gamma_grid = self.config.gamma_grid.clone();
        let mut updated = run_training(model, &items, &self.config, |m| {
            if val.is_empty() {
                None
            } else {
                Some(select_gamma(m, tensors, val, &gamma_grid))
            }
        });
        if !val.is_empty() && updated.report.best_val_f1 < baseline_f1 {
            // The update regressed: keep serving the original model.
            updated.model.restore(&baseline_ckpt);
            updated.gamma = old_gamma;
            updated.report.best_val_f1 = baseline_f1;
            updated.report.best_gamma = old_gamma;
            updated.report.train_seconds += old_report.train_seconds;
        }
        updated
    }
}

/// Computes one query's loss, parameter gradients and BN statistics.
fn query_gradients<M: CsModel>(model: &M, item: &TrainItem, rng_seed: u64) -> WorkerResult {
    let mut tape = Tape::new();
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let out = model.forward(&mut tape, &item.tensors, &item.qv, Mode::Train, &mut rng);
    let loss =
        qdgnn_nn::bce_loss(&mut tape, out.logits, Arc::clone(&item.target), item.weights.clone());
    let loss_value = tape.value(loss).get(0, 0);
    let mut grads = tape.backward(loss);
    let mut store_grads = GradStore::for_store(model.store());
    for (var, pid) in out.leaves {
        if let Some(g) = grads.take(var) {
            #[cfg(feature = "sanitize")]
            if qdgnn_tensor::sanitize::enabled()
                && g.as_slice().iter().any(|v| !v.is_finite())
            {
                panic!(
                    "sanitize: gradient for parameter `{}` is non-finite",
                    model.store().name(pid)
                );
            }
            store_grads.accumulate(pid, g);
        }
    }
    WorkerResult { loss: loss_value, grads: store_grads, bn_stats: out.bn_stats }
}

/// Post-step sanitizer: every parameter must remain finite after an
/// optimizer update, so Adam-moment corruption is caught at the step
/// that caused it (with the parameter's name) rather than epochs later.
#[cfg(feature = "sanitize")]
fn sanitize_check_params(store: &qdgnn_tensor::ParamStore) {
    if !qdgnn_tensor::sanitize::enabled() {
        return;
    }
    for (_, name, value) in store.iter() {
        if let Some(v) = value.as_slice().iter().find(|v| !v.is_finite()) {
            panic!("sanitize: parameter `{name}` became non-finite ({v}) after an optimizer step");
        }
    }
}

/// Encodes a query for `model` (attributes are dropped for models that
/// cannot consume them, mirroring how QD-GNN handles EmA queries).
pub fn encode_query(model: &dyn CsModel, tensors: &GraphTensors, q: &Query) -> QueryVectors {
    let attrs: &[u32] = if model.uses_attributes() { &q.attrs } else { &[] };
    QueryVectors::encode(tensors.n, tensors.d, &q.vertices, attrs)
}

/// One-hot ground-truth community vector `y_q` (n×1).
pub fn target_vector(n: usize, truth: &[VertexId]) -> Dense {
    let mut y = Dense::zeros(n, 1);
    for &v in truth {
        y.set(v as usize, 0, 1.0);
    }
    y
}

/// Predicts the community for one query with the full online pipeline
/// (model inference + constrained BFS).
pub fn predict_community(
    model: &dyn CsModel,
    tensors: &GraphTensors,
    q: &Query,
    gamma: f32,
) -> Vec<VertexId> {
    let _query_span = qdgnn_obs::span!("serve.query");
    qdgnn_obs::counter("serve.queries").inc();
    let qv = {
        let _s = qdgnn_obs::span!("serve.encode");
        encode_query(model, tensors, q)
    };
    let scores = {
        let _s = qdgnn_obs::span!("serve.forward");
        predict_scores(model, tensors, &qv)
    };
    let attributed = model.uses_attributes() && !q.attrs.is_empty();
    let community = {
        let _s = qdgnn_obs::span!("serve.bfs");
        identify_community(tensors, &q.vertices, &scores, gamma, attributed)
    };
    qdgnn_obs::observe("serve.community_size", community.len() as f64);
    community
}

/// Predicts communities for a whole query set.
pub fn predict_communities(
    model: &dyn CsModel,
    tensors: &GraphTensors,
    queries: &[Query],
    gamma: f32,
) -> Vec<Vec<VertexId>> {
    queries.iter().map(|q| predict_community(model, tensors, q, gamma)).collect()
}

/// Micro-averaged metrics of the full pipeline on a query set.
pub fn evaluate(
    model: &dyn CsModel,
    tensors: &GraphTensors,
    queries: &[Query],
    gamma: f32,
) -> CommunityMetrics {
    let predicted = predict_communities(model, tensors, queries, gamma);
    let truth: Vec<Vec<VertexId>> = queries.iter().map(|q| q.truth.clone()).collect();
    CommunityMetrics::micro(&predicted, &truth)
}

/// Sweeps the γ grid on a query set and returns `(best_gamma, best_f1)`.
///
/// Model scores are computed once per query and reused across the grid.
pub fn select_gamma(
    model: &dyn CsModel,
    tensors: &GraphTensors,
    queries: &[Query],
    grid: &[f32],
) -> (f32, f64) {
    let scored: Vec<(Vec<f32>, bool)> = queries
        .iter()
        .map(|q| {
            let qv = encode_query(model, tensors, q);
            let scores = predict_scores(model, tensors, &qv);
            let attributed = model.uses_attributes() && !q.attrs.is_empty();
            (scores, attributed)
        })
        .collect();
    let truth: Vec<Vec<VertexId>> = queries.iter().map(|q| q.truth.clone()).collect();
    let mut best = (grid.first().copied().unwrap_or(0.5), -1.0f64);
    for &gamma in grid {
        let predicted: Vec<Vec<VertexId>> = queries
            .iter()
            .zip(&scored)
            .map(|(q, (scores, attributed))| {
                identify_community(tensors, &q.vertices, scores, gamma, *attributed)
            })
            .collect();
        let f1 = CommunityMetrics::micro(&predicted, &truth).f1;
        if f1 > best.1 {
            best = (gamma, f1);
        }
    }
    (best.0, best.1.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::models::{AqdGnn, QdGnn, SimpleQdGnn};
    use qdgnn_data::{presets, queries as qgen, AttrMode};
    use qdgnn_graph::attributed::AdjNorm;

    fn toy_setup(mode: AttrMode) -> (GraphTensors, Vec<Query>, Vec<Query>, Vec<Query>) {
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
        let all = qgen::generate(&data, 60, 1, 2, mode, 11);
        let split = qdgnn_data::QuerySplit::new(all, 30, 15, 15);
        (t, split.train, split.val, split.test)
    }

    #[test]
    fn training_reduces_loss_and_learns_toy_communities() {
        let (t, train, val, test) = toy_setup(AttrMode::Empty);
        let model = QdGnn::new(ModelConfig::fast(), t.d);
        let trainer = Trainer::new(TrainConfig {
            epochs: 30,
            validate_every: 10,
            ..TrainConfig::fast()
        });
        let trained = trainer.train(model, &t, &train, &val);
        let first = trained.report.loss_history[0];
        let last = *trained.report.loss_history.last().unwrap();
        assert!(last < first, "loss should decrease: {first} → {last}");
        let metrics = evaluate(&trained.model, &t, &test, trained.gamma);
        assert!(
            metrics.f1 > 0.5,
            "QD-GNN should learn toy communities, got F1={:.3}",
            metrics.f1
        );
    }

    #[test]
    fn aqdgnn_trains_on_attributed_queries() {
        let (t, train, val, test) = toy_setup(AttrMode::FromCommunity);
        let model = AqdGnn::new(ModelConfig::fast(), t.d);
        let trainer = Trainer::new(TrainConfig { epochs: 30, ..TrainConfig::fast() });
        let trained = trainer.train(model, &t, &train, &val);
        let metrics = evaluate(&trained.model, &t, &test, trained.gamma);
        assert!(
            metrics.f1 > 0.5,
            "AQD-GNN should learn toy communities, got F1={:.3}",
            metrics.f1
        );
    }

    #[test]
    fn simple_model_also_trains() {
        let (t, train, val, _) = toy_setup(AttrMode::Empty);
        let model = SimpleQdGnn::new(ModelConfig::fast());
        let trainer = Trainer::new(TrainConfig { epochs: 15, ..TrainConfig::fast() });
        let trained = trainer.train(model, &t, &train, &val);
        assert!(trained.report.best_val_f1 > 0.0);
        assert!(trained.report.loss_history.len() == 15);
    }

    #[test]
    fn training_is_deterministic() {
        let (t, train, val, _) = toy_setup(AttrMode::Empty);
        let cfg = TrainConfig { epochs: 5, ..TrainConfig::fast() };
        let run = |threads: usize| {
            let model = QdGnn::new(ModelConfig::fast(), t.d);
            let trainer = Trainer::new(TrainConfig { threads, ..cfg.clone() });
            let trained = trainer.train(model, &t, &train, &val);
            trained.report.loss_history.clone()
        };
        assert_eq!(run(1), run(1), "same-thread runs must be identical");
    }

    #[test]
    fn early_stopping_halts_stale_training() {
        let (t, train, val, _) = toy_setup(AttrMode::Empty);
        let cfg = TrainConfig {
            epochs: 60,
            validate_every: 2,
            patience: Some(3),
            ..TrainConfig::fast()
        };
        let trained = Trainer::new(cfg).train(
            QdGnn::new(ModelConfig::fast(), t.d),
            &t,
            &train,
            &val,
        );
        assert!(
            trained.report.epochs_run < 60,
            "toy data saturates quickly; patience should cut training short"
        );
        assert!(trained.report.best_val_f1 > 0.4);
    }

    #[test]
    fn model_update_with_new_queries_does_not_regress() {
        let (t, train, val, test) = toy_setup(AttrMode::FromCommunity);
        let trainer = Trainer::new(TrainConfig { epochs: 15, ..TrainConfig::fast() });
        let initial = trainer.train(
            AqdGnn::new(ModelConfig::fast(), t.d),
            &t,
            &train[..10],
            &val,
        );
        let f1_initial = evaluate(&initial.model, &t, &test, initial.gamma).f1;
        // New "historical" queries arrive; warm-start update.
        let updated = trainer.update(initial, &t, &train[..10], &train[10..], &val);
        let f1_updated = evaluate(&updated.model, &t, &test, updated.gamma).f1;
        // The guard guarantees no regression on validation; on test we
        // allow slack but expect the update to roughly hold or improve.
        assert!(
            f1_updated >= f1_initial - 0.1,
            "update regressed: {f1_initial:.3} → {f1_updated:.3}"
        );
        assert!(updated.report.best_val_f1 > 0.0);
    }

    #[test]
    fn regressing_update_restores_original_weights() {
        let (t, train, val, _) = toy_setup(AttrMode::Empty);
        let trainer = Trainer::new(TrainConfig { epochs: 20, ..TrainConfig::fast() });
        let initial = trainer.train(
            QdGnn::new(ModelConfig::fast(), t.d),
            &t,
            &train,
            &val,
        );
        let before = initial.model.store().snapshot();
        let before_gamma = initial.gamma;
        let baseline_f1 = evaluate(&initial.model, &t, &val, initial.gamma).f1;
        // Destructive update: degenerate ground truth plus a huge learning
        // rate wreck the weights, so the update's validation F1 drops
        // below the baseline and the guard must restore the original.
        let poison: Vec<Query> = train
            .iter()
            .take(8)
            .map(|q| Query { truth: q.vertices.clone(), ..q.clone() })
            .collect();
        let bad_trainer =
            Trainer::new(TrainConfig { epochs: 6, lr: 0.8, ..TrainConfig::fast() });
        let updated = bad_trainer.update(initial, &t, &[], &poison, &val);
        let after_f1 = evaluate(&updated.model, &t, &val, updated.gamma).f1;
        assert!(after_f1 + 1e-9 >= baseline_f1, "guard must prevent regression");
        assert_eq!(
            updated.report.best_val_f1, baseline_f1,
            "expected the poisoned update to trigger the restore path"
        );
        assert_eq!(updated.gamma, before_gamma);
        let after = updated.model.store().snapshot();
        for (a, b) in before.iter().zip(&after) {
            assert!(a.approx_eq(b, 0.0), "weights must be restored exactly");
        }
    }

    #[test]
    fn target_vector_marks_members() {
        let y = target_vector(4, &[1, 3]);
        assert_eq!(y.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn select_gamma_returns_grid_member() {
        let (t, train, ..) = toy_setup(AttrMode::Empty);
        let model = QdGnn::new(ModelConfig::fast(), t.d);
        let grid = [0.25, 0.5, 0.75];
        let (gamma, f1) = select_gamma(&model, &t, &train[..5], &grid);
        assert!(grid.contains(&gamma));
        assert!((0.0..=1.0).contains(&f1));
    }
}
