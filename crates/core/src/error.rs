//! Typed errors for the serving, loading and training paths.
//!
//! The online stage runs indefinitely against untrusted input (§4.3): a
//! malformed query or a corrupt model file must surface as an error the
//! caller can handle, never as a process abort. Everything reachable from
//! [`crate::serve::OnlineStage::try_query`] and
//! [`crate::persist::load_model`] reports through this type.

use std::fmt;
use std::io;

use qdgnn_graph::attributed::AttrId;
use qdgnn_graph::VertexId;

/// Result alias for fallible qdgnn-core operations.
pub type Result<T> = std::result::Result<T, QdgnnError>;

/// Error hierarchy of the train/serve framework.
#[derive(Debug)]
#[non_exhaustive]
pub enum QdgnnError {
    /// A query vertex id is not a vertex of the served graph.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: VertexId,
        /// Number of vertices in the graph.
        n: usize,
    },
    /// A query attribute id is not in the graph's attribute vocabulary.
    AttrOutOfRange {
        /// The offending attribute id.
        attr: AttrId,
        /// Attribute vocabulary size.
        d: usize,
    },
    /// A query carried no vertices (the paper's queries are non-empty
    /// vertex sets, §4.1).
    EmptyQuery,
    /// A score vector does not match the graph it is applied to.
    ScoreLengthMismatch {
        /// Expected length (number of vertices).
        expected: usize,
        /// Actual length.
        got: usize,
    },
    /// A model/checkpoint file is corrupt or does not match the target
    /// model's architecture or dimensions.
    InvalidData(String),
    /// An underlying I/O failure (missing file, permissions, …).
    Io(io::Error),
    /// Training diverged and exhausted its recovery budget.
    Diverged {
        /// Epoch at which recovery gave up.
        epoch: usize,
        /// Recoveries attempted before giving up.
        recoveries: usize,
    },
    /// A non-finite value (NaN/Inf) surfaced where recovery was
    /// impossible.
    NonFinite(String),
}

impl QdgnnError {
    /// Shorthand for [`QdgnnError::InvalidData`].
    pub fn invalid(msg: impl Into<String>) -> Self {
        QdgnnError::InvalidData(msg.into())
    }

    /// Whether the error describes malformed input (as opposed to an
    /// environment/I/O failure) — useful for HTTP-ish status mapping.
    pub fn is_bad_input(&self) -> bool {
        matches!(
            self,
            QdgnnError::VertexOutOfRange { .. }
                | QdgnnError::AttrOutOfRange { .. }
                | QdgnnError::EmptyQuery
                | QdgnnError::ScoreLengthMismatch { .. }
                | QdgnnError::InvalidData(_)
        )
    }
}

impl fmt::Display for QdgnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QdgnnError::VertexOutOfRange { vertex, n } => {
                write!(f, "query vertex {vertex} out of range (graph has {n} vertices)")
            }
            QdgnnError::AttrOutOfRange { attr, d } => {
                write!(f, "query attribute {attr} out of range (vocabulary has {d} attributes)")
            }
            QdgnnError::EmptyQuery => write!(f, "query must contain at least one vertex"),
            QdgnnError::ScoreLengthMismatch { expected, got } => {
                write!(f, "score vector length {got} does not match graph size {expected}")
            }
            QdgnnError::InvalidData(msg) => write!(f, "invalid data: {msg}"),
            QdgnnError::Io(e) => write!(f, "i/o error: {e}"),
            QdgnnError::Diverged { epoch, recoveries } => write!(
                f,
                "training diverged at epoch {epoch} after {recoveries} recovery attempts"
            ),
            QdgnnError::NonFinite(what) => write!(f, "non-finite value in {what}"),
        }
    }
}

impl std::error::Error for QdgnnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QdgnnError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for QdgnnError {
    fn from(e: io::Error) -> Self {
        // Decoding layers below us (e.g. UTF-8 readers) tag corruption as
        // InvalidData; preserve that classification.
        if e.kind() == io::ErrorKind::InvalidData {
            QdgnnError::InvalidData(e.to_string())
        } else {
            QdgnnError::Io(e)
        }
    }
}

impl From<QdgnnError> for io::Error {
    fn from(e: QdgnnError) -> Self {
        match e {
            QdgnnError::Io(io) => io,
            other if other.is_bad_input() => {
                io::Error::new(io::ErrorKind::InvalidData, other.to_string())
            }
            other => io::Error::other(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_actionable() {
        let e = QdgnnError::VertexOutOfRange { vertex: 99, n: 10 };
        let msg = e.to_string();
        assert!(msg.contains("99") && msg.contains("10"), "message must name both: {msg}");
        assert!(e.is_bad_input());
        assert!(!QdgnnError::Io(io::Error::other("disk on fire")).is_bad_input());
    }

    #[test]
    fn io_round_trip_preserves_invalid_data_kind() {
        let e = QdgnnError::invalid("truncated file");
        let io_err: io::Error = e.into();
        assert_eq!(io_err.kind(), io::ErrorKind::InvalidData);
        let back: QdgnnError = io_err.into();
        assert!(matches!(back, QdgnnError::InvalidData(_)));
    }
}
