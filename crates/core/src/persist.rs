//! Trained-model and training-checkpoint persistence.
//!
//! The paper's framework trains once, offline, and serves queries online
//! indefinitely — which requires putting trained weights on disk. The
//! format is line-oriented text with f32 values serialized as exact IEEE
//! bit patterns (hex), so a save/load round trip is bit-identical:
//!
//! ```text
//! qdgnn-model v1
//! model <name>
//! gamma <hex-f32>
//! params <count>
//! param <name> <rows> <cols>
//! <hex values, one row per line>
//! …
//! bns <count>
//! bn <dim>
//! <running-mean row>
//! <running-var row>
//! …
//! ```
//!
//! Crash-resume checkpoints (`qdgnn-checkpoint v1`) extend the same block
//! vocabulary with the training loop's mutable state: epoch counter,
//! learning rate, Adam moments (`adam-m` / `adam-v` sections), loss and
//! validation histories, and the best-on-validation snapshot. Both
//! writers are atomic (write to a `.tmp` sibling, then rename), and both
//! loaders validate the entire file against the target model before
//! committing anything, so a corrupt or truncated file can never leave a
//! half-restored model behind.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use qdgnn_tensor::{AdamState, Dense};

use crate::error::{QdgnnError, Result};
use crate::models::{Checkpoint, CsModel};
use crate::train::ResumeState;

/// Saves a trained model's parameters, batch-norm running statistics and
/// selected threshold γ.
///
/// The write is atomic: content goes to a `<path>.tmp` sibling which is
/// renamed over `path` only after a successful flush, so a crash mid-save
/// can never leave a half-written model where a good one used to be.
pub fn save_model(path: impl AsRef<Path>, model: &dyn CsModel, gamma: f32) -> Result<()> {
    write_atomic(path.as_ref(), |w| {
        writeln!(w, "qdgnn-model v1")?;
        writeln!(w, "model {}", model.name())?;
        writeln!(w, "gamma {:08x}", gamma.to_bits())?;
        write_params_section(w, model.store().len(), model.store().iter().map(|(_, n, v)| (n, &**v)))?;
        write_bns_section(
            w,
            model.bns().len(),
            model.bns().iter().map(|bn| (bn.running_mean(), bn.running_var())),
        )?;
        Ok(())
    })
}

/// Restores a model saved by [`save_model`] into `model` (which must have
/// been constructed with the same configuration and graph dimensions).
/// Returns the stored γ.
///
/// # Errors
/// Returns [`QdgnnError::InvalidData`] when the file does not match the
/// model's layout (wrong architecture, different graph dimensions,
/// truncated or corrupt file, trailing garbage), and [`QdgnnError::Io`]
/// for environment failures. Never panics, whatever the file contains;
/// `model` is only modified after the whole file validates.
pub fn load_model(path: impl AsRef<Path>, model: &mut dyn CsModel) -> Result<f32> {
    let reader = BufReader::new(File::open(path)?);
    let mut lines = reader.lines();
    if next_line(&mut lines)?.trim() != "qdgnn-model v1" {
        return Err(bad("not a qdgnn model file"));
    }
    check_model_name(&next_line(&mut lines)?, model)?;
    let gamma = parse_gamma(&next_line(&mut lines)?)?;
    let snapshot = read_params_section(&mut lines, model, "params ")?;
    let bn_stats = read_bns_section(&mut lines, model)?;
    expect_eof(&mut lines)?;

    // All validated: commit.
    commit_weights(model, &snapshot, bn_stats);
    Ok(gamma)
}

/// Writes a crash-resume training checkpoint: the model's current weights
/// plus the full mutable state of the training loop. Atomic, like
/// [`save_model`].
pub(crate) fn save_train_checkpoint(
    path: impl AsRef<Path>,
    model: &dyn CsModel,
    state: &ResumeState,
) -> Result<()> {
    write_atomic(path.as_ref(), |w| {
        writeln!(w, "qdgnn-checkpoint v1")?;
        writeln!(w, "model {}", model.name())?;
        writeln!(w, "epochs-done {}", state.epochs_done)?;
        writeln!(w, "lr {:08x}", state.lr.to_bits())?;
        writeln!(w, "recoveries {}", state.recoveries)?;
        writeln!(w, "skipped {}", state.skipped_steps)?;
        writeln!(w, "stale {}", state.stale_validations)?;
        writeln!(w, "adam-step {}", state.adam.step)?;
        writeln!(w, "best-f1 {:016x}", state.best.0.to_bits())?;
        writeln!(w, "best-gamma {:08x}", state.best.1.to_bits())?;
        writeln!(w, "loss-history {}", state.loss_history.len())?;
        if !state.loss_history.is_empty() {
            writeln!(w, "{}", hex_row(&state.loss_history))?;
        }
        writeln!(w, "val-history {}", state.val_history.len())?;
        for (epoch, f1) in &state.val_history {
            writeln!(w, "{epoch} {:016x}", f1.to_bits())?;
        }
        write_params_section(w, model.store().len(), model.store().iter().map(|(_, n, v)| (n, &**v)))?;
        write_bns_section(
            w,
            model.bns().len(),
            model.bns().iter().map(|bn| (bn.running_mean(), bn.running_var())),
        )?;
        writeln!(w, "adam-m {}", state.adam.m.len())?;
        for (m, (_, name, _)) in state.adam.m.iter().zip(model.store().iter()) {
            write_param_block(w, name, m)?;
        }
        writeln!(w, "adam-v {}", state.adam.v.len())?;
        for (v, (_, name, _)) in state.adam.v.iter().zip(model.store().iter()) {
            write_param_block(w, name, v)?;
        }
        match &state.best.2 {
            None => writeln!(w, "best 0")?,
            Some(ckpt) => {
                writeln!(w, "best 1")?;
                write_params_section(
                    w,
                    ckpt.params().len(),
                    model.store().iter().map(|(_, n, _)| n).zip(ckpt.params().iter()),
                )?;
                write_bns_section(
                    w,
                    ckpt.bn_running().len(),
                    ckpt.bn_running().iter().map(|(m, v)| (m, v)),
                )?;
            }
        }
        Ok(())
    })
}

/// Loads a checkpoint written by [`save_train_checkpoint`]: restores the
/// in-flight weights into `model` and returns the training-loop state.
/// Like [`load_model`], everything is validated against the target model
/// before anything is committed, and no input can cause a panic.
pub(crate) fn load_train_checkpoint(
    path: impl AsRef<Path>,
    model: &mut dyn CsModel,
) -> Result<ResumeState> {
    let reader = BufReader::new(File::open(path)?);
    let mut lines = reader.lines();
    if next_line(&mut lines)?.trim() != "qdgnn-checkpoint v1" {
        return Err(bad("not a qdgnn checkpoint file"));
    }
    check_model_name(&next_line(&mut lines)?, model)?;
    let epochs_done = parse_count(&next_line(&mut lines)?, "epochs-done ")?;
    let lr = parse_hex_f32(
        next_line(&mut lines)?.strip_prefix("lr ").ok_or_else(|| bad("missing lr"))?,
    )?;
    if !lr.is_finite() || lr <= 0.0 {
        return Err(bad("checkpoint learning rate must be finite and positive"));
    }
    let recoveries = parse_count(&next_line(&mut lines)?, "recoveries ")?;
    let skipped_steps = parse_count(&next_line(&mut lines)?, "skipped ")?;
    let stale_validations = parse_count(&next_line(&mut lines)?, "stale ")?;
    let adam_step = parse_count(&next_line(&mut lines)?, "adam-step ")? as u64;
    let best_f1 = parse_hex_f64(
        next_line(&mut lines)?.strip_prefix("best-f1 ").ok_or_else(|| bad("missing best-f1"))?,
    )?;
    let best_gamma = parse_hex_f32(
        next_line(&mut lines)?
            .strip_prefix("best-gamma ")
            .ok_or_else(|| bad("missing best-gamma"))?,
    )?;
    let loss_len = parse_count(&next_line(&mut lines)?, "loss-history ")?;
    let mut loss_history = Vec::with_capacity(loss_len);
    if loss_len > 0 {
        parse_hex_row(&next_line(&mut lines)?, loss_len, &mut loss_history)?;
    }
    let val_len = parse_count(&next_line(&mut lines)?, "val-history ")?;
    let mut val_history = Vec::with_capacity(val_len);
    for _ in 0..val_len {
        let line = next_line(&mut lines)?;
        let mut parts = line.split_whitespace();
        let epoch: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("bad val-history epoch"))?;
        let f1 = parse_hex_f64(parts.next().ok_or_else(|| bad("missing val-history f1"))?)?;
        if parts.next().is_some() {
            return Err(bad("trailing tokens in val-history entry"));
        }
        val_history.push((epoch, f1));
    }
    let current = read_params_section(&mut lines, model, "params ")?;
    let current_bns = read_bns_section(&mut lines, model)?;
    let adam_m = read_params_section(&mut lines, model, "adam-m ")?;
    let adam_v = read_params_section(&mut lines, model, "adam-v ")?;
    let best_flag = parse_count(&next_line(&mut lines)?, "best ")?;
    let best_ckpt = match best_flag {
        0 => None,
        1 => {
            let params = read_params_section(&mut lines, model, "params ")?;
            let bns = read_bns_section(&mut lines, model)?;
            Some(Checkpoint::from_parts(params, bns))
        }
        _ => return Err(bad("best flag must be 0 or 1")),
    };
    expect_eof(&mut lines)?;

    // All validated: commit.
    commit_weights(model, &current, current_bns);
    Ok(ResumeState {
        epochs_done,
        lr,
        adam: AdamState { step: adam_step, m: adam_m, v: adam_v },
        recoveries,
        skipped_steps,
        stale_validations,
        loss_history,
        val_history,
        best: (best_f1, best_gamma, best_ckpt),
    })
}

/// Runs `body` against a buffered writer on `<path>.tmp`, then renames the
/// finished file over `path`.
fn write_atomic(path: &Path, body: impl FnOnce(&mut BufWriter<File>) -> io::Result<()>) -> Result<()> {
    let tmp = tmp_sibling(path);
    {
        let mut w = BufWriter::new(File::create(&tmp)?);
        body(&mut w)?;
        w.flush()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Temp-file sibling used for atomic writes.
pub(crate) fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

fn write_param_block(w: &mut impl Write, name: &str, value: &Dense) -> io::Result<()> {
    writeln!(w, "param {} {} {}", name, value.rows(), value.cols())?;
    for r in 0..value.rows() {
        writeln!(w, "{}", hex_row(value.row(r)))?;
    }
    Ok(())
}

fn write_params_section<'a>(
    w: &mut impl Write,
    count: usize,
    named: impl Iterator<Item = (&'a str, &'a Dense)>,
) -> io::Result<()> {
    writeln!(w, "params {count}")?;
    for (name, value) in named {
        write_param_block(w, name, value)?;
    }
    Ok(())
}

fn write_bns_section<'a>(
    w: &mut impl Write,
    count: usize,
    bns: impl Iterator<Item = (&'a Dense, &'a Dense)>,
) -> io::Result<()> {
    writeln!(w, "bns {count}")?;
    for (mean, var) in bns {
        writeln!(w, "bn {}", mean.len())?;
        writeln!(w, "{}", hex_row(mean.as_slice()))?;
        writeln!(w, "{}", hex_row(var.as_slice()))?;
    }
    Ok(())
}

/// Reads a `<keyword><count>` header plus `count` parameter blocks,
/// validating the count and every shape against `model`'s store.
fn read_params_section(
    lines: &mut impl Iterator<Item = io::Result<String>>,
    model: &dyn CsModel,
    keyword: &str,
) -> Result<Vec<Dense>> {
    let count = parse_count(&next_line(lines)?, keyword)?;
    if count != model.store().len() {
        return Err(bad(&format!(
            "parameter count mismatch: file has {count}, model has {}",
            model.store().len()
        )));
    }
    let shapes: Vec<(usize, usize)> = model.store().iter().map(|(_, _, v)| v.shape()).collect();
    let mut out = Vec::with_capacity(count);
    for (i, &(erows, ecols)) in shapes.iter().enumerate() {
        let header = next_line(lines)?;
        let mut parts = header.split_whitespace();
        if parts.next() != Some("param") {
            return Err(bad("expected `param` header"));
        }
        let _name = parts.next().ok_or_else(|| bad("missing param name"))?;
        let rows: usize =
            parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| bad("bad param rows"))?;
        let cols: usize =
            parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| bad("bad param cols"))?;
        if (rows, cols) != (erows, ecols) {
            return Err(bad(&format!(
                "parameter {i} shape mismatch: file {rows}x{cols}, model {erows}x{ecols}"
            )));
        }
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows {
            parse_hex_row(&next_line(lines)?, cols, &mut data)?;
        }
        out.push(Dense::from_vec(rows, cols, data));
    }
    Ok(out)
}

/// Reads a `bns <count>` header plus per-layer `(mean, var)` rows,
/// validating count and widths against `model`'s batch-norm table.
fn read_bns_section(
    lines: &mut impl Iterator<Item = io::Result<String>>,
    model: &dyn CsModel,
) -> Result<Vec<(Dense, Dense)>> {
    let count = parse_count(&next_line(lines)?, "bns ")?;
    if count != model.bns().len() {
        return Err(bad("batch-norm count mismatch"));
    }
    let mut out = Vec::with_capacity(count);
    for bn in model.bns() {
        let header = next_line(lines)?;
        let dim = parse_count(&header, "bn ")?;
        if dim != bn.dim() {
            return Err(bad("batch-norm width mismatch"));
        }
        let mut mean = Vec::with_capacity(dim);
        parse_hex_row(&next_line(lines)?, dim, &mut mean)?;
        let mut var = Vec::with_capacity(dim);
        parse_hex_row(&next_line(lines)?, dim, &mut var)?;
        out.push((Dense::from_vec(1, dim, mean), Dense::from_vec(1, dim, var)));
    }
    Ok(out)
}

fn commit_weights(model: &mut dyn CsModel, snapshot: &[Dense], bn_stats: Vec<(Dense, Dense)>) {
    model.store_mut().restore(snapshot);
    for (bn, (mean, var)) in model.bns_mut().iter_mut().zip(bn_stats) {
        bn.set_running(mean, var);
    }
}

fn check_model_name(line: &str, model: &dyn CsModel) -> Result<()> {
    let stored = line.strip_prefix("model ").ok_or_else(|| bad("missing model name"))?;
    if stored != model.name() {
        return Err(bad(&format!(
            "model type mismatch: file has `{stored}`, target is `{}`",
            model.name()
        )));
    }
    Ok(())
}

/// Pulls the next line of a model/checkpoint file, mapping EOF and
/// undecodable bytes to [`QdgnnError::InvalidData`].
pub(crate) fn next_line(lines: &mut impl Iterator<Item = io::Result<String>>) -> Result<String> {
    match lines.next() {
        Some(Ok(line)) => Ok(line),
        Some(Err(e)) => Err(e.into()),
        None => Err(bad("unexpected end of file")),
    }
}

/// Rejects trailing content after the last expected block: garbage there
/// means the file is not what the header promised.
pub(crate) fn expect_eof(lines: &mut impl Iterator<Item = io::Result<String>>) -> Result<()> {
    for line in lines {
        if !line?.trim().is_empty() {
            return Err(bad("trailing data after the final block"));
        }
    }
    Ok(())
}

/// Parses a `gamma <hex-f32>` line, rejecting non-finite thresholds (a
/// NaN/Inf γ would make the BFS admit nothing or everything).
pub(crate) fn parse_gamma(line: &str) -> Result<f32> {
    let gamma = parse_hex_f32(line.strip_prefix("gamma ").ok_or_else(|| bad("missing gamma"))?)?;
    if !gamma.is_finite() {
        return Err(bad("non-finite gamma"));
    }
    Ok(gamma)
}

fn parse_count(line: &str, keyword: &str) -> Result<usize> {
    line.strip_prefix(keyword)
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| bad(&format!("missing or malformed `{}` line", keyword.trim_end())))
}

fn parse_hex_f32(token: &str) -> Result<f32> {
    u32::from_str_radix(token.trim(), 16)
        .map(f32::from_bits)
        .map_err(|_| bad("bad hex f32 encoding"))
}

fn parse_hex_f64(token: &str) -> Result<f64> {
    u64::from_str_radix(token.trim(), 16)
        .map(f64::from_bits)
        .map_err(|_| bad("bad hex f64 encoding"))
}

fn hex_row(values: &[f32]) -> String {
    let mut s = String::with_capacity(values.len() * 9);
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(&format!("{:08x}", v.to_bits()));
    }
    s
}

pub(crate) fn parse_hex_row(line: &str, expected: usize, out: &mut Vec<f32>) -> Result<()> {
    let before = out.len();
    for token in line.split_whitespace() {
        let bits = u32::from_str_radix(token, 16).map_err(|_| bad("bad hex value"))?;
        out.push(f32::from_bits(bits));
    }
    if out.len() - before != expected {
        return Err(bad(&format!(
            "row width mismatch: expected {expected}, got {}",
            out.len() - before
        )));
    }
    Ok(())
}

fn bad(msg: &str) -> QdgnnError {
    QdgnnError::invalid(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::inputs::{GraphTensors, QueryVectors};
    use crate::models::{predict_scores, AqdGnn, QdGnn};
    use qdgnn_data::presets;
    use qdgnn_graph::attributed::AdjNorm;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("qdgnn_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
        let model = AqdGnn::new(ModelConfig::fast(), t.d);
        let q = QueryVectors::encode(t.n, t.d, &[0], &[1]);
        let before = predict_scores(&model, &t, &q);

        let path = tmp("aqd.model");
        save_model(&path, &model, 0.55).unwrap();
        let mut fresh = AqdGnn::new(ModelConfig { seed: 999, ..ModelConfig::fast() }, t.d);
        let gamma = load_model(&path, &mut fresh).unwrap();
        assert_eq!(gamma, 0.55);
        let after = predict_scores(&fresh, &t, &q);
        assert_eq!(before, after, "restored model must predict identically");
    }

    #[test]
    fn wrong_model_type_is_rejected() {
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
        let aqd = AqdGnn::new(ModelConfig::fast(), t.d);
        let path = tmp("typed.model");
        save_model(&path, &aqd, 0.5).unwrap();
        let mut qd = QdGnn::new(ModelConfig::fast(), t.d);
        let err = load_model(&path, &mut qd).unwrap_err();
        assert!(matches!(err, QdgnnError::InvalidData(_)), "got {err}");
        // Typed errors still translate to the conventional io kind.
        assert_eq!(io::Error::from(err).kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn wrong_dimensions_are_rejected() {
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
        let model = QdGnn::new(ModelConfig::fast(), t.d);
        let path = tmp("dims.model");
        save_model(&path, &model, 0.5).unwrap();
        // Different attribute vocabulary → different first-layer shapes.
        let mut other = QdGnn::new(ModelConfig::fast(), t.d + 3);
        assert!(load_model(&path, &mut other).is_err());
    }

    #[test]
    fn corrupt_file_is_rejected() {
        let path = tmp("corrupt.model");
        std::fs::write(&path, "qdgnn-model v1\nmodel QD-GNN\ngamma zz\n").unwrap();
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
        let mut model = QdGnn::new(ModelConfig::fast(), t.d);
        assert!(load_model(&path, &mut model).is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
        let model = QdGnn::new(ModelConfig::fast(), t.d);
        let path = tmp("trailing.model");
        save_model(&path, &model, 0.5).unwrap();
        let mut content = std::fs::read_to_string(&path).unwrap();
        content.push_str("deadbeef deadbeef\n");
        std::fs::write(&path, content).unwrap();
        let mut fresh = QdGnn::new(ModelConfig::fast(), t.d);
        let err = load_model(&path, &mut fresh).unwrap_err();
        assert!(matches!(err, QdgnnError::InvalidData(_)), "got {err}");
    }

    #[test]
    fn wrong_declared_param_count_is_rejected() {
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
        let model = QdGnn::new(ModelConfig::fast(), t.d);
        let path = tmp("count.model");
        save_model(&path, &model, 0.5).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let mangled: String = content
            .lines()
            .map(|l| {
                if l.starts_with("params ") {
                    "params 1\n".to_string()
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        std::fs::write(&path, mangled).unwrap();
        let mut fresh = QdGnn::new(ModelConfig::fast(), t.d);
        assert!(matches!(
            load_model(&path, &mut fresh),
            Err(QdgnnError::InvalidData(_))
        ));
    }

    #[test]
    fn non_finite_gamma_is_rejected() {
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
        let model = QdGnn::new(ModelConfig::fast(), t.d);
        let path = tmp("nan_gamma.model");
        save_model(&path, &model, 0.5).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let mangled: String = content
            .lines()
            .map(|l| {
                if l.starts_with("gamma ") {
                    format!("gamma {:08x}\n", f32::NAN.to_bits())
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        std::fs::write(&path, mangled).unwrap();
        let mut fresh = QdGnn::new(ModelConfig::fast(), t.d);
        assert!(matches!(
            load_model(&path, &mut fresh),
            Err(QdgnnError::InvalidData(_))
        ));
    }

    #[test]
    fn save_is_atomic_no_tmp_left_behind() {
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
        let model = QdGnn::new(ModelConfig::fast(), t.d);
        let path = tmp("atomic.model");
        save_model(&path, &model, 0.5).unwrap();
        assert!(path.exists());
        assert!(!tmp_sibling(&path).exists(), "tmp sibling must be renamed away");
    }

    #[test]
    fn checkpoint_round_trip_preserves_training_state() {
        use qdgnn_tensor::{Adam, AdamConfig};

        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
        let model = QdGnn::new(ModelConfig::fast(), t.d);
        let opt = Adam::new(AdamConfig::default(), model.store());
        let state = ResumeState {
            epochs_done: 17,
            lr: 5e-4,
            adam: opt.state(),
            recoveries: 2,
            skipped_steps: 3,
            stale_validations: 1,
            loss_history: vec![0.7, 0.5, 0.4],
            val_history: vec![(10, 0.61), (17, 0.66)],
            best: (0.66, 0.45, Some(model.checkpoint())),
        };
        let path = tmp("resume.ckpt");
        save_train_checkpoint(&path, &model, &state).unwrap();

        let mut fresh = QdGnn::new(ModelConfig { seed: 321, ..ModelConfig::fast() }, t.d);
        let loaded = load_train_checkpoint(&path, &mut fresh).unwrap();
        assert_eq!(loaded.epochs_done, 17);
        assert_eq!(loaded.lr, 5e-4);
        assert_eq!(loaded.recoveries, 2);
        assert_eq!(loaded.skipped_steps, 3);
        assert_eq!(loaded.stale_validations, 1);
        assert_eq!(loaded.loss_history, state.loss_history);
        assert_eq!(loaded.val_history, state.val_history);
        assert_eq!(loaded.best.0, 0.66);
        assert_eq!(loaded.best.1, 0.45);
        assert!(loaded.best.2.is_some());
        let q = QueryVectors::encode(t.n, t.d, &[0], &[]);
        assert_eq!(
            predict_scores(&fresh, &t, &q),
            predict_scores(&model, &t, &q),
            "restored in-flight weights must predict identically"
        );
    }

    #[test]
    fn checkpoint_corruption_is_rejected_not_fatal() {
        use qdgnn_tensor::{Adam, AdamConfig};

        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
        let model = QdGnn::new(ModelConfig::fast(), t.d);
        let opt = Adam::new(AdamConfig::default(), model.store());
        let state = ResumeState {
            epochs_done: 5,
            lr: 1e-3,
            adam: opt.state(),
            recoveries: 0,
            skipped_steps: 0,
            stale_validations: 0,
            loss_history: vec![0.7],
            val_history: vec![],
            best: (-1.0, 0.5, None),
        };
        let path = tmp("corrupt.ckpt");
        save_train_checkpoint(&path, &model, &state).unwrap();
        let good = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = good.lines().collect();
        // Truncate at several depths, including mid-Adam-moments.
        for cut in [1, 3, lines.len() / 2, lines.len() - 1] {
            let truncated: String = lines[..cut].iter().map(|l| format!("{l}\n")).collect();
            std::fs::write(&path, truncated).unwrap();
            let mut fresh = QdGnn::new(ModelConfig::fast(), t.d);
            assert!(
                load_train_checkpoint(&path, &mut fresh).is_err(),
                "truncation at line {cut} must be rejected"
            );
        }
    }
}
