//! Trained-model persistence.
//!
//! The paper's framework trains once, offline, and serves queries online
//! indefinitely — which requires putting trained weights on disk. The
//! format is line-oriented text with f32 values serialized as exact IEEE
//! bit patterns (hex), so a save/load round trip is bit-identical:
//!
//! ```text
//! qdgnn-model v1
//! model <name>
//! gamma <hex-f32>
//! params <count>
//! param <name> <rows> <cols>
//! <hex values, one row per line>
//! …
//! bns <count>
//! bn <dim>
//! <running-mean row>
//! <running-var row>
//! …
//! ```

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use qdgnn_tensor::Dense;

use crate::models::CsModel;

/// Saves a trained model's parameters, batch-norm running statistics and
/// selected threshold γ.
pub fn save_model(path: impl AsRef<Path>, model: &dyn CsModel, gamma: f32) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "qdgnn-model v1")?;
    writeln!(w, "model {}", model.name())?;
    writeln!(w, "gamma {:08x}", gamma.to_bits())?;
    writeln!(w, "params {}", model.store().len())?;
    for (_, name, value) in model.store().iter() {
        writeln!(w, "param {} {} {}", name, value.rows(), value.cols())?;
        for r in 0..value.rows() {
            writeln!(w, "{}", hex_row(value.row(r)))?;
        }
    }
    writeln!(w, "bns {}", model.bns().len())?;
    for bn in model.bns() {
        writeln!(w, "bn {}", bn.dim())?;
        writeln!(w, "{}", hex_row(bn.running_mean().as_slice()))?;
        writeln!(w, "{}", hex_row(bn.running_var().as_slice()))?;
    }
    Ok(())
}

/// Restores a model saved by [`save_model`] into `model` (which must have
/// been constructed with the same configuration and graph dimensions).
/// Returns the stored γ.
///
/// # Errors
/// Returns `InvalidData` when the file does not match the model's layout
/// (wrong architecture, different graph dimensions, corrupt file).
pub fn load_model(path: impl AsRef<Path>, model: &mut dyn CsModel) -> io::Result<f32> {
    let reader = BufReader::new(File::open(path)?);
    let mut lines = reader.lines();
    let mut next = move || -> io::Result<String> {
        lines.next().ok_or_else(|| bad("unexpected end of model file"))?
    };
    if next()?.trim() != "qdgnn-model v1" {
        return Err(bad("not a qdgnn model file"));
    }
    let name_line = next()?;
    let stored_name = name_line.strip_prefix("model ").ok_or_else(|| bad("missing model name"))?;
    if stored_name != model.name() {
        return Err(bad(&format!(
            "model type mismatch: file has `{stored_name}`, target is `{}`",
            model.name()
        )));
    }
    let gamma_line = next()?;
    let gamma_hex = gamma_line.strip_prefix("gamma ").ok_or_else(|| bad("missing gamma"))?;
    let gamma = f32::from_bits(
        u32::from_str_radix(gamma_hex.trim(), 16).map_err(|_| bad("bad gamma encoding"))?,
    );

    let count_line = next()?;
    let count: usize = count_line
        .strip_prefix("params ")
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| bad("missing parameter count"))?;
    if count != model.store().len() {
        return Err(bad(&format!(
            "parameter count mismatch: file has {count}, model has {}",
            model.store().len()
        )));
    }
    let mut snapshot: Vec<Dense> = Vec::with_capacity(count);
    for i in 0..count {
        let header = next()?;
        let mut parts = header.split_whitespace();
        if parts.next() != Some("param") {
            return Err(bad("expected `param` header"));
        }
        let _name = parts.next().ok_or_else(|| bad("missing param name"))?;
        let rows: usize =
            parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| bad("bad param rows"))?;
        let cols: usize =
            parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| bad("bad param cols"))?;
        let expect = {
            let id = model.store().ids().nth(i).expect("checked count");
            model.store().value(id).shape()
        };
        if (rows, cols) != expect {
            return Err(bad(&format!(
                "parameter {i} shape mismatch: file {rows}x{cols}, model {}x{}",
                expect.0, expect.1
            )));
        }
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows {
            parse_hex_row(&next()?, cols, &mut data)?;
        }
        snapshot.push(Dense::from_vec(rows, cols, data));
    }
    let bn_line = next()?;
    let bn_count: usize = bn_line
        .strip_prefix("bns ")
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| bad("missing bn count"))?;
    if bn_count != model.bns().len() {
        return Err(bad("batch-norm count mismatch"));
    }
    let mut bn_stats: Vec<(Dense, Dense)> = Vec::with_capacity(bn_count);
    for i in 0..bn_count {
        let header = next()?;
        let dim: usize = header
            .strip_prefix("bn ")
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| bad("bad bn header"))?;
        if dim != model.bns()[i].dim() {
            return Err(bad("batch-norm width mismatch"));
        }
        let mut mean = Vec::with_capacity(dim);
        parse_hex_row(&next()?, dim, &mut mean)?;
        let mut var = Vec::with_capacity(dim);
        parse_hex_row(&next()?, dim, &mut var)?;
        bn_stats.push((Dense::from_vec(1, dim, mean), Dense::from_vec(1, dim, var)));
    }

    // All validated: commit.
    model.store_mut().restore(&snapshot);
    for (bn, (mean, var)) in model.bns_mut().iter_mut().zip(bn_stats) {
        bn.set_running(mean, var);
    }
    Ok(gamma)
}

fn hex_row(values: &[f32]) -> String {
    let mut s = String::with_capacity(values.len() * 9);
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(&format!("{:08x}", v.to_bits()));
    }
    s
}

fn parse_hex_row(line: &str, expected: usize, out: &mut Vec<f32>) -> io::Result<()> {
    let before = out.len();
    for token in line.split_whitespace() {
        let bits = u32::from_str_radix(token, 16).map_err(|_| bad("bad hex value"))?;
        out.push(f32::from_bits(bits));
    }
    if out.len() - before != expected {
        return Err(bad(&format!(
            "row width mismatch: expected {expected}, got {}",
            out.len() - before
        )));
    }
    Ok(())
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::inputs::{GraphTensors, QueryVectors};
    use crate::models::{predict_scores, AqdGnn, QdGnn};
    use qdgnn_data::presets;
    use qdgnn_graph::attributed::AdjNorm;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("qdgnn_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
        let model = AqdGnn::new(ModelConfig::fast(), t.d);
        let q = QueryVectors::encode(t.n, t.d, &[0], &[1]);
        let before = predict_scores(&model, &t, &q);

        let path = tmp("aqd.model");
        save_model(&path, &model, 0.55).unwrap();
        let mut fresh = AqdGnn::new(ModelConfig { seed: 999, ..ModelConfig::fast() }, t.d);
        let gamma = load_model(&path, &mut fresh).unwrap();
        assert_eq!(gamma, 0.55);
        let after = predict_scores(&fresh, &t, &q);
        assert_eq!(before, after, "restored model must predict identically");
    }

    #[test]
    fn wrong_model_type_is_rejected() {
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
        let aqd = AqdGnn::new(ModelConfig::fast(), t.d);
        let path = tmp("typed.model");
        save_model(&path, &aqd, 0.5).unwrap();
        let mut qd = QdGnn::new(ModelConfig::fast(), t.d);
        let err = load_model(&path, &mut qd).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn wrong_dimensions_are_rejected() {
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
        let model = QdGnn::new(ModelConfig::fast(), t.d);
        let path = tmp("dims.model");
        save_model(&path, &model, 0.5).unwrap();
        // Different attribute vocabulary → different first-layer shapes.
        let mut other = QdGnn::new(ModelConfig::fast(), t.d + 3);
        assert!(load_model(&path, &mut other).is_err());
    }

    #[test]
    fn corrupt_file_is_rejected() {
        let path = tmp("corrupt.model");
        std::fs::write(&path, "qdgnn-model v1\nmodel QD-GNN\ngamma zz\n").unwrap();
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, AdjNorm::GcnSym, 100);
        let mut model = QdGnn::new(ModelConfig::fast(), t.d);
        assert!(load_model(&path, &mut model).is_err());
    }
}
