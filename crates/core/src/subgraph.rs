//! The large-graph subgraph-training mechanism of §7.4.
//!
//! For graphs where whole-graph propagation is too expensive, each query
//! is handled on a *candidate subgraph*: the 1- or 2-hop neighbourhood of
//! the query vertices in the **fusion graph** (structure + same-attribute
//! edges), the hop count chosen by neighbourhood size. The model is
//! trained on these small subgraphs and predicts communities on them;
//! its parameter shapes are graph-size-independent (the Query Encoder's
//! input width is 1, the Graph/Attribute Encoders' widths depend only on
//! the attribute vocabulary), so one model serves all subgraphs.

use qdgnn_data::Query;
use qdgnn_graph::graph::Subgraph;
use qdgnn_graph::{traversal, AttributedGraph, CommunityMetrics, Graph, VertexId};

use crate::config::ModelConfig;
use crate::identify::identify_community;
use crate::inputs::GraphTensors;
use crate::models::{predict_scores, CsModel};
use crate::train::{encode_query, run_training, TrainConfig, TrainItem, TrainedModel};

/// Candidate-subgraph extraction parameters.
#[derive(Clone, Debug)]
pub struct SubgraphConfig {
    /// If the 1-hop fusion neighbourhood has fewer vertices than this,
    /// expand to 2 hops (the paper selects "1 or 2-hop neighbors
    /// according to the number of neighbors").
    pub two_hop_below: usize,
    /// Hard cap on candidate size; BFS order decides who stays.
    pub max_vertices: usize,
}

impl Default for SubgraphConfig {
    fn default() -> Self {
        SubgraphConfig { two_hop_below: 256, max_vertices: 2048 }
    }
}

/// A per-query candidate subgraph with its tensors and localized query.
pub struct Candidate {
    /// Tensors of the candidate subgraph.
    pub tensors: GraphTensors,
    /// Local↔global vertex mapping.
    pub map: Subgraph,
    /// The query with vertices and ground truth in local ids (truth
    /// restricted to the candidate).
    pub local_query: Query,
}

/// Extracts the candidate subgraph for `query` using `fusion` for
/// neighbourhood selection (build it once per graph with
/// [`AttributedGraph::fusion_graph`]).
pub fn extract_candidate(
    graph: &AttributedGraph,
    fusion: &Graph,
    query: &Query,
    model_config: &ModelConfig,
    cfg: &SubgraphConfig,
) -> Candidate {
    let one_hop = traversal::k_hop_neighborhood(fusion, &query.vertices, 1);
    let mut vertices = if one_hop.len() < cfg.two_hop_below {
        traversal::k_hop_neighborhood(fusion, &query.vertices, 2)
    } else {
        one_hop
    };
    if vertices.len() > cfg.max_vertices {
        // Keep the closest vertices (BFS distance, then id) so the query
        // neighbourhood survives the cap.
        let dist = traversal::bfs_distances(fusion, &query.vertices);
        vertices.sort_by_key(|&v| (dist[v as usize], v));
        vertices.truncate(cfg.max_vertices);
    }
    let (sub_attr, map) = graph.induced_subgraph(&vertices);
    let tensors =
        GraphTensors::new(&sub_attr, model_config.adj_norm, model_config.fusion_graph_attr_cap);
    let local_query = Query {
        vertices: query
            .vertices
            .iter()
            .filter_map(|&v| map.local(v))
            .collect(),
        attrs: query.attrs.clone(),
        truth: {
            let mut t: Vec<VertexId> =
                query.truth.iter().filter_map(|&v| map.local(v)).collect();
            t.sort_unstable();
            t
        },
    };
    Candidate { tensors, map, local_query }
}

/// Trainer for the subgraph mechanism: same optimization loop as
/// [`crate::train::Trainer`], but every query lives on its own candidate
/// subgraph.
pub struct SubgraphTrainer {
    /// Optimization hyper-parameters.
    pub train_config: TrainConfig,
    /// Candidate extraction parameters.
    pub subgraph_config: SubgraphConfig,
}

impl SubgraphTrainer {
    /// Creates a subgraph trainer.
    pub fn new(train_config: TrainConfig, subgraph_config: SubgraphConfig) -> Self {
        SubgraphTrainer { train_config, subgraph_config }
    }

    /// Trains `model` on per-query candidate subgraphs; validation also
    /// runs on candidates. Returns the trained model, its γ, and the
    /// validation candidates are discarded.
    pub fn train<M: CsModel>(
        &self,
        model: M,
        graph: &AttributedGraph,
        fusion: &Graph,
        train: &[Query],
        val: &[Query],
    ) -> TrainedModel<M> {
        let items: Vec<TrainItem> = train
            .iter()
            .map(|q| {
                let cand =
                    extract_candidate(graph, fusion, q, model.config(), &self.subgraph_config);
                TrainItem::prepare(&model, &cand.tensors, &cand.local_query)
            })
            .collect();
        let val_candidates: Vec<Candidate> = val
            .iter()
            .map(|q| extract_candidate(graph, fusion, q, model.config(), &self.subgraph_config))
            .collect();
        let grid = self.train_config.gamma_grid.clone();
        run_training(model, &items, &self.train_config, |m| {
            if val_candidates.is_empty() {
                None
            } else {
                Some(select_gamma_on_candidates(m, &val_candidates, val, &grid))
            }
        })
    }
}

/// Predicts the community for `query` via its candidate subgraph,
/// returning **global** vertex ids.
pub fn predict_community_subgraph(
    model: &dyn CsModel,
    graph: &AttributedGraph,
    fusion: &Graph,
    query: &Query,
    gamma: f32,
    cfg: &SubgraphConfig,
) -> Vec<VertexId> {
    let cand = {
        let _s = qdgnn_obs::span!("serve.extract");
        extract_candidate(graph, fusion, query, model.config(), cfg)
    };
    qdgnn_obs::observe("serve.candidate_vertices", cand.tensors.n as f64);
    predict_on_candidate(model, &cand, gamma)
}

/// Predicts on an already-extracted candidate (global ids).
pub fn predict_on_candidate(model: &dyn CsModel, cand: &Candidate, gamma: f32) -> Vec<VertexId> {
    let _query_span = qdgnn_obs::span!("serve.query");
    qdgnn_obs::counter("serve.queries").inc();
    let qv = {
        let _s = qdgnn_obs::span!("serve.encode");
        encode_query(model, &cand.tensors, &cand.local_query)
    };
    let scores = {
        let _s = qdgnn_obs::span!("serve.forward");
        predict_scores(model, &cand.tensors, &qv)
    };
    let attributed = model.uses_attributes() && !cand.local_query.attrs.is_empty();
    let local = {
        let _s = qdgnn_obs::span!("serve.bfs");
        identify_community(&cand.tensors, &cand.local_query.vertices, &scores, gamma, attributed)
    };
    let mut global = cand.map.to_global(&local);
    global.sort_unstable();
    qdgnn_obs::observe("serve.community_size", global.len() as f64);
    global
}

/// Micro-metrics over a query set evaluated through candidates, against
/// the **full** (global) ground truth — missing a community member
/// because the candidate was too small correctly costs recall.
pub fn evaluate_subgraph(
    model: &dyn CsModel,
    graph: &AttributedGraph,
    fusion: &Graph,
    queries: &[Query],
    gamma: f32,
    cfg: &SubgraphConfig,
) -> CommunityMetrics {
    let predicted: Vec<Vec<VertexId>> = queries
        .iter()
        .map(|q| predict_community_subgraph(model, graph, fusion, q, gamma, cfg))
        .collect();
    let truth: Vec<Vec<VertexId>> = queries.iter().map(|q| q.truth.clone()).collect();
    CommunityMetrics::micro(&predicted, &truth)
}

/// γ sweep over precomputed candidates (validation inside training).
fn select_gamma_on_candidates(
    model: &dyn CsModel,
    candidates: &[Candidate],
    global_queries: &[Query],
    grid: &[f32],
) -> (f32, f64) {
    let scored: Vec<Vec<f32>> = candidates
        .iter()
        .map(|c| {
            let qv = encode_query(model, &c.tensors, &c.local_query);
            predict_scores(model, &c.tensors, &qv)
        })
        .collect();
    let truth: Vec<Vec<VertexId>> = global_queries.iter().map(|q| q.truth.clone()).collect();
    let mut best = (grid.first().copied().unwrap_or(0.5), -1.0f64);
    for &gamma in grid {
        let predicted: Vec<Vec<VertexId>> = candidates
            .iter()
            .zip(&scored)
            .map(|(c, scores)| {
                let attributed = model.uses_attributes() && !c.local_query.attrs.is_empty();
                let local = identify_community(
                    &c.tensors,
                    &c.local_query.vertices,
                    scores,
                    gamma,
                    attributed,
                );
                let mut global = c.map.to_global(&local);
                global.sort_unstable();
                global
            })
            .collect();
        let f1 = CommunityMetrics::micro(&predicted, &truth).f1;
        if f1 > best.1 {
            best = (gamma, f1);
        }
    }
    (best.0, best.1.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::AqdGnn;
    use qdgnn_data::{presets, queries as qgen, AttrMode};

    #[test]
    fn candidate_contains_query_and_respects_cap() {
        let data = presets::toy();
        let mc = ModelConfig::fast();
        let fusion = data.graph.fusion_graph(mc.fusion_graph_attr_cap);
        let queries = qgen::generate(&data, 5, 1, 2, AttrMode::FromNode, 1);
        let cfg = SubgraphConfig { two_hop_below: 4, max_vertices: 12 };
        for q in &queries {
            let cand = extract_candidate(&data.graph, &fusion, q, &mc, &cfg);
            assert!(cand.tensors.n <= 12);
            assert_eq!(cand.local_query.vertices.len(), q.vertices.len());
            // Query vertices must survive the cap (distance 0).
            for &v in &q.vertices {
                assert!(cand.map.local(v).is_some());
            }
        }
    }

    #[test]
    fn two_hop_expansion_when_small() {
        let data = presets::toy();
        let mc = ModelConfig::fast();
        let fusion = data.graph.fusion_graph(mc.fusion_graph_attr_cap);
        let q = qgen::generate(&data, 1, 1, 1, AttrMode::Empty, 2).remove(0);
        let small = extract_candidate(
            &data.graph,
            &fusion,
            &q,
            &mc,
            &SubgraphConfig { two_hop_below: 0, max_vertices: 4096 },
        );
        let big = extract_candidate(
            &data.graph,
            &fusion,
            &q,
            &mc,
            &SubgraphConfig { two_hop_below: 4096, max_vertices: 4096 },
        );
        assert!(big.tensors.n >= small.tensors.n);
    }

    #[test]
    fn subgraph_training_learns_toy_communities() {
        let data = presets::toy();
        let mc = ModelConfig::fast();
        let fusion = data.graph.fusion_graph(mc.fusion_graph_attr_cap);
        let all = qgen::generate(&data, 40, 1, 2, AttrMode::FromCommunity, 3);
        let split = qdgnn_data::QuerySplit::new(all, 20, 10, 10);
        let model = AqdGnn::new(mc.clone(), data.graph.num_attrs());
        let trainer = SubgraphTrainer::new(
            TrainConfig { epochs: 25, ..TrainConfig::fast() },
            SubgraphConfig::default(),
        );
        let trained = trainer.train(model, &data.graph, &fusion, &split.train, &split.val);
        let metrics = evaluate_subgraph(
            &trained.model,
            &data.graph,
            &fusion,
            &split.test,
            trained.gamma,
            &SubgraphConfig::default(),
        );
        assert!(
            metrics.f1 > 0.4,
            "subgraph-trained AQD-GNN should find toy communities, F1={:.3}",
            metrics.f1
        );
    }
}
