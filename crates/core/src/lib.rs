#![warn(missing_docs)]

//! # qdgnn-core
//!
//! The paper's primary contribution: query-driven graph neural networks
//! for community search.
//!
//! * [`models::SimpleQdGnn`] — the query-propagation-only model of §5.1;
//! * [`models::QdGnn`] — Query Encoder + Graph Encoder + Feature Fusion
//!   (§5.2, Algorithm 2);
//! * [`models::AqdGnn`] — adds the bipartite Attribute Encoder for
//!   attributed community search (§6, Algorithm 3);
//! * [`train::Trainer`] — the offline training stage of §4.2 (BCE loss,
//!   Adam, data-parallel gradient batches, validation-based selection of
//!   the best weights and the threshold γ);
//! * [`identify`] — the online query stage of §4.3/§6.6 (constrained BFS
//!   on the structure graph or fusion graph);
//! * [`subgraph`] — the large-graph subgraph-training mechanism of §7.4;
//! * [`interactive`] — the ICS-GNN-style interactive loop of §7.3 with
//!   pluggable embedding models.

pub mod config;
pub mod error;
#[cfg(feature = "chaos")]
pub mod faultless;
pub mod identify;
pub mod inputs;
pub mod interactive;
pub mod models;
pub mod persist;
pub mod serve;
pub mod subgraph;
pub mod train;

pub use config::{FusionAgg, ModelConfig};
pub use error::QdgnnError;
pub use identify::{identify_community, try_identify_community};
pub use inputs::{GraphTensors, QueryBatch, QueryVectors};
pub use models::{AqdGnn, CsModel, ForwardResult, GraphCache, QdGnn, SimpleQdGnn};
pub use serve::{BatchTiming, OnlineStage};
pub use train::{TrainConfig, TrainReport, TrainedModel, Trainer};
