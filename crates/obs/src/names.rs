//! The checked-in metric-name catalog.
//!
//! Every metric, span, event and trace name the workspace records must
//! appear here and in the human-readable companion table
//! `crates/obs/METRICS.md` — the analyzer rule QD013 rejects any name
//! literal passed to `counter`/`gauge`/`observe`/`event`/`trace`/
//! `op_timer`/`span!` (and their `_with` variants) that this catalog
//! does not list, so dashboards scraping `/metrics` can never silently
//! drift from the code. Labeled series are catalogued by their base
//! name (`serve.request`, not `serve.request{outcome="…"}`).
//!
//! This module is compiled unconditionally (no feature gate): the
//! analyzer and the docs test need it in every build.

/// Every catalogued metric/span/event/trace base name, sorted.
pub const METRIC_NAMES: &[&str] = &[
    "identify.candidates",
    "mem.alloc_bytes",
    "mem.freed_bytes",
    "mem.live_bytes",
    "mem.peak_bytes",
    "obs.events_dropped",
    "obs.labels_dropped",
    "obs.series_dropped",
    "serve.batch_size",
    "serve.bfs",
    "serve.breaker_trips",
    "serve.candidate_vertices",
    "serve.community_size",
    "serve.deadline_exceeded",
    "serve.degraded_mode",
    "serve.encode",
    "serve.extract",
    "serve.flush",
    "serve.forward",
    "serve.forward_batch",
    "serve.queries",
    "serve.query",
    "serve.query_batch",
    "serve.queue_depth",
    "serve.queue_wait",
    "serve.rejected",
    "serve.request",
    "serve.request_span",
    "serve.shed",
    "serve.stats.breaker_trips",
    "serve.stats.queue_depth",
    "serve.stats.shed_admission",
    "serve.stats.shed_deadline",
    "serve.stats.worker_panics",
    "serve.tenant_request",
    "serve.worker_panics",
    "tensor.add",
    "tensor.add_row",
    "tensor.add_scalar",
    "tensor.backward",
    "tensor.bce_with_logits",
    "tensor.col_mean",
    "tensor.concat_cols",
    "tensor.hadamard",
    "tensor.leaf.bytes",
    "tensor.matmul",
    "tensor.matmul.bytes",
    "tensor.mean_all",
    "tensor.mul_col",
    "tensor.mul_row",
    "tensor.relu",
    "tensor.rsqrt",
    "tensor.scale",
    "tensor.sigmoid",
    "tensor.spmm",
    "tensor.spmm_blocked",
    "tensor.sub",
    "tensor.tape_retained_bytes",
    "train.checkpoint_write",
    "train.checkpoint_write_failed",
    "train.checkpoint_write_failures",
    "train.divergence_rollback",
    "train.epoch",
    "train.epoch_time",
    "train.grad_norm",
    "train.loss",
    "train.lr",
    "train.report.best_gamma",
    "train.report.best_val_f1",
    "train.report.checkpoint_write_failures",
    "train.report.diverged",
    "train.report.epochs_run",
    "train.report.recoveries",
    "train.report.skipped_steps",
    "train.report.train_seconds",
    "train.step_skipped",
    "train.val_f1",
    "train.val_gamma",
    "train.validate",
];

/// Whether `name` (a base name, without any `{label…}` block) is in the
/// catalog. Binary search: the table is sorted, and the unit test below
/// pins that.
pub fn is_catalogued(name: &str) -> bool {
    METRIC_NAMES.binary_search(&name).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_sorted_and_unique() {
        let mut sorted = METRIC_NAMES.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(METRIC_NAMES, sorted.as_slice());
    }

    #[test]
    fn lookup_finds_every_name_and_rejects_strangers() {
        for n in METRIC_NAMES {
            assert!(is_catalogued(n), "{n}");
        }
        assert!(!is_catalogued("serve.not_a_metric"));
        assert!(!is_catalogued("serve.request{outcome=\"answered\"}"), "base names only");
    }

    /// The human table and the const table must list exactly the same
    /// names: METRICS.md rows are `| \`name\` | kind | description |`.
    #[test]
    fn metrics_md_agrees_with_const_table() {
        let md = include_str!("../METRICS.md");
        let mut md_names: Vec<&str> = md
            .lines()
            .filter_map(|l| {
                let rest = l.strip_prefix("| `")?;
                rest.split('`').next()
            })
            .collect();
        md_names.sort_unstable();
        assert_eq!(
            md_names, METRIC_NAMES,
            "crates/obs/METRICS.md and names::METRIC_NAMES must list the same names"
        );
    }
}
