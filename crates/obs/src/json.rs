//! A minimal JSON reader/writer for the metrics layer.
//!
//! Hand-rolled (no serde in this crate) and deliberately small: it only
//! needs to round-trip the JSONL event/snapshot schema this crate emits
//! and to back the `qdgnn-obs-validate` schema checker. Numbers parse to
//! `f64`; duplicate object keys keep the last value.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as f64.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (key order normalized to sorted).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Member lookup on objects (`None` for other variants / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// Parses one JSON document, requiring it to span the whole input
/// (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => lit(b, pos, "null", Value::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn lit(b: &[u8], pos: &mut usize, word: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len()
        && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    s.parse::<f64>().map(Value::Num).map_err(|_| format!("bad number `{s}` at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs are not emitted by this crate's
                        // writer; map lone surrogates to the replacement
                        // character rather than erroring.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences pass through untouched.
                let len = utf8_len(c);
                let chunk = b.get(*pos..*pos + len).ok_or("truncated UTF-8")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos += len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '['
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(out));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '{'
    let mut out = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let val = parse_value(b, pos)?;
        out.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(out));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

/// Escapes a string for embedding in JSON output (with quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an f64 so it parses back exactly and never prints as
/// `NaN`/`inf` (which are not JSON): non-finite values serialize as
/// `null`-adjacent sentinels the schema forbids upstream, so callers
/// sanitize first; here they become 0.
pub fn num(v: f64) -> String {
    if !v.is_finite() {
        return "0".into();
    }
    // Exact trunc comparison only selects integer formatting; either
    // branch is a valid JSON encoding of the value.
    if (v - v.trunc()).abs() < f64::EPSILON && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(
            r#"{"type":"snapshot","n":3,"ok":true,"none":null,"xs":[1,2.5,-3e2],"s":"a\"b\n"}"#,
        )
        .unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("snapshot"));
        assert_eq!(v.get("n").unwrap().as_num(), Some(3.0));
        assert_eq!(v.get("none"), Some(&Value::Null));
        assert_eq!(v.get("xs").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\n"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a":}"#).is_err());
        assert!(parse(r#"{"a":1} extra"#).is_err());
        assert!(parse(r#"["unterminated]"#).is_err());
    }

    #[test]
    fn escape_round_trips() {
        let s = "line\nwith \"quotes\" and \\slashes\\ and\tunicode é";
        let parsed = parse(&escape(s)).unwrap();
        assert_eq!(parsed.as_str(), Some(s));
    }

    #[test]
    fn num_formatting_round_trips() {
        for v in [0.0, 1.0, -17.0, 0.25, 1e-7, 123456.789, 2.0f64.powi(40)] {
            let s = num(v);
            let back = parse(&s).unwrap().as_num().unwrap();
            assert!((back - v).abs() <= v.abs() * 1e-12, "{v} → {s} → {back}");
        }
        assert_eq!(num(f64::NAN), "0");
    }
}
