//! The training-run registry: run identity, journaled series, crash
//! flight recorder, and the live run dashboard.
//!
//! A *run* is one training invocation, persisted under a run root:
//!
//! ```text
//! runs/
//!   run-000001/
//!     manifest.json    # RunManifest: id, start, seed, dataset, config hash, lineage
//!     series.ndjson    # step-indexed series points (crate::series), append-only
//!     flight.ndjson    # bounded ring of recent activity, written on panic/rollback
//! ```
//!
//! Run ids are monotone within a root (`run-000001`, `run-000002`, …);
//! a resumed run gets a **new** id whose manifest records
//! `resumed_from: <parent>` and whose journal starts as a copy of the
//! parent's, truncated to the checkpoint step before the replay appends
//! — so an interrupted-and-resumed run's `series.ndjson` ends up
//! byte-identical to an uninterrupted run's (a tested contract, riding
//! on the trainer's resume determinism).
//!
//! The trainer reaches the recorder through a process-global sink
//! ([`install`] / [`series_observe`] / [`flight_event`]): every hook is
//! a no-op until an experiment binary opts in with `--run-dir`, and the
//! call rate is per-epoch, not per-step, so the sink is a plain `RwLock`
//! rather than part of the feature-gated hot-path registry.
//!
//! The flight recorder keeps the last [`FLIGHT_CAPACITY`] journal lines
//! and point events in memory and flushes them to `flight.ndjson` on
//! demand — [`install_panic_flush`] chains a panic hook so a mid-epoch
//! crash leaves a forensic trail, and the trainer flushes explicitly on
//! divergence rollback.
//!
//! [`DashServer`] serves the run root over the shared HTTP listener
//! ([`crate::httpd`]): `/runs` (manifests, NDJSON), `/runs/<id>/manifest`,
//! `/runs/<id>/series`, `/runs/<id>/flight`, and `/` — a dependency-free
//! HTML page with server-rendered SVG sparklines that auto-refreshes
//! while training is in progress. All reads go to disk per request, so
//! the dashboard can watch a run owned by another process.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::fs;
use std::io::{self, Write as _};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, Once, OnceLock, RwLock};

use crate::events::Event;
use crate::httpd::{HttpServer, Response};
use crate::series::{SeriesPoint, SeriesStore};
use crate::{clock, json};

/// How many recent journal lines / events the flight recorder retains.
pub const FLIGHT_CAPACITY: usize = 256;

/// FNV-1a hash of a configuration's textual rendering, hex-encoded —
/// the manifest's `config_hash`. Stable across runs and platforms so
/// "same config?" is a string comparison.
pub fn config_hash(text: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// A run's identity card, persisted as `manifest.json`.
#[derive(Clone, Debug, PartialEq)]
pub struct RunManifest {
    /// Monotone run id within its root, e.g. `run-000003`.
    pub id: String,
    /// Start time in µs from the injected wall clock
    /// ([`clock::wall_micros`]) — fake-clock deterministic in tests.
    pub start_us: u64,
    /// RNG seed the run trains with.
    pub seed: u64,
    /// Dataset name.
    pub dataset: String,
    /// [`config_hash`] of the training configuration.
    pub config_hash: String,
    /// Parent run id when this run resumed from a checkpoint.
    pub resumed_from: Option<String>,
}

impl RunManifest {
    /// Serializes as one JSON line.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"type\":\"run\",\"id\":{},\"start_us\":{},\"seed\":{},\"dataset\":{},\
             \"config_hash\":{},\"resumed_from\":{}}}",
            json::escape(&self.id),
            self.start_us,
            self.seed,
            json::escape(&self.dataset),
            json::escape(&self.config_hash),
            match &self.resumed_from {
                Some(p) => json::escape(p),
                None => "null".to_string(),
            }
        )
    }

    /// Parses a `manifest.json` document.
    pub fn from_json(text: &str) -> Result<RunManifest, String> {
        let v = json::parse(text)?;
        match v.get("type").and_then(json::Value::as_str) {
            Some("run") => {}
            other => return Err(format!("not a run manifest (type {other:?})")),
        }
        let req_str = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(json::Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("manifest missing string \"{key}\""))
        };
        let req_u64 = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(json::Value::as_num)
                .filter(|n| n.is_finite() && *n >= 0.0)
                .map(|n| n as u64)
                .ok_or_else(|| format!("manifest missing numeric \"{key}\""))
        };
        let resumed_from = match v.get("resumed_from") {
            None | Some(json::Value::Null) => None,
            Some(p) => Some(
                p.as_str()
                    .ok_or_else(|| "\"resumed_from\" must be a string or null".to_string())?
                    .to_string(),
            ),
        };
        let m = RunManifest {
            id: req_str("id")?,
            start_us: req_u64("start_us")?,
            seed: req_u64("seed")?,
            dataset: req_str("dataset")?,
            config_hash: req_str("config_hash")?,
            resumed_from,
        };
        if m.config_hash.is_empty() {
            return Err("manifest \"config_hash\" must be non-empty".into());
        }
        Ok(m)
    }
}

/// Lists `(id, dir)` of every run under `root`, id-sorted (and therefore
/// chronological — ids are monotone).
pub fn list_runs(root: &Path) -> Vec<(String, PathBuf)> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(root) else {
        return out;
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("run-") && entry.path().join("manifest.json").is_file() {
            out.push((name, entry.path()));
        }
    }
    out.sort();
    out
}

/// Allocates the next monotone run id under `root` (`run-000001` when
/// the root is empty or missing).
pub fn next_run_id(root: &Path) -> String {
    let max = list_runs(root)
        .iter()
        .filter_map(|(id, _)| id.strip_prefix("run-").and_then(|n| n.parse::<u64>().ok()))
        .max()
        .unwrap_or(0);
    format!("run-{:06}", max + 1)
}

struct Inner {
    store: SeriesStore,
    flight: VecDeque<String>,
}

/// A live run: owns `runs/<id>/`, journals series points as they are
/// observed, and keeps the flight ring.
pub struct RunRecorder {
    dir: PathBuf,
    manifest: RunManifest,
    inner: Mutex<Inner>,
}

impl RunRecorder {
    /// Starts a fresh run under `root`: allocates the next id, creates
    /// the run directory, and writes `manifest.json`.
    pub fn create(
        root: &Path,
        seed: u64,
        dataset: &str,
        config_hash: &str,
    ) -> io::Result<RunRecorder> {
        let manifest = RunManifest {
            id: next_run_id(root),
            start_us: clock::wall_micros(),
            seed,
            dataset: dataset.to_string(),
            config_hash: config_hash.to_string(),
            resumed_from: None,
        };
        RunRecorder::open(root, manifest, SeriesStore::new())
    }

    /// Starts a run that resumes `parent_id`: a **new** id whose
    /// manifest inherits the parent's seed/dataset/config hash, records
    /// the lineage, and whose journal starts as a copy of the parent's.
    /// The trainer then calls [`RunRecorder::truncate_from`] with the
    /// checkpoint's resume epoch before replaying.
    pub fn resume(root: &Path, parent_id: &str) -> io::Result<RunRecorder> {
        let parent_dir = root.join(parent_id);
        let parent = RunManifest::from_json(
            fs::read_to_string(parent_dir.join("manifest.json"))?.trim(),
        )
        .map_err(bad_data)?;
        let store = match fs::read_to_string(parent_dir.join("series.ndjson")) {
            Ok(text) => SeriesStore::from_ndjson(&text).map_err(bad_data)?,
            Err(e) if e.kind() == io::ErrorKind::NotFound => SeriesStore::new(),
            Err(e) => return Err(e),
        };
        let manifest = RunManifest {
            id: next_run_id(root),
            start_us: clock::wall_micros(),
            seed: parent.seed,
            dataset: parent.dataset,
            config_hash: parent.config_hash,
            resumed_from: Some(parent.id),
        };
        RunRecorder::open(root, manifest, store)
    }

    fn open(root: &Path, manifest: RunManifest, store: SeriesStore) -> io::Result<RunRecorder> {
        let dir = root.join(&manifest.id);
        fs::create_dir_all(&dir)?;
        let mut mf = manifest.to_json();
        mf.push('\n');
        fs::write(dir.join("manifest.json"), mf)?;
        fs::write(dir.join("series.ndjson"), store.to_ndjson())?;
        let rec = RunRecorder {
            dir,
            manifest,
            inner: Mutex::new(Inner { store, flight: VecDeque::new() }),
        };
        Ok(rec)
    }

    /// The run's manifest.
    pub fn manifest(&self) -> &RunManifest {
        &self.manifest
    }

    /// The run's id.
    pub fn id(&self) -> &str {
        &self.manifest.id
    }

    /// The `runs/<id>/` directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Records one series point: appended to the in-memory store, the
    /// on-disk journal, and the flight ring. A duplicate or regressed
    /// step is dropped (counted on `obs.series_dropped`) rather than
    /// corrupting the journal.
    pub fn record_point(&self, series: &str, step: u64, value: f64) -> Result<(), String> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.store.observe(series, step, value)?;
        let line =
            SeriesPoint { series: series.to_string(), step, value }.to_json();
        push_ring(&mut inner.flight, line.clone());
        drop(inner);
        let mut file =
            fs::OpenOptions::new().append(true).create(true).open(self.dir.join("series.ndjson"));
        if let Ok(f) = file.as_mut() {
            let _ = writeln!(f, "{line}");
        }
        Ok(())
    }

    /// Drops every journaled point at `step` or later and rewrites the
    /// on-disk journal — the resume primitive (see [`RunRecorder::resume`]).
    pub fn truncate_from(&self, step: u64) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.store.truncate_from(step);
        let text = inner.store.to_ndjson();
        drop(inner);
        fs::write(self.dir.join("series.ndjson"), text)
    }

    /// Appends a point event (timestamped from the injected wall clock)
    /// to the flight ring only — rollbacks, checkpoint failures, panic
    /// breadcrumbs.
    pub fn flight_event(&self, name: &str, fields: &[(&str, f64)]) {
        let event = Event::Point {
            name: name.to_string(),
            t_us: clock::wall_micros(),
            fields: fields.iter().map(|(k, v)| ((*k).to_string(), *v)).collect(),
        };
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        push_ring(&mut inner.flight, event.to_json());
    }

    /// Flushes the flight ring to `flight.ndjson` (whole-file rewrite;
    /// the ring is not cleared, so repeated flushes only grow the
    /// picture). Panic-safe: called from the chained panic hook.
    pub fn flush_flight(&self) -> io::Result<()> {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let mut text = String::new();
        for line in &inner.flight {
            text.push_str(line);
            text.push('\n');
        }
        drop(inner);
        fs::write(self.dir.join("flight.ndjson"), text)
    }

    /// Read-only snapshot of the current series store.
    pub fn series(&self) -> SeriesStore {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).store.clone()
    }
}

fn push_ring(ring: &mut VecDeque<String>, line: String) {
    if ring.len() == FLIGHT_CAPACITY {
        ring.pop_front();
    }
    ring.push_back(line);
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

// ---------------------------------------------------------------------------
// Process-global sink: the trainer records through these free functions,
// which no-op until an experiment binary installs a recorder.
// ---------------------------------------------------------------------------

fn sink() -> &'static RwLock<Option<Arc<RunRecorder>>> {
    static SINK: OnceLock<RwLock<Option<Arc<RunRecorder>>>> = OnceLock::new();
    SINK.get_or_init(|| RwLock::new(None))
}

/// Installs `rec` as the process-global run recorder (replacing any
/// previous one).
pub fn install(rec: Arc<RunRecorder>) {
    *sink().write().unwrap_or_else(|p| p.into_inner()) = Some(rec);
}

/// Removes and returns the installed recorder, if any.
pub fn uninstall() -> Option<Arc<RunRecorder>> {
    sink().write().unwrap_or_else(|p| p.into_inner()).take()
}

/// The installed recorder, if any.
pub fn installed() -> Option<Arc<RunRecorder>> {
    sink().read().unwrap_or_else(|p| p.into_inner()).clone()
}

/// Journals one series point on the installed recorder; no-op when none
/// is installed. A rejected (duplicate/regressed) step is counted on
/// `obs.series_dropped` and otherwise ignored — the journal invariant
/// wins over the errant caller.
pub fn series_observe(series: &str, step: u64, value: f64) {
    if let Some(rec) = installed() {
        if rec.record_point(series, step, value).is_err() {
            crate::counter("obs.series_dropped").inc();
        }
    }
}

/// Truncates the installed recorder's journal at `step` (resume); no-op
/// when none is installed.
pub fn series_truncate_from(step: u64) {
    if let Some(rec) = installed() {
        let _ = rec.truncate_from(step);
    }
}

/// Records a flight-ring point event on the installed recorder; no-op
/// when none is installed.
pub fn flight_event(name: &str, fields: &[(&str, f64)]) {
    if let Some(rec) = installed() {
        rec.flight_event(name, fields);
    }
}

/// Flushes the installed recorder's flight ring to disk; no-op when none
/// is installed.
pub fn flight_flush() {
    if let Some(rec) = installed() {
        let _ = rec.flush_flight();
    }
}

/// Chains a panic hook (once per process) that flushes the installed
/// recorder's flight ring before delegating to the previous hook — a
/// mid-epoch panic leaves `flight.ndjson` behind for forensics.
pub fn install_panic_flush() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            flight_flush();
            previous(info);
        }));
    });
}

// ---------------------------------------------------------------------------
// Live run dashboard.
// ---------------------------------------------------------------------------

/// The live run dashboard: serves a run root read-only over HTTP.
///
/// Routes: `/` (HTML page, SVG sparklines, auto-refresh), `/runs`
/// (NDJSON manifests), `/runs/<id>/manifest`, `/runs/<id>/series`,
/// `/runs/<id>/flight`. Every request reads from disk, so the dashboard
/// tracks a training process writing the same root live.
pub struct DashServer {
    server: HttpServer,
}

impl DashServer {
    /// Binds `addr` and serves `root`.
    pub fn start(addr: &str, root: PathBuf) -> io::Result<DashServer> {
        let server =
            HttpServer::start(addr, "qdgnn-run-dash", move |path| route(&root, path))?;
        Ok(DashServer { server })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// Stops the listener (also happens on drop).
    pub fn shutdown(&mut self) {
        self.server.shutdown();
    }
}

fn route(root: &Path, path: &str) -> Response {
    if path == "/" {
        return (200, "text/html", dashboard_html(root));
    }
    if path == "/runs" {
        let mut body = String::new();
        for (_, dir) in list_runs(root) {
            if let Ok(text) = fs::read_to_string(dir.join("manifest.json")) {
                body.push_str(text.trim());
                body.push('\n');
            }
        }
        return (200, "application/x-ndjson", body);
    }
    let parts: Vec<&str> = path.trim_matches('/').split('/').collect();
    if let ["runs", id, file] = parts[..] {
        if !id.starts_with("run-") || id.contains("..") {
            return (404, "text/plain", "no such run\n".to_string());
        }
        let (name, ctype) = match file {
            "manifest" => ("manifest.json", "application/json"),
            "series" => ("series.ndjson", "application/x-ndjson"),
            "flight" => ("flight.ndjson", "application/x-ndjson"),
            _ => return (404, "text/plain", "no such resource\n".to_string()),
        };
        return match fs::read_to_string(root.join(id).join(name)) {
            Ok(text) => (200, ctype, text),
            Err(_) => (404, "text/plain", "no such run\n".to_string()),
        };
    }
    (404, "text/plain", "not found\n".to_string())
}

fn esc_html(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Renders one series as an inline SVG sparkline (pure markup, no
/// scripts): a polyline scaled into a fixed viewport, latest value
/// printed alongside by the caller.
fn sparkline(points: &[(u64, f64)]) -> String {
    const W: f64 = 240.0;
    const H: f64 = 48.0;
    const PAD: f64 = 3.0;
    if points.is_empty() {
        return String::new();
    }
    let (x0, x1) = (points[0].0 as f64, points[points.len() - 1].0 as f64);
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &(_, v) in points {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let xspan = (x1 - x0).max(1.0);
    let yspan = (hi - lo).max(1e-12);
    let mut coords = String::new();
    for &(s, v) in points {
        let x = PAD + (s as f64 - x0) / xspan * (W - 2.0 * PAD);
        let y = H - PAD - (v - lo) / yspan * (H - 2.0 * PAD);
        let _ = write!(coords, "{x:.1},{y:.1} ");
    }
    format!(
        "<svg width=\"{W}\" height=\"{H}\" viewBox=\"0 0 {W} {H}\">\
         <polyline fill=\"none\" stroke=\"#2b6cb0\" stroke-width=\"1.5\" points=\"{}\"/></svg>",
        coords.trim_end()
    )
}

/// Renders the whole dashboard page: newest runs first, one sparkline
/// per series, manifest summary per run. Auto-refreshes via
/// `<meta http-equiv=\"refresh\">` — no scripts, no external assets.
fn dashboard_html(root: &Path) -> String {
    let mut page = String::from(
        "<!doctype html><html><head><meta charset=\"utf-8\">\
         <meta http-equiv=\"refresh\" content=\"2\">\
         <title>qdgnn training runs</title><style>\
         body{font-family:monospace;margin:2em;background:#fafafa;color:#222}\
         h1{font-size:1.3em}h2{font-size:1.1em;margin-bottom:.2em}\
         .meta{color:#666;font-size:.85em}\
         table{border-collapse:collapse}td{padding:.2em .8em;vertical-align:middle}\
         .val{text-align:right}\
         </style></head><body><h1>qdgnn training runs</h1>\n",
    );
    let mut runs = list_runs(root);
    runs.reverse(); // newest first
    if runs.is_empty() {
        page.push_str("<p class=\"meta\">no runs under this root yet</p>");
    }
    for (id, dir) in runs {
        let manifest = fs::read_to_string(dir.join("manifest.json"))
            .ok()
            .and_then(|t| RunManifest::from_json(t.trim()).ok());
        let _ = write!(page, "<h2>{}</h2>", esc_html(&id));
        if let Some(m) = &manifest {
            let lineage = match &m.resumed_from {
                Some(p) => format!(" · resumed from {}", esc_html(p)),
                None => String::new(),
            };
            let _ = write!(
                page,
                "<p class=\"meta\">dataset {} · seed {} · config {} · started {} µs{}</p>",
                esc_html(&m.dataset),
                m.seed,
                esc_html(&m.config_hash),
                m.start_us,
                lineage
            );
        }
        let store = fs::read_to_string(dir.join("series.ndjson"))
            .ok()
            .and_then(|t| SeriesStore::from_ndjson(&t).ok())
            .unwrap_or_default();
        page.push_str("<table>");
        for name in store.names() {
            let points = store.get(name);
            let last = points.last().copied();
            let _ = write!(
                page,
                "<tr><td>{}</td><td>{}</td><td class=\"val\">{}</td></tr>",
                esc_html(name),
                sparkline(&points),
                match last {
                    Some((step, v)) => format!("{v:.5} @ step {step}"),
                    None => "-".to_string(),
                }
            );
        }
        page.push_str("</table>\n");
    }
    page.push_str("</body></html>\n");
    page
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "qdgnn-runs-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("temp run root");
        dir
    }

    #[test]
    fn manifest_round_trips_and_validates() {
        let m = RunManifest {
            id: "run-000007".into(),
            start_us: 1234,
            seed: 42,
            dataset: "cora".into(),
            config_hash: config_hash("epochs=10"),
            resumed_from: Some("run-000006".into()),
        };
        assert_eq!(RunManifest::from_json(&m.to_json()).unwrap(), m);
        let fresh = RunManifest { resumed_from: None, ..m.clone() };
        assert_eq!(RunManifest::from_json(&fresh.to_json()).unwrap(), fresh);
        assert!(RunManifest::from_json("{\"type\":\"series\"}").is_err());
        assert!(RunManifest::from_json(
            "{\"type\":\"run\",\"id\":\"run-000001\",\"start_us\":0,\"dataset\":\"d\",\
             \"config_hash\":\"x\"}"
        )
        .unwrap_err()
        .contains("seed"));
    }

    #[test]
    fn config_hash_is_stable_and_input_sensitive() {
        assert_eq!(config_hash("abc"), config_hash("abc"));
        assert_ne!(config_hash("abc"), config_hash("abd"));
        assert_eq!(config_hash("").len(), 16);
    }

    #[test]
    fn run_ids_are_monotone_within_a_root() {
        let root = tmp_root("ids");
        assert_eq!(next_run_id(&root), "run-000001");
        let a = RunRecorder::create(&root, 1, "toy", "h").unwrap();
        assert_eq!(a.id(), "run-000001");
        let b = RunRecorder::create(&root, 1, "toy", "h").unwrap();
        assert_eq!(b.id(), "run-000002");
        assert_eq!(list_runs(&root).len(), 2);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn recorder_journals_points_and_drops_duplicates() {
        let root = tmp_root("journal");
        let rec = RunRecorder::create(&root, 7, "toy", "h").unwrap();
        rec.record_point("train.loss", 0, 1.0).unwrap();
        rec.record_point("train.loss", 1, 0.5).unwrap();
        assert!(rec.record_point("train.loss", 1, 0.25).is_err());
        let text = fs::read_to_string(rec.dir().join("series.ndjson")).unwrap();
        assert_eq!(text.lines().count(), 2, "rejected point must not hit disk: {text}");
        let store = SeriesStore::from_ndjson(&text).unwrap();
        assert_eq!(store.last("train.loss"), Some((1, 0.5)));
        let _ = fs::remove_dir_all(&root);
    }

    // Exact FakeClock `start_us` values are asserted in the
    // `run_registry` integration test (its own process) — the global
    // wall clock would race with registry unit tests here.
    #[test]
    fn resume_copies_parent_journal_and_records_lineage() {
        let root = tmp_root("resume");
        let parent = RunRecorder::create(&root, 9, "toy", "cfg").unwrap();
        for step in 0..5u64 {
            parent.record_point("train.loss", step, 1.0 / (step + 1) as f64).unwrap();
        }
        let child = RunRecorder::resume(&root, parent.id()).unwrap();
        assert_eq!(child.manifest().resumed_from.as_deref(), Some(parent.id()));
        assert_eq!(child.manifest().seed, 9);
        assert_eq!(child.manifest().dataset, "toy");
        assert_eq!(child.manifest().config_hash, "cfg");
        // Truncate to the checkpoint step, replay from there: journal is
        // byte-identical to the uninterrupted parent's.
        child.truncate_from(3).unwrap();
        for step in 3..5u64 {
            child.record_point("train.loss", step, 1.0 / (step + 1) as f64).unwrap();
        }
        let parent_text = fs::read_to_string(parent.dir().join("series.ndjson")).unwrap();
        let child_text = fs::read_to_string(child.dir().join("series.ndjson")).unwrap();
        assert_eq!(parent_text, child_text);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn flight_ring_is_bounded_and_flushes() {
        let root = tmp_root("flight");
        let rec = RunRecorder::create(&root, 1, "toy", "h").unwrap();
        for step in 0..(FLIGHT_CAPACITY as u64 + 50) {
            rec.record_point("train.loss", step, step as f64).unwrap();
        }
        rec.flight_event("train.divergence_rollback", &[("epoch", 3.0), ("loss", 99.0)]);
        rec.flush_flight().unwrap();
        let text = fs::read_to_string(rec.dir().join("flight.ndjson")).unwrap();
        assert_eq!(text.lines().count(), FLIGHT_CAPACITY);
        let last = text.lines().last().unwrap();
        let event = Event::from_json(last).unwrap();
        assert_eq!(event.name(), "train.divergence_rollback");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn global_sink_noops_when_uninstalled_and_records_when_installed() {
        // Free functions must be safe to call with no recorder.
        series_observe("train.loss", 0, 1.0);
        series_truncate_from(0);
        flight_event("train.divergence_rollback", &[]);
        flight_flush();

        let root = tmp_root("sink");
        let rec = Arc::new(RunRecorder::create(&root, 3, "toy", "h").unwrap());
        install(Arc::clone(&rec));
        series_observe("train.loss", 0, 0.75);
        series_observe("train.loss", 0, 0.75); // dup: dropped, not fatal
        let taken = uninstall().expect("recorder was installed");
        assert_eq!(taken.series().get("train.loss"), vec![(0, 0.75)]);
        assert!(installed().is_none());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn panic_flush_leaves_flight_file_behind() {
        install_panic_flush();
        let root = tmp_root("panic");
        let rec = Arc::new(RunRecorder::create(&root, 5, "toy", "h").unwrap());
        install(Arc::clone(&rec));
        rec.record_point("train.loss", 0, 1.0).unwrap();
        rec.flight_event("train.divergence_rollback", &[("epoch", 0.0)]);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the backtrace
        let result = std::panic::catch_unwind(|| {
            install_panic_flush(); // idempotent under the quiet hook
            panic!("mid-epoch chaos");
        });
        std::panic::set_hook(prev);
        assert!(result.is_err());
        // The silenced hook replaced the chained one, so flush explicitly
        // through the sink path the hook uses.
        flight_flush();
        let text = fs::read_to_string(rec.dir().join("flight.ndjson")).unwrap();
        assert!(text.lines().count() >= 2, "{text}");
        uninstall();
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn dashboard_serves_manifest_series_and_html() {
        use std::io::{Read as _, Write as _};
        use std::net::TcpStream;

        let root = tmp_root("dash");
        let rec = RunRecorder::create(&root, 11, "toy", "cfg").unwrap();
        rec.record_point("train.loss", 0, 1.0).unwrap();
        rec.record_point("train.loss", 1, 0.5).unwrap();
        rec.record_point("train.val_f1", 1, 0.8).unwrap();
        let id = rec.id().to_string();

        let mut dash = DashServer::start("127.0.0.1:0", root.clone()).unwrap();
        let get = |path: &str| -> String {
            let mut s = TcpStream::connect(dash.addr()).unwrap();
            s.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes()).unwrap();
            let mut out = String::new();
            s.read_to_string(&mut out).unwrap();
            out
        };

        let runs = get("/runs");
        assert!(runs.starts_with("HTTP/1.0 200"), "{runs}");
        assert!(runs.contains("\"type\":\"run\""));
        let manifest = get(&format!("/runs/{id}/manifest"));
        assert!(manifest.contains("\"seed\":11"), "{manifest}");
        let series = get(&format!("/runs/{id}/series"));
        assert!(series.contains("\"series\":\"train.loss\""), "{series}");
        assert_eq!(series.lines().filter(|l| l.contains("\"type\":\"series\"")).count(), 3);
        // Live: a point recorded after the server started is visible.
        rec.record_point("train.loss", 2, 0.25).unwrap();
        let series = get(&format!("/runs/{id}/series"));
        assert!(series.contains("\"step\":2"), "{series}");
        let page = get("/");
        assert!(page.contains("<svg"), "sparkline missing: {page}");
        assert!(page.contains("train.val_f1"));
        let miss = get("/runs/run-999999/series");
        assert!(miss.starts_with("HTTP/1.0 404"), "{miss}");
        let traversal = get("/runs/run-../series");
        assert!(traversal.starts_with("HTTP/1.0 404"), "{traversal}");
        dash.shutdown();
        let _ = fs::remove_dir_all(&root);
    }
}
