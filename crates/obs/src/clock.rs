//! Time sources for the observability layer.
//!
//! All timestamps flow through the [`Clock`] trait so instrumented code
//! never reads the wall clock directly: production uses a monotonic
//! clock anchored at registry creation, tests inject a [`FakeClock`]
//! they advance by hand. This is what keeps instrumented training paths
//! resume-deterministic (QD004): the metrics layer observes time, the
//! computation never does.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// A microsecond time source.
///
/// Implementations must be monotonic (never go backwards) within one
/// process; the absolute origin is unspecified.
pub trait Clock: Send + Sync {
    /// Microseconds elapsed since this clock's origin.
    fn now_micros(&self) -> u64;
}

/// Production clock: `Instant`-based, anchored at construction.
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// Creates a clock whose origin is "now".
    pub fn new() -> Self {
        MonotonicClock { origin: Instant::now() }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_micros(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// Test clock: starts at zero and only moves when told to.
#[derive(Default)]
pub struct FakeClock {
    micros: AtomicU64,
}

impl FakeClock {
    /// Creates a fake clock at t = 0 µs.
    pub fn new() -> Self {
        FakeClock { micros: AtomicU64::new(0) }
    }

    /// Advances the clock by `us` microseconds.
    pub fn advance_micros(&self, us: u64) {
        self.micros.fetch_add(us, Ordering::SeqCst);
    }

    /// Sets the clock to an absolute microsecond value.
    pub fn set_micros(&self, us: u64) {
        self.micros.store(us, Ordering::SeqCst);
    }
}

impl Clock for FakeClock {
    fn now_micros(&self) -> u64 {
        self.micros.load(Ordering::SeqCst)
    }
}

fn wall_store() -> &'static RwLock<Arc<dyn Clock>> {
    static STORE: OnceLock<RwLock<Arc<dyn Clock>>> = OnceLock::new();
    STORE.get_or_init(|| RwLock::new(Arc::new(MonotonicClock::new())))
}

/// Installs `clock` as the process-wide wall-clock source.
///
/// Unlike the registry (which exists only under the `enabled` feature),
/// the wall clock is compiled in every build: library code that reports
/// coarse wall-clock durations (e.g. `TrainReport::train_seconds`) reads
/// it via [`wall_micros`], so fake-clock tests can cover those paths in
/// plain builds too. The enabled registry's `set_clock` delegates here,
/// keeping one authoritative time source.
pub fn set_wall(clock: Arc<dyn Clock>) {
    *wall_store().write().unwrap_or_else(|p| p.into_inner()) = clock;
}

/// Reads the process-wide wall clock, in microseconds since its origin.
///
/// Defaults to a [`MonotonicClock`] anchored at first use; swap it with
/// [`set_wall`]. Intended for coarse, report-level timing only — hot
/// paths should use the feature-gated span/timer APIs instead.
pub fn wall_micros() -> u64 {
    wall_store().read().unwrap_or_else(|p| p.into_inner()).now_micros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let c = MonotonicClock::new();
        let a = c.now_micros();
        let b = c.now_micros();
        assert!(b >= a);
    }

    #[test]
    fn fake_clock_moves_only_when_advanced() {
        let c = FakeClock::new();
        assert_eq!(c.now_micros(), 0);
        c.advance_micros(250);
        assert_eq!(c.now_micros(), 250);
        c.set_micros(10);
        assert_eq!(c.now_micros(), 10);
    }
}
