//! The live (feature `enabled`) implementation of the global registry:
//! named metric storage, the span stack, the event log and the injected
//! clock. The `disabled` sibling module mirrors every public item as a
//! zero-sized no-op.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::marker::PhantomData;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::clock::{Clock, MonotonicClock};
use crate::events::Event;
use crate::metrics::{Histogram, MetricsSnapshot};

/// Hard cap on buffered events: a runaway instrumented loop must not be
/// able to exhaust memory. Overflow is counted and surfaced in the
/// snapshot as the `obs.events_dropped` counter.
const MAX_EVENTS: usize = 1 << 20;

/// Hard cap on distinct label sets per base metric name: an unbounded
/// tenant id (or a bug interpolating request ids into labels) must not
/// be able to grow the registry without bound. The 65th and later label
/// sets collapse into one `base{overflow="true"}` series and are counted
/// in the `obs.labels_dropped` counter.
pub const MAX_LABEL_SETS: usize = 64;

struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    hists: Mutex<BTreeMap<String, Arc<Histogram>>>,
    events: Mutex<Vec<Event>>,
    events_dropped: AtomicU64,
    labels_dropped: AtomicU64,
    record_events: AtomicBool,
    // Tensor memory accounting. Dedicated atomics, not named counters:
    // `mem_alloc`/`mem_free` run on every buffer construction and drop,
    // far too hot for a `BTreeMap` lookup under a mutex.
    mem_alloc_bytes: AtomicU64,
    mem_freed_bytes: AtomicU64,
    mem_live_bytes: AtomicU64,
    mem_peak_bytes: AtomicU64,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        hists: Mutex::new(BTreeMap::new()),
        events: Mutex::new(Vec::new()),
        events_dropped: AtomicU64::new(0),
        labels_dropped: AtomicU64::new(0),
        record_events: AtomicBool::new(false),
        mem_alloc_bytes: AtomicU64::new(0),
        mem_freed_bytes: AtomicU64::new(0),
        mem_live_bytes: AtomicU64::new(0),
        mem_peak_bytes: AtomicU64::new(0),
    })
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // Metric state stays usable even if a panicking thread held the lock.
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

thread_local! {
    /// Stack of active span names on this thread (for parent linkage).
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Whether the instrumentation layer is compiled in.
pub const fn is_enabled() -> bool {
    true
}

/// Injects the clock all timestamps come from (tests pass a
/// [`crate::clock::FakeClock`]). Affects spans started after the call.
/// Delegates to [`crate::clock::set_wall`], so registry timestamps and
/// library-level wall timing share one source.
pub fn set_clock(clock: Arc<dyn Clock>) {
    crate::clock::set_wall(clock);
}

/// Current registry time in µs (the process wall clock).
pub fn now_micros() -> u64 {
    crate::clock::wall_micros()
}

/// Handle to a named counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn inc_by(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Returns (creating on first use) the counter named `name`.
pub fn counter(name: &str) -> Counter {
    let mut map = lock(&registry().counters);
    if let Some(c) = map.get(name) {
        return Counter(Arc::clone(c));
    }
    let c = Arc::new(AtomicU64::new(0));
    map.insert(name.to_string(), Arc::clone(&c));
    Counter(c)
}

/// Encodes `base` + labels as one series key: `base{k="v",…}` with keys
/// sorted, so the same label set always maps to the same series
/// regardless of call-site argument order. Quotes and backslashes in
/// values are escaped; an empty label slice is just `base`.
fn labeled_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort_by(|a, b| a.0.cmp(b.0));
    let mut out = String::with_capacity(name.len() + 16 * sorted.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// Looks up (creating on first use) a possibly-labeled series in `map`,
/// enforcing [`MAX_LABEL_SETS`] per base name: a new label set beyond
/// the cap collapses into the base's `{overflow="true"}` series and
/// bumps the `labels_dropped` count.
fn labeled_entry<T>(
    map: &mut BTreeMap<String, Arc<T>>,
    key: String,
    mk: impl Fn() -> T,
) -> Arc<T> {
    if let Some(v) = map.get(&key) {
        return Arc::clone(v);
    }
    let key = match key.find('{') {
        Some(brace) if !key.ends_with("{overflow=\"true\"}") => {
            let mut prefix = key[..brace + 1].to_string();
            let live = map.keys().filter(|k| k.starts_with(&prefix)).count();
            if live >= MAX_LABEL_SETS {
                registry().labels_dropped.fetch_add(1, Ordering::Relaxed);
                prefix.push_str("overflow=\"true\"}");
                if let Some(v) = map.get(&prefix) {
                    return Arc::clone(v);
                }
                prefix
            } else {
                key
            }
        }
        _ => key,
    };
    let v = Arc::new(mk());
    map.insert(key, Arc::clone(&v));
    v
}

/// Returns (creating on first use) the counter `name` with the given
/// label set. The series is stored under the encoded key `name{k="v",…}`
/// (sorted label keys), so it flows through [`snapshot`], the JSONL
/// export and the Prometheus exposition like any other counter. Label
/// cardinality per base name is capped at [`MAX_LABEL_SETS`].
pub fn counter_with(name: &str, labels: &[(&str, &str)]) -> Counter {
    let key = labeled_key(name, labels);
    let mut map = lock(&registry().counters);
    Counter(labeled_entry(&mut map, key, || AtomicU64::new(0)))
}

/// Records one sample into the histogram `name` with the given label
/// set (same series encoding and cardinality cap as [`counter_with`]).
pub fn observe_with(name: &str, labels: &[(&str, &str)], v: f64) {
    let key = labeled_key(name, labels);
    let h = {
        let mut map = lock(&registry().hists);
        labeled_entry(&mut map, key, Histogram::new)
    };
    h.observe(v);
}

/// Handle to a named gauge (last-write-wins f64).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Returns (creating on first use) the gauge named `name`.
pub fn gauge(name: &str) -> Gauge {
    let mut map = lock(&registry().gauges);
    if let Some(g) = map.get(name) {
        return Gauge(Arc::clone(g));
    }
    let g = Arc::new(AtomicU64::new(0f64.to_bits()));
    map.insert(name.to_string(), Arc::clone(&g));
    Gauge(g)
}

fn hist(name: &str) -> Arc<Histogram> {
    let mut map = lock(&registry().hists);
    if let Some(h) = map.get(name) {
        return Arc::clone(h);
    }
    let h = Arc::new(Histogram::new());
    map.insert(name.to_string(), Arc::clone(&h));
    h
}

/// Records one sample into the histogram named `name`.
pub fn observe(name: &str, v: f64) {
    hist(name).observe(v);
}

/// Accounts `bytes` of tracked heap memory as allocated: bumps the
/// cumulative `mem.alloc_bytes` counter and the `mem.live_bytes` gauge,
/// and raises the `mem.peak_bytes` high-watermark if the new live total
/// exceeds it. Called from tensor buffer constructors; a few relaxed
/// atomics, no locks.
#[inline]
pub fn mem_alloc(bytes: u64) {
    if bytes == 0 {
        return;
    }
    let reg = registry();
    reg.mem_alloc_bytes.fetch_add(bytes, Ordering::Relaxed);
    let live = reg.mem_live_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
    let mut peak = reg.mem_peak_bytes.load(Ordering::Relaxed);
    while live > peak {
        match reg.mem_peak_bytes.compare_exchange_weak(
            peak,
            live,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => break,
            Err(p) => peak = p,
        }
    }
}

/// Accounts `bytes` of tracked heap memory as freed. The live gauge
/// saturates at zero so an unmatched free can never wrap it.
#[inline]
pub fn mem_free(bytes: u64) {
    if bytes == 0 {
        return;
    }
    let reg = registry();
    reg.mem_freed_bytes.fetch_add(bytes, Ordering::Relaxed);
    let mut live = reg.mem_live_bytes.load(Ordering::Relaxed);
    loop {
        let next = live.saturating_sub(bytes);
        match reg.mem_live_bytes.compare_exchange_weak(
            live,
            next,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => break,
            Err(l) => live = l,
        }
    }
}

/// Currently live tracked bytes (allocated minus freed, floored at 0).
pub fn mem_live_bytes() -> u64 {
    registry().mem_live_bytes.load(Ordering::Relaxed)
}

/// High-watermark of [`mem_live_bytes`] since startup, the last
/// [`reset`], or the last [`reset_mem_peak`].
pub fn mem_peak_bytes() -> u64 {
    registry().mem_peak_bytes.load(Ordering::Relaxed)
}

/// Restarts the peak watermark at the current live total, so a
/// multi-phase bench can report a per-phase peak.
pub fn reset_mem_peak() {
    let reg = registry();
    let live = reg.mem_live_bytes.load(Ordering::Relaxed);
    reg.mem_peak_bytes.store(live, Ordering::Relaxed);
}

/// Turns event buffering on or off (off by default: histograms and
/// counters always record; the per-event JSONL stream only accumulates
/// when a run asked for it, e.g. via `--metrics-out`).
pub fn record_events(on: bool) {
    registry().record_events.store(on, Ordering::SeqCst);
}

/// Whether event buffering is on.
pub fn events_recorded() -> bool {
    registry().record_events.load(Ordering::SeqCst)
}

fn push_event(e: Event) {
    let reg = registry();
    let mut events = lock(&reg.events);
    if events.len() >= MAX_EVENTS {
        reg.events_dropped.fetch_add(1, Ordering::Relaxed);
        return;
    }
    events.push(e);
}

/// Records a point event with numeric fields (no-op unless event
/// buffering is on; the companion counter `name` always increments).
pub fn event(name: &str, fields: &[(&str, f64)]) {
    counter(name).inc();
    if !events_recorded() {
        return;
    }
    push_event(Event::Point {
        name: name.to_string(),
        t_us: now_micros(),
        fields: fields.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
    });
}

/// Records a request-scoped trace record: bumps the labeled companion
/// counter `name{labels…}` (so every trace is countable even when event
/// buffering is off) and — when buffering is on — emits a
/// `{"type":"trace",…}` event with the labels and numeric fields. Labels
/// are stored sorted by key.
pub fn trace(name: &str, labels: &[(&str, &str)], fields: &[(&str, f64)]) {
    counter_with(name, labels).inc();
    if !events_recorded() {
        return;
    }
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort_by(|a, b| a.0.cmp(b.0));
    push_event(Event::Trace {
        name: name.to_string(),
        t_us: now_micros(),
        labels: sorted.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
        fields: fields.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
    });
}

/// RAII scoped timer: measures from construction to drop, records the
/// duration (µs) into the histogram named after the span, and — when
/// event buffering is on — emits a span event carrying its parent span
/// on the same thread. Construct via [`crate::span!`].
pub struct SpanGuard {
    name: &'static str,
    start_us: u64,
    parent: Option<&'static str>,
    /// Spans are thread-scoped (TLS parent stack): keep the guard !Send.
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    /// Starts a span. Prefer the [`crate::span!`] macro.
    pub fn enter(name: &'static str) -> SpanGuard {
        let parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied();
            s.push(name);
            parent
        });
        SpanGuard { name, start_us: now_micros(), parent, _not_send: PhantomData }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let end = now_micros();
        let dur = end.saturating_sub(self.start_us);
        SPAN_STACK.with(|s| {
            s.borrow_mut().pop();
        });
        observe(self.name, dur as f64);
        if events_recorded() {
            push_event(Event::Span {
                name: self.name.to_string(),
                parent: self.parent.map(str::to_string),
                start_us: self.start_us,
                dur_us: dur,
            });
        }
    }
}

/// Histogram-only scoped timer for very hot sites (tensor ops): no TLS
/// parent tracking, never emits events.
pub struct OpTimer {
    name: &'static str,
    start_us: u64,
}

/// Starts a histogram-only timer named `name`.
pub fn op_timer(name: &'static str) -> OpTimer {
    OpTimer { name, start_us: now_micros() }
}

impl Drop for OpTimer {
    fn drop(&mut self) {
        let dur = now_micros().saturating_sub(self.start_us);
        observe(self.name, dur as f64);
    }
}

/// Snapshots every metric in the registry (sorted by name). Memory
/// accounting appears as the `mem.alloc_bytes` / `mem.freed_bytes`
/// counters and `mem.live_bytes` / `mem.peak_bytes` gauges once any
/// tracked allocation happened.
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry();
    let mut counters = lock(&reg.counters)
        .iter()
        .map(|(n, c)| (n.clone(), c.load(Ordering::Relaxed)))
        .collect::<Vec<_>>();
    let mut gauges = lock(&reg.gauges)
        .iter()
        .map(|(n, g)| (n.clone(), f64::from_bits(g.load(Ordering::Relaxed))))
        .collect::<Vec<_>>();
    let dropped = reg.events_dropped.load(Ordering::Relaxed);
    if dropped > 0 {
        counters.push(("obs.events_dropped".to_string(), dropped));
    }
    let label_drops = reg.labels_dropped.load(Ordering::Relaxed);
    if label_drops > 0 {
        counters.push(("obs.labels_dropped".to_string(), label_drops));
    }
    let alloc = reg.mem_alloc_bytes.load(Ordering::Relaxed);
    if alloc > 0 {
        counters.push(("mem.alloc_bytes".to_string(), alloc));
        counters.push((
            "mem.freed_bytes".to_string(),
            reg.mem_freed_bytes.load(Ordering::Relaxed),
        ));
        gauges.push((
            "mem.live_bytes".to_string(),
            reg.mem_live_bytes.load(Ordering::Relaxed) as f64,
        ));
        gauges.push((
            "mem.peak_bytes".to_string(),
            reg.mem_peak_bytes.load(Ordering::Relaxed) as f64,
        ));
    }
    if dropped > 0 || label_drops > 0 || alloc > 0 {
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
    }
    let hists =
        lock(&reg.hists).iter().map(|(n, h)| h.snapshot(n)).collect();
    MetricsSnapshot { counters, gauges, hists }
}

/// Drains and returns all buffered events.
pub fn take_events() -> Vec<Event> {
    std::mem::take(&mut *lock(&registry().events))
}

/// Writes the buffered events (draining them) followed by one snapshot
/// line to `path` as JSONL — the `--metrics-out` format.
pub fn write_jsonl(path: impl AsRef<Path>) -> io::Result<()> {
    let mut out = io::BufWriter::new(std::fs::File::create(path)?);
    for e in take_events() {
        writeln!(out, "{}", e.to_json())?;
    }
    writeln!(out, "{}", snapshot().to_json())?;
    out.flush()
}

/// Clears all metrics, events and the event-drop count, and resets the
/// clock to a fresh monotonic one. For tests and multi-phase benches.
///
/// Memory accounting: the cumulative alloc/freed counters restart at
/// zero and the peak watermark restarts at the *current* live total —
/// the live gauge itself is untouched, because buffers allocated before
/// the reset are still outstanding and will still report their frees.
pub fn reset() {
    let reg = registry();
    lock(&reg.counters).clear();
    lock(&reg.gauges).clear();
    lock(&reg.hists).clear();
    lock(&reg.events).clear();
    reg.events_dropped.store(0, Ordering::SeqCst);
    reg.labels_dropped.store(0, Ordering::SeqCst);
    reg.record_events.store(false, Ordering::SeqCst);
    reg.mem_alloc_bytes.store(0, Ordering::Relaxed);
    reg.mem_freed_bytes.store(0, Ordering::Relaxed);
    reset_mem_peak();
    set_clock(Arc::new(MonotonicClock::new()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::FakeClock;

    /// Registry state is global; tests in this module serialize on one
    /// lock so their metric names never interleave.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn counters_and_gauges_record() {
        let _l = test_lock();
        reset();
        counter("t.reg.counter").inc();
        counter("t.reg.counter").inc_by(4);
        gauge("t.reg.gauge").set(2.5);
        let s = snapshot();
        assert_eq!(s.counter("t.reg.counter"), Some(5));
        assert_eq!(s.gauge("t.reg.gauge"), Some(2.5));
    }

    #[test]
    fn spans_use_injected_clock_and_nest() {
        let _l = test_lock();
        reset();
        let clock = Arc::new(FakeClock::new());
        set_clock(Arc::clone(&clock) as Arc<dyn Clock>);
        record_events(true);
        {
            let _outer = crate::span!("t.reg.outer");
            clock.advance_micros(10);
            {
                let _inner = crate::span!("t.reg.inner");
                clock.advance_micros(30);
            }
            clock.advance_micros(5);
        }
        let events = take_events();
        assert_eq!(events.len(), 2, "{events:?}");
        // Inner drops first.
        match &events[0] {
            Event::Span { name, parent, start_us, dur_us } => {
                assert_eq!(name, "t.reg.inner");
                assert_eq!(parent.as_deref(), Some("t.reg.outer"));
                assert_eq!(*start_us, 10);
                assert_eq!(*dur_us, 30);
            }
            other => panic!("expected span, got {other:?}"),
        }
        match &events[1] {
            Event::Span { name, parent, dur_us, .. } => {
                assert_eq!(name, "t.reg.outer");
                assert!(parent.is_none());
                assert_eq!(*dur_us, 45);
            }
            other => panic!("expected span, got {other:?}"),
        }
        let s = snapshot();
        assert_eq!(s.hist("t.reg.inner").unwrap().count, 1);
        assert!((s.hist("t.reg.inner").unwrap().max - 30.0).abs() < 1e-9);
        reset();
    }

    #[test]
    fn events_only_buffer_when_recording() {
        let _l = test_lock();
        reset();
        event("t.reg.quiet", &[("x", 1.0)]);
        assert!(take_events().is_empty());
        // The companion counter still counted.
        assert_eq!(snapshot().counter("t.reg.quiet"), Some(1));
        record_events(true);
        event("t.reg.loud", &[("x", 2.0)]);
        let events = take_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name(), "t.reg.loud");
        reset();
    }

    #[test]
    fn op_timer_records_histogram_without_events() {
        let _l = test_lock();
        reset();
        record_events(true);
        let clock = Arc::new(FakeClock::new());
        set_clock(Arc::clone(&clock) as Arc<dyn Clock>);
        {
            let _t = op_timer("t.reg.op");
            clock.advance_micros(7);
        }
        assert!(take_events().is_empty(), "op timers must not emit events");
        let s = snapshot();
        assert_eq!(s.hist("t.reg.op").unwrap().count, 1);
        assert!((s.hist("t.reg.op").unwrap().max - 7.0).abs() < 1e-9);
        reset();
    }

    #[test]
    fn labeled_counters_are_distinct_series_with_sorted_keys() {
        let _l = test_lock();
        reset();
        counter_with("t.lbl.req", &[("tenant", "a"), ("outcome", "ok")]).inc();
        counter_with("t.lbl.req", &[("outcome", "ok"), ("tenant", "a")]).inc_by(2);
        counter_with("t.lbl.req", &[("tenant", "b"), ("outcome", "ok")]).inc();
        counter_with("t.lbl.req", &[]).inc();
        observe_with("t.lbl.lat", &[("outcome", "ok")], 5.0);
        observe_with("t.lbl.lat", &[("outcome", "ok")], 9.0);
        let s = snapshot();
        // Argument order does not matter: keys are sorted in the series key.
        assert_eq!(s.counter("t.lbl.req{outcome=\"ok\",tenant=\"a\"}"), Some(3));
        assert_eq!(s.counter("t.lbl.req{outcome=\"ok\",tenant=\"b\"}"), Some(1));
        assert_eq!(s.counter("t.lbl.req"), Some(1), "empty labels are the bare series");
        assert_eq!(s.hist("t.lbl.lat{outcome=\"ok\"}").unwrap().count, 2);
        assert!(s.counter("obs.labels_dropped").is_none(), "nothing dropped");
        reset();
    }

    #[test]
    fn label_cardinality_caps_at_overflow_series() {
        let _l = test_lock();
        reset();
        for i in 0..MAX_LABEL_SETS {
            let tenant = format!("t{i}");
            counter_with("t.cap.req", &[("tenant", tenant.as_str())]).inc();
        }
        // The cap is full: two more label sets collapse into overflow.
        counter_with("t.cap.req", &[("tenant", "straw")]).inc();
        counter_with("t.cap.req", &[("tenant", "camel")]).inc_by(2);
        let s = snapshot();
        assert_eq!(s.counter("t.cap.req{overflow=\"true\"}"), Some(3));
        assert!(s.counter("t.cap.req{tenant=\"straw\"}").is_none());
        assert_eq!(s.counter("obs.labels_dropped"), Some(2));
        assert_eq!(s.counter("t.cap.req{tenant=\"t0\"}"), Some(1), "existing series keep recording");
        // An already-admitted series is still reachable after the cap.
        counter_with("t.cap.req", &[("tenant", "t3")]).inc();
        assert_eq!(snapshot().counter("t.cap.req{tenant=\"t3\"}"), Some(2));
        reset();
    }

    #[test]
    fn trace_bumps_labeled_counter_and_buffers_when_recording() {
        let _l = test_lock();
        reset();
        let clock = Arc::new(FakeClock::new());
        set_clock(Arc::clone(&clock) as Arc<dyn Clock>);
        clock.set_micros(77);
        trace("t.trc.req", &[("outcome", "answered")], &[("span_us", 12.0)]);
        assert!(take_events().is_empty(), "buffering off: counter only");
        record_events(true);
        trace("t.trc.req", &[("tenant", "a"), ("outcome", "shed")], &[("span_us", 3.0)]);
        let events = take_events();
        assert_eq!(events.len(), 1);
        match &events[0] {
            Event::Trace { name, t_us, labels, fields } => {
                assert_eq!(name, "t.trc.req");
                assert_eq!(*t_us, 77);
                assert_eq!(
                    labels,
                    &vec![
                        ("outcome".to_string(), "shed".to_string()),
                        ("tenant".to_string(), "a".to_string())
                    ],
                    "labels are stored sorted by key"
                );
                assert_eq!(fields, &vec![("span_us".to_string(), 3.0)]);
            }
            other => panic!("expected trace, got {other:?}"),
        }
        let s = snapshot();
        assert_eq!(s.counter("t.trc.req{outcome=\"answered\"}"), Some(1));
        assert_eq!(s.counter("t.trc.req{outcome=\"shed\",tenant=\"a\"}"), Some(1));
        reset();
    }

    #[test]
    fn mem_accounting_tracks_live_and_peak() {
        let _l = test_lock();
        reset();
        // Drain any live bytes left over from other instrumented tests in
        // this process so the arithmetic below is exact.
        let carried = mem_live_bytes();
        mem_free(carried);
        reset();
        assert_eq!(mem_live_bytes(), 0);
        mem_alloc(1000);
        mem_alloc(500);
        assert_eq!(mem_live_bytes(), 1500);
        assert_eq!(mem_peak_bytes(), 1500);
        mem_free(1200);
        assert_eq!(mem_live_bytes(), 300);
        assert_eq!(mem_peak_bytes(), 1500, "peak is a high-watermark");
        mem_alloc(100);
        assert_eq!(mem_peak_bytes(), 1500, "400 live never beats the peak");
        let s = snapshot();
        assert_eq!(s.counter("mem.alloc_bytes"), Some(1600));
        assert_eq!(s.counter("mem.freed_bytes"), Some(1200));
        assert_eq!(s.gauge("mem.live_bytes"), Some(400.0));
        assert_eq!(s.gauge("mem.peak_bytes"), Some(1500.0));
        // Snapshot stays sorted with the synthetic entries spliced in.
        let names: Vec<&str> = s.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);

        // reset(): cumulative counters restart, live survives, peak
        // restarts at live.
        reset();
        assert_eq!(mem_live_bytes(), 400, "reset must not forget live buffers");
        assert_eq!(mem_peak_bytes(), 400);
        assert!(snapshot().counter("mem.alloc_bytes").is_none(), "hidden until next alloc");
        reset_mem_peak();
        mem_free(400);
        assert_eq!(mem_live_bytes(), 0);
        // Saturation: an unmatched free cannot wrap the gauge.
        mem_free(10_000);
        assert_eq!(mem_live_bytes(), 0);
        reset();
    }

    #[test]
    fn write_jsonl_emits_events_then_snapshot() {
        let _l = test_lock();
        reset();
        record_events(true);
        event("t.reg.file", &[("k", 3.0)]);
        counter("t.reg.filec").inc();
        let dir = std::env::temp_dir().join(format!("qdgnn-obs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.jsonl");
        write_jsonl(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert!(lines[0].contains("\"type\":\"event\""));
        let snap = MetricsSnapshot::from_json(lines[1]).unwrap();
        assert_eq!(snap.counter("t.reg.filec"), Some(1));
        std::fs::remove_dir_all(&dir).ok();
        reset();
    }
}
