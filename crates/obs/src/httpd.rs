//! A dependency-free HTTP/1.0 server for read-only telemetry views.
//!
//! Lifted out of the serving engine's telemetry endpoint so every
//! observability surface in the workspace — the serve daemon's
//! `/metrics`/`/healthz`/`/traces` endpoints and the training-run
//! dashboard ([`crate::runs::DashServer`]) — shares one hardened
//! listener instead of growing parallel socket loops.
//!
//! The protocol surface is deliberately tiny and identical for every
//! consumer: GET only, bounded request read, per-connection read/write
//! timeouts, `Connection: close` on every response, and all requests
//! served inline from a single dedicated thread (telemetry traffic is a
//! scraper every few seconds, not a request flood) so a slow or hostile
//! scraper can never stall the instrumented workload. Shutdown flips a
//! flag and unblocks the accept loop with a throwaway self-connection,
//! then joins the thread.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Upper bound on one request's bytes; requests are GET-with-no-body,
/// so anything longer is garbage and gets a 400.
const MAX_REQUEST_BYTES: usize = 4096;

/// Per-connection read/write timeout: a stalled scraper is disconnected
/// rather than pinning the listener thread.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// One routed response: `(status, content-type, body)`.
pub type Response = (u16, &'static str, String);

/// Handle to a running listener. Shuts down on `Drop` (or explicitly via
/// [`HttpServer::shutdown`]); dropping the handle never affects the
/// workload the handler reads from.
pub struct HttpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9095"`; port `0` picks a free
    /// port, readable back via [`HttpServer::addr`]) and starts a
    /// listener thread named `thread_name` that answers every GET with
    /// `handler(path)` (query string already stripped).
    pub fn start(
        addr: &str,
        thread_name: &str,
        handler: impl Fn(&str) -> Response + Send + Sync + 'static,
    ) -> io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::Builder::new()
            .name(thread_name.to_string())
            .spawn(move || accept_loop(&listener, &handler, &flag))?;
        Ok(HttpServer { addr: local, shutdown, handle: Some(handle) })
    }

    /// The bound address (resolves port `0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener: flips the shutdown flag, unblocks the accept
    /// loop with a self-connection, and joins the thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.handle.is_none() {
            return;
        }
        self.shutdown.store(true, Ordering::SeqCst);
        // The accept loop re-checks the flag after every accept; this
        // throwaway connection guarantees one more wake-up.
        let _ = TcpStream::connect_timeout(&self.addr, IO_TIMEOUT);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Accepts connections until the shutdown flag flips.
fn accept_loop(
    listener: &TcpListener,
    handler: &(impl Fn(&str) -> Response + Send + Sync),
    shutdown: &AtomicBool,
) {
    loop {
        let conn = listener.accept();
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        if let Ok((stream, _peer)) = conn {
            serve_connection(stream, handler);
        }
    }
}

/// Reads one bounded request, routes it, writes one response. All I/O
/// errors end the connection silently — the scraper retries.
fn serve_connection(mut stream: TcpStream, handler: &(impl Fn(&str) -> Response + Send + Sync)) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let Some(path) = read_request_path(&mut stream) else {
        let _ = write_response(&mut stream, 400, "text/plain", "bad request\n");
        return;
    };
    let (status, ctype, body) = handler(&path);
    let _ = write_response(&mut stream, status, ctype, &body);
}

/// Reads until the first line is complete (or the byte cap / timeout
/// hits) and returns the GET path, query string stripped. `None` for
/// anything that is not a well-formed GET.
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 512];
    while buf.len() < MAX_REQUEST_BYTES && !buf.contains(&b'\n') {
        let n = stream.read(&mut chunk).ok()?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(chunk.get(..n)?);
    }
    let text = String::from_utf8_lossy(&buf);
    let mut parts = text.lines().next()?.split_whitespace();
    if parts.next()? != "GET" {
        return None;
    }
    let path = parts.next()?;
    Some(path.split('?').next()?.to_string())
}

/// Writes one complete HTTP/1.0 response.
fn write_response(
    stream: &mut TcpStream,
    status: u16,
    ctype: &str,
    body: &str,
) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {ctype}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(request.as_bytes()).expect("request written");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("response read");
        out
    }

    #[test]
    fn routes_gets_rejects_non_gets_and_shuts_down_idempotently() {
        let mut server = HttpServer::start("127.0.0.1:0", "t-httpd", |path| match path {
            "/ok" => (200, "text/plain", "hello\n".to_string()),
            _ => (404, "text/plain", "nope\n".to_string()),
        })
        .expect("server must start");
        let addr = server.addr();

        let ok = get(addr, "GET /ok HTTP/1.0\r\n\r\n");
        assert!(ok.starts_with("HTTP/1.0 200"), "{ok}");
        assert!(ok.contains("Connection: close"));
        assert!(ok.ends_with("hello\n"));

        let stripped = get(addr, "GET /ok?refresh=1 HTTP/1.0\r\n\r\n");
        assert!(stripped.starts_with("HTTP/1.0 200"), "query string must be stripped: {stripped}");

        let missing = get(addr, "GET /other HTTP/1.0\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");

        let bad = get(addr, "POST /ok HTTP/1.0\r\n\r\n");
        assert!(bad.starts_with("HTTP/1.0 400"), "non-GET must be rejected: {bad}");

        server.shutdown();
        server.shutdown(); // idempotent
    }
}
