//! `qdgnn-obs-validate` — schema checker for `--metrics-out` JSONL files
//! and `--run-dir` run journals.
//!
//! Default mode validates metrics files: every line is a well-formed
//! `span`, `event`, `trace` or `snapshot` object, exactly one snapshot
//! is present and final, and the snapshot never records the same base
//! name both as an unlabeled series and as a labeled one (such a
//! collision would render as conflicting Prometheus series).
//!
//! With `--run-dir`, each path is a run-registry root instead: every
//! `run-*/` under it must carry a schema-clean `manifest.json` (string
//! id/dataset/config-hash, numeric seed/start time — a manifest missing
//! its seed or config hash is rejected) and a `series.ndjson` whose
//! `(series, step)` pairs are unique with strictly increasing steps per
//! series; a `flight.ndjson`, when present, must be line-parseable as
//! series points or events. Exits 0 on success, 1 with a diagnostic
//! otherwise. Used by the CI obs job.

use std::path::Path;
use std::process::ExitCode;

use qdgnn_obs::events::Event;
use qdgnn_obs::json::{self, Value};
use qdgnn_obs::metrics::MetricsSnapshot;
use qdgnn_obs::runs::{list_runs, RunManifest};
use qdgnn_obs::series::{SeriesPoint, SeriesStore};

fn check_span(v: &Value) -> Result<(), String> {
    v.get("name").and_then(Value::as_str).ok_or("span missing string `name`")?;
    match v.get("parent") {
        Some(Value::Null) | Some(Value::Str(_)) => {}
        _ => return Err("span `parent` must be a string or null".into()),
    }
    for key in ["start_us", "dur_us"] {
        let n = v
            .get(key)
            .and_then(Value::as_num)
            .ok_or_else(|| format!("span missing numeric `{key}`"))?;
        if n < 0.0 {
            return Err(format!("span `{key}` is negative"));
        }
    }
    Ok(())
}

fn check_event(v: &Value) -> Result<(), String> {
    v.get("name").and_then(Value::as_str).ok_or("event missing string `name`")?;
    v.get("t_us").and_then(Value::as_num).ok_or("event missing numeric `t_us`")?;
    let fields = v.get("fields").and_then(Value::as_obj).ok_or("event missing `fields` object")?;
    for (k, fv) in fields {
        if fv.as_num().is_none() {
            return Err(format!("event field `{k}` is not a number"));
        }
    }
    Ok(())
}

fn check_trace(v: &Value) -> Result<(), String> {
    v.get("name").and_then(Value::as_str).ok_or("trace missing string `name`")?;
    v.get("t_us").and_then(Value::as_num).ok_or("trace missing numeric `t_us`")?;
    let labels = v.get("labels").and_then(Value::as_obj).ok_or("trace missing `labels` object")?;
    for (k, lv) in labels {
        if lv.as_str().is_none() {
            return Err(format!("trace label `{k}` is not a string"));
        }
    }
    let fields = v.get("fields").and_then(Value::as_obj).ok_or("trace missing `fields` object")?;
    for (k, fv) in fields {
        if fv.as_num().is_none() {
            return Err(format!("trace field `{k}` is not a number"));
        }
    }
    Ok(())
}

/// Rejects snapshots that record a base name both bare (`serve.request`)
/// and labeled (`serve.request{outcome="…"}`): the Prometheus rendering
/// of such a pair mixes labeled and unlabeled samples under one family,
/// which scrapers treat as a conflicting series.
fn check_label_collisions(snap: &MetricsSnapshot) -> Result<(), String> {
    let mut bare: Vec<&str> = Vec::new();
    let mut labeled_bases: Vec<&str> = Vec::new();
    let names = snap
        .counters
        .iter()
        .map(|(n, _)| n)
        .chain(snap.gauges.iter().map(|(n, _)| n))
        .chain(snap.hists.iter().map(|h| &h.name));
    for name in names {
        match name.find('{') {
            Some(at) => labeled_bases.push(&name[..at]),
            None => bare.push(name),
        }
    }
    for base in labeled_bases {
        if bare.contains(&base) {
            return Err(format!(
                "snapshot records `{base}` both as an unlabeled series and as a labeled one"
            ));
        }
    }
    Ok(())
}

fn validate(text: &str) -> Result<(usize, usize, usize, MetricsSnapshot), String> {
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.is_empty() {
        return Err("file is empty".into());
    }
    let mut spans = 0usize;
    let mut events = 0usize;
    let mut traces = 0usize;
    let mut snapshot = None;
    for (i, line) in lines.iter().enumerate() {
        let lineno = i + 1;
        let v = json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let kind = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {lineno}: missing string `type`"))?;
        match kind {
            "span" => {
                check_span(&v).map_err(|e| format!("line {lineno}: {e}"))?;
                spans += 1;
            }
            "event" => {
                check_event(&v).map_err(|e| format!("line {lineno}: {e}"))?;
                events += 1;
            }
            "trace" => {
                check_trace(&v).map_err(|e| format!("line {lineno}: {e}"))?;
                traces += 1;
            }
            "snapshot" => {
                if snapshot.is_some() {
                    return Err(format!("line {lineno}: more than one snapshot"));
                }
                if i != lines.len() - 1 {
                    return Err(format!("line {lineno}: snapshot must be the final line"));
                }
                snapshot = Some(
                    MetricsSnapshot::from_json(line)
                        .map_err(|e| format!("line {lineno}: {e}"))?,
                );
            }
            other => return Err(format!("line {lineno}: unknown type `{other}`")),
        }
    }
    let snapshot = snapshot.ok_or("missing final snapshot line")?;
    check_label_collisions(&snapshot)?;
    Ok((spans, events, traces, snapshot))
}

/// Validates one run directory: manifest schema, series journal
/// invariants (unique, strictly increasing steps per series), and — when
/// a flight recorder file exists — that every flight line parses as a
/// series point or an event.
fn validate_run(dir: &Path) -> Result<(usize, usize), String> {
    let manifest_path = dir.join("manifest.json");
    let text = std::fs::read_to_string(&manifest_path)
        .map_err(|e| format!("{}: {e}", manifest_path.display()))?;
    let manifest = RunManifest::from_json(text.trim())
        .map_err(|e| format!("{}: {e}", manifest_path.display()))?;
    let expected = dir.file_name().map(|n| n.to_string_lossy().into_owned());
    if expected.as_deref() != Some(manifest.id.as_str()) {
        return Err(format!(
            "{}: manifest id `{}` does not match directory name",
            manifest_path.display(),
            manifest.id
        ));
    }
    let series_path = dir.join("series.ndjson");
    let points = match std::fs::read_to_string(&series_path) {
        Ok(text) => SeriesStore::from_ndjson(&text)
            .map_err(|e| format!("{}: {e}", series_path.display()))?
            .len(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => 0,
        Err(e) => return Err(format!("{}: {e}", series_path.display())),
    };
    let flight_path = dir.join("flight.ndjson");
    let mut flight_lines = 0usize;
    if let Ok(text) = std::fs::read_to_string(&flight_path) {
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            if SeriesPoint::from_json(line).is_err() && Event::from_json(line).is_err() {
                return Err(format!(
                    "{}: line {}: neither a series point nor an event",
                    flight_path.display(),
                    i + 1
                ));
            }
            flight_lines += 1;
        }
    }
    Ok((points, flight_lines))
}

/// Validates every run under each root given after `--run-dir`.
fn run_dir_mode(roots: &[&String]) -> ExitCode {
    let mut ok = true;
    for root in roots {
        let runs = list_runs(Path::new(root));
        if runs.is_empty() {
            eprintln!("{root}: no runs found");
            ok = false;
            continue;
        }
        for (id, dir) in runs {
            match validate_run(&dir) {
                Ok((points, flight)) => {
                    println!("{root}/{id}: ok ({points} series points, {flight} flight lines)");
                }
                Err(e) => {
                    eprintln!("{root}/{id}: INVALID: {e}");
                    ok = false;
                }
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (run_dir, rest): (Vec<&String>, Vec<&String>) =
        args.iter().partition(|a| a.as_str() == "--run-dir");
    if !run_dir.is_empty() {
        if rest.is_empty() {
            eprintln!("usage: qdgnn-obs-validate --run-dir <run-root>...");
            return ExitCode::FAILURE;
        }
        return run_dir_mode(&rest);
    }
    let (prom, paths): (Vec<&String>, Vec<&String>) =
        rest.into_iter().partition(|a| a.as_str() == "--prometheus");
    if paths.is_empty() {
        eprintln!(
            "usage: qdgnn-obs-validate [--prometheus] <metrics.jsonl>...\n\
             \x20      qdgnn-obs-validate --run-dir <run-root>..."
        );
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for path in paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                ok = false;
                continue;
            }
        };
        match validate(&text) {
            Ok((spans, events, traces, snap)) => {
                println!(
                    "{path}: ok ({spans} spans, {events} events, {traces} traces, {} counters, {} histograms)",
                    snap.counters.len(),
                    snap.hists.len()
                );
                if !prom.is_empty() {
                    print!("{}", snap.to_prometheus());
                }
            }
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod run_dir_tests {
    use super::validate_run;
    use qdgnn_obs::runs::RunRecorder;
    use std::fs;
    use std::path::PathBuf;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("qdgnn-validate-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("temp run root");
        dir
    }

    #[test]
    fn accepts_a_recorder_written_run() {
        let root = tmp_root("ok");
        let rec = RunRecorder::create(&root, 3, "toy", "hash").unwrap();
        rec.record_point("train.loss", 0, 1.0).unwrap();
        rec.record_point("train.loss", 1, 0.5).unwrap();
        rec.flight_event("train.divergence_rollback", &[("epoch", 1.0)]);
        rec.flush_flight().unwrap();
        let (points, flight) = validate_run(rec.dir()).unwrap();
        assert_eq!((points, flight), (2, 3));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn rejects_duplicate_steps_missing_seed_and_garbage_flight() {
        let root = tmp_root("bad");
        let rec = RunRecorder::create(&root, 3, "toy", "hash").unwrap();
        let dir = rec.dir().to_path_buf();
        // Duplicate (series, step) smuggled into the journal by hand.
        fs::write(
            dir.join("series.ndjson"),
            concat!(
                "{\"type\":\"series\",\"series\":\"train.loss\",\"step\":1,\"value\":1}\n",
                "{\"type\":\"series\",\"series\":\"train.loss\",\"step\":1,\"value\":2}\n",
            ),
        )
        .unwrap();
        assert!(validate_run(&dir).unwrap_err().contains("duplicate or regressed"));
        fs::write(dir.join("series.ndjson"), "").unwrap();

        // Manifest without a seed.
        let manifest = fs::read_to_string(dir.join("manifest.json")).unwrap();
        fs::write(dir.join("manifest.json"), manifest.replace("\"seed\":3,", "")).unwrap();
        assert!(validate_run(&dir).unwrap_err().contains("seed"));
        fs::write(dir.join("manifest.json"), &manifest).unwrap();

        // Unparseable flight recorder line.
        fs::write(dir.join("flight.ndjson"), "not json at all\n").unwrap();
        assert!(validate_run(&dir).unwrap_err().contains("neither a series point"));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn rejects_manifest_id_directory_mismatch() {
        let root = tmp_root("mismatch");
        let rec = RunRecorder::create(&root, 3, "toy", "hash").unwrap();
        let moved = root.join("run-000099");
        fs::rename(rec.dir(), &moved).unwrap();
        assert!(validate_run(&moved).unwrap_err().contains("does not match directory"));
        let _ = fs::remove_dir_all(&root);
    }
}

#[cfg(test)]
mod tests {
    use super::validate;

    #[test]
    fn accepts_well_formed_file() {
        let text = concat!(
            "{\"type\":\"span\",\"name\":\"serve.forward\",\"parent\":null,\"start_us\":1,\"dur_us\":2}\n",
            "{\"type\":\"event\",\"name\":\"train.epoch\",\"t_us\":5,\"fields\":{\"loss\":0.5}}\n",
            "{\"type\":\"trace\",\"name\":\"serve.request\",\"t_us\":9,\"labels\":{\"outcome\":\"answered\"},\"fields\":{\"span_us\":42}}\n",
            "{\"type\":\"snapshot\",\"counters\":{},\"gauges\":{},\"histograms\":{}}\n",
        );
        let (spans, events, traces, _) = validate(text).unwrap();
        assert_eq!((spans, events, traces), (1, 1, 1));
    }

    #[test]
    fn rejects_missing_snapshot() {
        let text = "{\"type\":\"event\",\"name\":\"x\",\"t_us\":0,\"fields\":{}}\n";
        assert!(validate(text).unwrap_err().contains("missing final snapshot"));
    }

    #[test]
    fn rejects_snapshot_not_last() {
        let text = concat!(
            "{\"type\":\"snapshot\",\"counters\":{},\"gauges\":{},\"histograms\":{}}\n",
            "{\"type\":\"event\",\"name\":\"x\",\"t_us\":0,\"fields\":{}}\n",
        );
        assert!(validate(text).unwrap_err().contains("final line"));
    }

    #[test]
    fn rejects_malformed_traces() {
        let snap = "{\"type\":\"snapshot\",\"counters\":{},\"gauges\":{},\"histograms\":{}}\n";
        let no_labels =
            format!("{}{snap}", "{\"type\":\"trace\",\"name\":\"t\",\"t_us\":1,\"fields\":{}}\n");
        assert!(validate(&no_labels).unwrap_err().contains("labels"));
        let bad_label = format!(
            "{}{snap}",
            "{\"type\":\"trace\",\"name\":\"t\",\"t_us\":1,\"labels\":{\"tenant\":3},\"fields\":{}}\n"
        );
        assert!(validate(&bad_label).unwrap_err().contains("not a string"));
        let bad_field = format!(
            "{}{snap}",
            "{\"type\":\"trace\",\"name\":\"t\",\"t_us\":1,\"labels\":{},\"fields\":{\"x\":\"y\"}}\n"
        );
        assert!(validate(&bad_field).unwrap_err().contains("not a number"));
    }

    #[test]
    fn rejects_labeled_unlabeled_collision_in_snapshot() {
        let text = concat!(
            "{\"type\":\"snapshot\",\"counters\":{\"serve.request\":1,",
            "\"serve.request{outcome=\\\"answered\\\"}\":1},\"gauges\":{},\"histograms\":{}}\n",
        );
        let err = validate(text).unwrap_err();
        assert!(err.contains("both as an unlabeled series"), "{err}");
        let ok = concat!(
            "{\"type\":\"snapshot\",\"counters\":{\"serve.requests_total\":2,",
            "\"serve.request{outcome=\\\"answered\\\"}\":1},\"gauges\":{},\"histograms\":{}}\n",
        );
        assert!(validate(ok).is_ok());
    }

    #[test]
    fn rejects_bad_span_fields() {
        let text = concat!(
            "{\"type\":\"span\",\"name\":\"s\",\"parent\":7,\"start_us\":1,\"dur_us\":2}\n",
            "{\"type\":\"snapshot\",\"counters\":{},\"gauges\":{},\"histograms\":{}}\n",
        );
        assert!(validate(text).unwrap_err().contains("parent"));
    }
}
