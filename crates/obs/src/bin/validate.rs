//! `qdgnn-obs-validate` — schema checker for `--metrics-out` JSONL files.
//!
//! Validates that every line is a well-formed `span`, `event`, `trace`
//! or `snapshot` object, that exactly one snapshot is present and that
//! it is the final line, and that the snapshot never records the same
//! base name both as an unlabeled series and as a labeled one (such a
//! collision would render as conflicting Prometheus series). Exits 0 on
//! success, 1 with a per-line diagnostic otherwise. Used by the CI obs
//! job.

use std::process::ExitCode;

use qdgnn_obs::json::{self, Value};
use qdgnn_obs::metrics::MetricsSnapshot;

fn check_span(v: &Value) -> Result<(), String> {
    v.get("name").and_then(Value::as_str).ok_or("span missing string `name`")?;
    match v.get("parent") {
        Some(Value::Null) | Some(Value::Str(_)) => {}
        _ => return Err("span `parent` must be a string or null".into()),
    }
    for key in ["start_us", "dur_us"] {
        let n = v
            .get(key)
            .and_then(Value::as_num)
            .ok_or_else(|| format!("span missing numeric `{key}`"))?;
        if n < 0.0 {
            return Err(format!("span `{key}` is negative"));
        }
    }
    Ok(())
}

fn check_event(v: &Value) -> Result<(), String> {
    v.get("name").and_then(Value::as_str).ok_or("event missing string `name`")?;
    v.get("t_us").and_then(Value::as_num).ok_or("event missing numeric `t_us`")?;
    let fields = v.get("fields").and_then(Value::as_obj).ok_or("event missing `fields` object")?;
    for (k, fv) in fields {
        if fv.as_num().is_none() {
            return Err(format!("event field `{k}` is not a number"));
        }
    }
    Ok(())
}

fn check_trace(v: &Value) -> Result<(), String> {
    v.get("name").and_then(Value::as_str).ok_or("trace missing string `name`")?;
    v.get("t_us").and_then(Value::as_num).ok_or("trace missing numeric `t_us`")?;
    let labels = v.get("labels").and_then(Value::as_obj).ok_or("trace missing `labels` object")?;
    for (k, lv) in labels {
        if lv.as_str().is_none() {
            return Err(format!("trace label `{k}` is not a string"));
        }
    }
    let fields = v.get("fields").and_then(Value::as_obj).ok_or("trace missing `fields` object")?;
    for (k, fv) in fields {
        if fv.as_num().is_none() {
            return Err(format!("trace field `{k}` is not a number"));
        }
    }
    Ok(())
}

/// Rejects snapshots that record a base name both bare (`serve.request`)
/// and labeled (`serve.request{outcome="…"}`): the Prometheus rendering
/// of such a pair mixes labeled and unlabeled samples under one family,
/// which scrapers treat as a conflicting series.
fn check_label_collisions(snap: &MetricsSnapshot) -> Result<(), String> {
    let mut bare: Vec<&str> = Vec::new();
    let mut labeled_bases: Vec<&str> = Vec::new();
    let names = snap
        .counters
        .iter()
        .map(|(n, _)| n)
        .chain(snap.gauges.iter().map(|(n, _)| n))
        .chain(snap.hists.iter().map(|h| &h.name));
    for name in names {
        match name.find('{') {
            Some(at) => labeled_bases.push(&name[..at]),
            None => bare.push(name),
        }
    }
    for base in labeled_bases {
        if bare.contains(&base) {
            return Err(format!(
                "snapshot records `{base}` both as an unlabeled series and as a labeled one"
            ));
        }
    }
    Ok(())
}

fn validate(text: &str) -> Result<(usize, usize, usize, MetricsSnapshot), String> {
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.is_empty() {
        return Err("file is empty".into());
    }
    let mut spans = 0usize;
    let mut events = 0usize;
    let mut traces = 0usize;
    let mut snapshot = None;
    for (i, line) in lines.iter().enumerate() {
        let lineno = i + 1;
        let v = json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let kind = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {lineno}: missing string `type`"))?;
        match kind {
            "span" => {
                check_span(&v).map_err(|e| format!("line {lineno}: {e}"))?;
                spans += 1;
            }
            "event" => {
                check_event(&v).map_err(|e| format!("line {lineno}: {e}"))?;
                events += 1;
            }
            "trace" => {
                check_trace(&v).map_err(|e| format!("line {lineno}: {e}"))?;
                traces += 1;
            }
            "snapshot" => {
                if snapshot.is_some() {
                    return Err(format!("line {lineno}: more than one snapshot"));
                }
                if i != lines.len() - 1 {
                    return Err(format!("line {lineno}: snapshot must be the final line"));
                }
                snapshot = Some(
                    MetricsSnapshot::from_json(line)
                        .map_err(|e| format!("line {lineno}: {e}"))?,
                );
            }
            other => return Err(format!("line {lineno}: unknown type `{other}`")),
        }
    }
    let snapshot = snapshot.ok_or("missing final snapshot line")?;
    check_label_collisions(&snapshot)?;
    Ok((spans, events, traces, snapshot))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (prom, paths): (Vec<&String>, Vec<&String>) =
        args.iter().partition(|a| a.as_str() == "--prometheus");
    if paths.is_empty() {
        eprintln!("usage: qdgnn-obs-validate [--prometheus] <metrics.jsonl>...");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for path in paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                ok = false;
                continue;
            }
        };
        match validate(&text) {
            Ok((spans, events, traces, snap)) => {
                println!(
                    "{path}: ok ({spans} spans, {events} events, {traces} traces, {} counters, {} histograms)",
                    snap.counters.len(),
                    snap.hists.len()
                );
                if !prom.is_empty() {
                    print!("{}", snap.to_prometheus());
                }
            }
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::validate;

    #[test]
    fn accepts_well_formed_file() {
        let text = concat!(
            "{\"type\":\"span\",\"name\":\"serve.forward\",\"parent\":null,\"start_us\":1,\"dur_us\":2}\n",
            "{\"type\":\"event\",\"name\":\"train.epoch\",\"t_us\":5,\"fields\":{\"loss\":0.5}}\n",
            "{\"type\":\"trace\",\"name\":\"serve.request\",\"t_us\":9,\"labels\":{\"outcome\":\"answered\"},\"fields\":{\"span_us\":42}}\n",
            "{\"type\":\"snapshot\",\"counters\":{},\"gauges\":{},\"histograms\":{}}\n",
        );
        let (spans, events, traces, _) = validate(text).unwrap();
        assert_eq!((spans, events, traces), (1, 1, 1));
    }

    #[test]
    fn rejects_missing_snapshot() {
        let text = "{\"type\":\"event\",\"name\":\"x\",\"t_us\":0,\"fields\":{}}\n";
        assert!(validate(text).unwrap_err().contains("missing final snapshot"));
    }

    #[test]
    fn rejects_snapshot_not_last() {
        let text = concat!(
            "{\"type\":\"snapshot\",\"counters\":{},\"gauges\":{},\"histograms\":{}}\n",
            "{\"type\":\"event\",\"name\":\"x\",\"t_us\":0,\"fields\":{}}\n",
        );
        assert!(validate(text).unwrap_err().contains("final line"));
    }

    #[test]
    fn rejects_malformed_traces() {
        let snap = "{\"type\":\"snapshot\",\"counters\":{},\"gauges\":{},\"histograms\":{}}\n";
        let no_labels =
            format!("{}{snap}", "{\"type\":\"trace\",\"name\":\"t\",\"t_us\":1,\"fields\":{}}\n");
        assert!(validate(&no_labels).unwrap_err().contains("labels"));
        let bad_label = format!(
            "{}{snap}",
            "{\"type\":\"trace\",\"name\":\"t\",\"t_us\":1,\"labels\":{\"tenant\":3},\"fields\":{}}\n"
        );
        assert!(validate(&bad_label).unwrap_err().contains("not a string"));
        let bad_field = format!(
            "{}{snap}",
            "{\"type\":\"trace\",\"name\":\"t\",\"t_us\":1,\"labels\":{},\"fields\":{\"x\":\"y\"}}\n"
        );
        assert!(validate(&bad_field).unwrap_err().contains("not a number"));
    }

    #[test]
    fn rejects_labeled_unlabeled_collision_in_snapshot() {
        let text = concat!(
            "{\"type\":\"snapshot\",\"counters\":{\"serve.request\":1,",
            "\"serve.request{outcome=\\\"answered\\\"}\":1},\"gauges\":{},\"histograms\":{}}\n",
        );
        let err = validate(text).unwrap_err();
        assert!(err.contains("both as an unlabeled series"), "{err}");
        let ok = concat!(
            "{\"type\":\"snapshot\",\"counters\":{\"serve.requests_total\":2,",
            "\"serve.request{outcome=\\\"answered\\\"}\":1},\"gauges\":{},\"histograms\":{}}\n",
        );
        assert!(validate(ok).is_ok());
    }

    #[test]
    fn rejects_bad_span_fields() {
        let text = concat!(
            "{\"type\":\"span\",\"name\":\"s\",\"parent\":7,\"start_us\":1,\"dur_us\":2}\n",
            "{\"type\":\"snapshot\",\"counters\":{},\"gauges\":{},\"histograms\":{}}\n",
        );
        assert!(validate(text).unwrap_err().contains("parent"));
    }
}
