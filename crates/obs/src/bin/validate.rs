//! `qdgnn-obs-validate` — schema checker for `--metrics-out` JSONL files.
//!
//! Validates that every line is a well-formed `span`, `event` or
//! `snapshot` object, that exactly one snapshot is present and that it
//! is the final line. Exits 0 on success, 1 with a per-line diagnostic
//! otherwise. Used by the CI obs job.

use std::process::ExitCode;

use qdgnn_obs::json::{self, Value};
use qdgnn_obs::metrics::MetricsSnapshot;

fn check_span(v: &Value) -> Result<(), String> {
    v.get("name").and_then(Value::as_str).ok_or("span missing string `name`")?;
    match v.get("parent") {
        Some(Value::Null) | Some(Value::Str(_)) => {}
        _ => return Err("span `parent` must be a string or null".into()),
    }
    for key in ["start_us", "dur_us"] {
        let n = v
            .get(key)
            .and_then(Value::as_num)
            .ok_or_else(|| format!("span missing numeric `{key}`"))?;
        if n < 0.0 {
            return Err(format!("span `{key}` is negative"));
        }
    }
    Ok(())
}

fn check_event(v: &Value) -> Result<(), String> {
    v.get("name").and_then(Value::as_str).ok_or("event missing string `name`")?;
    v.get("t_us").and_then(Value::as_num).ok_or("event missing numeric `t_us`")?;
    let fields = v.get("fields").and_then(Value::as_obj).ok_or("event missing `fields` object")?;
    for (k, fv) in fields {
        if fv.as_num().is_none() {
            return Err(format!("event field `{k}` is not a number"));
        }
    }
    Ok(())
}

fn validate(text: &str) -> Result<(usize, usize, MetricsSnapshot), String> {
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.is_empty() {
        return Err("file is empty".into());
    }
    let mut spans = 0usize;
    let mut events = 0usize;
    let mut snapshot = None;
    for (i, line) in lines.iter().enumerate() {
        let lineno = i + 1;
        let v = json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let kind = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {lineno}: missing string `type`"))?;
        match kind {
            "span" => {
                check_span(&v).map_err(|e| format!("line {lineno}: {e}"))?;
                spans += 1;
            }
            "event" => {
                check_event(&v).map_err(|e| format!("line {lineno}: {e}"))?;
                events += 1;
            }
            "snapshot" => {
                if snapshot.is_some() {
                    return Err(format!("line {lineno}: more than one snapshot"));
                }
                if i != lines.len() - 1 {
                    return Err(format!("line {lineno}: snapshot must be the final line"));
                }
                snapshot = Some(
                    MetricsSnapshot::from_json(line)
                        .map_err(|e| format!("line {lineno}: {e}"))?,
                );
            }
            other => return Err(format!("line {lineno}: unknown type `{other}`")),
        }
    }
    let snapshot = snapshot.ok_or("missing final snapshot line")?;
    Ok((spans, events, snapshot))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (prom, paths): (Vec<&String>, Vec<&String>) =
        args.iter().partition(|a| a.as_str() == "--prometheus");
    if paths.is_empty() {
        eprintln!("usage: qdgnn-obs-validate [--prometheus] <metrics.jsonl>...");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for path in paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                ok = false;
                continue;
            }
        };
        match validate(&text) {
            Ok((spans, events, snap)) => {
                println!(
                    "{path}: ok ({spans} spans, {events} events, {} counters, {} histograms)",
                    snap.counters.len(),
                    snap.hists.len()
                );
                if !prom.is_empty() {
                    print!("{}", snap.to_prometheus());
                }
            }
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::validate;

    #[test]
    fn accepts_well_formed_file() {
        let text = concat!(
            "{\"type\":\"span\",\"name\":\"serve.forward\",\"parent\":null,\"start_us\":1,\"dur_us\":2}\n",
            "{\"type\":\"event\",\"name\":\"train.epoch\",\"t_us\":5,\"fields\":{\"loss\":0.5}}\n",
            "{\"type\":\"snapshot\",\"counters\":{},\"gauges\":{},\"histograms\":{}}\n",
        );
        let (spans, events, _) = validate(text).unwrap();
        assert_eq!((spans, events), (1, 1));
    }

    #[test]
    fn rejects_missing_snapshot() {
        let text = "{\"type\":\"event\",\"name\":\"x\",\"t_us\":0,\"fields\":{}}\n";
        assert!(validate(text).unwrap_err().contains("missing final snapshot"));
    }

    #[test]
    fn rejects_snapshot_not_last() {
        let text = concat!(
            "{\"type\":\"snapshot\",\"counters\":{},\"gauges\":{},\"histograms\":{}}\n",
            "{\"type\":\"event\",\"name\":\"x\",\"t_us\":0,\"fields\":{}}\n",
        );
        assert!(validate(text).unwrap_err().contains("final line"));
    }

    #[test]
    fn rejects_bad_span_fields() {
        let text = concat!(
            "{\"type\":\"span\",\"name\":\"s\",\"parent\":7,\"start_us\":1,\"dur_us\":2}\n",
            "{\"type\":\"snapshot\",\"counters\":{},\"gauges\":{},\"histograms\":{}}\n",
        );
        assert!(validate(text).unwrap_err().contains("parent"));
    }
}
