//! `qdgnn-obs-flame` — converts a `--metrics-out` JSONL trace into
//! collapsed-stack "folded" text for flamegraph tools (inferno's
//! `inferno-flamegraph`, speedscope, `flamegraph.pl`):
//!
//! ```sh
//! cargo run --release --bin table4 -- --profile fast --metrics-out run.jsonl
//! cargo run -p qdgnn-obs --bin qdgnn-obs-flame run.jsonl > run.folded
//! inferno-flamegraph < run.folded > run.svg   # any folded-stack consumer
//! ```
//!
//! `--self-time` (default) writes flamegraph-standard exclusive times;
//! `--total-time` writes inclusive durations per stack instead (a
//! ranked where-does-time-accumulate listing — do not feed it to a
//! flamegraph renderer, parents already contain their children).
//! Exits 0 on success, 1 on unreadable input, malformed span lines or a
//! trace with no spans (run the producer with `--metrics-out`).

use std::process::ExitCode;

use qdgnn_obs::events::Event;
use qdgnn_obs::folded::{build_forest, to_folded, Mode};
use qdgnn_obs::json::{self, Value};

/// Extracts the span events from JSONL text, ignoring point-event and
/// snapshot lines; errors on lines that are not valid JSONL at all or
/// claim `"type":"span"` but do not parse as one.
fn spans_from_jsonl(text: &str) -> Result<Vec<Event>, String> {
    let mut spans = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let lineno = i + 1;
        let v = json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        match v.get("type").and_then(Value::as_str) {
            Some("span") => spans
                .push(Event::from_json(line).map_err(|e| format!("line {lineno}: {e}"))?),
            Some(_) => {}
            None => return Err(format!("line {lineno}: missing string `type`")),
        }
    }
    Ok(spans)
}

fn run(path: &str, mode: Mode) -> Result<String, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let spans = spans_from_jsonl(&text)?;
    if spans.is_empty() {
        return Err(format!(
            "{path}: no span events — was the trace recorded with --metrics-out \
             on an instrumented (obs-enabled) binary?"
        ));
    }
    Ok(to_folded(&build_forest(&spans), mode))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode = Mode::SelfTime;
    let mut paths = Vec::new();
    for a in &args {
        match a.as_str() {
            "--self-time" => mode = Mode::SelfTime,
            "--total-time" => mode = Mode::TotalTime,
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}");
                eprintln!("usage: qdgnn-obs-flame [--self-time|--total-time] <metrics.jsonl>");
                return ExitCode::FAILURE;
            }
            path => paths.push(path),
        }
    }
    let [path] = paths[..] else {
        eprintln!("usage: qdgnn-obs-flame [--self-time|--total-time] <metrics.jsonl>");
        return ExitCode::FAILURE;
    };
    match run(path, mode) {
        Ok(folded) => {
            print!("{folded}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_spans_and_skips_other_lines() {
        let text = concat!(
            "{\"type\":\"span\",\"name\":\"serve.forward\",\"parent\":\"serve.query\",\"start_us\":0,\"dur_us\":40}\n",
            "{\"type\":\"event\",\"name\":\"train.epoch\",\"t_us\":5,\"fields\":{\"loss\":0.5}}\n",
            "{\"type\":\"span\",\"name\":\"serve.query\",\"parent\":null,\"start_us\":0,\"dur_us\":50}\n",
            "{\"type\":\"snapshot\",\"counters\":{},\"gauges\":{},\"histograms\":{}}\n",
        );
        let spans = spans_from_jsonl(text).unwrap();
        assert_eq!(spans.len(), 2);
        let folded = to_folded(&build_forest(&spans), Mode::SelfTime);
        assert!(folded.contains("serve.query;serve.forward 40\n"), "{folded}");
        assert!(folded.contains("serve.query 10\n"), "{folded}");
    }

    #[test]
    fn rejects_non_jsonl_input() {
        assert!(spans_from_jsonl("not json\n").is_err());
    }

    #[test]
    fn total_time_mode_reports_inclusive_durations() {
        let text = concat!(
            "{\"type\":\"span\",\"name\":\"b\",\"parent\":\"a\",\"start_us\":0,\"dur_us\":40}\n",
            "{\"type\":\"span\",\"name\":\"a\",\"parent\":null,\"start_us\":0,\"dur_us\":50}\n",
        );
        let spans = spans_from_jsonl(text).unwrap();
        let folded = to_folded(&build_forest(&spans), Mode::TotalTime);
        assert!(folded.contains("a 50\n"), "{folded}");
        assert!(folded.contains("a;b 40\n"), "{folded}");
    }
}
