//! `qdgnn-obs-runs` — inspect and compare journaled training runs.
//!
//! ```text
//! qdgnn-obs-runs list   <run-root>               # one line per run
//! qdgnn-obs-runs show   <run-root> <id>          # manifest + per-series summary
//! qdgnn-obs-runs export <run-root> <id>          # raw series NDJSON to stdout
//! qdgnn-obs-runs diff   <run-root> <a> <b>       # compare final series values
//! ```
//!
//! `diff` judges `b` (candidate) against `a` (baseline) with the bench
//! regression gate's noise-tolerant thresholds (warn above ×1.10, fail
//! above ×1.25 — the shared `qdgnn_obs::series` constants) and exits
//! nonzero when any gated series regressed past the fail ratio or
//! vanished, so CI can gate on run-to-run drift the same way it gates
//! on bench drift.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use qdgnn_obs::runs::{list_runs, RunManifest};
use qdgnn_obs::series::{self, DiffVerdict, SeriesStore};

fn usage() -> ExitCode {
    eprintln!(
        "usage: qdgnn-obs-runs <command>\n\
         \x20 list   <run-root>          list runs under a root\n\
         \x20 show   <run-root> <id>     manifest and per-series summary\n\
         \x20 export <run-root> <id>     raw series NDJSON to stdout\n\
         \x20 diff   <run-root> <a> <b>  compare runs; nonzero exit on regression"
    );
    ExitCode::from(2)
}

fn load_manifest(root: &Path, id: &str) -> Result<RunManifest, String> {
    let path = root.join(id).join("manifest.json");
    let text = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    RunManifest::from_json(text.trim()).map_err(|e| format!("{}: {e}", path.display()))
}

fn load_series(root: &Path, id: &str) -> Result<SeriesStore, String> {
    let path = root.join(id).join("series.ndjson");
    match fs::read_to_string(&path) {
        Ok(text) => SeriesStore::from_ndjson(&text).map_err(|e| format!("{}: {e}", path.display())),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(SeriesStore::new()),
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

fn cmd_list(root: &Path) -> Result<(), String> {
    let runs = list_runs(root);
    if runs.is_empty() {
        println!("no runs under {}", root.display());
        return Ok(());
    }
    for (id, _) in runs {
        let m = load_manifest(root, &id)?;
        let lineage = match &m.resumed_from {
            Some(p) => format!("  resumed-from {p}"),
            None => String::new(),
        };
        println!(
            "{id}  dataset {}  seed {}  config {}  start {} us{lineage}",
            m.dataset, m.seed, m.config_hash, m.start_us
        );
    }
    Ok(())
}

fn cmd_show(root: &Path, id: &str) -> Result<(), String> {
    let m = load_manifest(root, id)?;
    println!("{}", m.to_json());
    let store = load_series(root, id)?;
    for name in store.names() {
        let points = store.get(name);
        let (last_step, last_value) = points.last().copied().unwrap_or((0, f64::NAN));
        println!("{name}: {} points, last {last_value} @ step {last_step}", points.len());
    }
    let flight = root.join(id).join("flight.ndjson");
    if let Ok(text) = fs::read_to_string(&flight) {
        println!("flight recorder: {} lines in {}", text.lines().count(), flight.display());
    }
    Ok(())
}

fn cmd_export(root: &Path, id: &str) -> Result<(), String> {
    let store = load_series(root, id)?;
    print!("{}", store.to_ndjson());
    Ok(())
}

fn cmd_diff(root: &Path, baseline: &str, candidate: &str) -> Result<DiffVerdict, String> {
    let base = load_series(root, baseline)?;
    let cand = load_series(root, candidate)?;
    let diffs = series::diff_stores(&base, &cand);
    if diffs.is_empty() {
        return Err(format!("neither {baseline} nor {candidate} has any series"));
    }
    println!("diff: baseline {baseline} vs candidate {candidate}");
    for d in &diffs {
        println!("  {}", d.line());
    }
    let verdict = series::overall(&diffs);
    println!(
        "overall: {} (warn above x{}, fail above x{})",
        verdict.tag(),
        series::WARN_RATIO,
        series::FAIL_RATIO
    );
    Ok(verdict)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        ["list", root] => cmd_list(&PathBuf::from(root)).map(|()| ExitCode::SUCCESS),
        ["show", root, id] => cmd_show(&PathBuf::from(root), id).map(|()| ExitCode::SUCCESS),
        ["export", root, id] => cmd_export(&PathBuf::from(root), id).map(|()| ExitCode::SUCCESS),
        ["diff", root, a, b] => cmd_diff(&PathBuf::from(root), a, b).map(|verdict| {
            if verdict == DiffVerdict::Fail {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }),
        _ => return usage(),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("qdgnn-obs-runs: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdgnn_obs::runs::RunRecorder;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("qdgnn-runs-cli-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("temp run root");
        dir
    }

    #[test]
    fn diff_passes_self_and_fails_seeded_regression() {
        let root = tmp_root("diff");
        let base = RunRecorder::create(&root, 1, "toy", "h").unwrap();
        for step in 0..4u64 {
            base.record_point("train.loss", step, 1.0 / (step + 1) as f64).unwrap();
            base.record_point("train.val_f1", step, 0.5 + 0.1 * step as f64).unwrap();
        }
        let regressed = RunRecorder::create(&root, 1, "toy", "h").unwrap();
        for step in 0..4u64 {
            // Loss scaled up x2: a regression well past FAIL_RATIO.
            regressed.record_point("train.loss", step, 2.0 / (step + 1) as f64).unwrap();
            regressed.record_point("train.val_f1", step, 0.5 + 0.1 * step as f64).unwrap();
        }
        let self_verdict = cmd_diff(&root, base.id(), base.id()).unwrap();
        assert!(self_verdict < DiffVerdict::Warn, "self-diff must pass: {self_verdict:?}");
        let bad_verdict = cmd_diff(&root, base.id(), regressed.id()).unwrap();
        assert_eq!(bad_verdict, DiffVerdict::Fail);
        // A candidate with no journal at all: every gated series vanished.
        let ghost = cmd_diff(&root, base.id(), "run-999999").unwrap();
        assert_eq!(ghost, DiffVerdict::Fail);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn list_show_export_cover_manifest_and_series() {
        let root = tmp_root("listing");
        let rec = RunRecorder::create(&root, 5, "cora", "abc").unwrap();
        rec.record_point("train.loss", 0, 1.0).unwrap();
        cmd_list(&root).unwrap();
        cmd_show(&root, rec.id()).unwrap();
        cmd_export(&root, rec.id()).unwrap();
        assert!(load_manifest(&root, "run-404404").is_err());
        let _ = fs::remove_dir_all(&root);
    }
}
