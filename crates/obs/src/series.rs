//! Step-indexed metric series: the journaled training curves behind the
//! run registry ([`crate::runs`]).
//!
//! A *series* is a named sequence of `(step, value)` observations —
//! `train.loss` per epoch, `train.val_f1` per validation — journaled as
//! append-only NDJSON, one [`SeriesPoint`] per line:
//!
//! ```text
//! {"type":"series","series":"train.loss","step":3,"value":0.4218}
//! ```
//!
//! Unlike the event stream (wall-clock ordered, lossy under the event
//! cap), series are **step-indexed and exact**: steps within one series
//! must be strictly increasing and duplicate `(series, step)` pairs are
//! rejected, so two runs of the same configuration produce byte-identical
//! journals and `qdgnn-obs-runs diff` can compare them mechanically.
//! Points carry no timestamps for exactly that reason — crash/resume
//! bit-identity of the journal is a tested contract.
//!
//! The diff thresholds ([`WARN_RATIO`], [`FAIL_RATIO`]) are the
//! canonical noise-tolerance constants for the whole workspace: the
//! bench regression gate (`qdgnn-bench compare`) re-exports them, so a
//! training-run diff and a serve-latency gate judge "regression" the
//! same way.

use std::collections::BTreeMap;

use crate::json;

/// Ratio above which a compared series fails ([`diff_stores`]); shared
/// with the bench regression gate.
pub const FAIL_RATIO: f64 = 1.25;
/// Ratio above which a compared series warns (but at most
/// [`FAIL_RATIO`]); shared with the bench regression gate.
pub const WARN_RATIO: f64 = 1.10;

/// One journaled observation of one series at one step.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesPoint {
    /// Series name, e.g. `train.loss`.
    pub series: String,
    /// Step index (epoch, round, …); strictly increasing per series.
    pub step: u64,
    /// Observed value.
    pub value: f64,
}

impl SeriesPoint {
    /// Serializes as one NDJSON line.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"type\":\"series\",\"series\":{},\"step\":{},\"value\":{}}}",
            json::escape(&self.series),
            self.step,
            json::num(self.value)
        )
    }

    /// Parses one NDJSON line back into a [`SeriesPoint`].
    pub fn from_json(line: &str) -> Result<SeriesPoint, String> {
        let v = json::parse(line)?;
        match v.get("type").and_then(json::Value::as_str) {
            Some("series") => {}
            other => return Err(format!("not a series line (type {other:?})")),
        }
        let series = v
            .get("series")
            .and_then(json::Value::as_str)
            .ok_or_else(|| "missing string \"series\"".to_string())?
            .to_string();
        let step = v
            .get("step")
            .and_then(json::Value::as_num)
            // qdgnn-analyze: allow(QD002, reason = "fract() == 0.0 is the exact integrality test for a step index; any tolerance would admit fractional steps")
            .filter(|n| n.is_finite() && *n >= 0.0 && n.fract() == 0.0)
            .ok_or_else(|| "missing or non-integer \"step\"".to_string())?
            as u64;
        let value = v
            .get("value")
            .and_then(json::Value::as_num)
            .ok_or_else(|| "missing numeric \"value\"".to_string())?;
        Ok(SeriesPoint { series, step, value })
    }
}

/// An in-memory series journal: insertion-ordered points (so a rewrite
/// reproduces the file byte-for-byte) plus a per-series monotonicity
/// index.
#[derive(Clone, Debug, Default)]
pub struct SeriesStore {
    points: Vec<SeriesPoint>,
    last_step: BTreeMap<String, u64>,
}

impl SeriesStore {
    /// Creates an empty store.
    pub fn new() -> SeriesStore {
        SeriesStore::default()
    }

    /// Appends one observation.
    ///
    /// # Errors
    /// Rejects a step that is not strictly greater than the series'
    /// last recorded step (duplicate or regressed index).
    pub fn observe(&mut self, series: &str, step: u64, value: f64) -> Result<(), String> {
        if let Some(&last) = self.last_step.get(series) {
            if step <= last {
                return Err(format!(
                    "series `{series}`: step {step} is not after last step {last} \
                     (duplicate or regressed index)"
                ));
            }
        }
        self.last_step.insert(series.to_string(), step);
        self.points.push(SeriesPoint { series: series.to_string(), step, value });
        Ok(())
    }

    /// Parses a full NDJSON journal, enforcing the monotonicity/no-dup
    /// invariant line by line.
    pub fn from_ndjson(text: &str) -> Result<SeriesStore, String> {
        let mut store = SeriesStore::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let p = SeriesPoint::from_json(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            store
                .observe(&p.series, p.step, p.value)
                .map_err(|e| format!("line {}: {e}", i + 1))?;
        }
        Ok(store)
    }

    /// Serializes every point, in insertion order, one line each.
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        for p in &self.points {
            out.push_str(&p.to_json());
            out.push('\n');
        }
        out
    }

    /// Drops every point whose step is `>= step`, across all series —
    /// the resume primitive: a run continued from an epoch-`k` checkpoint
    /// truncates the journal to steps `< k` before replaying, so the
    /// resumed journal ends up identical to an uninterrupted run's.
    pub fn truncate_from(&mut self, step: u64) {
        self.points.retain(|p| p.step < step);
        self.last_step.clear();
        for p in &self.points {
            self.last_step.insert(p.series.clone(), p.step);
        }
    }

    /// All points, in insertion order.
    pub fn points(&self) -> &[SeriesPoint] {
        &self.points
    }

    /// Sorted distinct series names.
    pub fn names(&self) -> Vec<&str> {
        self.last_step.keys().map(String::as_str).collect()
    }

    /// The `(step, value)` sequence of one series, in step order.
    pub fn get(&self, series: &str) -> Vec<(u64, f64)> {
        self.points
            .iter()
            .filter(|p| p.series == series)
            .map(|p| (p.step, p.value))
            .collect()
    }

    /// The final `(step, value)` of one series.
    pub fn last(&self, series: &str) -> Option<(u64, f64)> {
        self.points.iter().rev().find(|p| p.series == series).map(|p| (p.step, p.value))
    }

    /// Total recorded points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the store holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// How a series' values should be judged when two runs are compared.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Smaller final value is better (losses, latencies, byte counts).
    LowerIsBetter,
    /// Larger final value is better (F1, accuracy, throughput).
    HigherIsBetter,
    /// Not a quality metric (learning rate, γ): reported, never gated.
    Info,
}

/// Classifies a series name by suffix convention: `*loss*`, `*_us`,
/// `*bytes*` are lower-is-better; `*f1*`, `*acc*`, `*qps*`,
/// `*throughput*` are higher-is-better; everything else is
/// informational and never fails a diff.
pub fn direction(series: &str) -> Direction {
    let s = series.to_ascii_lowercase();
    if s.contains("loss") || s.ends_with("_us") || s.contains("bytes") {
        Direction::LowerIsBetter
    } else if s.contains("f1") || s.contains("acc") || s.contains("qps") || s.contains("throughput")
    {
        Direction::HigherIsBetter
    } else {
        Direction::Info
    }
}

/// Outcome of one compared series (ordered by severity).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DiffVerdict {
    /// Not gated (informational series, or nothing to compare).
    Info,
    /// Within the noise band.
    Pass,
    /// Ratio above [`WARN_RATIO`]; reported but not fatal.
    Warn,
    /// Ratio above [`FAIL_RATIO`], or the series vanished.
    Fail,
}

impl DiffVerdict {
    /// Short uppercase tag for report lines.
    pub fn tag(self) -> &'static str {
        match self {
            DiffVerdict::Info => "INFO",
            DiffVerdict::Pass => "PASS",
            DiffVerdict::Warn => "WARN",
            DiffVerdict::Fail => "FAIL",
        }
    }
}

/// One compared series: final values of both runs and the verdict.
#[derive(Clone, Debug)]
pub struct SeriesDiff {
    /// Series name.
    pub series: String,
    /// Baseline run's final value (`None` if the series is new).
    pub baseline: Option<f64>,
    /// Candidate run's final value (`None` if the series vanished).
    pub candidate: Option<f64>,
    /// Regression ratio (1.0 = at baseline, >1.0 = worse; NaN when not
    /// comparable).
    pub ratio: f64,
    /// The verdict.
    pub verdict: DiffVerdict,
}

impl SeriesDiff {
    /// One human-readable report line.
    pub fn line(&self) -> String {
        let fmt = |v: Option<f64>| match v {
            Some(v) => format!("{v:>12.5}"),
            None => format!("{:>12}", "-"),
        };
        let ratio = if self.ratio.is_nan() {
            "-".to_string()
        } else {
            format!("{:.3}", self.ratio)
        };
        format!(
            "{} {:<28} baseline {}  candidate {}  ratio {}",
            self.verdict.tag(),
            self.series,
            fmt(self.baseline),
            fmt(self.candidate),
            ratio
        )
    }
}

fn judge(ratio: f64) -> DiffVerdict {
    if ratio > FAIL_RATIO {
        DiffVerdict::Fail
    } else if ratio > WARN_RATIO {
        DiffVerdict::Warn
    } else {
        DiffVerdict::Pass
    }
}

/// Compares the final value of every series of `baseline` against
/// `candidate` with the bench gate's noise-tolerant thresholds: a gated
/// series regressed past ×[`FAIL_RATIO`] fails, past ×[`WARN_RATIO`]
/// warns. A gated series present in the baseline but missing from the
/// candidate fails (the metric vanished); a series new in the candidate
/// is informational. A non-positive baseline value passes (no meaningful
/// ratio), mirroring `qdgnn_bench::gate`.
pub fn diff_stores(baseline: &SeriesStore, candidate: &SeriesStore) -> Vec<SeriesDiff> {
    let mut names: Vec<&str> = baseline.names();
    for n in candidate.names() {
        if !names.contains(&n) {
            names.push(n);
        }
    }
    names.sort_unstable();
    let mut out = Vec::new();
    for name in names {
        let base = baseline.last(name).map(|(_, v)| v);
        let cand = candidate.last(name).map(|(_, v)| v);
        let dir = direction(name);
        let (ratio, verdict) = match (dir, base, cand) {
            (Direction::Info, ..) => (f64::NAN, DiffVerdict::Info),
            (_, None, _) => (f64::NAN, DiffVerdict::Info),
            (_, Some(_), None) => (f64::INFINITY, DiffVerdict::Fail),
            (Direction::LowerIsBetter, Some(b), Some(c)) => {
                if b <= 0.0 {
                    (1.0, DiffVerdict::Pass)
                } else {
                    let r = c / b;
                    (r, judge(r))
                }
            }
            (Direction::HigherIsBetter, Some(b), Some(c)) => {
                if b <= 0.0 {
                    (1.0, DiffVerdict::Pass)
                } else if c <= 0.0 {
                    (f64::INFINITY, DiffVerdict::Fail)
                } else {
                    let r = b / c;
                    (r, judge(r))
                }
            }
        };
        out.push(SeriesDiff { series: name.to_string(), baseline: base, candidate: cand, ratio, verdict });
    }
    out
}

/// Worst verdict across all compared series (`Info` when empty).
pub fn overall(diffs: &[SeriesDiff]) -> DiffVerdict {
    diffs.iter().map(|d| d.verdict).max().unwrap_or(DiffVerdict::Info)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_round_trip() {
        let p = SeriesPoint { series: "train.loss".into(), step: 7, value: 0.125 };
        assert_eq!(SeriesPoint::from_json(&p.to_json()).unwrap(), p);
        assert!(SeriesPoint::from_json("{\"type\":\"event\",\"name\":\"x\"}").is_err());
        assert!(SeriesPoint::from_json(
            "{\"type\":\"series\",\"series\":\"s\",\"step\":1.5,\"value\":0}"
        )
        .is_err());
    }

    #[test]
    fn store_rejects_duplicate_and_regressed_steps() {
        let mut s = SeriesStore::new();
        s.observe("train.loss", 0, 1.0).unwrap();
        s.observe("train.loss", 1, 0.9).unwrap();
        s.observe("train.lr", 1, 1e-3).unwrap();
        assert!(s.observe("train.loss", 1, 0.8).unwrap_err().contains("duplicate or regressed"));
        assert!(s.observe("train.loss", 0, 0.8).is_err());
        assert_eq!(s.len(), 3);
        assert_eq!(s.last("train.loss"), Some((1, 0.9)));
    }

    #[test]
    fn ndjson_round_trip_preserves_interleaved_order() {
        let mut s = SeriesStore::new();
        for epoch in 0..3u64 {
            s.observe("train.loss", epoch, 1.0 / (epoch + 1) as f64).unwrap();
            s.observe("train.lr", epoch, 1e-3).unwrap();
        }
        let text = s.to_ndjson();
        let back = SeriesStore::from_ndjson(&text).unwrap();
        assert_eq!(back.points(), s.points());
        assert_eq!(back.to_ndjson(), text, "rewrite must be byte-identical");
        assert_eq!(back.names(), vec!["train.loss", "train.lr"]);
        assert_eq!(back.get("train.loss").len(), 3);
    }

    #[test]
    fn from_ndjson_rejects_violations_with_line_numbers() {
        let bad = concat!(
            "{\"type\":\"series\",\"series\":\"a\",\"step\":1,\"value\":1}\n",
            "{\"type\":\"series\",\"series\":\"a\",\"step\":1,\"value\":2}\n",
        );
        assert!(SeriesStore::from_ndjson(bad).unwrap_err().starts_with("line 2:"));
        let regress = concat!(
            "{\"type\":\"series\",\"series\":\"a\",\"step\":5,\"value\":1}\n",
            "{\"type\":\"series\",\"series\":\"a\",\"step\":3,\"value\":2}\n",
        );
        assert!(SeriesStore::from_ndjson(regress).is_err());
    }

    #[test]
    fn truncate_from_drops_tail_and_reopens_steps() {
        let mut s = SeriesStore::new();
        for epoch in 0..5u64 {
            s.observe("train.loss", epoch, epoch as f64).unwrap();
        }
        s.truncate_from(3);
        assert_eq!(s.get("train.loss"), vec![(0, 0.0), (1, 1.0), (2, 2.0)]);
        // Steps at/after the truncation point are appendable again.
        s.observe("train.loss", 3, 99.0).unwrap();
        assert!(s.observe("train.loss", 2, 0.0).is_err());
    }

    #[test]
    fn directions_classify_by_name() {
        assert_eq!(direction("train.loss"), Direction::LowerIsBetter);
        assert_eq!(direction("serve.p95_us"), Direction::LowerIsBetter);
        assert_eq!(direction("train.val_f1"), Direction::HigherIsBetter);
        assert_eq!(direction("serve.batched_qps"), Direction::HigherIsBetter);
        assert_eq!(direction("train.lr"), Direction::Info);
        assert_eq!(direction("train.val_gamma"), Direction::Info);
    }

    #[test]
    fn self_diff_passes_and_regressions_fail() {
        let mut a = SeriesStore::new();
        a.observe("train.loss", 0, 1.0).unwrap();
        a.observe("train.loss", 1, 0.4).unwrap();
        a.observe("train.val_f1", 1, 0.8).unwrap();
        a.observe("train.lr", 1, 1e-3).unwrap();

        let diffs = diff_stores(&a, &a);
        assert_eq!(overall(&diffs), DiffVerdict::Pass, "{diffs:?}");
        assert!(diffs.iter().all(|d| d.verdict <= DiffVerdict::Pass));

        // Candidate with a ×1.5 worse final loss: fail.
        let mut b = a.clone();
        b.observe("train.loss", 2, 0.6).unwrap();
        b.observe("train.val_f1", 2, 0.8).unwrap();
        b.observe("train.lr", 2, 1e-3).unwrap();
        let diffs = diff_stores(&a, &b);
        assert_eq!(overall(&diffs), DiffVerdict::Fail, "{diffs:?}");
        let loss = diffs.iter().find(|d| d.series == "train.loss").unwrap();
        assert_eq!(loss.verdict, DiffVerdict::Fail);
        assert!((loss.ratio - 1.5).abs() < 1e-12);

        // Warn band: ×1.2.
        let mut c = a.clone();
        c.observe("train.loss", 2, 0.48).unwrap();
        c.observe("train.val_f1", 2, 0.8).unwrap();
        let diffs = diff_stores(&a, &c);
        assert_eq!(overall(&diffs), DiffVerdict::Warn, "{diffs:?}");
    }

    #[test]
    fn vanished_gated_series_fails_new_series_is_info() {
        let mut a = SeriesStore::new();
        a.observe("train.loss", 0, 1.0).unwrap();
        a.observe("train.val_f1", 0, 0.5).unwrap();
        let mut b = SeriesStore::new();
        b.observe("train.loss", 0, 1.0).unwrap();
        b.observe("extra.metric", 0, 3.0).unwrap();
        let diffs = diff_stores(&a, &b);
        let f1 = diffs.iter().find(|d| d.series == "train.val_f1").unwrap();
        assert_eq!(f1.verdict, DiffVerdict::Fail, "vanished gated series must fail");
        let extra = diffs.iter().find(|d| d.series == "extra.metric").unwrap();
        assert_eq!(extra.verdict, DiffVerdict::Info);
        // Dropped f1 (higher-is-better) to zero: fail.
        let mut z = SeriesStore::new();
        z.observe("train.loss", 0, 1.0).unwrap();
        z.observe("train.val_f1", 0, 0.0).unwrap();
        let f1 = diff_stores(&a, &z).into_iter().find(|d| d.series == "train.val_f1").unwrap();
        assert_eq!(f1.verdict, DiffVerdict::Fail);
    }
}
