//! The compiled-out mirror of [`crate::registry`]: every public item
//! exists with the same signature but is a zero-sized no-op, so call
//! sites never need `cfg` and the optimizer erases the instrumentation
//! entirely (verified by `tests/overhead.rs`).

use std::io;
use std::path::Path;
use std::sync::Arc;

use crate::clock::Clock;
use crate::events::Event;
use crate::metrics::MetricsSnapshot;

/// Whether the instrumentation layer is compiled in.
pub const fn is_enabled() -> bool {
    false
}

/// No-op (metrics layer compiled out).
#[inline(always)]
pub fn set_clock(_clock: Arc<dyn Clock>) {}

/// Always 0 (metrics layer compiled out).
#[inline(always)]
pub fn now_micros() -> u64 {
    0
}

/// Zero-sized no-op counter handle.
#[derive(Clone, Copy)]
pub struct Counter;

impl Counter {
    /// No-op.
    #[inline(always)]
    pub fn inc(&self) {}

    /// No-op.
    #[inline(always)]
    pub fn inc_by(&self, _n: u64) {}

    /// Always 0.
    #[inline(always)]
    pub fn get(&self) -> u64 {
        0
    }
}

/// No-op counter lookup.
#[inline(always)]
pub fn counter(_name: &str) -> Counter {
    Counter
}

/// No-op labeled counter lookup.
#[inline(always)]
pub fn counter_with(_name: &str, _labels: &[(&str, &str)]) -> Counter {
    Counter
}

/// Zero-sized no-op gauge handle.
#[derive(Clone, Copy)]
pub struct Gauge;

impl Gauge {
    /// No-op.
    #[inline(always)]
    pub fn set(&self, _v: f64) {}

    /// Always 0.
    #[inline(always)]
    pub fn get(&self) -> f64 {
        0.0
    }
}

/// No-op gauge lookup.
#[inline(always)]
pub fn gauge(_name: &str) -> Gauge {
    Gauge
}

/// No-op histogram observation.
#[inline(always)]
pub fn observe(_name: &str, _v: f64) {}

/// No-op labeled histogram observation.
#[inline(always)]
pub fn observe_with(_name: &str, _labels: &[(&str, &str)], _v: f64) {}

/// No-op memory-allocation accounting.
#[inline(always)]
pub fn mem_alloc(_bytes: u64) {}

/// No-op memory-free accounting.
#[inline(always)]
pub fn mem_free(_bytes: u64) {}

/// Always 0 (memory accounting compiled out).
#[inline(always)]
pub fn mem_live_bytes() -> u64 {
    0
}

/// Always 0 (memory accounting compiled out).
#[inline(always)]
pub fn mem_peak_bytes() -> u64 {
    0
}

/// No-op.
#[inline(always)]
pub fn reset_mem_peak() {}

/// No-op.
#[inline(always)]
pub fn record_events(_on: bool) {}

/// Always false.
#[inline(always)]
pub fn events_recorded() -> bool {
    false
}

/// No-op point event.
#[inline(always)]
pub fn event(_name: &str, _fields: &[(&str, f64)]) {}

/// No-op trace record.
#[inline(always)]
pub fn trace(_name: &str, _labels: &[(&str, &str)], _fields: &[(&str, f64)]) {}

/// Mirror of the live cap so call sites can reference it in any build.
pub const MAX_LABEL_SETS: usize = 64;

/// Zero-sized no-op span guard.
pub struct SpanGuard;

impl SpanGuard {
    /// No-op span entry.
    #[inline(always)]
    pub fn enter(_name: &'static str) -> SpanGuard {
        SpanGuard
    }
}

/// Zero-sized no-op op timer.
pub struct OpTimer;

/// No-op timer.
#[inline(always)]
pub fn op_timer(_name: &'static str) -> OpTimer {
    OpTimer
}

/// Always empty.
#[inline(always)]
pub fn snapshot() -> MetricsSnapshot {
    MetricsSnapshot::default()
}

/// Always empty.
#[inline(always)]
pub fn take_events() -> Vec<Event> {
    Vec::new()
}

/// Writes a single empty snapshot line so the output stays schema-valid
/// even when the layer is compiled out.
pub fn write_jsonl(path: impl AsRef<Path>) -> io::Result<()> {
    std::fs::write(path, format!("{}\n", MetricsSnapshot::default().to_json()))
}

/// No-op.
#[inline(always)]
pub fn reset() {}
