//! Structured events: the JSONL stream a profiled run emits.
//!
//! Two event shapes, one per JSONL line:
//!
//! * `{"type":"span","name":…,"parent":…|null,"start_us":N,"dur_us":N}` —
//!   one completed scoped timer;
//! * `{"type":"event","name":…,"t_us":N,"fields":{…}}` — one point-in-time
//!   occurrence with numeric fields (an epoch finishing, a rollback, a
//!   checkpoint-write failure).
//!
//! A metrics file ends with exactly one
//! `{"type":"snapshot",…}` line (see [`crate::metrics::MetricsSnapshot`]).
//! `qdgnn-obs-validate` checks files against exactly this schema.

use crate::json;

/// One recorded event.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A completed span (scoped timer).
    Span {
        /// Span name, e.g. `serve.forward`.
        name: String,
        /// Name of the enclosing span on the same thread, if any.
        parent: Option<String>,
        /// Start timestamp, µs since the registry clock's origin.
        start_us: u64,
        /// Duration in µs.
        dur_us: u64,
    },
    /// A point-in-time occurrence with numeric payload fields.
    Point {
        /// Event name, e.g. `train.epoch`.
        name: String,
        /// Timestamp, µs since the registry clock's origin.
        t_us: u64,
        /// Numeric payload, in insertion order.
        fields: Vec<(String, f64)>,
    },
}

impl Event {
    /// The event's name.
    pub fn name(&self) -> &str {
        match self {
            Event::Span { name, .. } | Event::Point { name, .. } => name,
        }
    }

    /// Serializes as one JSONL line.
    pub fn to_json(&self) -> String {
        match self {
            Event::Span { name, parent, start_us, dur_us } => format!(
                "{{\"type\":\"span\",\"name\":{},\"parent\":{},\"start_us\":{},\"dur_us\":{}}}",
                json::escape(name),
                match parent {
                    Some(p) => json::escape(p),
                    None => "null".to_string(),
                },
                start_us,
                dur_us
            ),
            Event::Point { name, t_us, fields } => {
                let mut out = format!(
                    "{{\"type\":\"event\",\"name\":{},\"t_us\":{},\"fields\":{{",
                    json::escape(name),
                    t_us
                );
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("{}:{}", json::escape(k), json::num(*v)));
                }
                out.push_str("}}");
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};

    #[test]
    fn span_event_serializes_to_schema() {
        let e = Event::Span {
            name: "serve.forward".into(),
            parent: Some("serve.query".into()),
            start_us: 120,
            dur_us: 35,
        };
        let v = parse(&e.to_json()).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("span"));
        assert_eq!(v.get("name").unwrap().as_str(), Some("serve.forward"));
        assert_eq!(v.get("parent").unwrap().as_str(), Some("serve.query"));
        assert_eq!(v.get("start_us").unwrap().as_num(), Some(120.0));
        assert_eq!(v.get("dur_us").unwrap().as_num(), Some(35.0));
    }

    #[test]
    fn root_span_has_null_parent() {
        let e = Event::Span { name: "a".into(), parent: None, start_us: 0, dur_us: 1 };
        let v = parse(&e.to_json()).unwrap();
        assert_eq!(v.get("parent"), Some(&Value::Null));
    }

    #[test]
    fn point_event_serializes_fields() {
        let e = Event::Point {
            name: "train.epoch".into(),
            t_us: 9,
            fields: vec![("epoch".into(), 3.0), ("loss".into(), 0.5)],
        };
        let v = parse(&e.to_json()).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("event"));
        let fields = v.get("fields").unwrap().as_obj().unwrap();
        assert_eq!(fields["epoch"].as_num(), Some(3.0));
        assert_eq!(fields["loss"].as_num(), Some(0.5));
    }
}
