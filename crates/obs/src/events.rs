//! Structured events: the JSONL stream a profiled run emits.
//!
//! Three event shapes, one per JSONL line:
//!
//! * `{"type":"span","name":…,"parent":…|null,"start_us":N,"dur_us":N}` —
//!   one completed scoped timer;
//! * `{"type":"event","name":…,"t_us":N,"fields":{…}}` — one point-in-time
//!   occurrence with numeric fields (an epoch finishing, a rollback, a
//!   checkpoint-write failure);
//! * `{"type":"trace","name":…,"t_us":N,"labels":{…},"fields":{…}}` — one
//!   request-scoped trace record: string labels (tenant, outcome) plus
//!   numeric phase timings for a single served request.
//!
//! A metrics file ends with exactly one
//! `{"type":"snapshot",…}` line (see [`crate::metrics::MetricsSnapshot`]).
//! `qdgnn-obs-validate` checks files against exactly this schema.

use crate::json;

/// One recorded event.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A completed span (scoped timer).
    Span {
        /// Span name, e.g. `serve.forward`.
        name: String,
        /// Name of the enclosing span on the same thread, if any.
        parent: Option<String>,
        /// Start timestamp, µs since the registry clock's origin.
        start_us: u64,
        /// Duration in µs.
        dur_us: u64,
    },
    /// A point-in-time occurrence with numeric payload fields.
    Point {
        /// Event name, e.g. `train.epoch`.
        name: String,
        /// Timestamp, µs since the registry clock's origin.
        t_us: u64,
        /// Numeric payload, in insertion order.
        fields: Vec<(String, f64)>,
    },
    /// A request-scoped trace record: one terminal disposition of one
    /// served request, carrying string labels and numeric phase timings.
    Trace {
        /// Trace name, e.g. `serve.request`.
        name: String,
        /// Timestamp, µs since the registry clock's origin.
        t_us: u64,
        /// String labels (bounded-cardinality keys: tenant, outcome).
        labels: Vec<(String, String)>,
        /// Numeric payload, in insertion order.
        fields: Vec<(String, f64)>,
    },
}

impl Event {
    /// The event's name.
    pub fn name(&self) -> &str {
        match self {
            Event::Span { name, .. } | Event::Point { name, .. } | Event::Trace { name, .. } => {
                name
            }
        }
    }

    /// Serializes as one JSONL line.
    pub fn to_json(&self) -> String {
        match self {
            Event::Span { name, parent, start_us, dur_us } => format!(
                "{{\"type\":\"span\",\"name\":{},\"parent\":{},\"start_us\":{},\"dur_us\":{}}}",
                json::escape(name),
                match parent {
                    Some(p) => json::escape(p),
                    None => "null".to_string(),
                },
                start_us,
                dur_us
            ),
            Event::Point { name, t_us, fields } => {
                let mut out = format!(
                    "{{\"type\":\"event\",\"name\":{},\"t_us\":{},\"fields\":{{",
                    json::escape(name),
                    t_us
                );
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("{}:{}", json::escape(k), json::num(*v)));
                }
                out.push_str("}}");
                out
            }
            Event::Trace { name, t_us, labels, fields } => {
                let mut out = format!(
                    "{{\"type\":\"trace\",\"name\":{},\"t_us\":{},\"labels\":{{",
                    json::escape(name),
                    t_us
                );
                for (i, (k, v)) in labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("{}:{}", json::escape(k), json::escape(v)));
                }
                out.push_str("},\"fields\":{");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("{}:{}", json::escape(k), json::num(*v)));
                }
                out.push_str("}}");
                out
            }
        }
    }

    /// Parses one JSONL line back into an [`Event`].
    ///
    /// Accepts exactly the three shapes [`Event::to_json`] emits
    /// (`"type":"span"`, `"type":"event"` and `"type":"trace"`); anything
    /// else — including a `"type":"snapshot"` line — is an error. Field
    /// and label order is not preserved (the JSON object is unordered),
    /// so a `to_json`/`from_json` round-trip is exact for spans and
    /// order-normalized for points and traces.
    pub fn from_json(line: &str) -> Result<Event, String> {
        let v = json::parse(line)?;
        let kind = v
            .get("type")
            .and_then(|t| t.as_str())
            .ok_or_else(|| "missing \"type\"".to_string())?;
        let name = v
            .get("name")
            .and_then(|n| n.as_str())
            .ok_or_else(|| "missing \"name\"".to_string())?
            .to_string();
        let req_u64 = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(|x| x.as_num())
                .filter(|n| n.is_finite() && *n >= 0.0)
                .map(|n| n as u64)
                .ok_or_else(|| format!("missing or invalid \"{key}\""))
        };
        match kind {
            "span" => {
                let parent = match v.get("parent") {
                    None | Some(json::Value::Null) => None,
                    Some(p) => Some(
                        p.as_str()
                            .ok_or_else(|| "\"parent\" must be a string or null".to_string())?
                            .to_string(),
                    ),
                };
                Ok(Event::Span {
                    name,
                    parent,
                    start_us: req_u64("start_us")?,
                    dur_us: req_u64("dur_us")?,
                })
            }
            "event" => {
                let fields = match v.get("fields") {
                    None => Vec::new(),
                    Some(f) => f
                        .as_obj()
                        .ok_or_else(|| "\"fields\" must be an object".to_string())?
                        .iter()
                        .map(|(k, fv)| {
                            fv.as_num()
                                .map(|n| (k.clone(), n))
                                .ok_or_else(|| format!("field \"{k}\" must be numeric"))
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                };
                Ok(Event::Point { name, t_us: req_u64("t_us")?, fields })
            }
            "trace" => {
                let labels = v
                    .get("labels")
                    .ok_or_else(|| "trace missing \"labels\"".to_string())?
                    .as_obj()
                    .ok_or_else(|| "\"labels\" must be an object".to_string())?
                    .iter()
                    .map(|(k, lv)| {
                        lv.as_str()
                            .map(|s| (k.clone(), s.to_string()))
                            .ok_or_else(|| format!("label \"{k}\" must be a string"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let fields = v
                    .get("fields")
                    .ok_or_else(|| "trace missing \"fields\"".to_string())?
                    .as_obj()
                    .ok_or_else(|| "\"fields\" must be an object".to_string())?
                    .iter()
                    .map(|(k, fv)| {
                        fv.as_num()
                            .map(|n| (k.clone(), n))
                            .ok_or_else(|| format!("field \"{k}\" must be numeric"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Event::Trace { name, t_us: req_u64("t_us")?, labels, fields })
            }
            other => Err(format!("not an event line (type {other:?})")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};

    #[test]
    fn span_event_serializes_to_schema() {
        let e = Event::Span {
            name: "serve.forward".into(),
            parent: Some("serve.query".into()),
            start_us: 120,
            dur_us: 35,
        };
        let v = parse(&e.to_json()).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("span"));
        assert_eq!(v.get("name").unwrap().as_str(), Some("serve.forward"));
        assert_eq!(v.get("parent").unwrap().as_str(), Some("serve.query"));
        assert_eq!(v.get("start_us").unwrap().as_num(), Some(120.0));
        assert_eq!(v.get("dur_us").unwrap().as_num(), Some(35.0));
    }

    #[test]
    fn root_span_has_null_parent() {
        let e = Event::Span { name: "a".into(), parent: None, start_us: 0, dur_us: 1 };
        let v = parse(&e.to_json()).unwrap();
        assert_eq!(v.get("parent"), Some(&Value::Null));
    }

    #[test]
    fn from_json_round_trips_spans() {
        let e = Event::Span {
            name: "serve.bfs".into(),
            parent: Some("serve.query".into()),
            start_us: 7,
            dur_us: 21,
        };
        assert_eq!(Event::from_json(&e.to_json()).unwrap(), e);
        let root = Event::Span { name: "r".into(), parent: None, start_us: 0, dur_us: 3 };
        assert_eq!(Event::from_json(&root.to_json()).unwrap(), root);
    }

    #[test]
    fn from_json_round_trips_points_modulo_field_order() {
        let e = Event::Point {
            name: "train.epoch".into(),
            t_us: 11,
            fields: vec![("loss".into(), 0.5), ("epoch".into(), 3.0)],
        };
        match Event::from_json(&e.to_json()).unwrap() {
            Event::Point { name, t_us, mut fields } => {
                assert_eq!(name, "train.epoch");
                assert_eq!(t_us, 11);
                fields.sort_by(|a, b| a.0.cmp(&b.0));
                assert_eq!(fields, vec![("epoch".into(), 3.0), ("loss".into(), 0.5)]);
            }
            other => panic!("expected point, got {other:?}"),
        }
    }

    #[test]
    fn trace_event_serializes_to_schema() {
        let e = Event::Trace {
            name: "serve.request".into(),
            t_us: 42,
            labels: vec![("outcome".into(), "answered".into()), ("tenant".into(), "acme".into())],
            fields: vec![("queue_wait_us".into(), 7.0), ("span_us".into(), 12.0)],
        };
        let v = parse(&e.to_json()).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("trace"));
        assert_eq!(v.get("name").unwrap().as_str(), Some("serve.request"));
        assert_eq!(v.get("t_us").unwrap().as_num(), Some(42.0));
        let labels = v.get("labels").unwrap().as_obj().unwrap();
        assert_eq!(labels["outcome"].as_str(), Some("answered"));
        assert_eq!(labels["tenant"].as_str(), Some("acme"));
        let fields = v.get("fields").unwrap().as_obj().unwrap();
        assert_eq!(fields["queue_wait_us"].as_num(), Some(7.0));
        assert_eq!(fields["span_us"].as_num(), Some(12.0));
    }

    #[test]
    fn from_json_round_trips_traces_modulo_order() {
        let e = Event::Trace {
            name: "serve.request".into(),
            t_us: 9,
            labels: vec![("outcome".into(), "shed_deadline".into())],
            fields: vec![("span_us".into(), 3.0)],
        };
        match Event::from_json(&e.to_json()).unwrap() {
            Event::Trace { name, t_us, labels, fields } => {
                assert_eq!(name, "serve.request");
                assert_eq!(t_us, 9);
                assert_eq!(labels, vec![("outcome".into(), "shed_deadline".into())]);
                assert_eq!(fields, vec![("span_us".into(), 3.0)]);
            }
            other => panic!("expected trace, got {other:?}"),
        }
        // Non-string labels and non-numeric fields are rejected.
        assert!(Event::from_json(
            "{\"type\":\"trace\",\"name\":\"x\",\"t_us\":0,\"labels\":{\"k\":1},\"fields\":{}}"
        )
        .is_err());
        assert!(Event::from_json(
            "{\"type\":\"trace\",\"name\":\"x\",\"t_us\":0,\"labels\":{},\"fields\":{\"k\":\"v\"}}"
        )
        .is_err());
        assert!(Event::from_json("{\"type\":\"trace\",\"name\":\"x\",\"t_us\":0}").is_err());
    }

    #[test]
    fn from_json_rejects_snapshot_and_garbage() {
        assert!(Event::from_json("{\"type\":\"snapshot\",\"counters\":{}}").is_err());
        assert!(Event::from_json("not json").is_err());
        assert!(Event::from_json("{\"type\":\"span\",\"name\":\"x\"}").is_err());
    }

    #[test]
    fn point_event_serializes_fields() {
        let e = Event::Point {
            name: "train.epoch".into(),
            t_us: 9,
            fields: vec![("epoch".into(), 3.0), ("loss".into(), 0.5)],
        };
        let v = parse(&e.to_json()).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("event"));
        let fields = v.get("fields").unwrap().as_obj().unwrap();
        assert_eq!(fields["epoch"].as_num(), Some(3.0));
        assert_eq!(fields["loss"].as_num(), Some(0.5));
    }
}
