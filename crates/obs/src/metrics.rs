//! Metric primitives and snapshots.
//!
//! Three metric kinds, all lock-free to record once created:
//!
//! * **counters** — monotonically increasing `u64`s;
//! * **gauges** — last-write-wins `f64`s (stored as bit patterns);
//! * **histograms** — fixed log₂ buckets over non-negative values with
//!   exact count/sum/min/max and bucket-interpolated p50/p95/p99.
//!
//! A [`MetricsSnapshot`] is the point-in-time export type: it serializes
//! to a single JSONL line (`{"type":"snapshot",…}`) and to a
//! Prometheus-style text exposition, and parses back from the JSONL form
//! for round-trip tests and schema validation.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::json::{self, Value};

/// Number of log₂ buckets; the last bucket is the +∞ overflow.
pub const NUM_BUCKETS: usize = 40;

/// Upper bound (inclusive) of bucket `i`: `2^i`, except the last bucket
/// which is unbounded.
fn bucket_upper(i: usize) -> f64 {
    2f64.powi(i as i32)
}

/// A fixed-bucket histogram over non-negative f64 samples.
///
/// Buckets are `[0,1], (1,2], (2,4], … (2^38, 2^39], (2^39, ∞)`; for
/// latency metrics the unit is microseconds, so the range spans 1 µs to
/// ~9 minutes before overflowing. Recording is wait-free per bucket;
/// `sum`/`min`/`max` use CAS loops.
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    /// Sum of samples, as f64 bits.
    sum_bits: AtomicU64,
    /// Minimum sample, as f64 bits (f64::INFINITY when empty).
    min_bits: AtomicU64,
    /// Maximum sample, as f64 bits (f64::NEG_INFINITY when empty).
    max_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    fn bucket_index(v: f64) -> usize {
        if v <= 1.0 {
            0
        } else {
            (v.log2().ceil() as usize).min(NUM_BUCKETS - 1)
        }
    }

    /// Records one sample (negative and non-finite samples clamp to 0).
    pub fn observe(&self, v: f64) {
        let v = if v.is_finite() && v > 0.0 { v } else { 0.0 };
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&self.sum_bits, v);
        atomic_f64_min(&self.min_bits, v);
        atomic_f64_max(&self.max_bits, v);
    }

    /// Total number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Snapshots this histogram under `name`.
    pub fn snapshot(&self, name: &str) -> HistSnapshot {
        let buckets: Vec<u64> =
            self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count = self.count.load(Ordering::Relaxed);
        let sum = f64::from_bits(self.sum_bits.load(Ordering::Relaxed));
        let min = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        let max = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        let mut snap = HistSnapshot {
            name: name.to_string(),
            count,
            sum,
            min: if count == 0 { 0.0 } else { min },
            max: if count == 0 { 0.0 } else { max },
            p50: 0.0,
            p95: 0.0,
            p99: 0.0,
            buckets,
        };
        snap.p50 = snap.quantile(0.50);
        snap.p95 = snap.quantile(0.95);
        snap.p99 = snap.quantile(0.99);
        snap
    }
}

fn atomic_f64_add(bits: &AtomicU64, v: f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

fn atomic_f64_min(bits: &AtomicU64, v: f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    while v < f64::from_bits(cur) {
        match bits.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

fn atomic_f64_max(bits: &AtomicU64, v: f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    while v > f64::from_bits(cur) {
        match bits.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// Point-in-time state of one histogram.
#[derive(Clone, Debug, PartialEq)]
pub struct HistSnapshot {
    /// Metric name.
    pub name: String,
    /// Sample count.
    pub count: u64,
    /// Exact sum of samples.
    pub sum: f64,
    /// Exact minimum sample (0 when empty).
    pub min: f64,
    /// Exact maximum sample (0 when empty).
    pub max: f64,
    /// Bucket-interpolated median.
    pub p50: f64,
    /// Bucket-interpolated 95th percentile.
    pub p95: f64,
    /// Bucket-interpolated 99th percentile.
    pub p99: f64,
    /// Per-bucket counts (see [`Histogram`] for bounds).
    pub buckets: Vec<u64>,
}

impl HistSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimates quantile `q` (0..=1) by linear interpolation within the
    /// target bucket, clamped to the exact observed `[min, max]`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if (next as f64) >= rank {
                let lo = if i == 0 { 0.0 } else { bucket_upper(i - 1) };
                let hi = bucket_upper(i.min(NUM_BUCKETS - 2));
                let frac = ((rank - cum as f64) / c as f64).clamp(0.0, 1.0);
                let est = lo + frac * (hi - lo);
                return est.clamp(self.min, self.max);
            }
            cum = next;
        }
        self.max
    }
}

/// Point-in-time export of the whole registry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram snapshots, sorted by name.
    pub hists: Vec<HistSnapshot>,
}

impl MetricsSnapshot {
    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a histogram snapshot by name.
    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.iter().find(|h| h.name == name)
    }

    /// Serializes as one JSONL line: `{"type":"snapshot",…}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"type\":\"snapshot\",\"counters\":{");
        for (i, (n, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json::escape(n), v));
        }
        out.push_str("},\"gauges\":{");
        for (i, (n, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json::escape(n), json::num(*v)));
        }
        out.push_str("},\"histograms\":{");
        for (i, h) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}:{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[{}]}}",
                json::escape(&h.name),
                h.count,
                json::num(h.sum),
                json::num(h.min),
                json::num(h.max),
                json::num(h.p50),
                json::num(h.p95),
                json::num(h.p99),
                h.buckets
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ));
        }
        out.push_str("}}");
        out
    }

    /// Parses the JSONL form back (inverse of [`MetricsSnapshot::to_json`]
    /// up to f64 formatting).
    pub fn from_json(line: &str) -> Result<MetricsSnapshot, String> {
        let v = json::parse(line)?;
        if v.get("type").and_then(Value::as_str) != Some("snapshot") {
            return Err("not a snapshot line".into());
        }
        let mut snap = MetricsSnapshot::default();
        let counters = v.get("counters").and_then(Value::as_obj).ok_or("missing counters")?;
        for (name, val) in counters {
            let n = val.as_num().ok_or_else(|| format!("counter `{name}` not a number"))?;
            snap.counters.push((name.clone(), n as u64));
        }
        let gauges = v.get("gauges").and_then(Value::as_obj).ok_or("missing gauges")?;
        for (name, val) in gauges {
            let n = val.as_num().ok_or_else(|| format!("gauge `{name}` not a number"))?;
            snap.gauges.push((name.clone(), n));
        }
        let hists = v.get("histograms").and_then(Value::as_obj).ok_or("missing histograms")?;
        for (name, val) in hists {
            let field = |k: &str| -> Result<f64, String> {
                val.get(k)
                    .and_then(Value::as_num)
                    .ok_or_else(|| format!("histogram `{name}` missing `{k}`"))
            };
            let buckets = val
                .get("buckets")
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("histogram `{name}` missing `buckets`"))?
                .iter()
                .map(|b| b.as_num().map(|n| n as u64).ok_or("bucket not a number"))
                .collect::<Result<Vec<u64>, _>>()?;
            snap.hists.push(HistSnapshot {
                name: name.clone(),
                count: field("count")? as u64,
                sum: field("sum")?,
                min: field("min")?,
                max: field("max")?,
                p50: field("p50")?,
                p95: field("p95")?,
                p99: field("p99")?,
                buckets,
            });
        }
        Ok(snap)
    }

    /// Prometheus-style text exposition (metric names have `.` mapped to
    /// `_` and a `qdgnn_` prefix; histograms expose `_count`, `_sum` and
    /// cumulative `_bucket{le=…}` series).
    ///
    /// Labeled series — registry keys of the form `base{k="v",…}` from
    /// `counter_with`/`observe_with` — keep their label block verbatim
    /// (only the base is sanitized), and all series of one base are
    /// grouped under a single `# TYPE` line as the exposition format
    /// requires. Histogram labels are merged with the `le` bound.
    pub fn to_prometheus(&self) -> String {
        fn prom_name(name: &str) -> String {
            let mut out = String::from("qdgnn_");
            for c in name.chars() {
                out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
            }
            out
        }
        /// Splits an encoded series key into `(sanitized base, label block)`.
        fn split_series(name: &str) -> (String, Option<&str>) {
            match name.find('{') {
                Some(i) => (prom_name(&name[..i]), Some(&name[i..])),
                None => (prom_name(name), None),
            }
        }
        /// One base's rows: each is `(label block, payload)`.
        type SeriesRows<'a, T> = Vec<(Option<&'a str>, T)>;
        /// Groups `(name, payload)` rows by sanitized base, preserving
        /// first-seen base order and per-base row order.
        fn group_by_base<'a, T>(
            rows: impl Iterator<Item = (&'a str, T)>,
        ) -> Vec<(String, SeriesRows<'a, T>)> {
            let mut groups: Vec<(String, SeriesRows<'a, T>)> = Vec::new();
            for (name, payload) in rows {
                let (base, labels) = split_series(name);
                match groups.iter_mut().find(|(b, _)| *b == base) {
                    Some((_, g)) => g.push((labels, payload)),
                    None => groups.push((base, vec![(labels, payload)])),
                }
            }
            groups
        }
        let mut out = String::new();
        for (base, rows) in group_by_base(self.counters.iter().map(|(n, v)| (n.as_str(), *v))) {
            out.push_str(&format!("# TYPE {base} counter\n"));
            for (labels, v) in rows {
                out.push_str(&format!("{base}{} {v}\n", labels.unwrap_or("")));
            }
        }
        for (base, rows) in group_by_base(self.gauges.iter().map(|(n, v)| (n.as_str(), *v))) {
            out.push_str(&format!("# TYPE {base} gauge\n"));
            for (labels, v) in rows {
                out.push_str(&format!("{base}{} {}\n", labels.unwrap_or(""), json::num(v)));
            }
        }
        for (base, rows) in group_by_base(self.hists.iter().map(|h| (h.name.as_str(), h))) {
            out.push_str(&format!("# TYPE {base} histogram\n"));
            for (labels, h) in rows {
                // `le` joins the series' own labels inside one block.
                let inner = labels.map(|l| &l[1..l.len() - 1]);
                let bucket_labels = |le: &str| match inner {
                    Some(i) => format!("{{{i},le=\"{le}\"}}"),
                    None => format!("{{le=\"{le}\"}}"),
                };
                let suffix = labels.unwrap_or("");
                let mut cum = 0u64;
                for (i, &c) in h.buckets.iter().enumerate() {
                    cum += c;
                    // Skip long runs of empty high buckets for
                    // readability; always emit buckets that carry data
                    // and the +Inf bound.
                    if c == 0 && i != 0 {
                        continue;
                    }
                    let le = if i == NUM_BUCKETS - 1 {
                        "+Inf".to_string()
                    } else {
                        json::num(bucket_upper(i))
                    };
                    out.push_str(&format!("{base}_bucket{} {cum}\n", bucket_labels(&le)));
                }
                out.push_str(&format!("{base}_bucket{} {}\n", bucket_labels("+Inf"), h.count));
                out.push_str(&format!("{base}_sum{suffix} {}\n", json::num(h.sum)));
                out.push_str(&format!("{base}_count{suffix} {}\n", h.count));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(values: impl IntoIterator<Item = f64>) -> HistSnapshot {
        let h = Histogram::new();
        for v in values {
            h.observe(v);
        }
        h.snapshot("test")
    }

    #[test]
    fn quantiles_of_uniform_distribution() {
        // 1..=1000 uniform: interpolation within log2 buckets recovers
        // quantiles to within a few percent because the distribution is
        // uniform within each bucket.
        let s = filled((1..=1000).map(|i| i as f64));
        assert_eq!(s.count, 1000);
        assert!((s.mean() - 500.5).abs() < 1e-9);
        assert!((s.p50 - 500.0).abs() / 500.0 < 0.05, "p50={}", s.p50);
        assert!((s.p95 - 950.0).abs() / 950.0 < 0.05, "p95={}", s.p95);
        assert!((s.p99 - 990.0).abs() / 990.0 < 0.05, "p99={}", s.p99);
    }

    #[test]
    fn quantiles_of_point_mass() {
        let s = filled(std::iter::repeat_n(42.0, 100));
        // Every sample in one bucket, clamped to exact min/max.
        assert!((s.p50 - 42.0).abs() < 1e-9, "p50={}", s.p50);
        assert!((s.p99 - 42.0).abs() < 1e-9, "p99={}", s.p99);
        assert!((s.min - 42.0).abs() < 1e-9);
        assert!((s.max - 42.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_of_bimodal_distribution() {
        // 90 fast samples at ~10, 10 slow at ~10000: p50 must sit in the
        // fast mode, p95+ in the slow one.
        let s = filled(
            (0..90).map(|_| 10.0).chain((0..10).map(|_| 10_000.0)),
        );
        assert!(s.p50 <= 16.0, "p50={}", s.p50);
        assert!(s.p95 >= 5_000.0, "p95={}", s.p95);
        assert!(s.p99 >= 5_000.0, "p99={}", s.p99);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = filled([]);
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn negative_and_nonfinite_samples_clamp_to_zero() {
        let s = filled([-5.0, f64::NAN, f64::INFINITY, 8.0]);
        assert_eq!(s.count, 4);
        assert!((s.max - 8.0).abs() < 1e-9);
        assert!(s.min.abs() < 1e-9);
    }

    #[test]
    fn snapshot_json_round_trip() {
        let h = Histogram::new();
        for v in [3.0, 700.0, 12.5] {
            h.observe(v);
        }
        let snap = MetricsSnapshot {
            counters: vec![("serve.queries".into(), 17)],
            gauges: vec![("train.loss".into(), 0.125)],
            hists: vec![h.snapshot("serve.forward")],
        };
        let line = snap.to_json();
        let back = MetricsSnapshot::from_json(&line).unwrap();
        assert_eq!(back.counter("serve.queries"), Some(17));
        assert_eq!(back.gauge("train.loss"), Some(0.125));
        let hb = back.hist("serve.forward").unwrap();
        let ha = snap.hist("serve.forward").unwrap();
        assert_eq!(hb.count, ha.count);
        assert_eq!(hb.buckets, ha.buckets);
        assert!((hb.sum - ha.sum).abs() < 1e-9);
        assert!((hb.p95 - ha.p95).abs() < 1e-9);
        // Full-struct equality up to the sort order from_json normalizes to.
        assert_eq!(back.to_json(), line);
    }

    #[test]
    fn from_json_rejects_non_snapshot_lines() {
        assert!(MetricsSnapshot::from_json("{\"type\":\"span\"}").is_err());
        assert!(MetricsSnapshot::from_json("not json").is_err());
    }

    #[test]
    fn prometheus_exposition_contains_all_series() {
        let h = Histogram::new();
        h.observe(100.0);
        let snap = MetricsSnapshot {
            counters: vec![("serve.queries".into(), 2)],
            gauges: vec![("train.lr".into(), 1e-3)],
            hists: vec![h.snapshot("serve.bfs")],
        };
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE qdgnn_serve_queries counter"));
        assert!(text.contains("qdgnn_serve_queries 2"));
        assert!(text.contains("# TYPE qdgnn_train_lr gauge"));
        assert!(text.contains("# TYPE qdgnn_serve_bfs histogram"));
        assert!(text.contains("qdgnn_serve_bfs_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("qdgnn_serve_bfs_count 1"));
    }

    #[test]
    fn prometheus_exposition_renders_labeled_series_grouped() {
        let h = Histogram::new();
        h.observe(3.0);
        let snap = MetricsSnapshot {
            counters: vec![
                ("serve.request{outcome=\"answered\"}".into(), 5),
                // A sibling base name sorts between the bare base and its
                // labeled series; grouping must still emit one TYPE line
                // per base with all its series adjacent.
                ("serve.request{outcome=\"shed\"}".into(), 2),
                ("serve.requests_total".into(), 7),
            ],
            gauges: vec![("serve.degraded_mode".into(), 1.0)],
            hists: vec![h.snapshot("serve.request_span{outcome=\"answered\"}")],
        };
        let text = snap.to_prometheus();
        assert_eq!(text.matches("# TYPE qdgnn_serve_request counter").count(), 1);
        assert!(text.contains("qdgnn_serve_request{outcome=\"answered\"} 5\n"));
        assert!(text.contains("qdgnn_serve_request{outcome=\"shed\"} 2\n"));
        assert!(text.contains("# TYPE qdgnn_serve_requests_total counter"));
        assert!(text.contains("qdgnn_serve_requests_total 7\n"));
        assert!(text.contains("# TYPE qdgnn_serve_request_span histogram"));
        assert!(
            text.contains("qdgnn_serve_request_span_bucket{outcome=\"answered\",le=\"+Inf\"} 1"),
            "{text}"
        );
        assert!(text.contains("qdgnn_serve_request_span_sum{outcome=\"answered\"} 3"));
        assert!(text.contains("qdgnn_serve_request_span_count{outcome=\"answered\"} 1"));
        // The two labeled counter series share one group: both value
        // lines sit between the TYPE line and the next TYPE line.
        let type_at = text.find("# TYPE qdgnn_serve_request counter").unwrap();
        let next_type = text[type_at + 1..].find("# TYPE").unwrap() + type_at + 1;
        let group = &text[type_at..next_type];
        assert!(group.contains("outcome=\"answered\"") && group.contains("outcome=\"shed\""));
    }

    #[test]
    fn concurrent_observes_lose_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let mut joins = Vec::new();
        for t in 0..4 {
            let h = std::sync::Arc::clone(&h);
            joins.push(std::thread::spawn(move || {
                for i in 0..10_000 {
                    h.observe((t * 10_000 + i) as f64 % 977.0);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
        let s = h.snapshot("c");
        assert_eq!(s.buckets.iter().sum::<u64>(), 40_000);
    }
}
