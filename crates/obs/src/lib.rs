//! # qdgnn-obs — structured tracing and metrics for QD-GNN
//!
//! Dependency-free observability layer shared by training, serving and
//! the experiment harness:
//!
//! * **spans** — RAII scoped timers with per-thread parent nesting,
//!   created via [`span!`];
//! * **metrics** — named counters, gauges and fixed-bucket histograms
//!   with p50/p95/p99 snapshots ([`metrics`]);
//! * **events** — an optional buffered JSONL stream of spans and point
//!   events for `--metrics-out` ([`events`]);
//! * **clock injection** — all timestamps come from a [`clock::Clock`]
//!   (monotonic by default, fake in tests), so instrumented code paths
//!   stay resume-deterministic.
//!
//! The whole layer is gated behind the `enabled` cargo feature. With the
//! feature off every API still exists but compiles to zero-sized no-ops
//! (`tests/overhead.rs` asserts this), so call sites are written once,
//! without `cfg`:
//!
//! ```
//! let _span = qdgnn_obs::span!("serve.forward");
//! qdgnn_obs::counter("serve.queries").inc();
//! qdgnn_obs::observe("serve.community_size", 12.0);
//! ```
//!
//! Data types ([`metrics::MetricsSnapshot`], [`events::Event`], the
//! [`json`] reader) are compiled unconditionally — only the global
//! registry and recording paths are gated — so snapshot files can be
//! parsed and validated from any build.
//!
//! Training-run observability rides on top: the run registry and
//! step-indexed series journal ([`runs`], [`series`]), the crash flight
//! recorder, and the live run dashboard served over the shared
//! dependency-free HTTP listener ([`httpd`]). These are explicit opt-in
//! (an experiment binary installs a recorder via `--run-dir`), not
//! hot-path instrumentation, so they too compile unconditionally.

#![warn(missing_docs)]

pub mod clock;
pub mod events;
pub mod folded;
pub mod httpd;
pub mod json;
pub mod metrics;
pub mod runs;
pub mod series;

pub mod names;

#[cfg(feature = "enabled")]
mod registry;
#[cfg(feature = "enabled")]
pub use registry::{
    counter, counter_with, event, events_recorded, gauge, is_enabled, mem_alloc, mem_free,
    mem_live_bytes, mem_peak_bytes, now_micros, observe, observe_with, op_timer, record_events,
    reset, reset_mem_peak, set_clock, snapshot, take_events, trace, write_jsonl, Counter, Gauge,
    OpTimer, SpanGuard, MAX_LABEL_SETS,
};

#[cfg(not(feature = "enabled"))]
mod disabled;
#[cfg(not(feature = "enabled"))]
pub use disabled::{
    counter, counter_with, event, events_recorded, gauge, is_enabled, mem_alloc, mem_free,
    mem_live_bytes, mem_peak_bytes, now_micros, observe, observe_with, op_timer, record_events,
    reset, reset_mem_peak, set_clock, snapshot, take_events, trace, write_jsonl, Counter, Gauge,
    OpTimer, SpanGuard, MAX_LABEL_SETS,
};

/// Whether the instrumentation layer is compiled in (`enabled` feature).
///
/// `const`, so `if qdgnn_obs::enabled() { … }` folds away entirely in
/// disabled builds — use it to guard computations done *only* to feed a
/// metric (e.g. gradient norms).
pub const fn enabled() -> bool {
    is_enabled()
}

/// Starts a scoped span timer; the returned guard records the span on
/// drop. Bind it to a named `_`-prefixed local so it lives to the end of
/// the scope:
///
/// ```
/// fn forward() {
///     let _span = qdgnn_obs::span!("serve.forward");
///     // … timed work …
/// }
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
}
