//! Collapsed-stack ("folded") flamegraph export.
//!
//! Reconstructs the span tree from a recorded event stream and emits the
//! folded format understood by inferno, speedscope and the original
//! FlameGraph scripts: one line per stack, frames joined by `;`,
//! followed by a space and a numeric value —
//!
//! ```text
//! serve.query 12
//! serve.query;serve.forward 340
//! ```
//!
//! **Reconstruction.** The registry buffers spans in *completion* order
//! (a child's guard drops before its parent's), and each span carries
//! the name of its enclosing span on the same thread. Walking the
//! stream in order, every completed-but-unadopted span is held pending;
//! when a span `S` completes, it adopts every pending span whose
//! recorded parent name is `S.name` and whose `[start, start+dur]`
//! interval lies inside `S`'s. Parent names alone are ambiguous (the
//! same span name recurs across queries and threads); the interval
//! check resolves the ambiguity to the enclosing instance. Spans whose
//! parent never completes — or that had none — become roots.
//!
//! **Values.** [`Mode::SelfTime`] (the flamegraph convention) writes
//! each stack's *exclusive* time: the span's duration minus its
//! children's, so a frame's rendered width is the sum of its subtree's
//! lines. [`Mode::TotalTime`] writes each stack's *inclusive* duration
//! instead — useful as a ranked listing of where time accumulates, but
//! note a parent's value already contains its children's, so these
//! lines must not be re-summed into a flamegraph.

use crate::events::Event;

/// What the folded value column means.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Exclusive time: span duration minus the durations of its
    /// children. The standard flamegraph semantics.
    SelfTime,
    /// Inclusive time: the span's own duration.
    TotalTime,
}

/// One reconstructed span with its adopted children.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanNode {
    /// Span name (one flamegraph frame).
    pub name: String,
    /// Start timestamp in µs.
    pub start_us: u64,
    /// Inclusive duration in µs.
    pub dur_us: u64,
    /// Nested spans, sorted by start time.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Exclusive (self) time: duration minus children's durations,
    /// floored at zero (clock granularity can make children sum past
    /// the parent).
    pub fn self_us(&self) -> u64 {
        let nested: u64 = self.children.iter().map(|c| c.dur_us).sum();
        self.dur_us.saturating_sub(nested)
    }
}

/// Rebuilds the span forest from an event stream (non-span events are
/// ignored). See the module docs for the adoption rules.
pub fn build_forest(events: &[Event]) -> Vec<SpanNode> {
    // (recorded parent name, completed node) — completion order.
    let mut pending: Vec<(Option<String>, SpanNode)> = Vec::new();
    for e in events {
        let Event::Span { name, parent, start_us, dur_us } = e else {
            continue;
        };
        let end = start_us.saturating_add(*dur_us);
        let mut node = SpanNode {
            name: name.clone(),
            start_us: *start_us,
            dur_us: *dur_us,
            children: Vec::new(),
        };
        let mut keep = Vec::with_capacity(pending.len());
        for (p_parent, p_node) in pending.drain(..) {
            let contained = p_node.start_us >= *start_us
                && p_node.start_us.saturating_add(p_node.dur_us) <= end;
            if p_parent.as_deref() == Some(name.as_str()) && contained {
                node.children.push(p_node);
            } else {
                keep.push((p_parent, p_node));
            }
        }
        pending = keep;
        node.children.sort_by_key(|c| c.start_us);
        pending.push((parent.clone(), node));
    }
    let mut roots: Vec<SpanNode> = pending.into_iter().map(|(_, n)| n).collect();
    roots.sort_by_key(|r| r.start_us);
    roots
}

fn frame(name: &str) -> String {
    // `;` separates frames and whitespace separates the value column;
    // span names are static identifiers so this never fires in practice.
    name.replace([';', ' ', '\t', '\n'], "_")
}

/// Flattens a forest into aggregated `(stack, value_us)` pairs, summing
/// duplicate stacks, sorted by stack for stable output.
pub fn fold(roots: &[SpanNode], mode: Mode) -> Vec<(String, u64)> {
    use std::collections::BTreeMap;
    let mut acc: BTreeMap<String, u64> = BTreeMap::new();
    fn walk(node: &SpanNode, prefix: &str, mode: Mode, acc: &mut std::collections::BTreeMap<String, u64>) {
        let path = if prefix.is_empty() {
            frame(&node.name)
        } else {
            format!("{prefix};{}", frame(&node.name))
        };
        let value = match mode {
            Mode::SelfTime => node.self_us(),
            Mode::TotalTime => node.dur_us,
        };
        *acc.entry(path.clone()).or_insert(0) += value;
        for c in &node.children {
            walk(c, &path, mode, acc);
        }
    }
    for r in roots {
        walk(r, "", mode, &mut acc);
    }
    acc.into_iter().collect()
}

/// Renders a forest as folded text, one `stack value` line per stack.
///
/// Zero-valued stacks are kept: they carry the tree shape (a parent
/// whose time is entirely inside its children still names a frame).
pub fn to_folded(roots: &[SpanNode], mode: Mode) -> String {
    let mut out = String::new();
    for (stack, value) in fold(roots, mode) {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    out
}

/// One node of a tree parsed back from folded text.
#[derive(Clone, Debug, PartialEq)]
pub struct FoldedNode {
    /// Frame name.
    pub name: String,
    /// The value recorded for exactly this stack (self time under
    /// [`Mode::SelfTime`] emission).
    pub self_us: u64,
    /// Child frames, in first-seen order.
    pub children: Vec<FoldedNode>,
}

impl FoldedNode {
    /// Inclusive value: this stack's value plus all descendants'. Under
    /// [`Mode::SelfTime`] emission this recovers each span's total
    /// duration.
    pub fn total_us(&self) -> u64 {
        self.self_us + self.children.iter().map(FoldedNode::total_us).sum::<u64>()
    }

    fn child_mut(&mut self, name: &str) -> &mut FoldedNode {
        if let Some(i) = self.children.iter().position(|c| c.name == name) {
            return &mut self.children[i];
        }
        self.children.push(FoldedNode {
            name: name.to_string(),
            self_us: 0,
            children: Vec::new(),
        });
        self.children.last_mut().expect("just pushed")
    }
}

/// Parses folded text back into a forest. Duplicate stacks sum; a stack
/// appearing only as a prefix of deeper stacks gets `self_us = 0`.
pub fn parse_folded(text: &str) -> Result<Vec<FoldedNode>, String> {
    let mut virtual_root =
        FoldedNode { name: String::new(), self_us: 0, children: Vec::new() };
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (stack, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value column: {line:?}", lineno + 1))?;
        let value: u64 = value
            .parse()
            .map_err(|_| format!("line {}: bad value {value:?}", lineno + 1))?;
        if stack.is_empty() {
            return Err(format!("line {}: empty stack", lineno + 1));
        }
        let mut node = &mut virtual_root;
        for f in stack.split(';') {
            if f.is_empty() {
                return Err(format!("line {}: empty frame in {stack:?}", lineno + 1));
            }
            node = node.child_mut(f);
        }
        node.self_us += value;
    }
    Ok(virtual_root.children)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, parent: Option<&str>, start_us: u64, dur_us: u64) -> Event {
        Event::Span {
            name: name.into(),
            parent: parent.map(str::to_string),
            start_us,
            dur_us,
        }
    }

    /// serve.query [0,100] ⊃ encode [0,10], forward [10,70], bfs [70,95]
    /// in completion order (children first).
    fn serve_events() -> Vec<Event> {
        vec![
            span("serve.encode", Some("serve.query"), 0, 10),
            span("serve.forward", Some("serve.query"), 10, 60),
            span("serve.bfs", Some("serve.query"), 70, 25),
            span("serve.query", None, 0, 100),
        ]
    }

    #[test]
    fn forest_reconstructs_nesting_from_completion_order() {
        let roots = build_forest(&serve_events());
        assert_eq!(roots.len(), 1);
        let q = &roots[0];
        assert_eq!(q.name, "serve.query");
        let kids: Vec<&str> = q.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(kids, ["serve.encode", "serve.forward", "serve.bfs"]);
        assert_eq!(q.self_us(), 100 - 10 - 60 - 25);
    }

    #[test]
    fn same_name_instances_resolve_by_interval() {
        // Two queries back-to-back: each child must attach to its own
        // enclosing instance, not the other one.
        let events = vec![
            span("serve.forward", Some("serve.query"), 0, 40),
            span("serve.query", None, 0, 50),
            span("serve.forward", Some("serve.query"), 60, 30),
            span("serve.query", None, 60, 35),
        ];
        let roots = build_forest(&events);
        assert_eq!(roots.len(), 2);
        assert_eq!(roots[0].children.len(), 1);
        assert_eq!(roots[0].children[0].dur_us, 40);
        assert_eq!(roots[1].children.len(), 1);
        assert_eq!(roots[1].children[0].dur_us, 30);
    }

    #[test]
    fn orphans_become_roots() {
        // A child whose parent span never completed (e.g. the run was
        // cut off) still shows up, as a root.
        let events = vec![span("serve.forward", Some("serve.query"), 0, 40)];
        let roots = build_forest(&events);
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "serve.forward");
    }

    #[test]
    fn self_time_folds_to_exclusive_values() {
        let folded = fold(&build_forest(&serve_events()), Mode::SelfTime);
        let get = |k: &str| folded.iter().find(|(s, _)| s == k).map(|(_, v)| *v);
        assert_eq!(get("serve.query"), Some(5));
        assert_eq!(get("serve.query;serve.forward"), Some(60));
        assert_eq!(get("serve.query;serve.encode"), Some(10));
        assert_eq!(get("serve.query;serve.bfs"), Some(25));
        // Flamegraph invariant: the lines sum to the root's total.
        let total: u64 = folded.iter().map(|(_, v)| v).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn total_time_folds_to_inclusive_values() {
        let folded = fold(&build_forest(&serve_events()), Mode::TotalTime);
        let get = |k: &str| folded.iter().find(|(s, _)| s == k).map(|(_, v)| *v);
        assert_eq!(get("serve.query"), Some(100));
        assert_eq!(get("serve.query;serve.forward"), Some(60));
    }

    #[test]
    fn duplicate_stacks_aggregate() {
        let events = vec![
            span("serve.forward", Some("serve.query"), 0, 40),
            span("serve.query", None, 0, 50),
            span("serve.forward", Some("serve.query"), 60, 30),
            span("serve.query", None, 60, 35),
        ];
        let folded = fold(&build_forest(&events), Mode::SelfTime);
        let get = |k: &str| folded.iter().find(|(s, _)| s == k).map(|(_, v)| *v);
        assert_eq!(get("serve.query;serve.forward"), Some(70));
        assert_eq!(get("serve.query"), Some(10 + 5));
    }

    #[test]
    fn parse_folded_inverts_to_folded() {
        let roots = build_forest(&serve_events());
        let text = to_folded(&roots, Mode::SelfTime);
        let parsed = parse_folded(&text).unwrap();
        assert_eq!(parsed.len(), 1);
        let q = &parsed[0];
        assert_eq!(q.name, "serve.query");
        assert_eq!(q.self_us, 5);
        assert_eq!(q.total_us(), 100, "self-time folding preserves totals");
        for c in &q.children {
            assert!(c.total_us() <= q.total_us(), "child exceeds parent");
        }
    }

    #[test]
    fn parse_folded_rejects_malformed_lines() {
        assert!(parse_folded("no_value_column\n").is_err());
        assert!(parse_folded("a;b notanumber\n").is_err());
        assert!(parse_folded(";a 3\n").is_err());
        assert!(parse_folded(" 3\n").is_err());
    }
}
