//! The checked-in run fixtures under `tests/fixtures/runs/` are the
//! regression contract for `qdgnn-obs-runs diff`: run-000001 is the
//! baseline, run-000002 a seeded ×2 final-loss regression. CI runs the
//! binary over the same fixtures and requires a nonzero exit.

use std::path::PathBuf;

use qdgnn_obs::runs::{list_runs, RunManifest};
use qdgnn_obs::series::{self, DiffVerdict, SeriesStore};

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/runs")
}

fn load(id: &str) -> SeriesStore {
    let path = fixture_root().join(id).join("series.ndjson");
    let text = std::fs::read_to_string(&path).expect("fixture journal");
    SeriesStore::from_ndjson(&text).expect("fixture journal validator-clean")
}

#[test]
fn fixture_runs_are_schema_valid() {
    let runs = list_runs(&fixture_root());
    assert_eq!(
        runs.iter().map(|(id, _)| id.as_str()).collect::<Vec<_>>(),
        ["run-000001", "run-000002"]
    );
    for (id, dir) in runs {
        let text = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
        let m = RunManifest::from_json(text.trim()).expect("fixture manifest parses");
        assert_eq!(m.id, id);
        load(&id);
    }
}

#[test]
fn seeded_regression_fixture_fails_the_diff_gate() {
    let base = load("run-000001");
    let diffs = series::diff_stores(&base, &load("run-000002"));
    assert_eq!(series::overall(&diffs), DiffVerdict::Fail, "{diffs:?}");
    // The failure is the loss regression specifically; the flat val-F1
    // series stays within the noise band.
    let loss = diffs.iter().find(|d| d.series == "train.loss").unwrap();
    assert_eq!(loss.verdict, DiffVerdict::Fail);
    assert!(loss.ratio > series::FAIL_RATIO, "{loss:?}");
    let f1 = diffs.iter().find(|d| d.series == "train.val_f1").unwrap();
    assert!(f1.verdict <= DiffVerdict::Pass, "{f1:?}");

    // And the baseline gates itself clean.
    let self_diffs = series::diff_stores(&base, &base);
    assert!(series::overall(&self_diffs) <= DiffVerdict::Pass, "{self_diffs:?}");
}
