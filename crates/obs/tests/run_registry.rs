//! End-to-end run-registry scenarios that need exclusive ownership of
//! the process-global wall clock and run sink — kept out of the unit
//! tests so nothing races the registry's own clock-injection tests.

use std::fs;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};

use qdgnn_obs::clock::{self, FakeClock};
use qdgnn_obs::runs::{self, RunManifest, RunRecorder};
use qdgnn_obs::series::SeriesStore;

fn global_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qdgnn-runreg-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("temp run root");
    dir
}

#[test]
fn manifests_are_fake_clock_deterministic() {
    let _g = global_lock();
    let root = tmp_root("clock");
    let fake = Arc::new(FakeClock::new());
    fake.set_micros(1_000);
    clock::set_wall(Arc::clone(&fake) as Arc<dyn clock::Clock>);

    let parent = RunRecorder::create(&root, 42, "toy", "cfg-hash").unwrap();
    assert_eq!(parent.manifest().start_us, 1_000);
    for step in 0..4u64 {
        parent.record_point("train.loss", step, 1.0 / (step + 1) as f64).unwrap();
    }

    fake.set_micros(9_000);
    let child = RunRecorder::resume(&root, parent.id()).unwrap();
    assert_eq!(child.manifest().start_us, 9_000);
    assert_eq!(child.manifest().resumed_from.as_deref(), Some(parent.id()));

    // The manifest on disk round-trips with the deterministic timestamp.
    let on_disk = fs::read_to_string(child.dir().join("manifest.json")).unwrap();
    let parsed = RunManifest::from_json(on_disk.trim()).unwrap();
    assert_eq!(&parsed, child.manifest());

    // Flight events are also stamped from the fake clock.
    fake.set_micros(9_500);
    child.flight_event("train.divergence_rollback", &[("epoch", 2.0)]);
    child.flush_flight().unwrap();
    let flight = fs::read_to_string(child.dir().join("flight.ndjson")).unwrap();
    assert!(flight.contains("\"t_us\":9500"), "{flight}");

    clock::set_wall(Arc::new(clock::MonotonicClock::new()));
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn sink_panic_hook_flushes_flight_on_unwind() {
    let _g = global_lock();
    let root = tmp_root("hook");
    let rec = Arc::new(RunRecorder::create(&root, 7, "toy", "h").unwrap());
    runs::install(Arc::clone(&rec));
    runs::install_panic_flush();
    runs::series_observe("train.loss", 0, 0.9);
    runs::flight_event("train.epoch", &[("epoch", 0.0)]);

    let flight_path = rec.dir().join("flight.ndjson");
    assert!(!flight_path.exists(), "no flush before the panic");
    let result = std::panic::catch_unwind(|| panic!("chaos: mid-epoch crash"));
    assert!(result.is_err());

    let text = fs::read_to_string(&flight_path).expect("panic hook must flush the flight ring");
    assert!(text.contains("\"series\":\"train.loss\""), "{text}");
    assert!(text.contains("\"name\":\"train.epoch\""), "{text}");
    // Journal survives and stays validator-clean.
    let journal = fs::read_to_string(rec.dir().join("series.ndjson")).unwrap();
    SeriesStore::from_ndjson(&journal).expect("journal must stay parseable after a crash");

    runs::uninstall();
    let _ = fs::remove_dir_all(&root);
}
