//! Folded-stack round-trip: nested spans → folded lines → parsed tree
//! must preserve the parent/child timing invariants (every child's
//! total ≤ its parent's, self-time lines re-sum to span totals).
//!
//! The synthetic-event half runs in every build (the `folded` module is
//! unconditional); the recorded-span half needs the `enabled` feature.

use qdgnn_obs::events::Event;
use qdgnn_obs::folded::{build_forest, parse_folded, to_folded, FoldedNode, Mode, SpanNode};

fn assert_children_within_parents(node: &FoldedNode) {
    for c in &node.children {
        assert!(
            c.total_us() <= node.total_us(),
            "child {} ({}) exceeds parent {} ({})",
            c.name,
            c.total_us(),
            node.name,
            node.total_us()
        );
        assert_children_within_parents(c);
    }
}

fn span_totals(nodes: &[SpanNode], acc: &mut Vec<(String, u64)>) {
    for n in nodes {
        acc.push((n.name.clone(), n.dur_us));
        span_totals(&n.children, acc);
    }
}

fn folded_totals(nodes: &[FoldedNode], acc: &mut Vec<(String, u64)>) {
    for n in nodes {
        acc.push((n.name.clone(), n.total_us()));
        folded_totals(&n.children, acc);
    }
}

/// Round-trips a deep synthetic trace: three-level nesting, repeated
/// stacks, sibling spans, an orphan root.
#[test]
fn synthetic_nested_spans_round_trip() {
    let span = |name: &str, parent: Option<&str>, start_us: u64, dur_us: u64| Event::Span {
        name: name.into(),
        parent: parent.map(str::to_string),
        start_us,
        dur_us,
    };
    // Completion order (inner first), two serve.query instances plus an
    // unparented train.epoch-style span.
    let events = vec![
        span("serve.encode", Some("serve.query"), 0, 8),
        span("tensor.matmul", Some("serve.forward"), 10, 20),
        span("serve.forward", Some("serve.query"), 9, 40),
        span("serve.bfs", Some("serve.query"), 50, 30),
        span("serve.query", None, 0, 90),
        span("serve.forward", Some("serve.query"), 100, 25),
        span("serve.query", None, 100, 30),
        span("train.validate", None, 200, 15),
    ];
    let forest = build_forest(&events);
    assert_eq!(forest.len(), 3);

    let text = to_folded(&forest, Mode::SelfTime);
    let parsed = parse_folded(&text).unwrap();
    for root in &parsed {
        assert_children_within_parents(root);
    }

    // Because duplicate stacks aggregate, compare *summed* totals per
    // stack name at each level rather than per-instance.
    let mut expect: Vec<(String, u64)> = Vec::new();
    span_totals(&forest, &mut expect);
    let mut got: Vec<(String, u64)> = Vec::new();
    folded_totals(&parsed, &mut got);
    let sum_by_name = |v: &[(String, u64)]| {
        let mut m = std::collections::BTreeMap::new();
        for (k, n) in v {
            *m.entry(k.clone()).or_insert(0u64) += n;
        }
        m
    };
    assert_eq!(
        sum_by_name(&expect),
        sum_by_name(&got),
        "self-time folding must preserve every span's total duration"
    );

    // The three-level nesting survives textually.
    assert!(
        text.contains("serve.query;serve.forward;tensor.matmul 20\n"),
        "missing grandchild stack:\n{text}"
    );
}

/// Records real spans through the registry on a fake clock, then checks
/// the folded output matches the timings that were injected.
#[cfg(feature = "enabled")]
#[test]
fn recorded_spans_round_trip() {
    use qdgnn_obs::clock::FakeClock;
    use std::sync::Arc;

    // The registry is process-global; this test file runs as its own
    // binary, so no other test races it here.
    qdgnn_obs::reset();
    let clock = Arc::new(FakeClock::new());
    qdgnn_obs::set_clock(Arc::clone(&clock) as Arc<dyn qdgnn_obs::clock::Clock>);
    qdgnn_obs::record_events(true);

    for _query in 0..3 {
        let _q = qdgnn_obs::span!("serve.query");
        {
            let _e = qdgnn_obs::span!("serve.encode");
            clock.advance_micros(5);
        }
        {
            let _f = qdgnn_obs::span!("serve.forward");
            clock.advance_micros(40);
        }
        {
            let _b = qdgnn_obs::span!("serve.bfs");
            clock.advance_micros(15);
        }
        clock.advance_micros(2); // identify/assembly tail
    }

    let events = qdgnn_obs::take_events();
    let forest = build_forest(&events);
    assert_eq!(forest.len(), 3, "one root per query");
    let text = to_folded(&forest, Mode::SelfTime);
    assert!(text.contains("serve.query;serve.forward 120\n"), "{text}");
    assert!(text.contains("serve.query;serve.encode 15\n"), "{text}");
    assert!(text.contains("serve.query;serve.bfs 45\n"), "{text}");
    assert!(text.contains("serve.query 6\n"), "{text}");

    let parsed = parse_folded(&text).unwrap();
    assert_eq!(parsed.len(), 1, "aggregated into one serve.query stack");
    assert_eq!(parsed[0].total_us(), 3 * 62);
    assert_children_within_parents(&parsed[0]);
    qdgnn_obs::reset();
}
