//! Proof that disabled instrumentation costs nothing.
//!
//! Runs only without the `enabled` feature (the default for
//! `cargo test -p qdgnn-obs`): handles must be zero-sized, recording
//! must be side-effect free, and a hot loop full of instrumentation
//! must stay within a small constant of the uninstrumented loop.

#![cfg(not(feature = "enabled"))]

use std::time::Instant;

#[test]
fn disabled_handles_are_zero_sized() {
    assert_eq!(std::mem::size_of::<qdgnn_obs::SpanGuard>(), 0);
    assert_eq!(std::mem::size_of::<qdgnn_obs::OpTimer>(), 0);
    assert_eq!(std::mem::size_of::<qdgnn_obs::Counter>(), 0);
    assert_eq!(std::mem::size_of::<qdgnn_obs::Gauge>(), 0);
    assert!(!qdgnn_obs::enabled());
}

#[test]
fn disabled_recording_has_no_observable_state() {
    qdgnn_obs::record_events(true);
    qdgnn_obs::counter("t.off.c").inc_by(100);
    qdgnn_obs::counter_with("t.off.cl", &[("tenant", "a")]).inc();
    qdgnn_obs::gauge("t.off.g").set(5.0);
    qdgnn_obs::observe("t.off.h", 1.0);
    qdgnn_obs::observe_with("t.off.hl", &[("outcome", "ok")], 1.0);
    qdgnn_obs::event("t.off.e", &[("x", 1.0)]);
    qdgnn_obs::trace("t.off.t", &[("tenant", "a")], &[("span_us", 1.0)]);
    {
        let _s = qdgnn_obs::span!("t.off.span");
        let _t = qdgnn_obs::op_timer("t.off.op");
    }
    qdgnn_obs::mem_alloc(1 << 30);
    qdgnn_obs::mem_free(1);
    qdgnn_obs::reset_mem_peak();
    assert!(!qdgnn_obs::events_recorded());
    assert!(qdgnn_obs::take_events().is_empty());
    assert_eq!(qdgnn_obs::mem_live_bytes(), 0, "disabled build accounts nothing");
    assert_eq!(qdgnn_obs::mem_peak_bytes(), 0);
    let snap = qdgnn_obs::snapshot();
    assert!(snap.counters.is_empty());
    assert!(snap.gauges.is_empty());
    assert!(snap.hists.is_empty());
}

/// The instrumented loop must cost essentially the same as the plain
/// loop: every call compiles to nothing. The budget is deliberately
/// generous (3x + 50ms) so the test never flakes on a loaded machine
/// while still catching any real per-iteration work (an allocation or
/// clock read per iteration would blow through it by orders of
/// magnitude).
#[test]
fn disabled_hot_loop_overhead_is_negligible() {
    const ITERS: u64 = 5_000_000;

    fn plain(iters: u64) -> u64 {
        let mut acc = 0u64;
        for i in 0..iters {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        acc
    }

    fn instrumented(iters: u64) -> u64 {
        let mut acc = 0u64;
        for i in 0..iters {
            let _span = qdgnn_obs::span!("t.hot.span");
            let _timer = qdgnn_obs::op_timer("t.hot.op");
            qdgnn_obs::counter("t.hot.c").inc();
            qdgnn_obs::counter_with("t.hot.cl", &[("outcome", "answered")]).inc();
            qdgnn_obs::observe("t.hot.h", i as f64);
            qdgnn_obs::observe_with("t.hot.hl", &[("outcome", "answered")], i as f64);
            qdgnn_obs::trace("t.hot.t", &[("outcome", "answered")], &[("i", i as f64)]);
            qdgnn_obs::mem_alloc(i);
            qdgnn_obs::mem_free(i);
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        acc
    }

    // Warm up, and keep results live so nothing is optimized out wholesale.
    let warm = plain(1000) ^ instrumented(1000);
    let t0 = Instant::now();
    let a = plain(ITERS);
    let plain_time = t0.elapsed();
    let t1 = Instant::now();
    let b = instrumented(ITERS);
    let instr_time = t1.elapsed();
    assert_eq!(a, b);
    std::hint::black_box(warm ^ a);

    let budget = plain_time * 3 + std::time::Duration::from_millis(50);
    assert!(
        instr_time <= budget,
        "disabled instrumentation too slow: plain={plain_time:?} instrumented={instr_time:?}"
    );
}
