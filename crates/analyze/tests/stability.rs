//! Output-stability tests: CI gates on the analyzer's output, so the
//! findings list must be deterministic — sorted by file:line:rule and
//! independent of the order sources are handed to the engine.

use qdgnn_analyze::{analyze_sources, lexer::SourceFile};

fn fixture_files() -> Vec<SourceFile> {
    vec![
        SourceFile::scan(
            "crates/core/src/serve.rs",
            "fn f(x: Option<u32>) -> u32 {\n    let a = x.unwrap();\n    panic!(\"b\");\n}\n",
        ),
        SourceFile::scan(
            "crates/core/src/inputs.rs",
            "fn g(v: &[f32]) -> bool { v[0] == 0.0 }\n",
        ),
        SourceFile::scan(
            "crates/core/src/train.rs",
            "fn h() { let t = SystemTime::now(); }\n",
        ),
    ]
}

#[test]
fn output_is_sorted_by_file_line_rule() {
    let findings = analyze_sources(&fixture_files());
    assert!(!findings.is_empty());
    let keys: Vec<(String, u32, String)> = findings
        .iter()
        .map(|f| (f.path.clone(), f.line, f.rule.to_string()))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "findings must be ordered for reproducible CI diffs");
}

#[test]
fn output_is_independent_of_input_order() {
    let forward = analyze_sources(&fixture_files());
    let mut reversed_input = fixture_files();
    reversed_input.reverse();
    let reversed = analyze_sources(&reversed_input);
    let render = |fs: &[qdgnn_analyze::Finding]| -> Vec<String> {
        fs.iter()
            .map(|f| format!("{} {}:{}: {}", f.rule, f.path, f.line, f.message))
            .collect()
    };
    assert_eq!(render(&forward), render(&reversed));
}

#[test]
fn repeated_runs_are_identical() {
    let a = analyze_sources(&fixture_files());
    let b = analyze_sources(&fixture_files());
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.rule, y.rule);
        assert_eq!(x.path, y.path);
        assert_eq!(x.line, y.line);
        assert_eq!(x.message, y.message);
        assert_eq!(x.snippet, y.snippet);
    }
}
