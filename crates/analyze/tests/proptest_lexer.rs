//! Property tests for the analyzer's lexer: for any generated mix of
//! nested block comments, line comments, string/raw-string literals and
//! brace blocks,
//!
//! 1. brace depths are balanced — every `{`/`}` token pair carries the
//!    same depth and the stream returns to depth 0, regardless of how
//!    many unbalanced braces hide inside comments and strings; and
//! 2. no rule-visible token originates inside a comment or a string
//!    literal — marker identifiers planted only in those regions must
//!    never surface in the token stream, while markers in live code
//!    must surface exactly as many times as they were planted.
//!
//! Every lint rule consumes this token stream, so these two invariants
//! are the foundation the whole engine stands on.

use proptest::prelude::*;
use qdgnn_analyze::lexer::SourceFile;

/// Builds a syntactically valid source file from a choice sequence.
/// Returns the source and how many `visible_marker` identifiers were
/// planted in live (non-comment, non-string) code.
fn build_source(choices: &[u8]) -> (String, usize) {
    let mut src = String::from("fn generated() {\n");
    let mut depth = 1usize;
    let mut visible = 0usize;
    for &c in choices {
        match c {
            0 => {
                src.push_str("let visible_marker = 1;\n");
                visible += 1;
            }
            1 => src.push_str("// hidden_marker { { \" unwrap( panic!\n"),
            2 => src.push_str("/* hidden_marker /* nested { } */ still hidden \" } */\n"),
            3 => src.push_str("let s = \"hidden_marker { } // /* \\\" \";\n"),
            4 => src.push_str("let r = r#\"hidden_marker \" { } // /*\"#;\n"),
            5 => {
                src.push_str("if cond {\n");
                depth += 1;
            }
            _ => {
                if depth > 1 {
                    src.push_str("}\n");
                    depth -= 1;
                }
            }
        }
    }
    while depth > 0 {
        src.push_str("}\n");
        depth -= 1;
    }
    (src, visible)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn brace_depths_balance_for_any_comment_string_nesting(
        choices in proptest::collection::vec(0u8..7, 0..60),
    ) {
        let (src, _) = build_source(&choices);
        let sf = SourceFile::scan("crates/x/src/generated.rs", &src);
        // Replay the depth discipline: an open brace carries the depth
        // *before* it increments; its matching close carries the same.
        let mut depth = 0u32;
        for t in &sf.toks {
            match t.text.as_str() {
                "{" => {
                    prop_assert_eq!(t.depth, depth, "open at line {}", t.line);
                    depth += 1;
                }
                "}" => {
                    prop_assert!(depth > 0, "unmatched close at line {}", t.line);
                    depth -= 1;
                    prop_assert_eq!(t.depth, depth, "close at line {}", t.line);
                }
                _ => {}
            }
        }
        prop_assert_eq!(depth, 0, "stream must return to depth 0\n{src}");
    }

    #[test]
    fn no_token_originates_inside_comment_or_string(
        choices in proptest::collection::vec(0u8..7, 0..60),
    ) {
        let (src, visible) = build_source(&choices);
        let sf = SourceFile::scan("crates/x/src/generated.rs", &src);
        let hidden = sf.toks.iter().filter(|t| t.text.contains("hidden_marker")).count();
        prop_assert_eq!(hidden, 0, "comment/string contents must not lex\n{src}");
        let seen = sf.toks.iter().filter(|t| t.text == "visible_marker").count();
        prop_assert_eq!(seen, visible, "live code must lex exactly once per plant\n{src}");
    }
}
