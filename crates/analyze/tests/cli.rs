//! End-to-end tests for the `qdgnn-analyze` binary: exit codes for bad
//! roots (the `--deny` gate must not pass vacuously) and the
//! catalog/engine self-check.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_qdgnn-analyze"))
}

fn unique_tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("qdgnn-analyze-cli-{name}-{}", std::process::id()));
    p
}

#[test]
fn nonexistent_root_exits_nonzero_with_clear_error() {
    let out = bin()
        .args(["--deny", "--root", "/definitely/not/a/real/path"])
        .output()
        .expect("spawn qdgnn-analyze");
    assert_eq!(out.status.code(), Some(2), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("does not exist"), "{err}");
}

#[test]
fn empty_root_exits_nonzero_instead_of_vacuously_clean() {
    let dir = unique_tmp("empty");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let out = bin()
        .args(["--deny", "--root"])
        .arg(&dir)
        .output()
        .expect("spawn qdgnn-analyze");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(out.status.code(), Some(2), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("no .rs files"), "{err}");
}

#[test]
fn root_with_findings_exits_one_under_deny_and_zero_without() {
    let dir = unique_tmp("findings");
    let src_dir = dir.join("crates/core/src");
    std::fs::create_dir_all(&src_dir).expect("create temp tree");
    std::fs::write(
        src_dir.join("serve.rs"),
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    )
    .expect("write fixture");
    let denied = bin().args(["--deny", "--root"]).arg(&dir).output().expect("spawn");
    let lenient = bin().arg("--root").arg(&dir).output().expect("spawn");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(denied.status.code(), Some(1));
    assert_eq!(lenient.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&denied.stdout);
    assert!(stdout.contains("QD001"), "{stdout}");
}

#[test]
fn self_check_passes_and_lists_rule_count() {
    let out = bin().arg("--self-check").output().expect("spawn qdgnn-analyze");
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("self-check ok"), "{stdout}");
}

#[test]
fn catalog_lists_every_implemented_rule_exactly_once() {
    let out = bin().arg("--catalog").output().expect("spawn qdgnn-analyze");
    assert_eq!(out.status.code(), Some(0));
    let json = String::from_utf8_lossy(&out.stdout);
    for id in qdgnn_analyze::rules::IMPLEMENTED_IDS {
        let needle = format!("\"id\": \"{id}\"");
        assert_eq!(json.matches(&needle).count(), 1, "{id} must appear exactly once");
    }
}
