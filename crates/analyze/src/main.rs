//! `qdgnn-analyze` CLI: runs the repo lint rules over the workspace.
//!
//! Exit codes: 0 clean (or findings without `--deny`), 1 findings under
//! `--deny`, 2 usage or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use qdgnn_analyze::{analyze_sources, catalog, collect_sources, findings_json, rules};

const USAGE: &str = "\
qdgnn-analyze — repo-specific static analysis for the qdgnn workspace

USAGE:
    qdgnn-analyze [OPTIONS]

OPTIONS:
    --deny          exit non-zero if any finding is reported (CI gate)
    --json          print findings as JSON instead of text
    --catalog       print the machine-readable rule catalog as JSON and exit
    --self-check    verify the catalog and the implemented rules agree, then exit
    --root <PATH>   workspace root to scan (default: auto-detected from cwd)
    -h, --help      show this help
";

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut show_catalog = false;
    let mut self_check = false;
    let mut root: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--catalog" => show_catalog = true,
            "--self-check" => self_check = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --root requires a path\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    if show_catalog {
        println!("{}", catalog::catalog_json());
        return ExitCode::SUCCESS;
    }

    if self_check {
        return run_self_check();
    }

    let root = root.unwrap_or_else(find_workspace_root);
    if !root.is_dir() {
        eprintln!(
            "error: workspace root {} does not exist or is not a directory — \
             a `--deny` gate pointed at a bad path would pass vacuously",
            root.display()
        );
        return ExitCode::from(2);
    }
    let files = match collect_sources(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if files.is_empty() {
        eprintln!(
            "error: no .rs files found under {} — refusing to report a vacuously \
             clean tree (wrong --root, or everything skipped?)",
            root.display()
        );
        return ExitCode::from(2);
    }
    let findings = analyze_sources(&files);

    if json {
        println!("{}", findings_json(&findings));
    } else {
        for f in &findings {
            println!("{} {}:{}: {}", f.rule, f.path, f.line, f.message);
            if !f.snippet.is_empty() {
                println!("    {}", f.snippet);
            }
        }
    }

    if findings.is_empty() {
        eprintln!("qdgnn-analyze: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("qdgnn-analyze: {} finding(s)", findings.len());
        if deny {
            ExitCode::from(1)
        } else {
            ExitCode::SUCCESS
        }
    }
}

/// `--self-check`: the catalog and the rule engine must agree exactly —
/// every implemented rule id appears in the catalog exactly once and
/// vice versa, so a rule can't land undocumented (or get documented but
/// never enforced).
fn run_self_check() -> ExitCode {
    let catalog_ids: Vec<&str> = catalog::RULES.iter().map(|r| r.id).collect();
    let mut ok = true;
    for id in rules::IMPLEMENTED_IDS {
        match catalog_ids.iter().filter(|c| *c == id).count() {
            1 => {}
            0 => {
                eprintln!("self-check: rule {id} is implemented but missing from the catalog");
                ok = false;
            }
            n => {
                eprintln!("self-check: rule {id} appears {n} times in the catalog");
                ok = false;
            }
        }
    }
    for id in &catalog_ids {
        if !rules::IMPLEMENTED_IDS.contains(id) {
            eprintln!("self-check: rule {id} is in the catalog but not implemented");
            ok = false;
        }
    }
    if ok {
        println!(
            "self-check ok: {} rules, catalog and engine agree",
            rules::IMPLEMENTED_IDS.len()
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Walks up from the current directory to the first `Cargo.toml`
/// declaring `[workspace]`; falls back to the current directory.
fn find_workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir: &Path = &cwd;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(s) = std::fs::read_to_string(&manifest) {
            if s.contains("[workspace]") {
                return dir.to_path_buf();
            }
        }
        match dir.parent() {
            Some(p) => dir = p,
            None => return cwd,
        }
    }
}
