//! `qdgnn-analyze` CLI: runs the repo lint rules over the workspace.
//!
//! Exit codes: 0 clean (or findings without `--deny`), 1 findings under
//! `--deny`, 2 usage or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use qdgnn_analyze::{analyze_root, catalog, findings_json};

const USAGE: &str = "\
qdgnn-analyze — repo-specific static analysis for the qdgnn workspace

USAGE:
    qdgnn-analyze [OPTIONS]

OPTIONS:
    --deny          exit non-zero if any finding is reported (CI gate)
    --json          print findings as JSON instead of text
    --catalog       print the machine-readable rule catalog as JSON and exit
    --root <PATH>   workspace root to scan (default: auto-detected from cwd)
    -h, --help      show this help
";

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut show_catalog = false;
    let mut root: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--catalog" => show_catalog = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --root requires a path\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    if show_catalog {
        println!("{}", catalog::catalog_json());
        return ExitCode::SUCCESS;
    }

    let root = root.unwrap_or_else(find_workspace_root);
    let findings = match analyze_root(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", findings_json(&findings));
    } else {
        for f in &findings {
            println!("{} {}:{}: {}", f.rule, f.path, f.line, f.message);
            if !f.snippet.is_empty() {
                println!("    {}", f.snippet);
            }
        }
    }

    if findings.is_empty() {
        eprintln!("qdgnn-analyze: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("qdgnn-analyze: {} finding(s)", findings.len());
        if deny {
            ExitCode::from(1)
        } else {
            ExitCode::SUCCESS
        }
    }
}

/// Walks up from the current directory to the first `Cargo.toml`
/// declaring `[workspace]`; falls back to the current directory.
fn find_workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir: &Path = &cwd;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(s) = std::fs::read_to_string(&manifest) {
            if s.contains("[workspace]") {
                return dir.to_path_buf();
            }
        }
        match dir.parent() {
            Some(p) => dir = p,
            None => return cwd,
        }
    }
}
