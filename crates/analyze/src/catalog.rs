//! The machine-readable lint catalog.
//!
//! Every rule the engine enforces is described here: id, one-line
//! summary, rationale, the paths it is enforced on, and the suppression
//! syntax. `qdgnn-analyze --catalog` serialises this table as JSON so
//! external tooling (CI annotations, editors) can consume it without
//! parsing Rust.

/// Static description of one lint rule.
pub struct Rule {
    /// Stable identifier, e.g. `QD001`.
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// Why the rule exists in this repository.
    pub rationale: &'static str,
    /// Path substrings the rule is enforced on (empty = whole tree).
    pub enforced_paths: &'static [&'static str],
    /// Whether `// qdgnn-analyze: allow(ID, reason = "…")` may suppress it.
    pub suppressible: bool,
}

/// The full catalog, ordered by id.
pub const RULES: &[Rule] = &[
    Rule {
        id: "QD000",
        summary: "suppression comments must carry a written reason",
        rationale: "A suppression without a reason is indistinguishable from \
                    a silenced bug; `allow(QDxxx, reason = \"…\")` keeps the \
                    audit trail in the source.",
        enforced_paths: &[],
        suppressible: false,
    },
    Rule {
        id: "QD001",
        summary: "no unwrap/expect/panic!/unreachable!/direct indexing on \
                  serving and persistence paths",
        rationale: "The online query path (QD-GNN/AQD-GNN serving split) must \
                    degrade via typed QdgnnError, never abort: a panic in \
                    serve/persist/inputs/identify takes down every in-flight \
                    query. Model forward passes (crates/core/src/models/*) get \
                    the panic-family subset; structural indexing there is \
                    bounded by construction.",
        enforced_paths: &[
            "crates/core/src/serve.rs",
            "crates/core/src/persist.rs",
            "crates/core/src/inputs.rs",
            "crates/core/src/identify.rs",
            "crates/core/src/models/",
            "crates/serve/src/",
        ],
        suppressible: true,
    },
    Rule {
        id: "QD002",
        summary: "no f32 == / != comparisons",
        rationale: "Exact float equality silently breaks under reordered \
                    accumulation (parallel matmul tiles) and resume replay; \
                    use tolerances, or suppress with a reason where exact \
                    sentinel values (0.0 sparsity skips) are intended.",
        enforced_paths: &[],
        suppressible: true,
    },
    Rule {
        id: "QD003",
        summary: "every tape op must have a finite-difference gradient check",
        rationale: "The autograd engine is hand-written; an op whose backward \
                    is never checked against central differences is an \
                    unverified derivative. Enforced by matching enum Op \
                    variants in crates/tensor/src/tape.rs against fd_* tests \
                    in tests/properties.rs.",
        enforced_paths: &["crates/tensor/src/tape.rs"],
        suppressible: true,
    },
    Rule {
        id: "QD004",
        summary: "no wall-clock or time-seeded RNG on resume-deterministic paths",
        rationale: "Crash-resume is bit-identical only if training replays the \
                    same arithmetic; SystemTime::now / from_entropy / \
                    thread_rng in train.rs or tape.rs breaks the guarantee. \
                    Instant::now cannot break replay, so it is QD007's \
                    problem (injectable wall clock), not QD004's.",
        enforced_paths: &[
            "crates/core/src/train.rs",
            "crates/tensor/src/tape.rs",
        ],
        suppressible: true,
    },
    Rule {
        id: "QD005",
        summary: "no nested lock acquisitions or locks held across thread joins",
        rationale: "The parallel trainer and matmul tiles use scoped threads; \
                    a guard held while taking a second lock or while joining \
                    crossbeam::thread::scope is a deadlock seed that only \
                    fires under load.",
        enforced_paths: &[
            "crates/core/src/train.rs",
            "crates/tensor/src/dense.rs",
            "crates/tensor/src/sparse.rs",
        ],
        suppressible: true,
    },
    Rule {
        id: "QD006",
        summary: "no println!/eprintln!/print!/eprint!/dbg! in library code",
        rationale: "The library crates are linked into servers and harnesses \
                    that own stdout/stderr; ad-hoc prints corrupt their output \
                    and vanish from structured logs. Diagnostics must flow \
                    through qdgnn-obs events/counters (e.g. the \
                    train.checkpoint_write_failures counter) or typed errors. \
                    Test modules are exempt.",
        enforced_paths: &[
            "crates/core/src/",
            "crates/tensor/src/",
            "crates/nn/src/",
            "crates/graph/src/",
        ],
        suppressible: true,
    },
    Rule {
        id: "QD007",
        summary: "no raw Instant::now() in library code",
        rationale: "Wall timing reported by the library (train_seconds, \
                    interactive seconds_per_round, query timing) must read \
                    the injectable qdgnn-obs wall clock \
                    (qdgnn_obs::clock::wall_micros) so fake-clock tests can \
                    pin every duration; a raw Instant::now() call is \
                    untestable dead time. The obs crate's MonotonicClock is \
                    the one sanctioned caller and is exempt by path. Test \
                    modules are exempt.",
        enforced_paths: &[
            "crates/core/src/",
            "crates/tensor/src/",
            "crates/nn/src/",
            "crates/graph/src/",
        ],
        suppressible: true,
    },
    Rule {
        id: "QD008",
        summary: "no unbounded blocking primitives in serving code",
        rationale: "The serving engine promises bounded behaviour under \
                    overload and partial failure: every block must carry a \
                    timeout so a stuck worker cannot turn into a stuck \
                    caller. Condvar::wait without a timeout, Receiver::recv, \
                    and bare Pending::wait are banned in favour of the \
                    _timeout variants; where indefinite blocking is the \
                    documented contract (the no-deadline Pending::wait \
                    branch), suppress with a reason. Test modules are \
                    exempt.",
        enforced_paths: &["crates/serve/src/"],
        suppressible: true,
    },
    Rule {
        id: "QD009",
        summary: "no panic reachable from a serving entry point through any \
                  call chain",
        rationale: "QD001 stops at the function boundary; a serving-path \
                    entry point (any qdgnn-serve function, OnlineStage::try_*, \
                    predict_scores_batch) that calls a helper which unwraps \
                    two crates away still aborts the whole engine. The \
                    interprocedural pass walks the workspace call graph and \
                    reports the panic site together with one shortest call \
                    chain that reaches it. Resolution is name-based and \
                    over-approximate; suppress at the panic site with the \
                    reason the call can in fact never panic.",
        enforced_paths: &["crates/serve/", "crates/core/", "crates/obs/"],
        suppressible: true,
    },
    Rule {
        id: "QD010",
        summary: "no lock-order inversion anywhere in the workspace",
        rationale: "Two locks taken in opposite orders on two threads deadlock \
                    only under load; the analyzer builds the acquired-after \
                    graph (lock B taken while a guard of A is held, including \
                    through calls) and reports every cycle with both \
                    acquisition sites. The runtime lockcheck feature in the \
                    vendored parking_lot shim enforces the same invariant \
                    under test. Lock identity is name-based; suppress where \
                    two names are provably the same lock or the orders can \
                    never interleave.",
        enforced_paths: &[],
        suppressible: true,
    },
    Rule {
        id: "QD011",
        summary: "no blocking call while holding a lock guard",
        rationale: "wait/recv/recv_timeout/sleep/join executed — directly or \
                    through any callee — while a Mutex/RwLock guard is live \
                    stalls every thread that needs that lock for the full \
                    block duration. Condvar waits intentionally sleep with \
                    the guard (the wait releases it); those sites are the \
                    sanctioned suppressions.",
        enforced_paths: &[],
        suppressible: true,
    },
    Rule {
        id: "QD012",
        summary: "stale suppression: an allow comment that silences nothing \
                  (low severity)",
        rationale: "A suppression that no longer matches any finding is a \
                    burned-down exemption rotting in place: it documents a \
                    hazard that no longer exists and will silently swallow \
                    the next real finding on that line. Delete it, or — for \
                    a suppression kept deliberately (e.g. feature-gated \
                    code) — suppress this rule with a reason.",
        enforced_paths: &[],
        suppressible: true,
    },
    Rule {
        id: "QD013",
        summary: "every metric-name literal must appear in the checked-in \
                  metric catalog",
        rationale: "Dashboards, alerts and the telemetry endpoint key on \
                    metric names; a name passed to counter/gauge/observe/\
                    event/trace/op_timer/span!/series_observe/flight_event \
                    (or a _with variant) that is \
                    missing from METRIC_NAMES in crates/obs/src/names.rs — \
                    and its human table crates/obs/METRICS.md — drifts out \
                    of every dashboard silently. Labeled series are \
                    catalogued by base name. Test code is exempt, and \
                    dynamically-built names are not statically checkable.",
        enforced_paths: &["crates/"],
        suppressible: true,
    },
];

/// Looks up a rule by id.
pub fn rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// Serialises the catalog as JSON (hand-rolled; no serde in this crate).
pub fn catalog_json() -> String {
    let mut out = String::from("[\n");
    for (i, r) in RULES.iter().enumerate() {
        out.push_str("  {\n");
        out.push_str(&format!("    \"id\": {},\n", json_str(r.id)));
        out.push_str(&format!("    \"summary\": {},\n", json_str(r.summary)));
        out.push_str(&format!("    \"rationale\": {},\n", json_str(r.rationale)));
        out.push_str("    \"enforced_paths\": [");
        for (j, p) in r.enforced_paths.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(p));
        }
        out.push_str("],\n");
        out.push_str(&format!("    \"suppressible\": {},\n", r.suppressible));
        out.push_str(&format!(
            "    \"suppression_syntax\": {}\n",
            json_str(&format!(
                "// qdgnn-analyze: allow({}, reason = \"…\")",
                r.id
            ))
        ));
        out.push_str(if i + 1 == RULES.len() { "  }\n" } else { "  },\n" });
    }
    out.push(']');
    out
}

/// Minimal JSON string escaping.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_ids_are_sorted_and_unique() {
        let ids: Vec<&str> = RULES.iter().map(|r| r.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn catalog_json_is_balanced() {
        let j = catalog_json();
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert_eq!(j.matches('{').count(), RULES.len());
        assert_eq!(j.matches('}').count(), RULES.len());
        for r in RULES {
            assert!(j.contains(r.id));
        }
    }

    #[test]
    fn lookup_finds_every_rule() {
        for r in RULES {
            assert!(rule(r.id).is_some());
        }
        assert!(rule("QD999").is_none());
    }
}
