//! `qdgnn-analyze`: repo-specific static analysis for the qdgnn
//! workspace.
//!
//! A from-scratch, dependency-free lint engine: [`lexer`] scans Rust
//! sources (comment/string-aware, brace-tracking, `#[cfg(test)]`
//! detection), [`rules`] implements the QD001–QD013 checks, and
//! [`catalog`] describes them machine-readably. This module wires the
//! pieces together: filesystem walking, suppression handling, and
//! deterministic ordering of findings.

pub mod callgraph;
pub mod catalog;
pub mod lexer;
pub mod rules;
pub mod symbols;

use std::fs;
use std::io;
use std::path::Path;

use lexer::SourceFile;
pub use rules::Finding;

/// Directories never scanned: vendored shims and build/VCS artifacts.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", ".claude", "related"];

/// Recursively collects every `.rs` file under `root` (skipping
/// [`SKIP_DIRS`]) and scans it. Files are returned sorted by path so
/// analysis order — and therefore output — is reproducible across
/// filesystems.
pub fn collect_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let src = match fs::read_to_string(&path) {
                Ok(s) => s,
                Err(_) => continue, // non-UTF-8: nothing for a Rust lexer to do
            };
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile::scan(&rel, &src));
        }
    }
    Ok(())
}

/// Runs every rule over the scanned sources, applies suppressions, adds
/// QD000 meta-findings for reason-less or unknown suppressions and
/// QD012 for suppressions that silenced nothing, and returns findings
/// sorted by `(path, line, rule)` for reproducible CI diffs.
pub fn analyze_sources(files: &[SourceFile]) -> Vec<Finding> {
    let mut raw = Vec::new();
    for sf in files {
        raw.extend(rules::check_file(sf));
    }

    // QD003 is cross-file: tape ops vs. the root property-test suite.
    let tape = files.iter().find(|f| f.path.ends_with("crates/tensor/src/tape.rs"));
    let props = files
        .iter()
        .find(|f| f.path == "tests/properties.rs" || f.path.ends_with("/tests/properties.rs"));
    if let Some(t) = tape {
        raw.extend(rules::qd003(t, props));
    }

    // QD013 is cross-file too: metric-name literals vs. the checked-in
    // catalog in crates/obs/src/names.rs.
    raw.extend(rules::qd013(files));

    // The interprocedural rules run on the whole-workspace call graph.
    let graph = callgraph::CallGraph::build(files);
    raw.extend(rules::qd009(files, &graph));
    raw.extend(rules::qd010(files, &graph));
    raw.extend(rules::qd011(files, &graph));

    // A suppression covers findings of its rule on its own line and the
    // line below, so it can trail the offending expression or sit
    // directly above it. Suppressions that matched at least one raw
    // finding are recorded so QD012 can flag the stale ones.
    let mut used: std::collections::HashSet<(String, u32, String)> =
        std::collections::HashSet::new();
    let mut out: Vec<Finding> = Vec::new();
    for f in raw {
        let matched = files.iter().find(|s| s.path == f.path).and_then(|sf| {
            sf.suppressions.iter().find(|sup| {
                sup.rule == f.rule
                    && (sup.line == f.line || sup.line + 1 == f.line)
                    && catalog::rule(&sup.rule).is_some_and(|r| r.suppressible)
            })
        });
        match matched {
            Some(sup) => {
                used.insert((f.path.clone(), sup.line, sup.rule.clone()));
            }
            None => out.push(f),
        }
    }

    // QD012: a well-formed suppression (known suppressible rule) that
    // silenced nothing is itself stale. An `allow(QD012, …)` on or
    // above the stale suppression's line silences the report — and is
    // counted as used itself, so the meta level terminates.
    for sf in files {
        for sup in &sf.suppressions {
            if sup.rule == "QD012"
                || !catalog::rule(&sup.rule).is_some_and(|r| r.suppressible)
                || used.contains(&(sf.path.clone(), sup.line, sup.rule.clone()))
            {
                continue;
            }
            let silenced = sf.suppressions.iter().any(|s| {
                s.rule == "QD012" && (s.line == sup.line || s.line + 1 == sup.line)
            });
            if silenced {
                continue;
            }
            out.push(Finding {
                rule: "QD012",
                path: sf.path.clone(),
                line: sup.line,
                message: format!(
                    "stale suppression: this `allow({})` silences no finding — delete it, or suppress with `allow(QD012, reason = \"…\")` if it is kept deliberately",
                    sup.rule
                ),
                snippet: sf.snippet(sup.line),
            });
        }
    }

    for sf in files {
        for sup in &sf.suppressions {
            match catalog::rule(&sup.rule) {
                None => out.push(Finding {
                    rule: "QD000",
                    path: sf.path.clone(),
                    line: sup.line,
                    message: format!("suppression names unknown rule `{}`", sup.rule),
                    snippet: sf.snippet(sup.line),
                }),
                Some(r) if !r.suppressible => out.push(Finding {
                    rule: "QD000",
                    path: sf.path.clone(),
                    line: sup.line,
                    message: format!("rule `{}` cannot be suppressed", sup.rule),
                    snippet: sf.snippet(sup.line),
                }),
                Some(_) if sup.reason.is_none() => out.push(Finding {
                    rule: "QD000",
                    path: sf.path.clone(),
                    line: sup.line,
                    message: format!(
                        "suppression of `{}` has no written reason — use `allow({}, reason = \"…\")`",
                        sup.rule, sup.rule
                    ),
                    snippet: sf.snippet(sup.line),
                }),
                Some(_) => {}
            }
        }
    }

    out.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule, a.message.as_str())
            .cmp(&(b.path.as_str(), b.line, b.rule, b.message.as_str()))
    });
    out
}

/// Convenience: collect + analyze from a workspace root.
pub fn analyze_root(root: &Path) -> io::Result<Vec<Finding>> {
    Ok(analyze_sources(&collect_sources(root)?))
}

/// Renders findings as JSON (for `--json`).
pub fn findings_json(findings: &[Finding]) -> String {
    use catalog::json_str;
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}, \"snippet\": {}}}{}\n",
            json_str(f.rule),
            json_str(&f.path),
            f.line,
            json_str(&f.message),
            json_str(&f.snippet),
            if i + 1 == findings.len() { "" } else { "," }
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_with_reason_silences_finding() {
        let src = "
fn f(x: Option<u32>) -> u32 {
    // qdgnn-analyze: allow(QD001, reason = \"startup only, config validated at load\")
    x.unwrap()
}
";
        let files = vec![SourceFile::scan("crates/core/src/serve.rs", src)];
        assert!(analyze_sources(&files).is_empty(), "{:?}", analyze_sources(&files));
    }

    #[test]
    fn suppression_without_reason_yields_qd000() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // qdgnn-analyze: allow(QD001)\n}\n";
        let files = vec![SourceFile::scan("crates/core/src/serve.rs", src)];
        let f = analyze_sources(&files);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "QD000");
    }

    #[test]
    fn suppression_for_other_rule_does_not_silence() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // qdgnn-analyze: allow(QD002, reason = \"n/a\")\n    x.unwrap()\n}\n";
        let files = vec![SourceFile::scan("crates/core/src/serve.rs", src)];
        let f = analyze_sources(&files);
        assert!(f.iter().any(|f| f.rule == "QD001"), "{f:?}");
    }

    #[test]
    fn findings_are_sorted_by_path_line_rule() {
        let a = SourceFile::scan(
            "crates/core/src/serve.rs",
            "fn f(x: Option<u32>) { x.unwrap(); panic!(\"b\"); }\n",
        );
        let b = SourceFile::scan(
            "crates/core/src/inputs.rs",
            "fn g(v: &[f32]) -> bool { v[0] == 0.0 }\n",
        );
        let f = analyze_sources(&[a, b]);
        let keys: Vec<(String, u32, &str)> =
            f.iter().map(|f| (f.path.clone(), f.line, f.rule)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert!(keys[0].0.contains("inputs"), "{keys:?}");
    }

    #[test]
    fn qd012_stale_suppression_is_reported() {
        let src = "
fn f(x: u32) -> u32 {
    // qdgnn-analyze: allow(QD001, reason = \"was an unwrap once, burned down\")
    x + 1
}
";
        let files = vec![SourceFile::scan("crates/core/src/serve.rs", src)];
        let f = analyze_sources(&files);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "QD012");
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("stale suppression"), "{}", f[0].message);
    }

    #[test]
    fn qd012_not_reported_when_suppression_still_matches() {
        let src = "
fn f(x: Option<u32>) -> u32 {
    // qdgnn-analyze: allow(QD001, reason = \"startup only\")
    x.unwrap()
}
";
        let files = vec![SourceFile::scan("crates/core/src/serve.rs", src)];
        assert!(analyze_sources(&files).is_empty(), "{:?}", analyze_sources(&files));
    }

    #[test]
    fn qd012_can_itself_be_suppressed_for_deliberate_keeps() {
        let src = "
fn f(x: u32) -> u32 {
    // qdgnn-analyze: allow(QD012, reason = \"unwrap only exists with feature X\")
    // qdgnn-analyze: allow(QD001, reason = \"feature-gated unwrap below\")
    x + 1
}
";
        let files = vec![SourceFile::scan("crates/core/src/serve.rs", src)];
        assert!(analyze_sources(&files).is_empty(), "{:?}", analyze_sources(&files));
    }

    #[test]
    fn interprocedural_findings_flow_through_suppressions() {
        // A cross-crate panic chain silenced at the panic site.
        let serve = || {
            SourceFile::scan("crates/serve/src/engine.rs", "fn handle(q: Query) { score(q); }\n")
        };
        let core = SourceFile::scan(
            "crates/core/src/scoring.rs",
            "
fn score(q: Query) -> f32 {
    // qdgnn-analyze: allow(QD009, reason = \"weights validated at load time\")
    q.weights.unwrap().total()
}
",
        );
        let loud = analyze_sources(&[
            serve(),
            SourceFile::scan(
                "crates/core/src/scoring.rs",
                "fn score(q: Query) -> f32 { q.weights.unwrap().total() }\n",
            ),
        ]);
        assert!(loud.iter().any(|f| f.rule == "QD009"), "{loud:?}");
        let quiet = analyze_sources(&[serve(), core]);
        assert!(quiet.is_empty(), "{quiet:?}");
    }

    #[test]
    fn findings_json_is_wellformed() {
        let files = vec![SourceFile::scan(
            "crates/core/src/serve.rs",
            "fn f(x: Option<u32>) { x.unwrap(); }\n",
        )];
        let j = findings_json(&analyze_sources(&files));
        assert!(j.contains("\"QD001\""));
        assert!(j.starts_with('[') && j.ends_with(']'));
    }
}
