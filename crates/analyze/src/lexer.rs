//! A lightweight, comment- and string-aware Rust scanner.
//!
//! This is not a full Rust lexer — it is exactly the subset the lint
//! rules in [`crate::rules`] need to run with ~no false positives on
//! this repository:
//!
//! * comments (line, nested block) and string/char literals are consumed
//!   and never produce rule-visible tokens, so a `panic!` inside a doc
//!   comment or an error message cannot trip a lint;
//! * raw strings (`r"…"`, `r#"…"#`), byte strings and lifetimes
//!   (`'a` vs `'a'`) are disambiguated;
//! * every token carries its line and brace depth, and `{`/`}` pairs
//!   carry *equal* depths so regions can be matched cheaply;
//! * `#[cfg(test)]` / `#[test]` items are detected and their bodies
//!   flagged, so rules can exclude test code;
//! * suppression comments (`// qdgnn-analyze: allow(QDxxx, reason = "…")`)
//!   are parsed into structured [`Suppression`] records.

/// Token classification (only as fine-grained as the rules require).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Punctuation; two-char operators (`==`, `!=`, …) are one token.
    Punct,
    /// Numeric literal (including suffix, e.g. `1.5e-3f32`).
    Num,
    /// String literal (content dropped; text is `"`).
    Str,
    /// Char literal (content dropped; text is `'`).
    Char,
    /// Lifetime (`'a`).
    Lifetime,
}

/// One scanned token.
#[derive(Clone, Debug)]
pub struct Tok {
    /// The token text (empty for string/char literals).
    pub text: String,
    /// Classification.
    pub kind: TokKind,
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// Brace depth; a `{` and its matching `}` share the same depth.
    pub depth: u32,
    /// Whether the token sits inside a `#[cfg(test)]` / `#[test]` body.
    pub in_test: bool,
}

/// A parsed `// qdgnn-analyze: allow(QDxxx, reason = "…")` comment.
///
/// The suppression covers findings of `rule` on its own line and on the
/// following line, so it can trail the offending statement or sit
/// directly above it.
#[derive(Clone, Debug)]
pub struct Suppression {
    /// Rule id being suppressed, e.g. `QD001`.
    pub rule: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// The written reason; `None` is itself reported (QD000).
    pub reason: Option<String>,
}

/// A scanned source file, ready for rule evaluation.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Raw source lines (for finding snippets).
    pub src_lines: Vec<String>,
    /// The token stream.
    pub toks: Vec<Tok>,
    /// Suppression comments found in the file.
    pub suppressions: Vec<Suppression>,
    /// Whole file is test code (integration tests under `tests/`).
    pub all_test: bool,
}

impl SourceFile {
    /// Scans `src` as the file at `path` (workspace-relative).
    pub fn scan(path: &str, src: &str) -> SourceFile {
        let path = path.replace('\\', "/");
        let all_test = path.starts_with("tests/") || path.contains("/tests/");
        let (mut toks, suppressions) = lex(src);
        mark_test_regions(&mut toks);
        if all_test {
            for t in &mut toks {
                t.in_test = true;
            }
        }
        SourceFile {
            path,
            src_lines: src.lines().map(str::to_string).collect(),
            toks,
            suppressions,
            all_test,
        }
    }

    /// The trimmed source line (1-based), for finding snippets.
    pub fn snippet(&self, line: u32) -> String {
        self.src_lines
            .get(line.saturating_sub(1) as usize)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_cont(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Core scanner: produces the token stream and suppression records.
fn lex(src: &str) -> (Vec<Tok>, Vec<Suppression>) {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut sups = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut depth = 0u32;

    macro_rules! push {
        ($text:expr, $kind:expr, $line:expr, $depth:expr) => {
            toks.push(Tok { text: $text, kind: $kind, line: $line, depth: $depth, in_test: false })
        };
    }

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                // Line comment: consume to EOL, checking for suppressions.
                let start = i + 2;
                let mut j = start;
                while j < chars.len() && chars[j] != '\n' {
                    j += 1;
                }
                let text: String = chars[start..j].iter().collect();
                // Doc comments (`///`, `//!`) only *document* the
                // suppression syntax; a live suppression must be a
                // plain `//` comment.
                let is_doc = text.starts_with('/') || text.starts_with('!');
                if !is_doc {
                    if let Some(s) = parse_suppression(&text, line) {
                        sups.push(s);
                    }
                }
                i = j;
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Nested block comment.
                let mut nest = 1;
                let mut j = i + 2;
                while j < chars.len() && nest > 0 {
                    if chars[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                        nest += 1;
                        j += 2;
                    } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                        nest -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                i = j;
            }
            '"' => {
                let tok_line = line;
                i = consume_string(&chars, i + 1, &mut line);
                push!("\"".to_string(), TokKind::Str, tok_line, depth);
            }
            'r' | 'b' if is_raw_or_byte_string(&chars, i) => {
                let tok_line = line;
                i = consume_raw_or_byte(&chars, i, &mut line);
                push!("\"".to_string(), TokKind::Str, tok_line, depth);
            }
            '\'' => {
                // Lifetime vs char literal.
                let next = chars.get(i + 1).copied().unwrap_or(' ');
                if is_ident_start(next) {
                    // Scan the identifier; a closing quote right after
                    // means a char literal like 'a', otherwise lifetime.
                    let mut j = i + 1;
                    while j < chars.len() && is_ident_cont(chars[j]) {
                        j += 1;
                    }
                    if chars.get(j) == Some(&'\'') && j == i + 2 {
                        push!("'".to_string(), TokKind::Char, line, depth);
                        i = j + 1;
                    } else {
                        let text: String = chars[i..j].iter().collect();
                        push!(text, TokKind::Lifetime, line, depth);
                        i = j;
                    }
                } else {
                    // Escaped or punctuation char literal: '\n', '\'', '('…
                    let mut j = i + 1;
                    if chars.get(j) == Some(&'\\') {
                        j += 2; // skip the escaped char
                        // \u{…} escapes
                        while j < chars.len() && chars[j] != '\'' {
                            j += 1;
                        }
                    } else if j < chars.len() {
                        j += 1;
                    }
                    if chars.get(j) == Some(&'\'') {
                        j += 1;
                    }
                    push!("'".to_string(), TokKind::Char, line, depth);
                    i = j;
                }
            }
            c if c.is_ascii_digit() => {
                let tok_line = line;
                let start = i;
                let hex = c == '0' && matches!(chars.get(i + 1), Some('x') | Some('X'));
                i += 1;
                while i < chars.len() {
                    let d = chars[i];
                    if d.is_alphanumeric() || d == '_' {
                        // exponent sign: 1e-3 / 2.5E+7
                        if !hex && (d == 'e' || d == 'E') {
                            i += 1;
                            if matches!(chars.get(i), Some('+') | Some('-'))
                                && chars.get(i + 1).is_some_and(|n| n.is_ascii_digit())
                            {
                                i += 1;
                            }
                            continue;
                        }
                        i += 1;
                    } else if d == '.'
                        && chars.get(i + 1).is_some_and(|n| n.is_ascii_digit())
                        && !hex
                    {
                        i += 1; // decimal point (not a `..` range)
                    } else {
                        break;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                push!(text, TokKind::Num, tok_line, depth);
            }
            c if is_ident_start(c) => {
                let start = i;
                // Raw identifier `r#fn` / `r#impl`: one Ident token whose
                // text keeps the `r#` prefix, so keyword-shaped names can
                // never masquerade as the `fn`/`impl` keywords downstream
                // (the call-graph layer keys item detection on those).
                if c == 'r'
                    && chars.get(i + 1) == Some(&'#')
                    && chars.get(i + 2).copied().is_some_and(is_ident_start)
                {
                    i += 2;
                }
                while i < chars.len() && is_ident_cont(chars[i]) {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                push!(text, TokKind::Ident, line, depth);
            }
            '{' => {
                push!("{".to_string(), TokKind::Punct, line, depth);
                depth += 1;
                i += 1;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                push!("}".to_string(), TokKind::Punct, line, depth);
                i += 1;
            }
            _ => {
                // Punctuation; merge the two-char operators rules care about.
                let pair: Option<&str> = match (c, chars.get(i + 1)) {
                    ('=', Some('=')) => Some("=="),
                    ('!', Some('=')) => Some("!="),
                    ('<', Some('=')) => Some("<="),
                    ('>', Some('=')) => Some(">="),
                    (':', Some(':')) => Some("::"),
                    ('-', Some('>')) => Some("->"),
                    ('=', Some('>')) => Some("=>"),
                    ('&', Some('&')) => Some("&&"),
                    ('|', Some('|')) => Some("||"),
                    _ => None,
                };
                match pair {
                    Some(p) => {
                        push!(p.to_string(), TokKind::Punct, line, depth);
                        i += 2;
                    }
                    None => {
                        push!(c.to_string(), TokKind::Punct, line, depth);
                        i += 1;
                    }
                }
            }
        }
    }
    (toks, sups)
}

/// Consumes a regular string body starting after the opening quote;
/// returns the index just past the closing quote.
fn consume_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '\n' => {
                *line += 1;
                i += 1;
            }
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// `r"…"`, `r#"…"#`, `br"…"`, `b"…"` starting at `i`?
fn is_raw_or_byte_string(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j) == Some(&'\'') {
            return false; // byte char b'x' handled by the caller's next loop
        }
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
        while chars.get(j) == Some(&'#') {
            j += 1;
        }
    }
    chars.get(j) == Some(&'"') && j > i
}

/// Consumes a raw/byte string starting at its `r`/`b`; returns the index
/// just past the closing delimiter.
fn consume_raw_or_byte(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    if chars[i] == 'b' {
        i += 1;
    }
    let raw = chars.get(i) == Some(&'r');
    if raw {
        i += 1;
    }
    let mut hashes = 0;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    if !raw {
        return consume_string(chars, i, line);
    }
    // Raw string: no escapes; closes at `"` followed by `hashes` #'s.
    while i < chars.len() {
        if chars[i] == '\n' {
            *line += 1;
            i += 1;
        } else if chars[i] == '"' {
            let mut j = i + 1;
            let mut seen = 0;
            while seen < hashes && chars.get(j) == Some(&'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

/// Parses one suppression comment body (text after `//`).
fn parse_suppression(comment: &str, line: u32) -> Option<Suppression> {
    let rest = comment.split("qdgnn-analyze:").nth(1)?;
    let rest = rest.trim_start();
    let args = rest.strip_prefix("allow(")?;
    let rule: String = args
        .chars()
        .take_while(|c| c.is_alphanumeric())
        .collect();
    if rule.is_empty() {
        return None;
    }
    let reason = args.split_once("reason").and_then(|(_, r)| {
        let r = r.trim_start().strip_prefix('=')?.trim_start();
        let r = r.strip_prefix('"')?;
        let end = r.rfind('"')?;
        let text = r[..end].trim();
        if text.is_empty() {
            None
        } else {
            Some(text.to_string())
        }
    });
    Some(Suppression { rule, line, reason })
}

/// Marks tokens inside `#[cfg(test)]` / `#[test]` item bodies.
///
/// An attribute taints the next brace-delimited body — `mod tests { … }`,
/// `fn case() { … }` — when its bracket group mentions the identifier
/// `test` *positively*, i.e. not underneath a `not(…)` scope. That
/// covers `#[test]`, `#[cfg(test)]`, and the combinators
/// `#[cfg(all(test, …))]` / `#[cfg(any(test, …))]` (with or without
/// sibling `not(…)` clauses), while `#[cfg(not(test))]` stays live
/// code. A top-level `;` before the `{` aborts (attribute on a
/// brace-less item).
fn mark_test_regions(toks: &mut [Tok]) {
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "#" && toks[i].kind == TokKind::Punct {
            // Skip inner-attribute bang: #![…]
            let mut j = i + 1;
            if j < toks.len() && toks[j].text == "!" {
                j += 1;
            }
            if j < toks.len() && toks[j].text == "[" {
                // Collect the attribute's bracket group, tracking paren
                // nesting so `not(…)` scopes can be recognized: `test`
                // counts only outside every `not(…)`.
                let mut brackets = 1;
                let mut has_test = false;
                let mut paren_depth = 0u32;
                let mut not_scopes: Vec<u32> = Vec::new();
                let mut prev_was_not = false;
                let mut k = j + 1;
                while k < toks.len() && brackets > 0 {
                    let was_not = prev_was_not;
                    prev_was_not = false;
                    match toks[k].text.as_str() {
                        "[" => brackets += 1,
                        "]" => brackets -= 1,
                        "(" => {
                            paren_depth += 1;
                            if was_not {
                                not_scopes.push(paren_depth);
                            }
                        }
                        ")" => {
                            if not_scopes.last() == Some(&paren_depth) {
                                not_scopes.pop();
                            }
                            paren_depth = paren_depth.saturating_sub(1);
                        }
                        "test" if toks[k].kind == TokKind::Ident && not_scopes.is_empty() => {
                            has_test = true;
                        }
                        "not" if toks[k].kind == TokKind::Ident => prev_was_not = true,
                        _ => {}
                    }
                    k += 1;
                }
                if has_test {
                    // Find the item body: the first `{` before any
                    // top-level `;`.
                    let mut m = k;
                    let mut parens = 0i32;
                    while m < toks.len() {
                        match toks[m].text.as_str() {
                            "(" | "[" => parens += 1,
                            ")" | "]" => parens -= 1,
                            ";" if parens == 0 => break,
                            "{" if parens == 0 => {
                                let open_depth = toks[m].depth;
                                let mut e = m + 1;
                                while e < toks.len()
                                    && !(toks[e].text == "}" && toks[e].depth == open_depth)
                                {
                                    e += 1;
                                }
                                let end = e.min(toks.len() - 1);
                                for t in &mut toks[m..=end] {
                                    t.in_test = true;
                                }
                                break;
                            }
                            _ => {}
                        }
                        m += 1;
                    }
                }
                i = k;
                continue;
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_produce_no_rule_tokens() {
        let sf = SourceFile::scan(
            "x.rs",
            r##"
// a panic! in a comment
/* unwrap() in /* nested */ block */
fn f() {
    let s = "panic!(\"quoted\")";
    let r = r#"unwrap() raw "str" body"#;
    let c = '\'';
}
"##,
        );
        assert!(sf.toks.iter().all(|t| t.text != "panic" && t.text != "unwrap"));
        // The `(` from the char literal line must not leak.
        assert!(sf.toks.iter().filter(|t| t.kind == TokKind::Str).count() == 2);
    }

    #[test]
    fn depth_pairs_match_and_lines_advance() {
        let sf = SourceFile::scan("x.rs", "fn f() {\n    { let x = 1; }\n}\n");
        let opens: Vec<&Tok> = sf.toks.iter().filter(|t| t.text == "{").collect();
        let closes: Vec<&Tok> = sf.toks.iter().filter(|t| t.text == "}").collect();
        assert_eq!(opens.len(), 2);
        assert_eq!(opens[0].depth, 0);
        assert_eq!(opens[1].depth, 1);
        assert_eq!(closes[0].depth, 1);
        assert_eq!(closes[1].depth, 0);
        assert_eq!(closes[1].line, 3);
    }

    #[test]
    fn cfg_test_bodies_are_marked() {
        let src = "
fn live() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn t() { y.unwrap(); }
}
fn live2() { z.unwrap(); }
";
        let sf = SourceFile::scan("x.rs", src);
        let unwraps: Vec<&Tok> = sf.toks.iter().filter(|t| t.text == "unwrap").collect();
        assert_eq!(unwraps.len(), 3);
        assert!(!unwraps[0].in_test);
        assert!(unwraps[1].in_test);
        assert!(!unwraps[2].in_test);
    }

    #[test]
    fn cfg_not_test_stays_live() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }\n";
        let sf = SourceFile::scan("x.rs", src);
        assert!(sf.toks.iter().filter(|t| t.text == "unwrap").all(|t| !t.in_test));
    }

    #[test]
    fn cfg_all_and_any_combinators_are_test_regions() {
        for attr in [
            "#[cfg(all(test, feature = \"chaos\"))]",
            "#[cfg(any(test, feature = \"chaos\"))]",
            "#[cfg(all(test, not(feature = \"chaos\")))]",
        ] {
            let src = format!("{attr}\nmod helpers {{ fn t() {{ x.unwrap(); }} }}\nfn live() {{ y.unwrap(); }}\n");
            let sf = SourceFile::scan("x.rs", &src);
            let unwraps: Vec<&Tok> = sf.toks.iter().filter(|t| t.text == "unwrap").collect();
            assert_eq!(unwraps.len(), 2, "{attr}");
            assert!(unwraps[0].in_test, "{attr}: combinator body must be a test region");
            assert!(!unwraps[1].in_test, "{attr}: following item must stay live");
        }
    }

    #[test]
    fn cfg_not_wrapping_combinators_stays_live() {
        for attr in ["#[cfg(not(all(test, unix)))]", "#[cfg(not(any(test, unix)))]"] {
            let src = format!("{attr}\nfn live() {{ x.unwrap(); }}\n");
            let sf = SourceFile::scan("x.rs", &src);
            assert!(
                sf.toks.iter().filter(|t| t.text == "unwrap").all(|t| !t.in_test),
                "{attr}: negated test cfg must stay live"
            );
        }
    }

    #[test]
    fn raw_identifiers_lex_as_single_tokens() {
        let sf = SourceFile::scan("x.rs", "fn r#fn() { r#impl(); let r#let = 1; }\n");
        let idents: Vec<&str> = sf
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["fn", "r#fn", "r#impl", "let", "r#let"]);
        // No stray `#` token may leak out of a raw identifier, or the
        // test-region scanner could misparse it as an attribute start.
        assert!(sf.toks.iter().all(|t| t.text != "#"));
    }

    #[test]
    fn raw_strings_still_lex_after_raw_identifier_support() {
        let sf = SourceFile::scan("x.rs", "let a = r#\"panic!() inside\"#; let b = r#ident;\n");
        assert_eq!(sf.toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
        assert!(sf.toks.iter().any(|t| t.text == "r#ident"));
        assert!(sf.toks.iter().all(|t| t.text != "panic"));
    }

    #[test]
    fn lifetimes_do_not_swallow_code() {
        let sf = SourceFile::scan("x.rs", "fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert!(sf.toks.iter().any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert!(sf.toks.iter().any(|t| t.text == "str"));
    }

    #[test]
    fn suppressions_parse_with_and_without_reason() {
        let src = "
let a = x.unwrap(); // qdgnn-analyze: allow(QD001, reason = \"bounded by construction\")
// qdgnn-analyze: allow(QD002)
let b = y;
";
        let sf = SourceFile::scan("x.rs", src);
        assert_eq!(sf.suppressions.len(), 2);
        assert_eq!(sf.suppressions[0].rule, "QD001");
        assert_eq!(sf.suppressions[0].reason.as_deref(), Some("bounded by construction"));
        assert_eq!(sf.suppressions[1].rule, "QD002");
        assert!(sf.suppressions[1].reason.is_none());
    }

    #[test]
    fn doc_comments_do_not_register_suppressions() {
        let src = "/// like `// qdgnn-analyze: allow(QD001, reason = \"x\")`\n//! allow(QD002)\nfn f() {}\n";
        let sf = SourceFile::scan("x.rs", src);
        assert!(sf.suppressions.is_empty(), "{:?}", sf.suppressions);
    }

    #[test]
    fn float_exponent_literals_are_single_tokens() {
        let sf = SourceFile::scan("x.rs", "let x = 1.5e-3f32 + 0x1F + 2.0;\n");
        let nums: Vec<&str> = sf
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["1.5e-3f32", "0x1F", "2.0"]);
    }

    #[test]
    fn integration_test_files_are_all_test() {
        let sf = SourceFile::scan("tests/end_to_end.rs", "fn f() { x.unwrap(); }\n");
        assert!(sf.all_test);
        assert!(sf.toks.iter().all(|t| t.in_test));
    }
}
