//! The lint rules (QD001–QD013).
//!
//! Each rule is a pure function from scanned [`SourceFile`]s to
//! [`Finding`]s; suppression handling and ordering live in
//! [`crate::analyze_sources`]. Every rule carries self-tests on
//! embedded good/bad snippets at the bottom of this file.

use crate::callgraph::{self, CallGraph};
use crate::lexer::{SourceFile, TokKind};
use crate::symbols::FnSym;

/// One rule violation.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule id from the catalog, e.g. `QD001`.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
    /// The trimmed offending source line.
    pub snippet: String,
}

fn finding(rule: &'static str, sf: &SourceFile, line: u32, message: String) -> Finding {
    Finding { rule, path: sf.path.clone(), line, message, snippet: sf.snippet(line) }
}

/// Files where the full QD001 rule (panic family + direct indexing)
/// applies: the online serving and persistence paths.
const QD001_SERVING: &[&str] = &[
    "crates/core/src/serve.rs",
    "crates/core/src/persist.rs",
    "crates/core/src/inputs.rs",
    "crates/core/src/identify.rs",
    // The serving engine runs indefinitely against untrusted callers:
    // every lib file of qdgnn-serve is a serving path.
    "crates/serve/src/lib.rs",
    "crates/serve/src/engine.rs",
    "crates/serve/src/batcher.rs",
    "crates/serve/src/config.rs",
    "crates/serve/src/error.rs",
    "crates/serve/src/trace.rs",
    "crates/serve/src/http.rs",
];

/// Keywords that may legitimately precede `[` without it being an
/// indexing expression (array literals, types, closures).
const NON_RECEIVER_KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "break",
    "continue", "in", "let", "mut", "ref", "move", "as", "use", "pub",
    "fn", "impl", "struct", "enum", "trait", "type", "where", "unsafe",
    "dyn", "static", "const", "crate", "super", "mod", "extern",
];

/// QD001: no `unwrap`/`expect`/`panic!`/`unreachable!`/direct indexing
/// on serving and persistence paths; panic-family subset on model code.
pub fn qd001(sf: &SourceFile) -> Vec<Finding> {
    let full = QD001_SERVING.iter().any(|p| sf.path.ends_with(p));
    let models = sf.path.contains("crates/core/src/models/");
    if !full && !models {
        return Vec::new();
    }
    let toks = &sf.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.in_test {
            continue;
        }
        match t.kind {
            TokKind::Ident => {
                let prev_dot = i > 0 && toks[i - 1].text == ".";
                let next_bang = toks.get(i + 1).is_some_and(|n| n.text == "!");
                match t.text.as_str() {
                    "unwrap" | "expect" if prev_dot => out.push(finding(
                        "QD001",
                        sf,
                        t.line,
                        format!(
                            "`.{}()` on a serving/persistence path — return a typed QdgnnError instead",
                            t.text
                        ),
                    )),
                    "panic" | "unreachable" | "todo" | "unimplemented" if next_bang => {
                        out.push(finding(
                            "QD001",
                            sf,
                            t.line,
                            format!(
                                "`{}!` on a serving/persistence path — the online query path must degrade via typed errors, never abort",
                                t.text
                            ),
                        ))
                    }
                    _ => {}
                }
            }
            TokKind::Punct if full && t.text == "[" && i > 0 => {
                let p = &toks[i - 1];
                let is_receiver = match p.kind {
                    TokKind::Ident => !NON_RECEIVER_KEYWORDS.contains(&p.text.as_str()),
                    TokKind::Punct => p.text == ")" || p.text == "]",
                    _ => false,
                };
                if is_receiver {
                    out.push(finding(
                        "QD001",
                        sf,
                        t.line,
                        format!(
                            "direct indexing `{}[…]` on a serving/persistence path — validate bounds and return a typed error",
                            p.text
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
    out
}

/// Is this token a float literal? (`.`-containing, `f32`/`f64`-suffixed,
/// or decimal-exponent numbers; hex literals are excluded.)
fn is_float_lit(sf: &SourceFile, idx: usize) -> bool {
    let Some(t) = sf.toks.get(idx) else { return false };
    if t.kind != TokKind::Num {
        return false;
    }
    let s = t.text.as_str();
    if s.starts_with("0x") || s.starts_with("0X") {
        return false;
    }
    s.contains('.')
        || s.ends_with("f32")
        || s.ends_with("f64")
        || s.contains('e')
        || s.contains('E')
}

/// QD002: no `==`/`!=` where either operand is a float literal.
pub fn qd002(sf: &SourceFile) -> Vec<Finding> {
    let toks = &sf.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.in_test || t.kind != TokKind::Punct || (t.text != "==" && t.text != "!=") {
            continue;
        }
        // Operand on the right may be negated: `== -0.5`.
        let right = if toks.get(i + 1).is_some_and(|n| n.text == "-") { i + 2 } else { i + 1 };
        let float = (i > 0 && is_float_lit(sf, i - 1)) || is_float_lit(sf, right);
        if float {
            out.push(finding(
                "QD002",
                sf,
                t.line,
                format!(
                    "exact float comparison `{}` against a float literal — use a tolerance, or suppress with a reason where an exact sentinel is intended",
                    t.text
                ),
            ));
        }
    }
    out
}

/// QD003: every `enum Op` variant registered on the tape must be
/// referenced by a finite-difference gradient check (an identifier
/// starting with `fd` whose normalized form contains the variant name)
/// in `tests/properties.rs`.
pub fn qd003(tape: &SourceFile, properties: Option<&SourceFile>) -> Vec<Finding> {
    let variants = op_variants(tape);
    let Some(props) = properties else {
        return variants
            .into_iter()
            .map(|(name, line)| {
                finding(
                    "QD003",
                    tape,
                    line,
                    format!(
                        "tape op `{name}` cannot be verified: tests/properties.rs not found"
                    ),
                )
            })
            .collect();
    };
    let fd_idents: Vec<String> = props
        .toks
        .iter()
        .filter(|t| t.kind == TokKind::Ident && t.text.starts_with("fd"))
        .map(|t| normalize(&t.text))
        .collect();
    variants
        .into_iter()
        .filter(|(name, _)| {
            let n = normalize(name);
            !fd_idents.iter().any(|id| id.contains(&n))
        })
        .map(|(name, line)| {
            finding(
                "QD003",
                tape,
                line,
                format!(
                    "tape op `{name}` has no finite-difference gradient check (expected an `fd_*` test referencing it in tests/properties.rs)"
                ),
            )
        })
        .collect()
}

fn normalize(s: &str) -> String {
    s.chars().filter(|c| *c != '_').flat_map(char::to_lowercase).collect()
}

/// Extracts `(variant_name, line)` pairs from `enum Op { … }`, skipping
/// the gradient-less `Leaf` variant and `#[…]` attribute contents.
fn op_variants(sf: &SourceFile) -> Vec<(String, u32)> {
    let toks = &sf.toks;
    let mut out = Vec::new();
    let mut i = 0;
    while i + 2 < toks.len() {
        if toks[i].text == "enum" && toks[i + 1].text == "Op" && toks[i + 2].text == "{" {
            let body_depth = toks[i + 2].depth;
            let mut j = i + 3;
            let mut expect_variant = true;
            // Parens don't change brace depth, so tuple-variant field
            // lists (`Add(usize, usize)`) need their own nesting count
            // to keep their commas from looking like variant separators.
            let mut parens = 0i32;
            while j < toks.len() {
                let t = &toks[j];
                if t.text == "}" && t.depth == body_depth {
                    break;
                }
                match t.text.as_str() {
                    "(" => parens += 1,
                    ")" => parens -= 1,
                    _ => {}
                }
                if t.text == "#" {
                    // Skip attribute bracket group (brackets don't
                    // affect brace depth, so track them here).
                    j += 1;
                    if toks.get(j).map(|n| n.text.as_str()) == Some("[") {
                        let mut brackets = 1;
                        j += 1;
                        while j < toks.len() && brackets > 0 {
                            match toks[j].text.as_str() {
                                "[" => brackets += 1,
                                "]" => brackets -= 1,
                                _ => {}
                            }
                            j += 1;
                        }
                    }
                    continue;
                }
                if t.text == "," && t.depth == body_depth + 1 && parens == 0 {
                    expect_variant = true;
                } else if expect_variant
                    && t.kind == TokKind::Ident
                    && t.depth == body_depth + 1
                    && parens == 0
                {
                    if t.text != "Leaf" {
                        out.push((t.text.clone(), t.line));
                    }
                    expect_variant = false;
                }
                j += 1;
            }
            break;
        }
        i += 1;
    }
    out
}

/// Paths covered by the resume bit-identity guarantee.
const QD004_PATHS: &[&str] = &["crates/core/src/train.rs", "crates/tensor/src/tape.rs"];

/// Identifiers that introduce nondeterminism. `Instant::now` is
/// deliberately absent here: it cannot break replay determinism, but
/// QD007 bans it on library paths anyway so wall timing stays injectable.
const QD004_BANNED: &[&str] = &["SystemTime", "thread_rng", "from_entropy"];

/// QD004: no wall-clock time or entropy-seeded RNG on paths covered by
/// the crash-resume bit-identity guarantee.
pub fn qd004(sf: &SourceFile) -> Vec<Finding> {
    if !QD004_PATHS.iter().any(|p| sf.path.ends_with(p)) {
        return Vec::new();
    }
    sf.toks
        .iter()
        .filter(|t| {
            !t.in_test && t.kind == TokKind::Ident && QD004_BANNED.contains(&t.text.as_str())
        })
        .map(|t| {
            finding(
                "QD004",
                sf,
                t.line,
                format!(
                    "`{}` on a resume-deterministic path — training must replay bit-identically from a checkpoint; seed explicitly instead",
                    t.text
                ),
            )
        })
        .collect()
}

/// Paths where the parallel trainer / tiled matmul use locks.
const QD005_PATHS: &[&str] = &[
    "crates/core/src/train.rs",
    "crates/tensor/src/dense.rs",
    "crates/tensor/src/sparse.rs",
];

/// QD005: flag a second lock acquisition while a guard is live, and
/// let-bound guards still live when a `crossbeam::thread::scope` join
/// runs.
///
/// Heuristic model: `let`-bound guards live until their enclosing block
/// closes (or an explicit `drop(…)`); guards acquired as temporaries
/// (`m.lock().push(x)`) die at the end of their statement.
pub fn qd005(sf: &SourceFile) -> Vec<Finding> {
    if !QD005_PATHS.iter().any(|p| sf.path.ends_with(p)) {
        return Vec::new();
    }
    // `.read()`/`.write()` only count as lock methods when the file
    // actually uses an RwLock, so io traits don't trip the rule.
    let has_rwlock = sf.toks.iter().any(|t| t.text == "RwLock");

    struct Guard {
        depth: u32,
        temp: bool,
    }
    let mut guards: Vec<Guard> = Vec::new();
    let mut stmt_has_let = false;
    let mut out = Vec::new();
    let toks = &sf.toks;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.in_test {
            continue;
        }
        match (t.kind, t.text.as_str()) {
            (TokKind::Ident, "let") => stmt_has_let = true,
            (TokKind::Punct, ";") => {
                guards.retain(|g| !(g.temp && t.depth <= g.depth));
                stmt_has_let = false;
            }
            (TokKind::Punct, "{") => stmt_has_let = false,
            (TokKind::Punct, "}") => {
                guards.retain(|g| g.depth <= t.depth);
                stmt_has_let = false;
            }
            (TokKind::Ident, "drop")
                if toks.get(i + 1).is_some_and(|n| n.text == "(") =>
            {
                guards.pop();
            }
            (TokKind::Ident, m @ ("lock" | "read" | "write"))
                if i > 0
                    && toks[i - 1].text == "."
                    && toks.get(i + 1).is_some_and(|n| n.text == "(")
                    && (m == "lock" || has_rwlock) =>
            {
                if !guards.is_empty() {
                    out.push(finding(
                        "QD005",
                        sf,
                        t.line,
                        format!(
                            "`.{m}()` while another lock guard is live — nested acquisitions deadlock under load; narrow the first guard's scope"
                        ),
                    ));
                }
                guards.push(Guard { depth: t.depth, temp: !stmt_has_let });
            }
            (TokKind::Ident, "scope" | "crossbeam") if guards.iter().any(|g| !g.temp) => {
                out.push(finding(
                    "QD005",
                    sf,
                    t.line,
                    "lock guard held across a thread-scope join — worker threads taking the same lock will deadlock".to_string(),
                ));
            }
            _ => {}
        }
    }
    out
}

/// Library crates where stdout/stderr printing is banned outside tests:
/// these are linked into servers and harnesses that own their output
/// streams; diagnostics must flow through qdgnn-obs events/counters or
/// typed errors instead.
const QD006_CRATES: &[&str] = &[
    "crates/core/src/",
    "crates/tensor/src/",
    "crates/nn/src/",
    "crates/graph/src/",
    // The serve library is linked into servers; its binary lives at
    // crates/serve/bin/ (outside src/) and owns its streams.
    "crates/serve/src/",
];

/// The print-family macros QD006 bans.
const QD006_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];

/// QD006: no `println!`/`eprintln!`/`print!`/`eprint!`/`dbg!` on library
/// paths (core, tensor, nn, graph) outside tests.
pub fn qd006(sf: &SourceFile) -> Vec<Finding> {
    if !QD006_CRATES.iter().any(|p| sf.path.contains(p)) {
        return Vec::new();
    }
    let toks = &sf.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.in_test || t.kind != TokKind::Ident || !QD006_MACROS.contains(&t.text.as_str()) {
            continue;
        }
        // Macro invocation only: `println` followed by `!`, and not a
        // path segment like `writer::println`.
        if toks.get(i + 1).is_none_or(|n| n.text != "!") {
            continue;
        }
        if i > 0 && toks[i - 1].text == "::" {
            continue;
        }
        out.push(finding(
            "QD006",
            sf,
            t.line,
            format!(
                "`{}!` in library code — record a qdgnn-obs event/counter or return a typed error; binaries own the output streams",
                t.text
            ),
        ));
    }
    out
}

/// Library crates where raw `Instant::now()` is banned outside tests:
/// wall timing there must flow through the injectable qdgnn-obs clock
/// (`qdgnn_obs::clock::wall_micros()` or a `Clock` handle) so fake-clock
/// tests can pin every reported duration. The obs crate itself is exempt
/// by omission — its `MonotonicClock` is the one sanctioned caller.
const QD007_CRATES: &[&str] = &[
    "crates/core/src/",
    "crates/tensor/src/",
    "crates/nn/src/",
    "crates/graph/src/",
    // Engine batching deadlines must follow the injected Clock, never
    // a raw Instant — that is what makes the fake-clock tests honest.
    "crates/serve/src/",
];

/// QD007: no raw `Instant::now()` on library paths (core, tensor, nn,
/// graph) outside tests.
pub fn qd007(sf: &SourceFile) -> Vec<Finding> {
    if !QD007_CRATES.iter().any(|p| sf.path.contains(p)) {
        return Vec::new();
    }
    let toks = &sf.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.in_test || t.kind != TokKind::Ident || t.text != "Instant" {
            continue;
        }
        // Call site only: `Instant` followed by `::` `now`. Bare type
        // mentions (struct fields, imports) stay legal so `Instant`-typed
        // plumbing can exist where the value itself is injected.
        if toks.get(i + 1).is_some_and(|n| n.text == "::")
            && toks.get(i + 2).is_some_and(|n| n.text == "now")
        {
            out.push(finding(
                "QD007",
                sf,
                t.line,
                "`Instant::now()` in library code — read the injectable obs wall \
                 clock (`qdgnn_obs::clock::wall_micros()`) so fake-clock tests \
                 can pin this timing"
                    .to_string(),
            ));
        }
    }
    out
}

/// Paths where QD008 bans unbounded blocking primitives: the serving
/// library is the one place threads wait on each other under production
/// load, so every block there must carry a timeout (or a reasoned
/// suppression) — an unbounded `Condvar::wait`, `Receiver::recv`, or
/// bare `Pending::wait` turns one stuck worker into a stuck caller.
const QD008_CRATES: &[&str] = &["crates/serve/src/"];

/// The method names QD008 bans when invoked bare. The bounded variants
/// (`wait_timeout`, `recv_timeout`, `try_recv`, `try_wait`) lex as
/// different identifiers and stay legal.
const QD008_METHODS: &[&str] = &["wait", "recv"];

/// QD008: no unbounded blocking primitives (`Condvar::wait` without a
/// timeout, `Receiver::recv`, bare `Pending::wait`) in serving library
/// code outside tests. Use the `_timeout` variants — or suppress with a
/// reason where indefinite blocking is the documented contract.
pub fn qd008(sf: &SourceFile) -> Vec<Finding> {
    if !QD008_CRATES.iter().any(|p| sf.path.contains(p)) {
        return Vec::new();
    }
    let toks = &sf.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.in_test || t.kind != TokKind::Ident || !QD008_METHODS.contains(&t.text.as_str()) {
            continue;
        }
        // Invocation only: `.wait(` / `::recv(` — receiver or path call
        // followed by an argument list. Definitions (`fn wait(`) and
        // bare mentions (doc links, field names) stay legal.
        let invoked = i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "::");
        if !invoked || toks.get(i + 1).is_none_or(|n| n.text != "(") {
            continue;
        }
        out.push(finding(
            "QD008",
            sf,
            t.line,
            format!(
                "unbounded blocking `{}()` in serving code — a stuck worker becomes a stuck caller; use the `_timeout` variant (or suppress with a reason where indefinite blocking is the documented contract)",
                t.text
            ),
        ));
    }
    out
}

/// Recorder functions whose first string-literal argument is a metric
/// name subject to the QD013 catalog (`span` is the macro form).
const QD013_RECORDERS: &[&str] = &[
    "counter", "counter_with", "event", "flight_event", "gauge", "observe", "observe_with",
    "op_timer", "series_observe", "span", "trace",
];

/// All string literals on one source line, in order. The lexer drops
/// literal contents, so QD013 re-reads them from the raw line; escape
/// pairs are kept verbatim (metric names contain none).
fn string_literals(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur: Option<String> = None;
    let mut chars = line.chars();
    while let Some(c) = chars.next() {
        match (&mut cur, c) {
            (Some(s), '"') => {
                out.push(std::mem::take(s));
                cur = None;
            }
            (Some(s), '\\') => {
                s.push('\\');
                if let Some(e) = chars.next() {
                    s.push(e);
                }
            }
            (Some(s), c) => s.push(c),
            (None, '"') => cur = Some(String::new()),
            (None, _) => {}
        }
    }
    out
}

/// The `METRIC_NAMES` literals from `crates/obs/src/names.rs`: every
/// string between the table opener and its closing `];`.
fn qd013_catalog(nf: &SourceFile) -> std::collections::BTreeSet<String> {
    let mut allowed = std::collections::BTreeSet::new();
    let mut in_table = false;
    for l in &nf.src_lines {
        if !in_table {
            in_table = l.contains("METRIC_NAMES");
            continue;
        }
        if l.trim_start().starts_with("];") {
            break;
        }
        allowed.extend(string_literals(l));
    }
    allowed
}

/// QD013: every metric-name literal handed to a recorder
/// (`counter`/`gauge`/`observe`/`event`/`trace`/`op_timer`/`span!`, the
/// `_with` variants, and the run-registry forms
/// `series_observe`/`flight_event`) must appear in the checked-in catalog
/// (`crates/obs/src/names.rs`). Cross-file: needs the catalog source,
/// so it runs from [`crate::analyze_sources`], not [`check_file`].
/// Method calls (`snap.counter(…)` lookups), test code, files outside
/// `src/`, and dynamically-built names are out of scope.
pub fn qd013(files: &[SourceFile]) -> Vec<Finding> {
    let names = files.iter().find(|f| f.path.ends_with("crates/obs/src/names.rs"));
    // (site, recorder, extracted name) for every literal-named record call.
    let mut sites: Vec<(Finding, String)> = Vec::new();
    for sf in files {
        if !sf.path.contains("/src/") || sf.path.ends_with("crates/obs/src/names.rs") {
            continue;
        }
        let toks = &sf.toks;
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.in_test
                || t.kind != TokKind::Ident
                || !QD013_RECORDERS.contains(&t.text.as_str())
            {
                continue;
            }
            if i > 0 && toks[i - 1].text == "." {
                continue; // method call (e.g. snapshot lookups), not a recorder
            }
            // `span` is the macro form `span!(…)`; the rest are calls.
            let open = if t.text == "span" {
                if toks.get(i + 1).is_none_or(|n| n.text != "!") {
                    continue;
                }
                i + 2
            } else {
                i + 1
            };
            if toks.get(open).is_none_or(|o| o.text != "(") {
                continue;
            }
            let Some(arg) = toks.get(open + 1) else { continue };
            if arg.kind != TokKind::Str {
                continue; // dynamically-built name: not statically checkable
            }
            // The lexer drops literal contents; recover the name from the
            // raw source line by position among that line's literals.
            let nth = toks[..=open + 1]
                .iter()
                .filter(|x| x.kind == TokKind::Str && x.line == arg.line)
                .count()
                .saturating_sub(1);
            let Some(name) = sf
                .src_lines
                .get(arg.line as usize - 1)
                .map(|l| string_literals(l))
                .and_then(|ls| ls.get(nth).cloned())
            else {
                continue;
            };
            let f = finding(
                "QD013",
                sf,
                t.line,
                format!(
                    "metric name \"{name}\" recorded by `{}` is not in the catalog — add it to METRIC_NAMES in crates/obs/src/names.rs and to crates/obs/METRICS.md",
                    t.text
                ),
            );
            sites.push((f, name));
        }
    }
    let Some(nf) = names else {
        // No catalog at all: one finding, but only when there is
        // actually a recorded name it would have to vouch for.
        if sites.is_empty() {
            return Vec::new();
        }
        return vec![Finding {
            rule: "QD013",
            path: "crates/obs/src/names.rs".into(),
            line: 1,
            message: "metric-name catalog missing: crates/obs/src/names.rs must define \
                      METRIC_NAMES so recorded names can be checked"
                .into(),
            snippet: String::new(),
        }];
    };
    let allowed = qd013_catalog(nf);
    sites.into_iter().filter(|(_, name)| !allowed.contains(name)).map(|(f, _)| f).collect()
}

/// Runs every per-file rule on one source file.
pub fn check_file(sf: &SourceFile) -> Vec<Finding> {
    let mut out = qd001(sf);
    out.extend(qd002(sf));
    out.extend(qd004(sf));
    out.extend(qd005(sf));
    out.extend(qd006(sf));
    out.extend(qd007(sf));
    out.extend(qd008(sf));
    out
}

/// Every rule id this engine implements, in catalog order. The
/// `--self-check` CLI mode (and CI) asserts this list and the catalog
/// agree exactly, so a rule can't land without documentation or vice
/// versa. QD000 and QD012 are meta-rules implemented in
/// [`crate::analyze_sources`]; QD003 is the cross-file gradient-check
/// rule; QD009–QD011 are the interprocedural rules below.
pub const IMPLEMENTED_IDS: &[&str] = &[
    "QD000", "QD001", "QD002", "QD003", "QD004", "QD005", "QD006", "QD007",
    "QD008", "QD009", "QD010", "QD011", "QD012", "QD013",
];

/// Crates whose panic sites are in scope for QD009. Panics in
/// `crates/tensor` / `crates/nn` are bounded-by-construction shape
/// asserts on the training path and stay QD001's (per-file) problem.
const QD009_PANIC_CRATES: &[&str] = &["crates/serve/", "crates/core/", "crates/obs/"];

/// Is this function a serving-path entry point for QD009?
fn qd009_entry(f: &FnSym) -> bool {
    f.file.starts_with("crates/serve/src/")
        || (f.owner.as_deref() == Some("OnlineStage") && f.name.starts_with("try_"))
        || f.name == "predict_scores_batch"
}

fn snippet_at(files: &[SourceFile], path: &str, line: u32) -> String {
    files
        .iter()
        .find(|s| s.path == path)
        .map(|s| s.snippet(line))
        .unwrap_or_default()
}

/// QD009: transitive panic-reachability. Walks shortest call chains
/// from every serving entry point; a `panic!`-family macro or
/// `unwrap`/`expect` call in any transitively-reached function (in the
/// serve/core/obs crates) is reported at the panic site, carrying one
/// shortest entry chain in the message. Direct panics (chain length 1)
/// are QD001's job and are skipped here.
pub fn qd009(files: &[SourceFile], g: &CallGraph) -> Vec<Finding> {
    use std::collections::BTreeMap;
    // Panic site → (chain labels, panic kind). Keeps the shortest chain
    // over all entries, ties broken lexicographically, so output is
    // deterministic and one suppression at the site covers every chain.
    let mut best: BTreeMap<(String, u32), (Vec<String>, String)> = BTreeMap::new();
    let mut entries: Vec<usize> =
        (0..g.fns.len()).filter(|&i| qd009_entry(&g.fns[i])).collect();
    entries.sort_by_key(|&i| g.label(i));
    for e in entries {
        let pred = g.shortest_chains(e);
        for (&target, _) in pred.iter() {
            if target == e {
                continue;
            }
            let f = &g.fns[target];
            if !QD009_PANIC_CRATES.iter().any(|c| f.file.starts_with(c)) {
                continue;
            }
            for p in &f.panics {
                let chain = g.chain_labels(e, target, &pred);
                let key = (f.file.clone(), p.line);
                let better = match best.get(&key) {
                    None => true,
                    Some((old, _)) => {
                        chain.len() < old.len() || (chain.len() == old.len() && chain < *old)
                    }
                };
                if better {
                    best.insert(key, (chain, p.what.clone()));
                }
            }
        }
    }
    best.into_iter()
        .map(|((path, line), (chain, what))| Finding {
            rule: "QD009",
            snippet: snippet_at(files, &path, line),
            message: format!(
                "`{}` here is reachable from serving entry point `{}` via call chain `{}` — a panic anywhere on this chain aborts the engine; return a typed error instead (or suppress here with the reason this site can in fact never panic)",
                what,
                chain[0],
                chain.join(" → "),
            ),
            path,
            line,
        })
        .collect()
}

/// QD010: static lock-order inversion. Builds the workspace
/// acquired-after graph (including acquisitions reached through calls
/// made while a guard is held) and reports every edge that sits on a
/// cycle, together with a witness edge for the opposite order.
pub fn qd010(files: &[SourceFile], g: &CallGraph) -> Vec<Finding> {
    use std::collections::BTreeSet;
    let edges = callgraph::lock_order_edges(g);
    let reach = callgraph::lock_reachability(&edges);
    let mut reported: BTreeSet<(String, String)> = BTreeSet::new();
    let mut out = Vec::new();
    for e in &edges {
        if !reach.get(&e.to).is_some_and(|r| r.contains(&e.from)) {
            continue; // this edge is not on a cycle
        }
        let pair = if e.from < e.to {
            (e.from.clone(), e.to.clone())
        } else {
            (e.to.clone(), e.from.clone())
        };
        if !reported.insert(pair) {
            continue;
        }
        // A witness for the reverse direction: an edge out of `e.to`
        // that leads back to `e.from`.
        let witness = edges.iter().find(|w| {
            w.from == e.to
                && (w.to == e.from
                    || reach.get(&w.to).is_some_and(|r| r.contains(&e.from)))
        });
        let via = |v: &Option<String>| match v {
            Some(callee) => format!(" (via call to `{callee}`)"),
            None => String::new(),
        };
        let wtxt = match witness {
            Some(w) => format!(
                "`{}` is acquired while holding `{}` at {}:{}{}",
                w.to, w.from, w.file, w.line, via(&w.via)
            ),
            None => format!("`{}` transitively reaches `{}`", e.to, e.from),
        };
        out.push(Finding {
            rule: "QD010",
            path: e.file.clone(),
            line: e.line,
            message: format!(
                "lock-order inversion: `{}` is acquired while holding `{}` here{}, but {} — two threads interleaving these orders deadlock; impose one global order (or suppress with the reason the orders can never interleave)",
                e.to, e.from, via(&e.via), wtxt
            ),
            snippet: snippet_at(files, &e.file, e.line),
        });
    }
    out.sort_by(|a, b| (a.path.as_str(), a.line).cmp(&(b.path.as_str(), b.line)));
    out
}

/// QD011: blocking while holding a lock guard — directly, or through a
/// call whose transitive closure contains a blocking site.
pub fn qd011(files: &[SourceFile], g: &CallGraph) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in &g.fns {
        for b in &f.blocks {
            if b.held.is_empty() {
                continue;
            }
            out.push(Finding {
                rule: "QD011",
                path: f.file.clone(),
                line: b.line,
                message: format!(
                    "blocking `{}()` while holding guard(s) `{}` — every thread needing the lock stalls for the full block; drop the guard first (condvar waits that release the guard are the sanctioned suppression)",
                    b.what,
                    b.held.join("`, `"),
                ),
                snippet: snippet_at(files, &f.file, b.line),
            });
        }
        for call in &f.calls {
            if call.held.is_empty() {
                continue;
            }
            for callee in
                g.resolve(&call.name, call.qualifier.as_deref(), call.method, f.owner.as_deref())
            {
                // One finding per call site, naming the first (sorted)
                // transitively-reached blocking site as the exemplar.
                if let Some(blk) = g.blocks_transitively(callee).iter().next() {
                    out.push(Finding {
                        rule: "QD011",
                        path: f.file.clone(),
                        line: call.line,
                        message: format!(
                            "call to `{}` while holding guard(s) `{}` reaches blocking `{}()` at {}:{} — every thread needing the lock stalls for the full block; drop the guard before the call",
                            call.name,
                            call.held.join("`, `"),
                            blk.what,
                            blk.file,
                            blk.line,
                        ),
                        snippet: snippet_at(files, &f.file, call.line),
                    });
                    break;
                }
            }
        }
    }
    out.sort_by(|a, b| (a.path.as_str(), a.line).cmp(&(b.path.as_str(), b.line)));
    out.dedup_by(|a, b| a.path == b.path && a.line == b.line && a.message == b.message);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::SourceFile;

    fn scan(path: &str, src: &str) -> SourceFile {
        SourceFile::scan(path, src)
    }

    // ---- QD001 ----

    #[test]
    fn qd001_bad_panic_family_on_serving_path() {
        let sf = scan(
            "crates/core/src/serve.rs",
            r#"
fn f(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = x.expect("msg");
    if a == 0 { panic!("boom"); }
    unreachable!()
}
"#,
        );
        let f = qd001(&sf);
        assert_eq!(f.len(), 4, "{f:?}");
        assert!(f.iter().all(|f| f.rule == "QD001"));
        assert_eq!(f[0].line, 3);
        assert!(f[0].snippet.contains("unwrap"));
    }

    #[test]
    fn qd001_bad_indexing_on_serving_path() {
        let sf = scan(
            "crates/core/src/persist.rs",
            "fn f(v: &[f32], i: usize) -> f32 { v[i] + g()[0] }\n",
        );
        let f = qd001(&sf);
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn qd001_good_no_false_positives() {
        let sf = scan(
            "crates/core/src/serve.rs",
            r#"
#[derive(Debug)]
struct S { xs: Vec<f32> }
fn f(v: &[f32], i: usize) -> Result<f32, ()> {
    // unwrap() discussed in a comment is fine
    let msg = "do not unwrap() in serving";
    let arr = [0u8; 4];
    let y = vec![1, 2];
    let first = v.get(i).copied().ok_or(())?;
    let or = Some(1).unwrap_or(0) + Some(2).unwrap_or_default();
    Ok(first + msg.len() as f32 + arr.len() as f32 + y.len() as f32 + or as f32)
}
"#,
        );
        assert!(qd001(&sf).is_empty(), "{:?}", qd001(&sf));
    }

    #[test]
    fn qd001_models_get_panic_subset_only() {
        let sf = scan(
            "crates/core/src/models/blocks.rs",
            "fn f(v: &[f32]) -> f32 { let x = v[0]; x }\nfn g() { panic!(\"no\"); }\n",
        );
        let f = qd001(&sf);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("panic"));
    }

    #[test]
    fn qd001_test_code_is_exempt() {
        let sf = scan(
            "crates/core/src/serve.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { None::<u32>.unwrap(); }\n}\n",
        );
        assert!(qd001(&sf).is_empty());
    }

    #[test]
    fn qd001_not_enforced_elsewhere() {
        let sf = scan("crates/tensor/src/dense.rs", "fn f() { None::<u32>.unwrap(); }\n");
        assert!(qd001(&sf).is_empty());
    }

    // ---- QD002 ----

    #[test]
    fn qd002_bad_float_equality() {
        let sf = scan(
            "crates/x/src/a.rs",
            "fn f(x: f32) -> bool { x == 0.0 || x != 1e-3 || -0.5 == x || x == -2.0f32 }\n",
        );
        assert_eq!(qd002(&sf).len(), 4);
    }

    #[test]
    fn qd002_good_integers_and_tolerances() {
        let sf = scan(
            "crates/x/src/a.rs",
            "fn f(x: f32, n: usize) -> bool { n == 0 || n != 0xFF || (x - 0.5).abs() < 1e-6 }\n",
        );
        assert!(qd002(&sf).is_empty(), "{:?}", qd002(&sf));
    }

    // ---- QD003 ----

    const TAPE_SNIPPET: &str = "
pub enum Op {
    Leaf,
    Matmul { a: usize, b: usize },
    Add(usize, usize),
    #[allow(dead_code)]
    ColMean { x: usize },
}
";

    #[test]
    fn qd003_bad_uncovered_op() {
        let tape = scan("crates/tensor/src/tape.rs", TAPE_SNIPPET);
        let props = scan("tests/properties.rs", "fn fd_matmul() {}\nfn fd_add() {}\n");
        let f = qd003(&tape, Some(&props));
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("ColMean"));
    }

    #[test]
    fn qd003_good_all_covered() {
        let tape = scan("crates/tensor/src/tape.rs", TAPE_SNIPPET);
        let props = scan(
            "tests/properties.rs",
            "fn fd_matmul() {}\nfn fd_add() {}\nfn fd_col_mean() {}\n",
        );
        assert!(qd003(&tape, Some(&props)).is_empty());
    }

    #[test]
    fn qd003_missing_properties_reports_every_op() {
        let tape = scan("crates/tensor/src/tape.rs", TAPE_SNIPPET);
        assert_eq!(qd003(&tape, None).len(), 3);
    }

    // ---- QD004 ----

    #[test]
    fn qd004_bad_wall_clock_and_entropy() {
        let sf = scan(
            "crates/core/src/train.rs",
            "fn f() {\n    let t = SystemTime::now();\n    let mut r = thread_rng();\n    let s = StdRng::from_entropy();\n}\n",
        );
        assert_eq!(qd004(&sf).len(), 3);
    }

    #[test]
    fn qd004_good_instant_and_seeded() {
        let sf = scan(
            "crates/core/src/train.rs",
            "fn f(seed: u64) {\n    let t = Instant::now();\n    let r = StdRng::seed_from_u64(seed);\n}\n",
        );
        assert!(qd004(&sf).is_empty());
    }

    // ---- QD005 ----

    #[test]
    fn qd005_bad_nested_locks() {
        let sf = scan(
            "crates/core/src/train.rs",
            "fn f() {\n    let a = m1.lock();\n    let b = m2.lock();\n}\n",
        );
        let f = qd005(&sf);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn qd005_bad_guard_across_scope() {
        let sf = scan(
            "crates/core/src/train.rs",
            "fn f() {\n    let g = m.lock();\n    crossbeam::thread::scope(|s| {});\n}\n",
        );
        // Both the `crossbeam` and `scope` tokens fire while the guard is live.
        assert!(!qd005(&sf).is_empty());
    }

    #[test]
    fn qd005_good_sequential_and_temporary() {
        let sf = scan(
            "crates/core/src/train.rs",
            "
fn f() {
    results.lock().push(1);
    results.lock().push(2);
    { let a = m1.lock(); }
    let b = m2.lock();
    drop(b);
    crossbeam::thread::scope(|s| {
        s.spawn(|_| { results.lock().push(3); });
    });
}
",
        );
        assert!(qd005(&sf).is_empty(), "{:?}", qd005(&sf));
    }

    // ---- QD006 ----

    #[test]
    fn qd006_bad_prints_in_library_code() {
        let sf = scan(
            "crates/core/src/train.rs",
            "fn f(x: u32) {\n    println!(\"{x}\");\n    eprintln!(\"warn\");\n    dbg!(x);\n}\n",
        );
        let f = qd006(&sf);
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().all(|f| f.rule == "QD006"));
        assert!(f[1].message.contains("eprintln"));
    }

    #[test]
    fn qd006_good_tests_and_non_invocations() {
        let sf = scan(
            "crates/tensor/src/tape.rs",
            r#"
// println! in a comment is fine
fn f() {
    let s = "eprintln! inside a string";
    custom::println!("path-qualified macro from another crate");
    let _ = s;
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { println!("test output is fine"); }
}
"#,
        );
        assert!(qd006(&sf).is_empty(), "{:?}", qd006(&sf));
    }

    #[test]
    fn qd006_not_enforced_outside_library_crates() {
        let sf = scan(
            "crates/experiments/src/bin/table2.rs",
            "fn main() { println!(\"table\"); eprintln!(\"banner\"); }\n",
        );
        assert!(qd006(&sf).is_empty());
    }

    // ---- QD007 ----

    #[test]
    fn qd007_bad_instant_now_in_library_code() {
        let sf = scan(
            "crates/core/src/interactive.rs",
            "use std::time::Instant;\nfn f() -> u64 {\n    let t = Instant::now();\n    std::time::Instant::now().elapsed().as_micros() as u64 + t.elapsed().as_micros() as u64\n}\n",
        );
        let f = qd007(&sf);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.rule == "QD007"));
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("wall_micros"));
    }

    #[test]
    fn qd007_good_injected_clock_and_tests() {
        let sf = scan(
            "crates/core/src/train.rs",
            r#"
// Instant::now() in a comment is fine
fn f() -> u64 {
    qdgnn_obs::clock::wall_micros()
}
struct Holder { at: std::time::Instant }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { let _ = std::time::Instant::now(); }
}
"#,
        );
        assert!(qd007(&sf).is_empty(), "{:?}", qd007(&sf));
    }

    #[test]
    fn qd007_not_enforced_outside_library_crates() {
        for path in ["crates/obs/src/clock.rs", "crates/experiments/src/bin/table2.rs"] {
            let sf = scan(path, "fn f() { let _ = std::time::Instant::now(); }\n");
            assert!(qd007(&sf).is_empty(), "{path} should be exempt");
        }
    }

    // ---- QD008 ----

    #[test]
    fn qd008_bad_unbounded_blocking_in_serving_code() {
        let sf = scan(
            "crates/serve/src/engine.rs",
            "fn f(cv: &Condvar, g: G, rx: &Receiver<u8>, p: Pending) {\n    let _g = cv.wait(g);\n    let _v = rx.recv();\n    let _r = p.wait();\n}\n",
        );
        let f = qd008(&sf);
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().all(|f| f.rule == "QD008"));
        assert!(f[0].message.contains("_timeout"));
        assert_eq!((f[0].line, f[1].line, f[2].line), (2, 3, 4));
    }

    #[test]
    fn qd008_good_bounded_variants_definitions_and_tests() {
        let sf = scan(
            "crates/serve/src/engine.rs",
            r#"
// cv.wait(g) in a comment is fine
pub fn wait(self) -> Reply { todo!() }
fn f(cv: &Condvar, g: G, rx: &Receiver<u8>) {
    let _ = cv.wait_timeout(g, d);
    let _ = rx.recv_timeout(d);
    let _ = rx.try_recv();
}
#[cfg(test)]
mod tests {
    #[test]
    fn t(p: Pending, rx: Receiver<u8>) { let _ = p.wait(); let _ = rx.recv(); }
}
"#,
        );
        assert!(qd008(&sf).is_empty(), "{:?}", qd008(&sf));
    }

    #[test]
    fn qd008_not_enforced_outside_serving_library() {
        for path in ["crates/core/src/train.rs", "crates/serve/bin/main.rs"] {
            let sf = scan(path, "fn f(rx: &Receiver<u8>) { let _ = rx.recv(); }\n");
            assert!(qd008(&sf).is_empty(), "{path} should be exempt");
        }
    }

    #[test]
    fn qd005_io_write_not_flagged_without_rwlock() {
        let sf = scan(
            "crates/tensor/src/dense.rs",
            "fn f(w: &mut W) {\n    let g = m.lock();\n    w.write(b\"x\");\n}\n",
        );
        assert!(qd005(&sf).is_empty(), "{:?}", qd005(&sf));
    }

    // ---- QD009 (interprocedural) ----

    fn interproc(files: &[(&str, &str)]) -> (Vec<SourceFile>, CallGraph) {
        let sfs: Vec<SourceFile> =
            files.iter().map(|(p, s)| SourceFile::scan(p, s)).collect();
        let g = CallGraph::build(&sfs);
        (sfs, g)
    }

    #[test]
    fn qd009_bad_panic_reached_across_crates_carries_full_chain() {
        let (files, g) = interproc(&[
            (
                "crates/serve/src/engine.rs",
                "fn handle(q: Query) { route(q); }\n",
            ),
            (
                "crates/core/src/dispatch.rs",
                "fn route(q: Query) { score(q); }\n",
            ),
            (
                "crates/core/src/scoring.rs",
                "fn score(q: Query) -> f32 { q.weights.unwrap().total() }\n",
            ),
        ]);
        let f = qd009(&files, &g);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "QD009");
        assert_eq!(f[0].path, "crates/core/src/scoring.rs");
        assert!(
            f[0].message.contains("`handle → route → score`"),
            "full chain must be in the message: {}",
            f[0].message
        );
        assert!(f[0].message.contains("`unwrap`"), "{}", f[0].message);
    }

    #[test]
    fn qd009_bad_online_stage_try_entry_is_covered() {
        let (files, g) = interproc(&[(
            "crates/core/src/serve.rs",
            "
impl OnlineStage {
    pub fn try_query(&self) { helper(); }
}
fn helper() { panic!(\"boom\"); }
",
        )]);
        let f = qd009(&files, &g);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`OnlineStage::try_query`"), "{}", f[0].message);
        assert!(f[0].message.contains("`panic!`"), "{}", f[0].message);
    }

    #[test]
    fn qd009_good_direct_panics_and_non_entry_chains_are_not_its_job() {
        let (files, g) = interproc(&[
            // Direct panic in an entry: QD001's finding, not QD009's.
            ("crates/serve/src/lib.rs", "fn direct(x: Option<u8>) { x.unwrap(); }\n"),
            // Chain rooted outside any entry point.
            ("crates/core/src/train.rs", "fn train_step() { offline(); }\n"),
            ("crates/core/src/util.rs", "fn offline() { panic!(\"offline only\"); }\n"),
        ]);
        assert!(qd009(&files, &g).is_empty(), "{:?}", qd009(&files, &g));
    }

    #[test]
    fn qd009_good_panics_outside_domain_crates_are_ignored() {
        let (files, g) = interproc(&[
            ("crates/serve/src/engine.rs", "fn handle() { shape_check(); }\n"),
            ("crates/tensor/src/dense.rs", "fn shape_check() { assert_shapes(); x.unwrap(); }\n"),
        ]);
        assert!(qd009(&files, &g).is_empty(), "{:?}", qd009(&files, &g));
    }

    // ---- QD010 (interprocedural) ----

    #[test]
    fn qd010_bad_seeded_inversion_two_locks_opposite_orders() {
        // The static twin of the runtime lockcheck seeded-inversion test:
        // thread 1 takes alpha then beta, thread 2 takes beta then alpha.
        let (files, g) = interproc(&[(
            "crates/core/src/state.rs",
            "
fn thread_one(s: &Shared) {
    let a = s.alpha.lock();
    let b = s.beta.lock();
}
fn thread_two(s: &Shared) {
    let b = s.beta.lock();
    let a = s.alpha.lock();
}
",
        )]);
        let f = qd010(&files, &g);
        assert_eq!(f.len(), 1, "one finding per inverted pair: {f:?}");
        assert_eq!(f[0].rule, "QD010");
        assert!(f[0].message.contains("lock-order inversion"), "{}", f[0].message);
        // Both acquisition sites must be named.
        assert!(f[0].message.contains("crates/core/src/state.rs:8"), "{}", f[0].message);
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn qd010_bad_inversion_through_a_call_is_caught() {
        let (files, g) = interproc(&[(
            "crates/core/src/state.rs",
            "
fn one(s: &Shared) {
    let a = s.alpha.lock();
    grab_beta(s);
}
fn grab_beta(s: &Shared) { let b = s.beta.lock(); }
fn two(s: &Shared) {
    let b = s.beta.lock();
    let a = s.alpha.lock();
}
",
        )]);
        let f = qd010(&files, &g);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(
            f[0].message.contains("via call to `grab_beta`")
                || f[0].message.contains("crates/core/src/state.rs:4"),
            "{}",
            f[0].message
        );
    }

    #[test]
    fn qd010_good_consistent_global_order_is_clean() {
        let (files, g) = interproc(&[(
            "crates/core/src/state.rs",
            "
fn one(s: &Shared) {
    let a = s.alpha.lock();
    let b = s.beta.lock();
}
fn two(s: &Shared) {
    let a = s.alpha.lock();
    let b = s.beta.lock();
}
",
        )]);
        assert!(qd010(&files, &g).is_empty(), "{:?}", qd010(&files, &g));
    }

    // ---- QD011 (interprocedural) ----

    #[test]
    fn qd011_bad_direct_blocking_while_holding_guard() {
        let (files, g) = interproc(&[(
            "crates/core/src/state.rs",
            "
fn f(s: &Shared, rx: &Receiver<u8>) {
    let g = s.state.lock();
    let _ = rx.recv_timeout(d);
}
",
        )]);
        let f = qd011(&files, &g);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`recv_timeout()`"), "{}", f[0].message);
        assert!(f[0].message.contains("`state`"), "{}", f[0].message);
    }

    #[test]
    fn qd011_bad_blocking_reached_through_call_chain() {
        let (files, g) = interproc(&[(
            "crates/core/src/state.rs",
            "
fn f(s: &Shared) {
    let g = s.state.lock();
    drain(s);
}
fn drain(s: &Shared) { s.rx.recv_timeout(d); }
",
        )]);
        let f = qd011(&files, &g);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("call to `drain`"), "{}", f[0].message);
        assert!(f[0].message.contains("recv_timeout"), "{}", f[0].message);
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn qd011_good_guard_dropped_before_blocking() {
        let (files, g) = interproc(&[(
            "crates/core/src/state.rs",
            "
fn f(s: &Shared, rx: &Receiver<u8>) {
    let g = s.state.lock();
    drop(g);
    let _ = rx.recv_timeout(d);
}
fn scoped(s: &Shared, rx: &Receiver<u8>) {
    {
        let g = s.state.lock();
    }
    let _ = rx.recv_timeout(d);
}
",
        )]);
        assert!(qd011(&files, &g).is_empty(), "{:?}", qd011(&files, &g));
    }

    // ---- catalog/rules drift ----

    #[test]
    fn implemented_ids_match_catalog_exactly() {
        let catalog_ids: Vec<&str> = crate::catalog::RULES.iter().map(|r| r.id).collect();
        assert_eq!(IMPLEMENTED_IDS, catalog_ids.as_slice());
    }

    fn qd013_names_file() -> SourceFile {
        SourceFile::scan(
            "crates/obs/src/names.rs",
            "pub const METRIC_NAMES: &[&str] = &[\n    \"serve.good\",\n];\n",
        )
    }

    #[test]
    fn qd013_flags_uncatalogued_names_and_accepts_catalogued_ones() {
        let bad = SourceFile::scan(
            "crates/serve/src/engine.rs",
            "fn f() { qdgnn_obs::counter(\"serve.evil\").inc(); let _s = qdgnn_obs::span!(\"serve.good\"); }\n",
        );
        let f = qd013(&[qd013_names_file(), bad]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "QD013");
        assert!(f[0].message.contains("serve.evil"), "{}", f[0].message);
    }

    #[test]
    fn qd013_extracts_the_right_literal_when_several_share_a_line() {
        let bad = SourceFile::scan(
            "crates/serve/src/engine.rs",
            "fn f() { qdgnn_obs::counter_with(\"serve.bad\", &[(\"tenant\", \"acme\")]).inc(); }\n",
        );
        let f = qd013(&[qd013_names_file(), bad]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(
            f[0].message.contains("\"serve.bad\""),
            "must name the metric literal, not a label: {}",
            f[0].message
        );
    }

    #[test]
    fn qd013_covers_run_registry_recorders() {
        let bad = SourceFile::scan(
            "crates/core/src/train.rs",
            "fn f() {\n    qdgnn_obs::runs::series_observe(\"train.rogue\", 0, 1.0);\n    qdgnn_obs::runs::flight_event(\"serve.good\", &[]);\n}\n",
        );
        let f = qd013(&[qd013_names_file(), bad]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("train.rogue"), "{}", f[0].message);
        assert!(f[0].message.contains("series_observe"), "{}", f[0].message);
    }

    #[test]
    fn qd013_skips_method_calls_tests_and_dynamic_names() {
        let ok = SourceFile::scan(
            "crates/serve/src/engine.rs",
            "fn f(snap: &S, n: &str) {\n    snap.counter(\"not.a.recorder\");\n    qdgnn_obs::counter(n).inc();\n}\n#[cfg(test)]\nmod tests {\n    fn g() { qdgnn_obs::counter(\"t.test.only\").inc(); }\n}\n",
        );
        let f = qd013(&[qd013_names_file(), ok]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn qd013_reports_a_missing_catalog_file_only_when_names_are_recorded() {
        let quiet = SourceFile::scan("crates/serve/src/engine.rs", "fn f() {}\n");
        assert!(qd013(&[quiet]).is_empty(), "nothing recorded, nothing to vouch for");
        let loud = SourceFile::scan(
            "crates/serve/src/engine.rs",
            "fn f() { qdgnn_obs::counter(\"serve.x\").inc(); }\n",
        );
        let f = qd013(&[loud]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("names.rs"), "{}", f[0].message);
    }
}
