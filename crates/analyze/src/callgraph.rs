//! The cross-file call graph, assembled from [`crate::symbols`] output.
//!
//! Name resolution is deliberately *over-approximate* — the analyzer has
//! no type information, so:
//!
//! * a plain call `name(…)` resolves to every free function named
//!   `name` in the workspace;
//! * a qualified call `Type::name(…)` resolves to methods of `Type`
//!   (with `Self::` resolving through the caller's own `impl` owner);
//! * a method call `recv.name(…)` resolves to **every** impl method
//!   named `name`, whatever the owner — the receiver's type is unknown.
//!
//! Over-approximation keeps the reachability rules sound (a chain that
//! exists is never missed because resolution guessed wrong); spurious
//! chains are burned down with reasoned suppressions at the offending
//! site. Test functions are excluded from the graph entirely.
//!
//! On top of the edges, this module precomputes per-function *transitive
//! closures* of lock acquisitions and blocking sites (fixpoint over the
//! graph, so call cycles converge), which QD010/QD011 consume, and
//! provides shortest-chain queries for QD009's chain-carrying findings.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use crate::lexer::SourceFile;
use crate::symbols::{self, FnSym};

/// An exemplar blocking site, as propagated through the call graph.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct BlockInfo {
    /// The blocking call name (`wait`, `recv`, `sleep`, …).
    pub what: String,
    /// File of the blocking site.
    pub file: String,
    /// 1-based line of the blocking site.
    pub line: u32,
}

/// A lock acquisition fact, as propagated through the call graph.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct AcquireInfo {
    /// The lock's name (receiver segment).
    pub lock: String,
    /// File of the acquisition.
    pub file: String,
    /// 1-based line of the acquisition.
    pub line: u32,
}

/// The workspace call graph.
pub struct CallGraph {
    /// All non-test function symbols, flattened across files.
    pub fns: Vec<FnSym>,
    /// Free functions by name.
    free_by_name: HashMap<String, Vec<usize>>,
    /// Impl methods by name (all owners).
    methods_by_name: HashMap<String, Vec<usize>>,
    /// Impl methods by (owner, name).
    by_owner_name: HashMap<(String, String), Vec<usize>>,
    /// Resolved call edges: `edges[i]` is the deduplicated, sorted list
    /// of callee indices of `fns[i]`.
    pub edges: Vec<Vec<usize>>,
    /// Per-function transitive set of locks acquired by the function or
    /// anything it can call.
    acq_closure: Vec<BTreeSet<AcquireInfo>>,
    /// Per-function transitive set of blocking sites reachable from the
    /// function (its own and its callees').
    block_closure: Vec<BTreeSet<BlockInfo>>,
}

impl CallGraph {
    /// Builds the graph from scanned sources. Test functions are
    /// dropped: they neither seed entry points nor extend chains.
    pub fn build(files: &[SourceFile]) -> CallGraph {
        let mut fns: Vec<FnSym> = Vec::new();
        for sf in files {
            fns.extend(symbols::extract(sf).into_iter().filter(|f| !f.is_test));
        }
        let mut free_by_name: HashMap<String, Vec<usize>> = HashMap::new();
        let mut methods_by_name: HashMap<String, Vec<usize>> = HashMap::new();
        let mut by_owner_name: HashMap<(String, String), Vec<usize>> = HashMap::new();
        for (i, f) in fns.iter().enumerate() {
            match &f.owner {
                None => free_by_name.entry(f.name.clone()).or_default().push(i),
                Some(owner) => {
                    methods_by_name.entry(f.name.clone()).or_default().push(i);
                    by_owner_name.entry((owner.clone(), f.name.clone())).or_default().push(i);
                }
            }
        }
        let mut graph = CallGraph {
            edges: Vec::new(),
            acq_closure: Vec::new(),
            block_closure: Vec::new(),
            fns,
            free_by_name,
            methods_by_name,
            by_owner_name,
        };
        graph.edges = (0..graph.fns.len())
            .map(|i| {
                let mut callees = BTreeSet::new();
                let caller_owner = graph.fns[i].owner.clone();
                for call in &graph.fns[i].calls {
                    for c in graph.resolve(call.name.as_str(), call.qualifier.as_deref(), call.method, caller_owner.as_deref()) {
                        callees.insert(c);
                    }
                }
                callees.into_iter().collect()
            })
            .collect();
        graph.compute_closures();
        graph
    }

    /// Resolves one call to candidate definition indices.
    pub fn resolve(
        &self,
        name: &str,
        qualifier: Option<&str>,
        method: bool,
        caller_owner: Option<&str>,
    ) -> Vec<usize> {
        if method {
            return self.methods_by_name.get(name).cloned().unwrap_or_default();
        }
        if let Some(q) = qualifier {
            let owner = if q == "Self" { caller_owner.unwrap_or(q) } else { q };
            if let Some(hits) = self.by_owner_name.get(&(owner.to_string(), name.to_string())) {
                return hits.clone();
            }
            // The qualifier may be a module path segment rather than a
            // type (`faultless::serve_forward_hook()`): fall back to
            // free functions of that name.
            return self.free_by_name.get(name).cloned().unwrap_or_default();
        }
        self.free_by_name.get(name).cloned().unwrap_or_default()
    }

    /// Locks transitively acquired by `fns[i]` or anything it calls.
    pub fn acquired_transitively(&self, i: usize) -> &BTreeSet<AcquireInfo> {
        &self.acq_closure[i]
    }

    /// Blocking sites transitively reachable from `fns[i]`.
    pub fn blocks_transitively(&self, i: usize) -> &BTreeSet<BlockInfo> {
        &self.block_closure[i]
    }

    /// Fixpoint of the acquisition/blocking closures over the edge
    /// relation; call cycles converge because the sets only grow.
    fn compute_closures(&mut self) {
        let n = self.fns.len();
        self.acq_closure = (0..n)
            .map(|i| {
                self.fns[i]
                    .acquires
                    .iter()
                    .map(|a| AcquireInfo {
                        lock: a.lock.clone(),
                        file: self.fns[i].file.clone(),
                        line: a.line,
                    })
                    .collect()
            })
            .collect();
        self.block_closure = (0..n)
            .map(|i| {
                self.fns[i]
                    .blocks
                    .iter()
                    .map(|b| BlockInfo {
                        what: b.what.clone(),
                        file: self.fns[i].file.clone(),
                        line: b.line,
                    })
                    .collect()
            })
            .collect();
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..n {
                for &callee in &self.edges[i] {
                    if callee == i {
                        continue;
                    }
                    // Split borrows: clone the callee sets (small) and
                    // merge into the caller's.
                    let acq: Vec<AcquireInfo> = self.acq_closure[callee].iter().cloned().collect();
                    for a in acq {
                        if self.acq_closure[i].insert(a) {
                            changed = true;
                        }
                    }
                    let blk: Vec<BlockInfo> = self.block_closure[callee].iter().cloned().collect();
                    for b in blk {
                        if self.block_closure[i].insert(b) {
                            changed = true;
                        }
                    }
                }
            }
        }
    }

    /// Human-readable label for `fns[i]`: `Owner::name` or `name`.
    pub fn label(&self, i: usize) -> String {
        let f = &self.fns[i];
        match &f.owner {
            Some(o) => format!("{o}::{}", f.name),
            None => f.name.clone(),
        }
    }

    /// Breadth-first shortest call chains from `start`: returns, for
    /// every reachable function, the predecessor on one shortest chain.
    /// Deterministic because edges are sorted.
    pub fn shortest_chains(&self, start: usize) -> HashMap<usize, usize> {
        let mut pred: HashMap<usize, usize> = HashMap::new();
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut queue = VecDeque::new();
        seen.insert(start);
        queue.push_back(start);
        while let Some(i) = queue.pop_front() {
            for &c in &self.edges[i] {
                if seen.insert(c) {
                    pred.insert(c, i);
                    queue.push_back(c);
                }
            }
        }
        pred
    }

    /// Reconstructs the chain `start → … → target` as labels, using the
    /// predecessor map from [`CallGraph::shortest_chains`].
    pub fn chain_labels(&self, start: usize, target: usize, pred: &HashMap<usize, usize>) -> Vec<String> {
        let mut rev = vec![target];
        let mut cur = target;
        while cur != start {
            match pred.get(&cur) {
                Some(&p) => {
                    rev.push(p);
                    cur = p;
                }
                None => break,
            }
        }
        rev.reverse();
        rev.into_iter().map(|i| self.label(i)).collect()
    }
}

/// One edge in the lock-order graph: `to` acquired while a guard of
/// `from` is held, at `file:line` (possibly through a call — then `via`
/// names the callee whose body does the acquiring).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    /// The lock already held.
    pub from: String,
    /// The lock acquired while `from` is held.
    pub to: String,
    /// File of the acquisition (or of the call that leads to it).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// `Some(callee)` when the acquisition happens inside a call made
    /// while the guard is held.
    pub via: Option<String>,
}

/// Builds the workspace lock-order graph: direct nested acquisitions
/// plus acquisitions reached through calls made while a guard is held.
/// Self-edges are dropped — with name-based lock identity they are
/// usually the same lock seen through two paths, not a real order.
pub fn lock_order_edges(graph: &CallGraph) -> Vec<LockEdge> {
    let mut edges: BTreeSet<LockEdge> = BTreeSet::new();
    for (i, f) in graph.fns.iter().enumerate() {
        for a in &f.acquires {
            for held in &a.held {
                if held != &a.lock {
                    edges.insert(LockEdge {
                        from: held.clone(),
                        to: a.lock.clone(),
                        file: f.file.clone(),
                        line: a.line,
                        via: None,
                    });
                }
            }
        }
        for call in &f.calls {
            if call.held.is_empty() {
                continue;
            }
            for &callee in &graph.edges[i] {
                if !graph.fns[callee].calls.iter().any(|_| true) && graph.fns[callee].acquires.is_empty() {
                    continue;
                }
            }
            // Locks transitively acquired by any resolution of this call.
            for callee in graph.resolve(
                call.name.as_str(),
                call.qualifier.as_deref(),
                call.method,
                f.owner.as_deref(),
            ) {
                for acq in graph.acquired_transitively(callee) {
                    for held in &call.held {
                        if held != &acq.lock {
                            edges.insert(LockEdge {
                                from: held.clone(),
                                to: acq.lock.clone(),
                                file: f.file.clone(),
                                line: call.line,
                                via: Some(call.name.clone()),
                            });
                        }
                    }
                }
            }
        }
    }
    edges.into_iter().collect()
}

/// Transitive reachability over the lock-order graph: `reach[a]`
/// contains every lock reachable from `a` through acquired-after edges.
pub fn lock_reachability(edges: &[LockEdge]) -> BTreeMap<String, BTreeSet<String>> {
    let mut adj: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.from.clone()).or_default().insert(e.to.clone());
    }
    let mut reach: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for start in adj.keys() {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut stack: Vec<&String> = adj[start].iter().collect();
        while let Some(n) = stack.pop() {
            if seen.insert(n.clone()) {
                if let Some(next) = adj.get(n) {
                    stack.extend(next.iter());
                }
            }
        }
        reach.insert(start.clone(), seen);
    }
    reach
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::SourceFile;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let sfs: Vec<SourceFile> =
            files.iter().map(|(p, s)| SourceFile::scan(p, s)).collect();
        CallGraph::build(&sfs)
    }

    fn idx(g: &CallGraph, name: &str) -> usize {
        g.fns.iter().position(|f| f.name == name).unwrap()
    }

    #[test]
    fn cross_file_edges_resolve_free_and_method_calls() {
        let g = graph(&[
            ("crates/a/src/lib.rs", "fn entry() { helper(); obj.work(); }\n"),
            (
                "crates/b/src/lib.rs",
                "fn helper() {}\nimpl Worker {\n    fn work(&self) {}\n}\n",
            ),
        ]);
        let e = idx(&g, "entry");
        let callees: Vec<String> = g.edges[e].iter().map(|&c| g.label(c)).collect();
        assert_eq!(callees, vec!["helper".to_string(), "Worker::work".to_string()]);
    }

    #[test]
    fn qualified_calls_resolve_by_owner_and_self() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "
impl A {
    fn go(&self) { Self::aux(); B::make(); }
    fn aux() {}
}
impl B {
    fn make() {}
    fn aux() {}
}
",
        )]);
        let go = idx(&g, "go");
        let callees: Vec<String> = g.edges[go].iter().map(|&c| g.label(c)).collect();
        assert_eq!(callees, vec!["A::aux".to_string(), "B::make".to_string()]);
    }

    #[test]
    fn closures_propagate_through_cycles() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "
fn a() { b(); }
fn b() { a(); let g = state.lock(); rx.recv();
}
",
        )]);
        let a = idx(&g, "a");
        let acq: Vec<&str> = g.acquired_transitively(a).iter().map(|x| x.lock.as_str()).collect();
        assert_eq!(acq, vec!["state"]);
        let blk: Vec<&str> = g.blocks_transitively(a).iter().map(|x| x.what.as_str()).collect();
        assert_eq!(blk, vec!["recv"]);
    }

    #[test]
    fn shortest_chains_reconstruct_labels() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn a() { b(); }\nfn b() { c(); }\nfn c() {}\n",
        )]);
        let a = idx(&g, "a");
        let c = idx(&g, "c");
        let pred = g.shortest_chains(a);
        assert_eq!(g.chain_labels(a, c, &pred), vec!["a", "b", "c"]);
    }

    #[test]
    fn lock_order_edges_span_calls() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "
fn outer() {
    let g = alpha.lock();
    inner();
}
fn inner() { let h = beta.lock(); }
",
        )]);
        let edges = lock_order_edges(&g);
        assert_eq!(edges.len(), 1, "{edges:?}");
        assert_eq!(edges[0].from, "alpha");
        assert_eq!(edges[0].to, "beta");
        assert_eq!(edges[0].via.as_deref(), Some("inner"));
    }

    #[test]
    fn test_fns_are_excluded_from_the_graph() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { live(); }\n}\n",
        )]);
        assert_eq!(g.fns.len(), 1);
        assert_eq!(g.fns[0].name, "live");
    }

    #[test]
    fn reachability_detects_cycles() {
        let edges = vec![
            LockEdge { from: "a".into(), to: "b".into(), file: "x.rs".into(), line: 1, via: None },
            LockEdge { from: "b".into(), to: "c".into(), file: "x.rs".into(), line: 2, via: None },
            LockEdge { from: "c".into(), to: "a".into(), file: "x.rs".into(), line: 3, via: None },
        ];
        let reach = lock_reachability(&edges);
        assert!(reach["a"].contains("a"), "cycle must make a reach itself");
        assert!(reach["b"].contains("a"));
    }
}
