//! Symbol extraction: turns a scanned [`SourceFile`] token stream into
//! function definitions with the facts the interprocedural rules need.
//!
//! For every `fn` (free function or `impl` method) this records:
//!
//! * identity — name, owning `impl` type (if any), file, line, and
//!   whether the definition sits in test code;
//! * **call sites** — `callee(…)`, `recv.method(…)`, `Type::assoc(…)`,
//!   each with the set of lock guards held at the call;
//! * **panic sites** — `panic!`/`unreachable!`/`todo!`/`unimplemented!`
//!   and `.unwrap()`/`.expect()`;
//! * **blocking sites** — `.wait(…)`, `.wait_for(…)`, `.wait_timeout(…)`,
//!   `recv(…)`, `recv_timeout(…)`, `sleep(…)`, `join(…)`, with held
//!   guards;
//! * **lock acquisitions** — `.lock()`/`.read()`/`.write()` with the
//!   receiver's last path segment as the lock's name and the set of
//!   guards already held (the raw material of the lock-order graph).
//!
//! Guard lifetimes follow the same heuristic model as QD005: a
//! `let g = x.lock()` binding lives until its enclosing block closes (or
//! an explicit `drop(g)`), while a temporary (`x.lock().push(v)`) dies at
//! the end of its statement. Brace depths come from the lexer, which
//! guarantees matched pairs.

use crate::lexer::{SourceFile, Tok, TokKind};

/// The panic-family macro names (invoked with `!`).
pub const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// The panic-family methods (invoked as `.name(`).
pub const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Blocking primitives tracked for QD011: methods or path calls that can
/// park the calling thread. The `_timeout`/`_for` condvar variants are
/// included — bounded or not, sleeping while holding a lock guard stalls
/// every other acquirer for the duration.
pub const BLOCKING_CALLS: &[&str] =
    &["wait", "wait_for", "wait_timeout", "recv", "recv_timeout", "sleep", "join"];

/// Keywords that can precede `(` without being a call.
const CALL_KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "in", "let",
    "mut", "ref", "move", "as", "use", "pub", "fn", "impl", "struct", "enum", "trait", "type",
    "where", "unsafe", "dyn", "static", "const", "crate", "super", "mod", "extern", "Some",
    "Ok", "Err", "None", "self", "Self",
];

/// One extracted function definition.
#[derive(Clone, Debug)]
pub struct FnSym {
    /// Function name (raw identifiers keep their `r#` prefix).
    pub name: String,
    /// The `impl` type this method belongs to, `None` for free functions.
    pub owner: Option<String>,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Defined inside test code (`#[cfg(test)]` body or `tests/` file).
    pub is_test: bool,
    /// Calls made in the body, in source order.
    pub calls: Vec<CallSite>,
    /// Direct panic-family sites in the body.
    pub panics: Vec<PanicSite>,
    /// Direct blocking-primitive sites in the body.
    pub blocks: Vec<BlockSite>,
    /// Direct lock acquisitions in the body.
    pub acquires: Vec<LockAcquire>,
}

/// One call expression inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Callee name (last path segment).
    pub name: String,
    /// `Type::name(…)` qualifier, if the call was path-qualified.
    pub qualifier: Option<String>,
    /// Whether the call was a method call (`recv.name(…)`).
    pub method: bool,
    /// 1-based line.
    pub line: u32,
    /// Names of lock guards held at the call site.
    pub held: Vec<String>,
}

/// One direct panic-family site.
#[derive(Clone, Debug)]
pub struct PanicSite {
    /// What panics: `panic!`, `unwrap`, …
    pub what: String,
    /// 1-based line.
    pub line: u32,
}

/// One direct blocking-primitive site.
#[derive(Clone, Debug)]
pub struct BlockSite {
    /// The blocking call name: `wait`, `recv`, `sleep`, …
    pub what: String,
    /// 1-based line.
    pub line: u32,
    /// Names of lock guards held at the site.
    pub held: Vec<String>,
}

/// One lock acquisition (`.lock()`, `.read()`, `.write()`).
#[derive(Clone, Debug)]
pub struct LockAcquire {
    /// The lock's name: the receiver's last path segment
    /// (`self.shared.queue.lock()` → `queue`).
    pub lock: String,
    /// 1-based line.
    pub line: u32,
    /// Names of locks whose guards are already held here.
    pub held: Vec<String>,
}

/// A live lock guard during body scanning.
struct Guard {
    /// The `let` binding name (`None` for temporaries).
    binding: Option<String>,
    /// The lock's name (receiver segment).
    lock: String,
    /// Brace depth at the acquisition.
    depth: u32,
    /// Dies at end of statement rather than end of scope.
    temp: bool,
}

/// Extracts every function definition from a scanned file.
pub fn extract(sf: &SourceFile) -> Vec<FnSym> {
    let toks = &sf.toks;
    // `.read()`/`.write()` only count as lock acquisitions when the file
    // mentions RwLock at all, mirroring QD005 (io traits stay invisible).
    let has_rwlock = toks.iter().any(|t| t.text == "RwLock");
    let mut out = Vec::new();
    // Stack of enclosing `impl` blocks: (owner type, depth of its `{`).
    let mut impls: Vec<(String, u32)> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Ident && t.text == "impl" {
            if let Some((owner, open_idx)) = parse_impl_header(toks, i) {
                impls.push((owner, toks[open_idx].depth));
                i = open_idx + 1;
                continue;
            }
        } else if t.kind == TokKind::Punct && t.text == "}" {
            while impls.last().is_some_and(|(_, d)| *d >= t.depth) {
                impls.pop();
            }
        } else if t.kind == TokKind::Ident && t.text == "fn" {
            let owner = impls.last().map(|(o, _)| o.clone());
            if let Some(after) = parse_fn(sf, toks, i, owner, has_rwlock, &mut out) {
                i = after;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Parses an `impl` header starting at the `impl` token; returns the
/// owner type name and the index of the opening `{`.
///
/// `impl Foo { … }` → `Foo`; `impl Trait for Foo { … }` → `Foo`;
/// generics and `where` clauses are skipped.
fn parse_impl_header(toks: &[Tok], start: usize) -> Option<(String, usize)> {
    let mut angle = 0i32;
    let mut first_type: Option<String> = None;
    let mut for_type: Option<String> = None;
    let mut after_for = false;
    let mut in_where = false;
    let mut j = start + 1;
    while j < toks.len() {
        let t = &toks[j];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "{") if angle <= 0 => {
                let owner = for_type.or(first_type)?;
                return Some((owner, j));
            }
            (TokKind::Punct, ";") if angle <= 0 => return None,
            (TokKind::Punct, "<") => angle += 1,
            (TokKind::Punct, ">") => angle -= 1,
            (TokKind::Punct, "->") => {} // fn-pointer types in generics
            (TokKind::Ident, "for") if angle <= 0 => after_for = true,
            (TokKind::Ident, "where") if angle <= 0 => in_where = true,
            (TokKind::Ident, name) if angle <= 0 && !in_where => {
                if after_for {
                    // First segment after `for`; keep overwriting so
                    // `for crate::x::Foo` ends at `Foo`.
                    for_type = Some(name.to_string());
                } else if first_type.is_none() || toks.get(j.wrapping_sub(1)).is_some_and(|p| p.text == "::") {
                    first_type = Some(name.to_string());
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Parses one `fn` definition starting at its `fn` token, pushing the
/// symbol (and any nested `fn` symbols, recursively) into `out`.
/// Returns the token index just past the body's closing `}`; `None` for
/// a body-less trait method, in which case no symbol is emitted.
fn parse_fn(
    sf: &SourceFile,
    toks: &[Tok],
    fn_idx: usize,
    owner: Option<String>,
    has_rwlock: bool,
    out: &mut Vec<FnSym>,
) -> Option<usize> {
    let name_tok = toks.get(fn_idx + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    // Find the body `{` (skipping the signature) or a `;` ending a
    // body-less declaration. Parens/brackets/angles in the signature
    // don't affect brace depth.
    let mut j = fn_idx + 2;
    let mut body_open: Option<usize> = None;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "{" => {
                body_open = Some(j);
                break;
            }
            ";" => return None,
            _ => j += 1,
        }
    }
    let open = body_open?;
    let open_depth = toks[open].depth;
    let mut sym = FnSym {
        name: name_tok.text.clone(),
        owner,
        file: sf.path.clone(),
        line: toks[fn_idx].line,
        is_test: toks[fn_idx].in_test,
        calls: Vec::new(),
        panics: Vec::new(),
        blocks: Vec::new(),
        acquires: Vec::new(),
    };

    let mut guards: Vec<Guard> = Vec::new();
    let mut stmt_has_let = false;
    let mut let_binding: Option<String> = None;
    let mut i = open + 1;
    while i < toks.len() {
        let t = &toks[i];
        if t.text == "}" && t.kind == TokKind::Punct && t.depth == open_depth {
            out.push(sym);
            return Some(i + 1);
        }
        match (t.kind, t.text.as_str()) {
            // Nested fn: parsed as its own symbol — its body is not part
            // of this function.
            (TokKind::Ident, "fn") => {
                match parse_fn(sf, toks, i, None, has_rwlock, out) {
                    Some(after) => {
                        i = after;
                        continue;
                    }
                    None => {
                        // Body-less or malformed: skip past its `;`.
                        let mut k = i + 1;
                        while k < toks.len() && toks[k].text != ";" && toks[k].text != "{" {
                            k += 1;
                        }
                        i = k;
                    }
                }
            }
            (TokKind::Ident, "let") => {
                stmt_has_let = true;
                let_binding = None;
                // Binding name: first ident after `let` (skipping `mut`).
                let mut k = i + 1;
                while k < toks.len() && toks[k].text == "mut" {
                    k += 1;
                }
                if toks.get(k).is_some_and(|n| n.kind == TokKind::Ident) {
                    let_binding = Some(toks[k].text.clone());
                }
            }
            (TokKind::Punct, ";") => {
                guards.retain(|g| !(g.temp && t.depth <= g.depth));
                stmt_has_let = false;
                let_binding = None;
            }
            (TokKind::Punct, "{") => {
                stmt_has_let = false;
                let_binding = None;
            }
            (TokKind::Punct, "}") => {
                guards.retain(|g| g.depth <= t.depth);
                stmt_has_let = false;
                let_binding = None;
            }
            (TokKind::Ident, "drop") if toks.get(i + 1).is_some_and(|n| n.text == "(") => {
                // `drop(g)`: release the named guard (or the most recent
                // one when the argument isn't a plain binding).
                let arg = toks.get(i + 2).filter(|a| a.kind == TokKind::Ident);
                match arg {
                    Some(a) => {
                        if let Some(p) =
                            guards.iter().rposition(|g| g.binding.as_deref() == Some(&a.text))
                        {
                            guards.remove(p);
                        }
                    }
                    None => {
                        guards.pop();
                    }
                }
                i += 1; // past `(` so it isn't also a call site
            }
            (TokKind::Ident, m @ ("lock" | "read" | "write"))
                if i > 0
                    && toks[i - 1].text == "."
                    && toks.get(i + 1).is_some_and(|n| n.text == "(")
                    && (m == "lock" || has_rwlock) =>
            {
                let lock = receiver_name(toks, i).unwrap_or_else(|| "<unknown>".to_string());
                let held: Vec<String> = guards.iter().map(|g| g.lock.clone()).collect();
                sym.acquires.push(LockAcquire { lock: lock.clone(), line: t.line, held });
                // `let fault = m.lock().unwrap().remove(k);` binds the
                // result of `remove`, not the guard: when the method
                // chain continues past the acquisition (through the
                // unwrap/expect adapters), the guard is a temporary
                // dying at the `;` even inside a `let` statement.
                let consumed = chain_continues(toks, i + 1);
                guards.push(Guard {
                    binding: if stmt_has_let && !consumed { let_binding.clone() } else { None },
                    lock,
                    depth: t.depth,
                    temp: !stmt_has_let || consumed,
                });
                i += 1; // past `(`
            }
            (TokKind::Ident, name) => {
                let next_is_bang = toks.get(i + 1).is_some_and(|n| n.text == "!");
                let prev = if i > 0 { toks[i - 1].text.as_str() } else { "" };
                if PANIC_MACROS.contains(&name) && next_is_bang {
                    sym.panics.push(PanicSite { what: format!("{name}!"), line: t.line });
                } else if next_is_bang {
                    // Some other macro: not a call edge.
                } else if toks.get(i + 1).is_some_and(|n| n.text == "(") {
                    let is_method = prev == ".";
                    let qualifier = if prev == "::" {
                        toks.get(i.wrapping_sub(2))
                            .filter(|q| q.kind == TokKind::Ident)
                            .map(|q| q.text.clone())
                    } else {
                        None
                    };
                    let held: Vec<String> = guards.iter().map(|g| g.lock.clone()).collect();
                    if PANIC_METHODS.contains(&name) && is_method {
                        sym.panics.push(PanicSite { what: name.to_string(), line: t.line });
                    } else if BLOCKING_CALLS.contains(&name) && (is_method || prev == "::") {
                        sym.blocks.push(BlockSite { what: name.to_string(), line: t.line, held });
                    } else if !CALL_KEYWORDS.contains(&name) {
                        sym.calls.push(CallSite {
                            name: name.to_string(),
                            qualifier,
                            method: is_method,
                            line: t.line,
                            held,
                        });
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    // Unbalanced body (should not happen: the lexer pairs depths).
    out.push(sym);
    Some(toks.len())
}

/// Does the method chain continue past the call whose `(` is at
/// `open_idx`? Skips `.unwrap()` / `.expect(…)` adapters (with std
/// mutexes those *return* the guard) and reports whether a further `.`
/// follows — meaning the statement consumes the guard's result rather
/// than binding the guard.
fn chain_continues(toks: &[Tok], open_idx: usize) -> bool {
    // Find the matching `)` of the acquisition's argument list.
    let mut depth = 0i32;
    let mut k = open_idx;
    while k < toks.len() {
        match toks[k].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        k += 1;
    }
    let mut k = k + 1; // past the `)`
    loop {
        // Skip `.unwrap(…)` / `.expect(…)` — they pass the guard through.
        let adapter = toks.get(k).is_some_and(|d| d.text == ".")
            && toks
                .get(k + 1)
                .is_some_and(|m| m.text == "unwrap" || m.text == "expect")
            && toks.get(k + 2).is_some_and(|p| p.text == "(");
        if !adapter {
            break;
        }
        let mut depth = 0i32;
        let mut j = k + 2;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        k = j + 1;
    }
    toks.get(k).is_some_and(|t| t.text == ".")
}

/// The receiver's last path segment for a `.lock()`-style call at token
/// index `idx` (the `lock` ident): `self.shared.queue.lock()` → `queue`,
/// `registry().lock()` → `registry`.
fn receiver_name(toks: &[Tok], idx: usize) -> Option<String> {
    // toks[idx-1] is `.`; look at what precedes it.
    let before = idx.checked_sub(2)?;
    let t = toks.get(before)?;
    match t.kind {
        TokKind::Ident => Some(t.text.clone()),
        TokKind::Punct if t.text == ")" => {
            // Walk back over the balanced paren group to the callee name.
            let mut depth = 1i32;
            let mut k = before;
            while k > 0 && depth > 0 {
                k -= 1;
                match toks[k].text.as_str() {
                    ")" => depth += 1,
                    "(" => depth -= 1,
                    _ => {}
                }
            }
            let callee = k.checked_sub(1)?;
            let t = toks.get(callee)?;
            (t.kind == TokKind::Ident).then(|| t.text.clone())
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::SourceFile;

    fn syms(src: &str) -> Vec<FnSym> {
        extract(&SourceFile::scan("crates/x/src/a.rs", src))
    }

    #[test]
    fn free_fns_and_impl_methods_get_owners() {
        let s = syms(
            "
fn free() {}
impl Widget {
    fn method(&self) {}
}
impl Clone for Widget {
    fn clone(&self) -> Self { Widget }
}
impl<'a> Holder<'a> {
    fn held(&self) {}
}
fn after() {}
",
        );
        let names: Vec<(String, Option<String>)> =
            s.iter().map(|f| (f.name.clone(), f.owner.clone())).collect();
        assert_eq!(
            names,
            vec![
                ("free".into(), None),
                ("method".into(), Some("Widget".into())),
                ("clone".into(), Some("Widget".into())),
                ("held".into(), Some("Holder".into())),
                ("after".into(), None),
            ]
        );
    }

    #[test]
    fn calls_panics_and_qualifiers_are_recorded() {
        let s = syms(
            r#"
fn f(x: Option<u32>) {
    helper(1);
    obj.method(2);
    Widget::assoc(3);
    let v = x.unwrap();
    if v == 0 { panic!("boom"); }
    other_macro!(ignored);
}
"#,
        );
        assert_eq!(s.len(), 1);
        let f = &s[0];
        let calls: Vec<(&str, bool, Option<&str>)> =
            f.calls.iter().map(|c| (c.name.as_str(), c.method, c.qualifier.as_deref())).collect();
        assert_eq!(
            calls,
            vec![("helper", false, None), ("method", true, None), ("assoc", false, Some("Widget"))]
        );
        let panics: Vec<&str> = f.panics.iter().map(|p| p.what.as_str()).collect();
        assert_eq!(panics, vec!["unwrap", "panic!"]);
    }

    #[test]
    fn guard_regions_track_held_locks() {
        let s = syms(
            "
fn f() {
    let g = state.lock();
    helper();
    callee.recv_timeout(d);
    drop(g);
    other();
}
",
        );
        let f = &s[0];
        assert_eq!(f.acquires.len(), 1);
        assert_eq!(f.acquires[0].lock, "state");
        assert!(f.acquires[0].held.is_empty());
        assert_eq!(f.calls[0].name, "helper");
        assert_eq!(f.calls[0].held, vec!["state".to_string()]);
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.blocks[0].what, "recv_timeout");
        assert_eq!(f.blocks[0].held, vec!["state".to_string()]);
        // After drop(g) the guard is gone.
        let other = f.calls.iter().find(|c| c.name == "other").unwrap();
        assert!(other.held.is_empty());
    }

    #[test]
    fn temp_guards_die_at_statement_end_and_scoped_guards_at_brace() {
        let s = syms(
            "
fn f() {
    results.lock().push(1);
    first();
    { let a = m1.lock(); inner(); }
    outer();
}
",
        );
        let f = &s[0];
        // push happens while the temp guard is live.
        let push = f.calls.iter().find(|c| c.name == "push").unwrap();
        assert_eq!(push.held, vec!["results".to_string()]);
        let first = f.calls.iter().find(|c| c.name == "first").unwrap();
        assert!(first.held.is_empty(), "temp guard must die at `;`");
        let inner = f.calls.iter().find(|c| c.name == "inner").unwrap();
        assert_eq!(inner.held, vec!["m1".to_string()]);
        let outer = f.calls.iter().find(|c| c.name == "outer").unwrap();
        assert!(outer.held.is_empty(), "scoped guard must die at `}}`");
    }

    #[test]
    fn nested_acquisitions_record_held_sets() {
        let s = syms(
            "
fn f() {
    let a = alpha.lock();
    let b = beta.lock();
}
",
        );
        let f = &s[0];
        assert_eq!(f.acquires.len(), 2);
        assert!(f.acquires[0].held.is_empty());
        assert_eq!(f.acquires[1].lock, "beta");
        assert_eq!(f.acquires[1].held, vec!["alpha".to_string()]);
    }

    #[test]
    fn receiver_names_resolve_through_paths_and_calls() {
        let s = syms(
            "
fn f() {
    self.shared.queue.lock();
    registry().lock();
}
",
        );
        let f = &s[0];
        let locks: Vec<&str> = f.acquires.iter().map(|a| a.lock.as_str()).collect();
        assert_eq!(locks, vec!["queue", "registry"]);
    }

    #[test]
    fn read_write_need_rwlock_in_file() {
        let without = syms("fn f(w: &mut W) { w.write(b\"x\"); }\n");
        assert!(without[0].acquires.is_empty());
        let with = syms("struct S { l: RwLock<u32> }\nfn f(s: &S) { s.l.write(); }\n");
        assert_eq!(with[0].acquires.len(), 1);
        assert_eq!(with[0].acquires[0].lock, "l");
    }

    #[test]
    fn nested_fns_do_not_leak_into_the_outer_body() {
        let s = syms(
            "
fn outer() {
    fn inner() { x.unwrap(); }
    clean();
}
",
        );
        assert_eq!(s.len(), 2);
        let outer = s.iter().find(|f| f.name == "outer").unwrap();
        assert!(outer.panics.is_empty(), "inner's unwrap must not count for outer");
        assert_eq!(outer.calls.len(), 1);
        let inner = s.iter().find(|f| f.name == "inner").unwrap();
        assert_eq!(inner.panics.len(), 1);
    }

    #[test]
    fn test_fns_are_flagged() {
        let s = syms("#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn live() {}\n");
        assert!(s.iter().find(|f| f.name == "t").unwrap().is_test);
        assert!(!s.iter().find(|f| f.name == "live").unwrap().is_test);
    }

    #[test]
    fn raw_identifier_fn_is_not_a_definition_keyword() {
        // `r#fn` must not start a function definition; `fn r#try` defines
        // a function literally named `r#try`.
        let s = syms("fn r#try() { r#fn(); }\n");
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].name, "r#try");
        assert_eq!(s[0].calls.len(), 1);
        assert_eq!(s[0].calls[0].name, "r#fn");
    }

    #[test]
    fn blocking_sites_require_invocation_position() {
        let s = syms(
            "
fn wait(x: u32) -> u32 { x }
fn f(rx: &Receiver<u8>) {
    let _ = rx.recv();
    std::thread::sleep(d);
    let h = handle.join();
}
",
        );
        let f = s.iter().find(|f| f.name == "f").unwrap();
        let what: Vec<&str> = f.blocks.iter().map(|b| b.what.as_str()).collect();
        assert_eq!(what, vec!["recv", "sleep", "join"]);
        // The definition of `wait` itself records nothing.
        let w = s.iter().find(|f| f.name == "wait").unwrap();
        assert!(w.blocks.is_empty());
    }
}
