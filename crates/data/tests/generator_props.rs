//! Property tests for the dataset generator and query machinery.

use proptest::prelude::*;
use qdgnn_data::queries::{generate_bases, materialize};
use qdgnn_data::{enlarge_within_communities, AttrMode, GeneratorConfig};

fn config_strategy() -> impl Strategy<Value = GeneratorConfig> {
    (
        2usize..6,
        6.0f64..25.0,
        0.0f64..0.5,
        20usize..80,
        2.0f64..8.0,
        1u64..10_000,
    )
        .prop_map(|(k, size, overlap, vocab, attrs, seed)| GeneratorConfig {
            num_communities: k,
            community_size_mean: size,
            membership_overlap: overlap,
            vocab_size: vocab,
            topics_per_community: (vocab / 4).max(2),
            attrs_per_vertex_mean: attrs,
            seed,
            ..Default::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generator_produces_valid_datasets(cfg in config_strategy()) {
        let data = cfg.generate("prop");
        let n = data.graph.num_vertices();
        prop_assert!(n >= 2 * cfg.num_communities);
        prop_assert_eq!(data.communities.len(), cfg.num_communities);
        // Attribute ids within the vocabulary; memberships within range.
        for v in 0..n as u32 {
            for &a in data.graph.attrs_of(v) {
                prop_assert!((a as usize) < cfg.vocab_size);
            }
        }
        for c in &data.communities {
            prop_assert!(c.windows(2).all(|w| w[0] < w[1]), "sorted, deduped members");
            prop_assert!(c.iter().all(|&v| (v as usize) < n));
        }
        // The |E_B| statistic equals the sum of attribute set sizes.
        let manual: usize = (0..n as u32).map(|v| data.graph.attrs_of(v).len()).sum();
        prop_assert_eq!(data.graph.bipartite_edge_count(), manual);
    }

    #[test]
    fn queries_always_come_from_their_community(cfg in config_strategy(), count in 1usize..20) {
        let data = cfg.generate("prop");
        let bases = generate_bases(&data, count, 1, 3, cfg.seed ^ 0xF00);
        prop_assert_eq!(bases.len(), count);
        for b in &bases {
            let members = &data.communities[b.community];
            prop_assert!(!b.vertices.is_empty() && b.vertices.len() <= 3);
            for v in &b.vertices {
                prop_assert!(members.contains(v));
            }
        }
        // AFN attributes always exist on some query vertex.
        let afn = materialize(&data, &bases, AttrMode::FromNode);
        for q in &afn {
            for &a in &q.attrs {
                prop_assert!(q.vertices.iter().any(|&v| data.graph.has_attr(v, a)));
            }
        }
    }

    #[test]
    fn enlargement_monotone_in_expansion(cfg in config_strategy()) {
        let data = cfg.generate("prop");
        let e25 = enlarge_within_communities(&data, 0.25, 1);
        let e100 = enlarge_within_communities(&data, 1.0, 1);
        prop_assert!(e25.graph.num_vertices() >= data.graph.num_vertices());
        prop_assert!(e100.graph.num_vertices() >= e25.graph.num_vertices());
        // Full expansion adds one vertex per intra-community edge, so the
        // edge count grows by exactly 2 per inserted vertex.
        let inserted = e100.graph.num_vertices() - data.graph.num_vertices();
        prop_assert_eq!(
            e100.graph.graph().num_edges(),
            data.graph.graph().num_edges() + 2 * inserted
        );
    }

    #[test]
    fn stats_line_mentions_all_columns(cfg in config_strategy()) {
        let data = cfg.generate("named");
        let line = data.stats_line();
        for needle in ["named:", "|V|=", "|E|=", "|F|=", "|E_B|=", "K=", "AS="] {
            prop_assert!(line.contains(needle), "missing `{needle}` in `{line}`");
        }
    }
}
