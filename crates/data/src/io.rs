//! Plain-text persistence for datasets and query sets, so examples and
//! experiments can cache generated data across runs.
//!
//! Format (line oriented, whitespace separated):
//!
//! ```text
//! qdgnn-dataset v1
//! name <name>
//! vertices <n>
//! vocab <d>
//! edges <m>
//! <u> <v>            (m lines)
//! attrs
//! <a1> <a2> …        (n lines; "-" for an empty set)
//! communities <K>
//! <v1> <v2> …        (K lines)
//! ```

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::generator::Dataset;
use crate::queries::Query;
use qdgnn_graph::attributed::AttrId;
use qdgnn_graph::{AttributedGraph, Graph, VertexId};

/// Writes a dataset to `path` in the documented text format.
pub fn save_dataset(path: impl AsRef<Path>, dataset: &Dataset) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    let g = dataset.graph.graph();
    writeln!(w, "qdgnn-dataset v1")?;
    writeln!(w, "name {}", dataset.name)?;
    writeln!(w, "vertices {}", g.num_vertices())?;
    writeln!(w, "vocab {}", dataset.graph.num_attrs())?;
    writeln!(w, "edges {}", g.num_edges())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    writeln!(w, "attrs")?;
    for v in 0..g.num_vertices() {
        let set = dataset.graph.attrs_of(v as VertexId);
        if set.is_empty() {
            writeln!(w, "-")?;
        } else {
            writeln!(w, "{}", join(set))?;
        }
    }
    writeln!(w, "communities {}", dataset.communities.len())?;
    for members in &dataset.communities {
        writeln!(w, "{}", join(members))?;
    }
    Ok(())
}

/// Reads a dataset previously written by [`save_dataset`].
pub fn load_dataset(path: impl AsRef<Path>) -> io::Result<Dataset> {
    let reader = BufReader::new(File::open(path)?);
    let mut lines = reader.lines();
    let mut next = || -> io::Result<String> {
        lines.next().ok_or_else(|| bad("unexpected end of file"))?
    };
    expect(&next()?, "qdgnn-dataset v1")?;
    let name = field(&next()?, "name")?;
    let n: usize = field(&next()?, "vertices")?.parse().map_err(|_| bad("bad vertex count"))?;
    let d: usize = field(&next()?, "vocab")?.parse().map_err(|_| bad("bad vocab size"))?;
    let m: usize = field(&next()?, "edges")?.parse().map_err(|_| bad("bad edge count"))?;
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let line = next()?;
        let mut it = line.split_whitespace();
        let u: VertexId = parse_next(&mut it)?;
        let v: VertexId = parse_next(&mut it)?;
        edges.push((u, v));
    }
    expect(&next()?, "attrs")?;
    let mut attrs: Vec<Vec<AttrId>> = Vec::with_capacity(n);
    for _ in 0..n {
        let line = next()?;
        if line.trim() == "-" {
            attrs.push(Vec::new());
        } else {
            attrs.push(parse_list(&line)?);
        }
    }
    let k: usize =
        field(&next()?, "communities")?.parse().map_err(|_| bad("bad community count"))?;
    let mut communities = Vec::with_capacity(k);
    for _ in 0..k {
        communities.push(parse_list(&next()?)?);
    }
    let graph = Graph::from_edges(n, &edges);
    Ok(Dataset { name, graph: AttributedGraph::new(graph, attrs, d), communities })
}

/// Writes a query set (one query per line: `vertices | attrs | truth`).
pub fn save_queries(path: impl AsRef<Path>, queries: &[Query]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "qdgnn-queries v1 {}", queries.len())?;
    for q in queries {
        writeln!(
            w,
            "{} | {} | {}",
            join(&q.vertices),
            if q.attrs.is_empty() { "-".to_string() } else { join(&q.attrs) },
            join(&q.truth)
        )?;
    }
    Ok(())
}

/// Reads a query set written by [`save_queries`].
pub fn load_queries(path: impl AsRef<Path>) -> io::Result<Vec<Query>> {
    let reader = BufReader::new(File::open(path)?);
    let mut lines = reader.lines();
    let header = lines.next().ok_or_else(|| bad("empty query file"))??;
    let count: usize = header
        .strip_prefix("qdgnn-queries v1 ")
        .ok_or_else(|| bad("bad query header"))?
        .trim()
        .parse()
        .map_err(|_| bad("bad query count"))?;
    let mut out = Vec::with_capacity(count);
    for line in lines.take(count) {
        let line = line?;
        let mut parts = line.split('|');
        let vertices = parse_list(parts.next().ok_or_else(|| bad("missing vertices"))?)?;
        let attrs_part = parts.next().ok_or_else(|| bad("missing attrs"))?.trim();
        let attrs =
            if attrs_part == "-" { Vec::new() } else { parse_list(attrs_part)? };
        let truth = parse_list(parts.next().ok_or_else(|| bad("missing truth"))?)?;
        out.push(Query { vertices, attrs, truth });
    }
    if out.len() != count {
        return Err(bad("query file truncated"));
    }
    Ok(out)
}

fn join<T: std::fmt::Display>(items: &[T]) -> String {
    items.iter().map(ToString::to_string).collect::<Vec<_>>().join(" ")
}

fn parse_list<T: std::str::FromStr>(line: &str) -> io::Result<Vec<T>> {
    line.split_whitespace()
        .map(|t| t.parse::<T>().map_err(|_| bad("bad number")))
        .collect()
}

fn parse_next<T: std::str::FromStr>(it: &mut std::str::SplitWhitespace<'_>) -> io::Result<T> {
    it.next().ok_or_else(|| bad("missing field"))?.parse().map_err(|_| bad("bad number"))
}

fn field(line: &str, key: &str) -> io::Result<String> {
    line.strip_prefix(key)
        .map(|rest| rest.trim().to_string())
        .ok_or_else(|| bad(&format!("expected `{key} …`, got `{line}`")))
}

fn expect(line: &str, want: &str) -> io::Result<()> {
    if line.trim() == want {
        Ok(())
    } else {
        Err(bad(&format!("expected `{want}`, got `{line}`")))
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::queries::{generate, AttrMode};

    #[test]
    fn dataset_round_trip() {
        let d = presets::toy();
        let dir = std::env::temp_dir().join("qdgnn_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.txt");
        save_dataset(&path, &d).unwrap();
        let loaded = load_dataset(&path).unwrap();
        assert_eq!(loaded.name, d.name);
        assert_eq!(loaded.graph.num_vertices(), d.graph.num_vertices());
        assert_eq!(loaded.graph.graph().num_edges(), d.graph.graph().num_edges());
        assert_eq!(loaded.graph.num_attrs(), d.graph.num_attrs());
        assert_eq!(loaded.communities, d.communities);
        for v in 0..d.graph.num_vertices() as u32 {
            assert_eq!(loaded.graph.attrs_of(v), d.graph.attrs_of(v));
        }
    }

    #[test]
    fn queries_round_trip() {
        let d = presets::toy();
        let qs = generate(&d, 12, 1, 3, AttrMode::FromNode, 1);
        let dir = std::env::temp_dir().join("qdgnn_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("queries.txt");
        save_queries(&path, &qs).unwrap();
        let loaded = load_queries(&path).unwrap();
        assert_eq!(loaded, qs);
    }

    #[test]
    fn empty_attr_queries_round_trip() {
        let d = presets::toy();
        let qs = generate(&d, 4, 1, 2, AttrMode::Empty, 2);
        let dir = std::env::temp_dir().join("qdgnn_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("queries_ema.txt");
        save_queries(&path, &qs).unwrap();
        let loaded = load_queries(&path).unwrap();
        assert!(loaded.iter().all(|q| q.attrs.is_empty()));
        assert_eq!(loaded, qs);
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("qdgnn_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.txt");
        std::fs::write(&path, "not a dataset\n").unwrap();
        assert!(load_dataset(&path).is_err());
        assert!(load_queries(&path).is_err());
    }
}
