//! The `Enlarged_Reddit` transform of §7.4: grow a dataset while
//! preserving its ground-truth communities by inserting a new vertex on
//! intra-community edges, linked to both endpoints.
//!
//! The paper gives the new vertex "the average attribute values of the
//! two ends"; with set-valued keyword attributes the closest equivalent
//! is the union of the endpoint attribute sets (averaging the 0/1
//! indicator vectors and keeping non-zeros), which is what this
//! implementation uses (documented substitution).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::generator::Dataset;
use qdgnn_graph::attributed::AttrId;
use qdgnn_graph::{AttributedGraph, GraphBuilder, VertexId};

/// Enlarges `dataset` by inserting a new vertex on a fraction
/// (`expansion` ∈ [0, 1]) of the intra-community edges. Each inserted
/// vertex joins the communities shared by the edge's endpoints.
///
/// Returns a new dataset named `Enlarged_<name>`.
pub fn enlarge_within_communities(dataset: &Dataset, expansion: f64, seed: u64) -> Dataset {
    let graph = dataset.graph.graph();
    let n0 = graph.num_vertices();
    let mut rng = StdRng::seed_from_u64(seed);

    // Community memberships per vertex, for intra-edge detection.
    let mut membership: Vec<Vec<u32>> = vec![Vec::new(); n0];
    for (c, members) in dataset.communities.iter().enumerate() {
        for &v in members {
            membership[v as usize].push(c as u32);
        }
    }

    // Pick the edges to expand and pre-compute the new vertex count.
    let mut expansions: Vec<(VertexId, VertexId, Vec<u32>)> = Vec::new();
    for (u, v) in graph.edges() {
        let shared: Vec<u32> = membership[u as usize]
            .iter()
            .filter(|c| membership[v as usize].contains(c))
            .copied()
            .collect();
        if shared.is_empty() {
            continue;
        }
        if rng.gen::<f64>() < expansion {
            expansions.push((u, v, shared));
        }
    }

    let n1 = n0 + expansions.len();
    let mut builder = GraphBuilder::new(n1);
    for (u, v) in graph.edges() {
        builder.add_edge(u, v);
    }
    let mut attrs: Vec<Vec<AttrId>> =
        (0..n0 as VertexId).map(|v| dataset.graph.attrs_of(v).to_vec()).collect();
    let mut communities = dataset.communities.clone();

    for (i, (u, v, shared)) in expansions.iter().enumerate() {
        let w = (n0 + i) as VertexId;
        builder.add_edge(*u, w);
        builder.add_edge(*v, w);
        let mut merged: Vec<AttrId> =
            dataset.graph.attrs_of(*u).iter().chain(dataset.graph.attrs_of(*v)).copied().collect();
        merged.sort_unstable();
        merged.dedup();
        attrs.push(merged);
        for &c in shared {
            communities[c as usize].push(w);
        }
    }
    for members in &mut communities {
        members.sort_unstable();
        members.dedup();
    }

    Dataset {
        name: format!("Enlarged_{}", dataset.name),
        graph: AttributedGraph::new(builder.build(), attrs, dataset.graph.num_attrs()),
        communities,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn enlargement_grows_and_preserves_communities() {
        let d = presets::toy();
        let e = enlarge_within_communities(&d, 1.0, 9);
        assert!(e.graph.num_vertices() > d.graph.num_vertices());
        assert_eq!(e.communities.len(), d.communities.len());
        // Original members survive in each community.
        for (orig, enl) in d.communities.iter().zip(&e.communities) {
            for v in orig {
                assert!(enl.contains(v));
            }
            assert!(enl.len() >= orig.len());
        }
        assert!(e.name.starts_with("Enlarged_"));
    }

    #[test]
    fn new_vertices_connect_to_both_endpoints() {
        let d = presets::toy();
        let n0 = d.graph.num_vertices();
        let e = enlarge_within_communities(&d, 1.0, 9);
        for w in n0..e.graph.num_vertices() {
            assert_eq!(e.graph.graph().degree(w as VertexId), 2);
            // Attributes are inherited from the endpoints.
            assert!(!e.graph.attrs_of(w as VertexId).is_empty());
        }
    }

    #[test]
    fn zero_expansion_is_identity_in_size() {
        let d = presets::toy();
        let e = enlarge_within_communities(&d, 0.0, 9);
        assert_eq!(e.graph.num_vertices(), d.graph.num_vertices());
        assert_eq!(e.graph.graph().num_edges(), d.graph.graph().num_edges());
    }

    #[test]
    fn enlargement_is_deterministic() {
        let d = presets::toy();
        let a = enlarge_within_communities(&d, 0.5, 4);
        let b = enlarge_within_communities(&d, 0.5, 4);
        assert_eq!(a.graph.num_vertices(), b.graph.num_vertices());
        assert_eq!(a.communities, b.communities);
    }
}
