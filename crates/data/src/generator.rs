//! Seeded generator for attributed graphs with planted ground-truth
//! communities and correlated attributes.
//!
//! The generative model mirrors what the paper's evaluation relies on:
//!
//! * **Planted communities** — vertex memberships are planted; each
//!   community's induced subgraph is connected (random spanning tree) and
//!   densified to a target intra-degree; cross-community edges are added
//!   at a (lower) inter-degree. Overlapping memberships are supported for
//!   ego-net-style presets where `K × avg_size > n`.
//! * **Structure–attribute correlation** — every community owns a topic
//!   set (a subset of the attribute vocabulary); members draw most of
//!   their attributes from that topic set and the rest uniformly. Sibling
//!   communities share a fraction of their topics, which creates the
//!   attribute–attribute relations ("ML"/"DL"/"CV") that the bipartite
//!   Attribute Encoder is designed to exploit and the ACQ/ATC baselines
//!   ignore.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use qdgnn_graph::attributed::AttrId;
use qdgnn_graph::{AttributedGraph, Graph, GraphBuilder, VertexId};

/// Configuration of the synthetic attributed-graph generator.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct GeneratorConfig {
    /// Number of planted communities `K`.
    pub num_communities: usize,
    /// Mean community size; together with `K` this determines `n` (minus
    /// overlap).
    pub community_size_mean: f64,
    /// Relative jitter of community sizes (0.2 → ±20%).
    pub community_size_jitter: f64,
    /// Fraction of each community's members that are shared with another
    /// community (0 for partitions, > 0 for ego-net style overlap).
    pub membership_overlap: f64,
    /// Target average number of intra-community edge endpoints per member
    /// (beyond the connecting spanning tree).
    pub intra_degree: f64,
    /// Target average number of cross-community edges per vertex.
    pub inter_degree: f64,
    /// Attribute vocabulary size `|F̂|`.
    pub vocab_size: usize,
    /// Topics (candidate attributes) owned by each community.
    pub topics_per_community: usize,
    /// Fraction of a community's topics shared with its sibling community
    /// (creates correlated attributes across communities).
    pub topic_overlap: f64,
    /// Mean number of attributes per vertex.
    pub attrs_per_vertex_mean: f64,
    /// Probability that each vertex attribute is drawn from the community
    /// topics rather than uniformly from the vocabulary.
    pub topic_affinity: f64,
    /// Extra vertices belonging to no ground-truth community (several of
    /// the paper's ego-nets have `K × avg_size < n`).
    pub background_vertices: usize,
    /// RNG seed; identical configs generate identical datasets.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            num_communities: 5,
            community_size_mean: 40.0,
            community_size_jitter: 0.2,
            membership_overlap: 0.0,
            intra_degree: 3.0,
            inter_degree: 0.8,
            vocab_size: 200,
            topics_per_community: 30,
            topic_overlap: 0.3,
            attrs_per_vertex_mean: 8.0,
            topic_affinity: 0.85,
            background_vertices: 0,
            seed: 42,
        }
    }
}

/// A generated dataset: attributed graph plus ground-truth communities.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Display name (preset names reuse the paper's dataset names).
    pub name: String,
    /// The attributed graph.
    pub graph: AttributedGraph,
    /// Ground-truth communities (sorted vertex lists; may overlap).
    pub communities: Vec<Vec<VertexId>>,
}

impl Dataset {
    /// Average ground-truth community size.
    pub fn avg_community_size(&self) -> f64 {
        if self.communities.is_empty() {
            return 0.0;
        }
        self.communities.iter().map(Vec::len).sum::<usize>() as f64
            / self.communities.len() as f64
    }

    /// One-line statistics summary (mirrors the columns of Table 1).
    pub fn stats_line(&self) -> String {
        format!(
            "{}: |V|={} |E|={} |F|={} |E_B|={} K={} AS={:.1}",
            self.name,
            self.graph.num_vertices(),
            self.graph.graph().num_edges(),
            self.graph.num_attrs(),
            self.graph.bipartite_edge_count(),
            self.communities.len(),
            self.avg_community_size()
        )
    }
}

impl GeneratorConfig {
    /// Generates a dataset deterministically from this configuration.
    ///
    /// # Panics
    /// Panics on degenerate configurations (no communities, empty
    /// vocabulary, zero-sized communities).
    pub fn generate(&self, name: impl Into<String>) -> Dataset {
        assert!(self.num_communities > 0, "need at least one community");
        assert!(self.vocab_size > 0, "vocabulary must be non-empty");
        assert!(self.community_size_mean >= 2.0, "communities must have ≥ 2 members");
        let mut rng = StdRng::seed_from_u64(self.seed);

        // --- community sizes -------------------------------------------------
        let sizes: Vec<usize> = (0..self.num_communities)
            .map(|_| {
                let jitter = 1.0 + self.community_size_jitter * (rng.gen::<f64>() * 2.0 - 1.0);
                ((self.community_size_mean * jitter).round() as usize).max(2)
            })
            .collect();

        // --- memberships ------------------------------------------------------
        // Fresh vertices per community, minus the overlapped ones which are
        // borrowed from the previous community.
        let mut communities: Vec<Vec<VertexId>> = Vec::with_capacity(self.num_communities);
        let mut next_vertex: VertexId = 0;
        for (c, &size) in sizes.iter().enumerate() {
            let mut members: Vec<VertexId> = Vec::with_capacity(size);
            let borrow = if c > 0 {
                ((size as f64 * self.membership_overlap).round() as usize)
                    .min(communities[c - 1].len())
            } else {
                0
            };
            if borrow > 0 {
                let prev = communities[c - 1].clone();
                members.extend(prev.choose_multiple(&mut rng, borrow).copied());
            }
            while members.len() < size {
                members.push(next_vertex);
                next_vertex += 1;
            }
            members.sort_unstable();
            members.dedup();
            communities.push(members);
        }
        let community_vertices = next_vertex as usize;
        let n = community_vertices + self.background_vertices;

        // --- edges ------------------------------------------------------------
        let mut builder = GraphBuilder::new(n);
        for members in &communities {
            // Spanning tree over a random permutation keeps the community
            // connected (the BFS-based identification relies on this being
            // *possible*, as in real ground-truth communities).
            let mut order = members.clone();
            order.shuffle(&mut rng);
            for w in order.windows(2) {
                builder.add_edge(w[0], w[1]);
            }
            // Densify to the target intra-degree.
            let extra = ((members.len() as f64 * self.intra_degree / 2.0) as usize)
                .saturating_sub(members.len().saturating_sub(1));
            for _ in 0..extra {
                let u = *members.choose(&mut rng).expect("non-empty community");
                let v = *members.choose(&mut rng).expect("non-empty community");
                builder.add_edge(u, v);
            }
        }
        // Background vertices: attach each to one random earlier vertex so
        // none is isolated; further connectivity comes from inter edges.
        for v in community_vertices..n {
            let u = rng.gen_range(0..v) as VertexId;
            builder.add_edge(u, v as VertexId);
        }
        // Cross-community edges.
        let inter_edges = (n as f64 * self.inter_degree / 2.0) as usize;
        for _ in 0..inter_edges {
            let u = rng.gen_range(0..n) as VertexId;
            let v = rng.gen_range(0..n) as VertexId;
            builder.add_edge(u, v);
        }
        let graph: Graph = builder.build();

        // --- topics -----------------------------------------------------------
        let mut topics: Vec<Vec<AttrId>> = Vec::with_capacity(self.num_communities);
        for c in 0..self.num_communities {
            let mut t: Vec<AttrId> = Vec::with_capacity(self.topics_per_community);
            let shared = if c > 0 {
                (self.topics_per_community as f64 * self.topic_overlap).round() as usize
            } else {
                0
            };
            if shared > 0 {
                let prev = topics[c - 1].clone();
                t.extend(prev.choose_multiple(&mut rng, shared.min(prev.len())).copied());
            }
            while t.len() < self.topics_per_community.min(self.vocab_size) {
                let a = rng.gen_range(0..self.vocab_size) as AttrId;
                if !t.contains(&a) {
                    t.push(a);
                }
            }
            topics.push(t);
        }

        // --- vertex attributes --------------------------------------------------
        // Primary community per vertex = the first community listing it.
        let mut primary = vec![usize::MAX; n];
        for (c, members) in communities.iter().enumerate() {
            for &v in members {
                if primary[v as usize] == usize::MAX {
                    primary[v as usize] = c;
                }
            }
        }
        let mut attrs: Vec<Vec<AttrId>> = Vec::with_capacity(n);
        for &c in primary.iter().take(n) {
            let count = sample_count(self.attrs_per_vertex_mean, &mut rng);
            let mut set = Vec::with_capacity(count);
            for _ in 0..count {
                let a = if c != usize::MAX && rng.gen::<f64>() < self.topic_affinity {
                    *topics[c].choose(&mut rng).expect("non-empty topics")
                } else {
                    rng.gen_range(0..self.vocab_size) as AttrId
                };
                set.push(a);
            }
            set.sort_unstable();
            set.dedup();
            if set.is_empty() {
                set.push(rng.gen_range(0..self.vocab_size) as AttrId);
            }
            attrs.push(set);
        }

        Dataset {
            name: name.into(),
            graph: AttributedGraph::new(graph, attrs, self.vocab_size),
            communities,
        }
    }
}

/// Samples an attribute count around `mean` (uniform in `[mean/2, 3·mean/2]`,
/// at least 1) — a dispersion similar to real keyword counts without the
/// heavy machinery of a Poisson sampler.
fn sample_count(mean: f64, rng: &mut impl Rng) -> usize {
    let lo = (mean * 0.5).max(1.0);
    let hi = (mean * 1.5).max(2.0);
    rng.gen_range(lo..hi).round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdgnn_graph::traversal;

    fn small() -> Dataset {
        GeneratorConfig {
            num_communities: 4,
            community_size_mean: 20.0,
            vocab_size: 60,
            topics_per_community: 12,
            seed: 7,
            ..Default::default()
        }
        .generate("small")
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.graph.graph().num_edges(), b.graph.graph().num_edges());
        assert_eq!(a.communities, b.communities);
        assert_eq!(a.graph.attrs_of(3), b.graph.attrs_of(3));
    }

    #[test]
    fn different_seed_differs() {
        let a = small();
        let b = GeneratorConfig {
            num_communities: 4,
            community_size_mean: 20.0,
            vocab_size: 60,
            topics_per_community: 12,
            seed: 8,
            ..Default::default()
        }
        .generate("other");
        assert_ne!(a.communities, b.communities);
    }

    #[test]
    fn communities_are_connected_subgraphs() {
        let d = small();
        for members in &d.communities {
            assert!(
                traversal::is_connected_subset(d.graph.graph(), members),
                "planted community must induce a connected subgraph"
            );
        }
    }

    #[test]
    fn sizes_near_target() {
        let d = small();
        assert_eq!(d.communities.len(), 4);
        let avg = d.avg_community_size();
        assert!((12.0..28.0).contains(&avg), "avg size {avg} not near 20");
        assert!(d.graph.num_vertices() >= 40);
    }

    #[test]
    fn attributes_correlate_with_communities() {
        let d = small();
        // Members of the same community should share attributes far more
        // often than members of different communities.
        let c0 = &d.communities[0];
        let c1 = &d.communities[1];
        let overlap = |a: VertexId, b: VertexId| -> usize {
            d.graph
                .attrs_of(a)
                .iter()
                .filter(|&&x| d.graph.has_attr(b, x))
                .count()
        };
        let mut intra = 0usize;
        let mut inter = 0usize;
        let take = c0.len().min(c1.len()).min(10);
        for i in 0..take {
            for j in 0..take {
                if i < j {
                    intra += overlap(c0[i], c0[j]);
                }
                inter += overlap(c0[i], c1[j]);
            }
        }
        assert!(intra * 2 > inter, "intra {intra} should dominate inter {inter}");
    }

    #[test]
    fn overlap_creates_shared_members() {
        let d = GeneratorConfig {
            num_communities: 3,
            community_size_mean: 20.0,
            membership_overlap: 0.4,
            seed: 3,
            ..Default::default()
        }
        .generate("ov");
        let shared: usize = d.communities[1]
            .iter()
            .filter(|v| d.communities[0].contains(v))
            .count();
        assert!(shared > 0, "expected overlapping memberships");
    }

    #[test]
    fn every_vertex_has_an_attribute() {
        let d = small();
        for v in 0..d.graph.num_vertices() {
            assert!(!d.graph.attrs_of(v as VertexId).is_empty());
        }
    }
}
