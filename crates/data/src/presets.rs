//! Dataset presets matched to the statistics of the paper's Table 1.
//!
//! Every preset is a synthetic replica (see DESIGN.md §1): the name, the
//! vertex/edge/vocabulary counts, the number of ground-truth communities
//! `K` and the average community size `AS` follow the table; densities
//! and attribute counts are tuned so the derived quantities (average
//! degree, |E_B|/n) are close to the originals. `Reddit` is scaled down
//! by [`REDDIT_SCALE`] because the original (233k vertices, 114M edges)
//! does not fit a from-scratch CPU pipeline; the *relative* comparisons
//! of §7.4 are preserved at the reduced scale.

use crate::generator::{Dataset, GeneratorConfig};

/// Down-scaling factor applied to the Reddit replica (vertices and
/// community sizes divided by this factor).
pub const REDDIT_SCALE: usize = 8;

fn citation(
    name: &str,
    num_communities: usize,
    size_mean: f64,
    vocab: usize,
    attrs_mean: f64,
    seed: u64,
) -> Dataset {
    GeneratorConfig {
        num_communities,
        community_size_mean: size_mean,
        community_size_jitter: 0.25,
        membership_overlap: 0.0,
        intra_degree: 2.4,
        inter_degree: 0.7,
        vocab_size: vocab,
        topics_per_community: (vocab / 6).max(20),
        topic_overlap: 0.3,
        attrs_per_vertex_mean: attrs_mean,
        topic_affinity: 0.8,
        background_vertices: 0,
        seed,
    }
    .generate(name)
}

#[allow(clippy::too_many_arguments)]
fn facebook(
    name: &str,
    num_communities: usize,
    size_mean: f64,
    overlap: f64,
    background: usize,
    vocab: usize,
    attrs_mean: f64,
    intra: f64,
    inter: f64,
    seed: u64,
) -> Dataset {
    GeneratorConfig {
        num_communities,
        community_size_mean: size_mean,
        community_size_jitter: 0.35,
        membership_overlap: overlap,
        intra_degree: intra,
        inter_degree: inter,
        vocab_size: vocab,
        topics_per_community: (vocab / 8).max(10),
        topic_overlap: 0.25,
        attrs_per_vertex_mean: attrs_mean,
        topic_affinity: 0.85,
        background_vertices: background,
        seed,
    }
    .generate(name)
}

/// Cornell (WebKB): 5 communities of ≈39 vertices, 1703-word vocabulary.
pub fn cornell() -> Dataset {
    citation("Cornell", 5, 39.0, 1703, 95.0, 0xC0E1)
}

/// Texas (WebKB): 5 communities of ≈37 vertices.
pub fn texas() -> Dataset {
    citation("Texas", 5, 37.4, 1703, 83.0, 0x7E8A)
}

/// Washington (WebKB): 5 communities of ≈46 vertices.
pub fn washington() -> Dataset {
    citation("Washt", 5, 46.0, 1703, 87.0, 0x3A51)
}

/// Wisconsin (WebKB): 5 communities of ≈53 vertices.
pub fn wisconsin() -> Dataset {
    citation("Wiscs", 5, 53.0, 1703, 96.0, 0x1157)
}

/// Cora: 7 communities of ≈387 vertices, 1433-word vocabulary.
pub fn cora() -> Dataset {
    citation("Cora", 7, 386.9, 1433, 18.0, 0xC04A)
}

/// Citeseer: 6 communities of ≈552 vertices, 3703-word vocabulary.
pub fn citeseer() -> Dataset {
    citation("Citeseer", 6, 552.0, 3703, 32.0, 0xC17E)
}

/// Facebook ego-net 0: 24 small (≈14) communities, dense structure.
pub fn fb_0() -> Dataset {
    facebook("FB-0", 24, 13.5, 0.05, 30, 224, 9.6, 10.0, 7.0, 0xFB00)
}

/// Facebook ego-net 107: 9 communities of ≈56 vertices plus background.
pub fn fb_107() -> Dataset {
    facebook("FB-107", 9, 55.7, 0.0, 545, 576, 11.3, 24.0, 30.0, 0xFB107)
}

/// Facebook ego-net 1684: 17 communities of ≈46 vertices.
pub fn fb_1684() -> Dataset {
    facebook("FB-1684", 17, 45.7, 0.03, 40, 319, 7.7, 18.0, 18.0, 0xFB1684)
}

/// Facebook ego-net 1912: 46 heavily-overlapping communities of ≈23.
pub fn fb_1912() -> Dataset {
    facebook("FB-1912", 46, 23.2, 0.30, 10, 480, 10.7, 30.0, 45.0, 0xFB1912)
}

/// Facebook ego-net 3437: 32 tiny (≈6) communities, large background.
pub fn fb_3437() -> Dataset {
    facebook("FB-3437", 32, 6.0, 0.0, 360, 262, 7.8, 6.0, 16.0, 0xFB3437)
}

/// Facebook ego-net 348: 14 strongly-overlapping communities of ≈40.
pub fn fb_348() -> Dataset {
    facebook("FB-348", 14, 40.5, 0.60, 0, 161, 10.5, 16.0, 14.0, 0xFB348)
}

/// Facebook ego-net 414: 7 communities of ≈25.
pub fn fb_414() -> Dataset {
    facebook("FB-414", 7, 25.4, 0.12, 0, 105, 9.8, 14.0, 9.0, 0xFB414)
}

/// Facebook ego-net 686: 14 strongly-overlapping communities of ≈35.
pub fn fb_686() -> Dataset {
    facebook("FB-686", 14, 34.6, 0.65, 0, 63, 5.8, 12.0, 9.0, 0xFB686)
}

/// Reddit, scaled down by [`REDDIT_SCALE`]: 50 communities of ≈582.
pub fn reddit() -> Dataset {
    GeneratorConfig {
        num_communities: 50,
        community_size_mean: 4659.3 / REDDIT_SCALE as f64,
        community_size_jitter: 0.4,
        membership_overlap: 0.0,
        intra_degree: 8.0,
        inter_degree: 4.0,
        vocab_size: 602,
        topics_per_community: 60,
        topic_overlap: 0.25,
        attrs_per_vertex_mean: 30.0,
        topic_affinity: 0.85,
        background_vertices: 0,
        seed: 0x4EDD17,
    }
    .generate("Reddit")
}

/// The four small WebKB citation replicas.
pub fn webkb_sets() -> Vec<Dataset> {
    vec![cornell(), texas(), washington(), wisconsin()]
}

/// All six citation-network replicas.
pub fn citation_sets() -> Vec<Dataset> {
    vec![cornell(), texas(), washington(), wisconsin(), cora(), citeseer()]
}

/// All eight Facebook ego-net replicas.
pub fn facebook_sets() -> Vec<Dataset> {
    vec![fb_414(), fb_686(), fb_348(), fb_0(), fb_3437(), fb_1912(), fb_1684(), fb_107()]
}

/// The 14 small/medium datasets of the paper's main experiments (all
/// except Reddit), in the column order of Table 2.
pub fn all_small() -> Vec<Dataset> {
    let mut v = facebook_sets();
    v.extend(citation_sets());
    v
}

/// A tiny fast dataset for unit tests and doc examples (not in the paper).
pub fn toy() -> Dataset {
    GeneratorConfig {
        num_communities: 3,
        community_size_mean: 14.0,
        community_size_jitter: 0.2,
        vocab_size: 40,
        topics_per_community: 8,
        attrs_per_vertex_mean: 5.0,
        intra_degree: 4.0,
        inter_degree: 1.0,
        seed: 0x707,
        ..Default::default()
    }
    .generate("Toy")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn webkb_sizes_match_table1() {
        let d = cornell();
        let n = d.graph.num_vertices();
        assert!((170..=220).contains(&n), "Cornell |V| ≈ 195, got {n}");
        assert_eq!(d.communities.len(), 5);
        assert_eq!(d.graph.num_attrs(), 1703);
        let avg_attrs = d.graph.bipartite_edge_count() as f64 / n as f64;
        assert!((70.0..120.0).contains(&avg_attrs), "≈95 attrs per vertex, got {avg_attrs}");
    }

    #[test]
    fn cora_scale() {
        let d = cora();
        let n = d.graph.num_vertices();
        assert!((2300..3100).contains(&n), "Cora |V| ≈ 2708, got {n}");
        assert_eq!(d.communities.len(), 7);
        assert!(d.avg_community_size() > 250.0);
    }

    #[test]
    fn overlapping_ego_net() {
        let d = fb_348();
        // K × AS far exceeds |V| in the paper: members are shared.
        let member_total: usize = d.communities.iter().map(Vec::len).sum();
        assert!(member_total > d.graph.num_vertices());
        assert_eq!(d.communities.len(), 14);
    }

    #[test]
    fn background_vertices_present() {
        let d = fb_3437();
        let covered: std::collections::HashSet<_> =
            d.communities.iter().flatten().copied().collect();
        assert!(covered.len() < d.graph.num_vertices(), "FB-3437 has background vertices");
    }

    #[test]
    fn all_small_has_fourteen() {
        let sets = all_small();
        assert_eq!(sets.len(), 14);
        let names: Vec<_> = sets.iter().map(|d| d.name.as_str()).collect();
        assert!(names.contains(&"Cora") && names.contains(&"FB-1912"));
    }

    #[test]
    fn toy_is_small_and_fast() {
        let d = toy();
        assert!(d.graph.num_vertices() < 60);
        assert_eq!(d.communities.len(), 3);
    }
}
