#![warn(missing_docs)]

//! # qdgnn-data
//!
//! Dataset substrate for the reproduction: a seeded synthetic
//! attributed-graph generator whose presets match the statistics of the
//! paper's Table 1 (|V|, |E|, |F̂|, K, average community size), the three
//! query-attribute regimes of §7.1.3 (EmA / AFC / AFN), the 150:100:100
//! data split of §7.1.4, and a plain-text persistence format.
//!
//! The real datasets (WebKB, Cora, Citeseer, Facebook ego-nets, Reddit)
//! are not redistributable in this offline environment; DESIGN.md §1
//! documents why the synthetic replicas preserve the properties the
//! paper's evaluation depends on. Preset names intentionally reuse the
//! paper's dataset names and always denote the replica.

pub mod enlarge;
pub mod generator;
pub mod io;
pub mod presets;
pub mod queries;

pub use enlarge::enlarge_within_communities;
pub use generator::{Dataset, GeneratorConfig};
pub use queries::{AttrMode, Query, QuerySplit};
