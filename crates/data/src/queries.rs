//! Query generation (§7.1.3) and data splitting (§7.1.4).
//!
//! For each dataset the paper generates 350 (query, ground-truth) pairs;
//! query vertex sets hold 1–3 vertices drawn from a ground-truth
//! community, and the query attribute set comes in three regimes sharing
//! the same vertex sets:
//!
//! * **EmA** — empty attributes (for comparing with non-attributed CS);
//! * **AFC** — the 5 most common attributes of the ground-truth
//!   community (the favourable regime used by the ACQ/ATC papers);
//! * **AFN** — the 5 most common attributes of the *query vertices*
//!   (closer to what a real user would provide; may be unrelated to the
//!   community).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::generator::Dataset;
use qdgnn_graph::attributed::AttrId;
use qdgnn_graph::VertexId;

/// Number of query attributes per attributed query (paper: 5).
pub const QUERY_ATTRS: usize = 5;

/// The query-attribute regime.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttrMode {
    /// `F_q = ∅` (EmA).
    Empty,
    /// 5 most common attributes of the ground-truth community (AFC).
    FromCommunity,
    /// 5 most common attributes of the query vertices (AFN).
    FromNode,
}

impl AttrMode {
    /// The paper's abbreviation for this regime.
    pub fn label(self) -> &'static str {
        match self {
            AttrMode::Empty => "EmA",
            AttrMode::FromCommunity => "AFC",
            AttrMode::FromNode => "AFN",
        }
    }
}

/// One community-search query with its ground truth.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    /// Query vertices `V_q` (1–3 vertices from the ground-truth community).
    pub vertices: Vec<VertexId>,
    /// Query attributes `F_q` (empty under EmA).
    pub attrs: Vec<AttrId>,
    /// The ground-truth community (sorted).
    pub truth: Vec<VertexId>,
}

/// A reusable query skeleton: vertex set + ground-truth community, before
/// an attribute regime is applied (the paper shares vertex sets across
/// EmA/AFC/AFN for fair comparison).
#[derive(Clone, Debug)]
pub struct QueryBase {
    /// Query vertices.
    pub vertices: Vec<VertexId>,
    /// Index of the ground-truth community in the dataset.
    pub community: usize,
}

/// Generates `count` query skeletons with `min_vertices..=max_vertices`
/// query vertices each, cycling through communities so every community is
/// queried.
///
/// # Panics
/// Panics if the dataset has no communities or `min_vertices` is 0.
pub fn generate_bases(
    dataset: &Dataset,
    count: usize,
    min_vertices: usize,
    max_vertices: usize,
    seed: u64,
) -> Vec<QueryBase> {
    assert!(!dataset.communities.is_empty(), "dataset has no ground-truth communities");
    assert!(min_vertices >= 1 && min_vertices <= max_vertices, "invalid vertex-count range");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut bases = Vec::with_capacity(count);
    for i in 0..count {
        let c = i % dataset.communities.len();
        let members = &dataset.communities[c];
        let k = rng.gen_range(min_vertices..=max_vertices).min(members.len());
        let mut vertices: Vec<VertexId> =
            members.choose_multiple(&mut rng, k).copied().collect();
        vertices.sort_unstable();
        bases.push(QueryBase { vertices, community: c });
    }
    bases
}

/// Materializes query skeletons under an attribute regime.
pub fn materialize(dataset: &Dataset, bases: &[QueryBase], mode: AttrMode) -> Vec<Query> {
    bases
        .iter()
        .map(|base| {
            let truth = dataset.communities[base.community].clone();
            let attrs = match mode {
                AttrMode::Empty => Vec::new(),
                AttrMode::FromCommunity => {
                    dataset.graph.most_common_attrs(&truth, QUERY_ATTRS)
                }
                AttrMode::FromNode => {
                    dataset.graph.most_common_attrs(&base.vertices, QUERY_ATTRS)
                }
            };
            Query { vertices: base.vertices.clone(), attrs, truth }
        })
        .collect()
}

/// Convenience: skeletons + materialization in one call.
pub fn generate(
    dataset: &Dataset,
    count: usize,
    min_vertices: usize,
    max_vertices: usize,
    mode: AttrMode,
    seed: u64,
) -> Vec<Query> {
    let bases = generate_bases(dataset, count, min_vertices, max_vertices, seed);
    materialize(dataset, &bases, mode)
}

/// A train/validation/test split of a query set.
#[derive(Clone, Debug, Default)]
pub struct QuerySplit {
    /// Training queries (paper default: 150).
    pub train: Vec<Query>,
    /// Validation queries for weight/γ selection (paper default: 100).
    pub val: Vec<Query>,
    /// Held-out test queries (paper default: 100).
    pub test: Vec<Query>,
}

impl QuerySplit {
    /// Splits `queries` into the first `train`, next `val`, next `test`
    /// entries (the paper's 150:100:100 by default).
    ///
    /// # Panics
    /// Panics if `queries` has fewer than `train + val + test` entries.
    pub fn new(mut queries: Vec<Query>, train: usize, val: usize, test: usize) -> Self {
        assert!(
            queries.len() >= train + val + test,
            "need {} queries, have {}",
            train + val + test,
            queries.len()
        );
        let test_q = queries.split_off(train + val);
        let val_q = queries.split_off(train);
        QuerySplit { train: queries, val: val_q, test: test_q[..test].to_vec() }
    }

    /// The paper's default 150:100:100 split of a 350-query set.
    pub fn paper_default(queries: Vec<Query>) -> Self {
        Self::new(queries, 150, 100, 100)
    }

    /// Total number of queries across the three parts.
    pub fn len(&self) -> usize {
        self.train.len() + self.val.len() + self.test.len()
    }

    /// Whether the split is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn bases_cycle_communities_and_respect_bounds() {
        let d = presets::toy();
        let bases = generate_bases(&d, 9, 1, 3, 1);
        assert_eq!(bases.len(), 9);
        // Round-robin over the 3 toy communities.
        assert_eq!(bases[0].community, 0);
        assert_eq!(bases[4].community, 1);
        for b in &bases {
            assert!((1..=3).contains(&b.vertices.len()));
            for v in &b.vertices {
                assert!(d.communities[b.community].contains(v));
            }
        }
    }

    #[test]
    fn bases_deterministic() {
        let d = presets::toy();
        let a = generate_bases(&d, 10, 1, 3, 5);
        let b = generate_bases(&d, 10, 1, 3, 5);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.vertices, y.vertices);
        }
    }

    #[test]
    fn attr_modes_share_vertices() {
        let d = presets::toy();
        let bases = generate_bases(&d, 6, 1, 3, 2);
        let ema = materialize(&d, &bases, AttrMode::Empty);
        let afc = materialize(&d, &bases, AttrMode::FromCommunity);
        let afn = materialize(&d, &bases, AttrMode::FromNode);
        for i in 0..6 {
            assert_eq!(ema[i].vertices, afc[i].vertices);
            assert_eq!(afc[i].vertices, afn[i].vertices);
            assert!(ema[i].attrs.is_empty());
            assert!(!afc[i].attrs.is_empty() && afc[i].attrs.len() <= QUERY_ATTRS);
            assert!(!afn[i].attrs.is_empty() && afn[i].attrs.len() <= QUERY_ATTRS);
            assert_eq!(ema[i].truth, afn[i].truth);
        }
    }

    #[test]
    fn afc_attrs_come_from_community_topics() {
        let d = presets::toy();
        let bases = generate_bases(&d, 3, 1, 1, 3);
        let afc = materialize(&d, &bases, AttrMode::FromCommunity);
        for q in &afc {
            // Every AFC attribute must be carried by some community member.
            for &a in &q.attrs {
                assert!(q.truth.iter().any(|&v| d.graph.has_attr(v, a)));
            }
        }
    }

    #[test]
    fn split_sizes() {
        let d = presets::toy();
        let queries = generate(&d, 350, 1, 3, AttrMode::FromCommunity, 4);
        let split = QuerySplit::paper_default(queries);
        assert_eq!(split.train.len(), 150);
        assert_eq!(split.val.len(), 100);
        assert_eq!(split.test.len(), 100);
        assert_eq!(split.len(), 350);
    }

    #[test]
    #[should_panic(expected = "need 20 queries")]
    fn split_rejects_short_input() {
        let d = presets::toy();
        let queries = generate(&d, 10, 1, 1, AttrMode::Empty, 4);
        let _ = QuerySplit::new(queries, 10, 5, 5);
    }
}
