//! Batch-norm semantics: after the running statistics converge to the
//! batch statistics, eval-mode output matches train-mode output.

use qdgnn_nn::{BatchNorm1d, Mode};
use qdgnn_tensor::{Dense, ParamStore, Tape};

#[test]
fn eval_matches_train_after_running_stats_converge() {
    let mut store = ParamStore::new();
    let mut bn = BatchNorm1d::new(&mut store, "bn", 3);
    let x = Dense::from_rows(&[
        &[1.0, -2.0, 0.5],
        &[3.0, 0.0, 1.5],
        &[5.0, 2.0, 2.5],
        &[7.0, 4.0, 3.5],
    ]);

    // Feed the same batch many times; EMA converges to its statistics.
    let mut train_out = None;
    for _ in 0..200 {
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let (y, _, stats) = bn.forward(&mut tape, &store, xv, Mode::Train);
        bn.apply_stats(&stats.unwrap());
        train_out = Some((*tape.value(y)).clone());
    }

    let mut tape = Tape::new();
    let xv = tape.constant(x.clone());
    let (y, _, stats) = bn.forward(&mut tape, &store, xv, Mode::Eval);
    assert!(stats.is_none());
    let eval_out = (*tape.value(y)).clone();
    assert!(
        eval_out.approx_eq(&train_out.unwrap(), 1e-2),
        "eval output must converge to train output"
    );
}

#[test]
fn gamma_beta_shift_and_scale_eval_output() {
    let mut store = ParamStore::new();
    let mut bn = BatchNorm1d::new(&mut store, "bn", 1);
    bn.set_running(Dense::row_vector(&[0.0]), Dense::row_vector(&[1.0]));
    // Set γ = 2, β = −1 through the store.
    let ids: Vec<_> = store.ids().collect();
    store.value_mut(ids[0]).set(0, 0, 2.0);
    store.value_mut(ids[1]).set(0, 0, -1.0);
    let mut tape = Tape::new();
    let x = tape.constant(Dense::column_vector(&[1.0]));
    let (y, _, _) = bn.forward(&mut tape, &store, x, Mode::Eval);
    // (1 − 0) / √(1+ε) · 2 − 1 ≈ 1.
    assert!((tape.value(y).get(0, 0) - 1.0).abs() < 1e-3);
}
