//! Loss helpers: the paper's BCE objective (Eq. 3) with optional
//! class-imbalance weighting.

use std::sync::Arc;

use qdgnn_tensor::{Dense, Tape, Var};

/// Records the mean binary cross-entropy between per-vertex `logits`
/// (n×1) and the 0/1 ground-truth community vector `target`, optionally
/// weighted per element.
///
/// This is Eq. 3 of the paper, evaluated for one query (the trainer sums
/// over the batch). The formulation is the numerically-stable
/// with-logits variant; the model's public outputs apply the sigmoid
/// separately.
pub fn bce_loss(
    tape: &mut Tape,
    logits: Var,
    target: Arc<Dense>,
    weights: Option<Arc<Dense>>,
) -> Var {
    tape.bce_with_logits(logits, target, weights)
}

/// Per-element weights that up-weight the positive (community member)
/// class by `neg/pos`, balancing the BCE for small communities in large
/// graphs. Returns `None` when the target is degenerate (all positive or
/// all negative) or balancing is disabled.
pub fn positive_class_weights(target: &Dense, enabled: bool) -> Option<Arc<Dense>> {
    if !enabled {
        return None;
    }
    let pos = target.as_slice().iter().filter(|&&y| y > 0.5).count();
    let neg = target.len() - pos;
    if pos == 0 || neg == 0 {
        return None;
    }
    let w_pos = neg as f32 / pos as f32;
    let data = target.as_slice().iter().map(|&y| if y > 0.5 { w_pos } else { 1.0 }).collect();
    Some(Arc::new(Dense::from_vec(target.rows(), target.cols(), data)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_balance_classes() {
        let target = Dense::column_vector(&[1.0, 0.0, 0.0, 0.0]);
        let w = positive_class_weights(&target, true).unwrap();
        assert_eq!(w.get(0, 0), 3.0);
        assert_eq!(w.get(1, 0), 1.0);
        // Weighted positive mass equals negative mass.
        let pos_mass: f32 = 3.0;
        let neg_mass: f32 = 3.0;
        assert_eq!(pos_mass, neg_mass);
    }

    #[test]
    fn degenerate_targets_get_no_weights() {
        let all_pos = Dense::column_vector(&[1.0, 1.0]);
        assert!(positive_class_weights(&all_pos, true).is_none());
        let all_neg = Dense::column_vector(&[0.0, 0.0]);
        assert!(positive_class_weights(&all_neg, true).is_none());
        let mixed = Dense::column_vector(&[1.0, 0.0]);
        assert!(positive_class_weights(&mixed, false).is_none());
    }

    #[test]
    fn bce_loss_is_low_for_confident_correct_logits() {
        let mut tape = Tape::new();
        let logits = tape.constant(Dense::column_vector(&[8.0, -8.0]));
        let target = Arc::new(Dense::column_vector(&[1.0, 0.0]));
        let loss = bce_loss(&mut tape, logits, target, None);
        assert!(tape.value(loss).get(0, 0) < 1e-3);
    }

    #[test]
    fn bce_loss_is_high_for_confident_wrong_logits() {
        let mut tape = Tape::new();
        let logits = tape.constant(Dense::column_vector(&[8.0, -8.0]));
        let target = Arc::new(Dense::column_vector(&[0.0, 1.0]));
        let loss = bce_loss(&mut tape, logits, target, None);
        assert!(tape.value(loss).get(0, 0) > 4.0);
    }
}
