//! Layers: linear projection, batch normalization over the vertex
//! dimension, and dropout.

use std::sync::Arc;

use rand::Rng;

use qdgnn_tensor::{Dense, ParamId, ParamStore, Tape, Var};

/// Whether a forward pass is a training pass (batch statistics, dropout
/// active) or an inference pass (running statistics, dropout off).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Training: batch-norm uses batch statistics, dropout samples masks.
    Train,
    /// Inference: batch-norm uses running statistics, dropout is identity.
    Eval,
}

/// A dense affine layer `y = x·W (+ b)`.
#[derive(Clone, Debug)]
pub struct Linear {
    weight: ParamId,
    bias: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a Xavier-initialized `in_dim × out_dim` weight (and a zero
    /// bias when `with_bias`) under `name` in `store`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        with_bias: bool,
        rng: &mut impl Rng,
    ) -> Self {
        let weight = store.xavier(format!("{name}.weight"), in_dim, out_dim, rng);
        let bias = with_bias.then(|| store.zeros(format!("{name}.bias"), 1, out_dim));
        Linear { weight, bias, in_dim, out_dim }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The weight parameter id.
    pub fn weight_id(&self) -> ParamId {
        self.weight
    }

    /// Records `x·W (+ b)` on the tape; returns the output and the tape
    /// leaf holding the weight (callers map leaves back to parameters when
    /// extracting gradients).
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> (Var, Vec<(Var, ParamId)>) {
        let mut leaves = Vec::with_capacity(2);
        let w = tape.leaf(Arc::clone(store.value(self.weight)));
        leaves.push((w, self.weight));
        let mut y = tape.matmul(x, w);
        if let Some(bias) = self.bias {
            let b = tape.leaf(Arc::clone(store.value(bias)));
            leaves.push((b, bias));
            y = tape.add_row(y, b);
        }
        (y, leaves)
    }
}

/// Batch statistics produced by a train-mode [`BatchNorm1d`] forward pass,
/// to be folded into the running estimates by the trainer (on the main
/// thread, so data-parallel workers never mutate shared state).
#[derive(Clone, Debug)]
pub struct BnStats {
    /// Per-feature batch mean (1×c).
    pub mean: Dense,
    /// Per-feature batch variance (1×c, biased).
    pub var: Dense,
}

/// Batch normalization over the row (vertex) dimension.
///
/// The paper applies BN inside every layer (Eq. 1). Features here are
/// per-vertex hidden features, so normalization is per feature column
/// across all `n` vertices of the graph.
#[derive(Clone, Debug)]
pub struct BatchNorm1d {
    gamma: ParamId,
    beta: ParamId,
    running_mean: Dense,
    running_var: Dense,
    momentum: f32,
    eps: f32,
    dim: usize,
}

impl BatchNorm1d {
    /// Registers γ=1, β=0 parameters of width `dim` under `name`.
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        let gamma = store.ones(format!("{name}.gamma"), 1, dim);
        let beta = store.zeros(format!("{name}.beta"), 1, dim);
        BatchNorm1d {
            gamma,
            beta,
            running_mean: Dense::zeros(1, dim),
            running_var: Dense::full(1, dim, 1.0),
            momentum: 0.1,
            eps: qdgnn_tensor::EPS,
            dim,
        }
    }

    /// Feature width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Records the normalization on the tape.
    ///
    /// In [`Mode::Train`] the batch statistics are differentiated through
    /// (the full BN backward) and returned for the trainer to fold into
    /// the running estimates; in [`Mode::Eval`] the stored running
    /// statistics are used as constants.
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        x: Var,
        mode: Mode,
    ) -> (Var, Vec<(Var, ParamId)>, Option<BnStats>) {
        let g = tape.leaf(Arc::clone(store.value(self.gamma)));
        let b = tape.leaf(Arc::clone(store.value(self.beta)));
        let leaves = vec![(g, self.gamma), (b, self.beta)];
        match mode {
            Mode::Train => {
                let mu = tape.col_mean(x);
                let neg_mu = tape.scale(mu, -1.0);
                let xc = tape.add_row(x, neg_mu);
                let sq = tape.hadamard(xc, xc);
                let var = tape.col_mean(sq);
                let var_eps = tape.add_scalar(var, self.eps);
                let istd = tape.rsqrt(var_eps);
                let xhat = tape.mul_row(xc, istd);
                let scaled = tape.mul_row(xhat, g);
                let y = tape.add_row(scaled, b);
                let stats = BnStats {
                    mean: (**tape.value(mu)).clone(),
                    var: (**tape.value(var)).clone(),
                };
                (y, leaves, Some(stats))
            }
            Mode::Eval => {
                let neg_mu = tape.constant(self.running_mean.scaled(-1.0));
                let istd =
                    tape.constant(self.running_var.map(|v| 1.0 / (v + self.eps).sqrt()));
                let xc = tape.add_row(x, neg_mu);
                let xhat = tape.mul_row(xc, istd);
                let scaled = tape.mul_row(xhat, g);
                let y = tape.add_row(scaled, b);
                (y, leaves, None)
            }
        }
    }

    /// Folds batch statistics into the running estimates:
    /// `running ← (1−m)·running + m·batch`.
    pub fn apply_stats(&mut self, stats: &BnStats) {
        assert_eq!(stats.mean.shape(), (1, self.dim), "stats width mismatch");
        self.running_mean.scale_assign(1.0 - self.momentum);
        self.running_mean.add_scaled_assign(&stats.mean, self.momentum);
        self.running_var.scale_assign(1.0 - self.momentum);
        self.running_var.add_scaled_assign(&stats.var, self.momentum);
    }

    /// Current running mean (for checkpoint/inspection).
    pub fn running_mean(&self) -> &Dense {
        &self.running_mean
    }

    /// Current running variance (for checkpoint/inspection).
    pub fn running_var(&self) -> &Dense {
        &self.running_var
    }

    /// Overwrites the running statistics (checkpoint restore).
    pub fn set_running(&mut self, mean: Dense, var: Dense) {
        assert_eq!(mean.shape(), (1, self.dim), "mean width mismatch");
        assert_eq!(var.shape(), (1, self.dim), "var width mismatch");
        self.running_mean = mean;
        self.running_var = var;
    }
}

/// Inverted dropout: at train time each element is zeroed with probability
/// `p` and survivors are scaled by `1/(1−p)`; identity at eval time.
#[derive(Clone, Copy, Debug)]
pub struct Dropout {
    /// Drop probability in `[0, 1)`.
    pub p: f32,
}

impl Dropout {
    /// Creates a dropout layer.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p < 1`.
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0,1), got {p}");
        Dropout { p }
    }

    /// Records dropout on the tape.
    pub fn forward(&self, tape: &mut Tape, x: Var, mode: Mode, rng: &mut impl Rng) -> Var {
        if mode == Mode::Eval || self.p <= 0.0 {
            return x;
        }
        let (rows, cols) = tape.shape(x);
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask_data: Vec<f32> = (0..rows * cols)
            .map(|_| if rng.gen::<f32>() < keep { scale } else { 0.0 })
            .collect();
        let mask = tape.constant(Dense::from_vec(rows, cols, mask_data));
        tape.hadamard(x, mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 3, 2, true, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(Dense::zeros(4, 3));
        let (y, leaves) = lin.forward(&mut tape, &store, x);
        assert_eq!(tape.shape(y), (4, 2));
        assert_eq!(leaves.len(), 2);
        // Zero input → output equals the (zero) bias.
        assert!(tape.value(y).approx_eq(&Dense::zeros(4, 2), 0.0));
    }

    #[test]
    fn batchnorm_train_normalizes_columns() {
        let mut store = ParamStore::new();
        let bn = BatchNorm1d::new(&mut store, "bn", 2);
        let mut tape = Tape::new();
        let x = tape.constant(Dense::from_rows(&[&[1.0, 10.0], &[3.0, 30.0], &[5.0, 50.0]]));
        let (y, _, stats) = bn.forward(&mut tape, &store, x, Mode::Train);
        let out = tape.value(y);
        // Each column should have ≈0 mean and ≈1 variance.
        let means = out.col_means();
        assert!(means.max_abs() < 1e-5);
        let stats = stats.unwrap();
        assert!(stats.mean.approx_eq(&Dense::row_vector(&[3.0, 30.0]), 1e-5));
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut store = ParamStore::new();
        let mut bn = BatchNorm1d::new(&mut store, "bn", 1);
        bn.set_running(Dense::row_vector(&[2.0]), Dense::row_vector(&[4.0]));
        let mut tape = Tape::new();
        let x = tape.constant(Dense::column_vector(&[4.0]));
        let (y, _, stats) = bn.forward(&mut tape, &store, x, Mode::Eval);
        assert!(stats.is_none());
        // (4 − 2) / sqrt(4 + eps) ≈ 1.
        assert!((tape.value(y).get(0, 0) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn batchnorm_running_stats_ema() {
        let mut store = ParamStore::new();
        let mut bn = BatchNorm1d::new(&mut store, "bn", 1);
        bn.apply_stats(&BnStats {
            mean: Dense::row_vector(&[10.0]),
            var: Dense::row_vector(&[2.0]),
        });
        assert!((bn.running_mean().get(0, 0) - 1.0).abs() < 1e-6);
        assert!((bn.running_var().get(0, 0) - (0.9 + 0.2)).abs() < 1e-6);
    }

    #[test]
    fn dropout_eval_is_identity_train_scales() {
        let mut rng = StdRng::seed_from_u64(1);
        let drop = Dropout::new(0.5);
        let mut tape = Tape::new();
        let x = tape.constant(Dense::full(100, 10, 1.0));
        let y_eval = drop.forward(&mut tape, x, Mode::Eval, &mut rng);
        assert_eq!(y_eval, x);
        let y_train = drop.forward(&mut tape, x, Mode::Train, &mut rng);
        let v = tape.value(y_train);
        // Surviving entries are scaled to 2.0; overall mean stays ≈ 1.
        assert!(v.as_slice().iter().all(|&e| e == 0.0 || e == 2.0));
        assert!((v.mean() - 1.0).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "dropout probability")]
    fn dropout_rejects_p_one() {
        let _ = Dropout::new(1.0);
    }
}
