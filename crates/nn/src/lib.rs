#![warn(missing_docs)]

//! # qdgnn-nn
//!
//! Neural-network building blocks on top of [`qdgnn_tensor`]: linear
//! layers, batch normalization, dropout and loss helpers — exactly the
//! intra-layer pipeline of the paper's general GNN (Eq. 1):
//! aggregation → batch norm → activation → dropout.

pub mod layers;
pub mod loss;

pub use layers::{BatchNorm1d, BnStats, Dropout, Linear, Mode};
pub use loss::{bce_loss, positive_class_weights};
