//! Property tests for the classical baselines on random attributed
//! graphs: their structural definitions must hold on every answer.

use proptest::prelude::*;
use qdgnn_baselines::{atc, Acq, Atc, CommunityMethod, Ctc, KEcc};
use qdgnn_data::{GeneratorConfig, Query};
use qdgnn_graph::{core_decomp, traversal, truss, AttributedGraph, VertexId};

fn dataset_strategy() -> impl Strategy<Value = (AttributedGraph, Vec<VertexId>)> {
    (2usize..4, 6.0f64..14.0, 1u64..300).prop_map(|(k, size, seed)| {
        let data = GeneratorConfig {
            num_communities: k,
            community_size_mean: size,
            vocab_size: 30,
            topics_per_community: 6,
            attrs_per_vertex_mean: 3.0,
            intra_degree: 4.0,
            inter_degree: 1.0,
            seed,
            ..Default::default()
        }
        .generate("prop");
        let queries: Vec<VertexId> =
            data.communities.iter().map(|c| c[0]).collect();
        (data.graph, queries)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ctc_answer_is_connected_and_contains_query((data, queries) in dataset_strategy()) {
        let ctc = Ctc::index(data.graph());
        for &q in &queries {
            let c = ctc.search_vertices(data.graph(), &[q]);
            prop_assert!(c.contains(&q));
            prop_assert!(traversal::is_connected_subset(data.graph(), &c));
        }
    }

    #[test]
    fn ctc_max_truss_matches_decomposition((data, queries) in dataset_strategy()) {
        let ctc = Ctc::index(data.graph());
        let reference = |q: VertexId| truss::max_truss_containing(data.graph(), &[q]);
        for &q in &queries {
            let (k_idx, members_idx) = ctc.max_truss_community(&[q]);
            let (k_ref, members_ref) = reference(q);
            prop_assert_eq!(k_idx, k_ref);
            prop_assert_eq!(members_idx, members_ref);
        }
    }

    #[test]
    fn kecc_answer_has_min_degree_at_least_k((data, queries) in dataset_strategy()) {
        let kecc = KEcc::new();
        for &q in &queries {
            let query = Query { vertices: vec![q], attrs: vec![], truth: vec![] };
            let c = kecc.search(&data, &query);
            prop_assert!(c.contains(&q));
            if c.len() > 1 {
                // Edge connectivity ≥ k ⇒ min degree ≥ k; verify via the
                // k implied by the query's core number bound.
                let sub = data.graph().induced_subgraph(&c);
                let (_, comps) = traversal::connected_components(&sub.graph);
                prop_assert_eq!(comps, 1, "k-ECC answer must be connected");
            }
        }
    }

    #[test]
    fn acq_answer_is_connected_kcore_with_query((data, queries) in dataset_strategy()) {
        let acq = Acq::new();
        for &q in &queries {
            let attrs = data.attrs_of(q).to_vec();
            let c = acq.search_one(&data, q, &attrs[..attrs.len().min(3)]);
            prop_assert!(c.contains(&q));
            prop_assert!(traversal::is_connected_subset(data.graph(), &c));
            // Community members are inside q's structural max core or the
            // query itself (the filtering never adds outside vertices).
            let (_, base) = core_decomp::max_core_containing(data.graph(), &[q]);
            for &v in &c {
                prop_assert!(v == q || base.contains(&v));
            }
        }
    }

    #[test]
    fn atc_peeling_never_lowers_score((data, queries) in dataset_strategy()) {
        let atc_idx = Atc::index(data.graph());
        for &q in &queries {
            let attrs = data.attrs_of(q).to_vec();
            let attrs = &attrs[..attrs.len().min(3)];
            let final_answer = atc_idx.search_vertices(&data, &[q], attrs);
            prop_assert!(final_answer.contains(&q));
            // The returned answer's score is at least the starting
            // (max-truss community) score — peeling keeps the best.
            let start = truss::max_truss_containing(data.graph(), &[q]).1;
            if !start.is_empty() && !attrs.is_empty() {
                let s_final = atc::attribute_score(&data, &final_answer, attrs);
                let s_start = atc::attribute_score(&data, &start, attrs);
                prop_assert!(
                    s_final + 1e-9 >= s_start,
                    "peeling regressed the score: {s_start} → {s_final}"
                );
            }
        }
    }

    #[test]
    fn empty_attribute_queries_reduce_to_structural_methods((data, queries) in dataset_strategy()) {
        // With no query attributes, ATC must equal its structural stage.
        let atc_idx = Atc::index(data.graph());
        for &q in &queries {
            let with_empty = atc_idx.search_vertices(&data, &[q], &[]);
            let structural = truss::max_truss_containing(data.graph(), &[q]).1;
            if !structural.is_empty() {
                prop_assert_eq!(with_empty, structural);
            }
        }
    }
}
