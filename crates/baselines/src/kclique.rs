//! k-Clique community search (clique percolation, Cui et al. SIGMOD'13 /
//! Yuan et al. TKDE'17) — the fourth pre-defined pattern in the paper's
//! taxonomy of inflexible community models (§1: k-core, k-truss,
//! k-clique, k-ECC). Not part of the paper's evaluated baselines; kept
//! here so the substrate covers the whole taxonomy, and exercised by the
//! `extras` ablations and tests.
//!
//! A k-clique community is the union of all k-cliques reachable from a
//! k-clique containing the query through chains of k-cliques that
//! overlap in k−1 vertices. As the paper notes, the pattern is usually
//! *too tight*: high k returns tiny answers, low k floods.

use std::collections::VecDeque;

use qdgnn_data::Query;
use qdgnn_graph::{core_decomp, AttributedGraph, Graph, VertexId};

use crate::CommunityMethod;

/// Enumeration guard: maximum number of k-cliques materialized per
/// search (the pattern explodes combinatorially on dense graphs; hitting
/// the cap falls back to a smaller k).
pub const MAX_CLIQUES: usize = 200_000;

/// The k-clique percolation method.
#[derive(Clone, Copy, Debug, Default)]
pub struct KClique {
    /// Upper bound on the clique size tried (0 = derive from the query's
    /// core number).
    pub max_k: usize,
}

impl KClique {
    /// Creates the method with automatic k selection.
    pub fn new() -> Self {
        KClique { max_k: 0 }
    }

    /// All k-cliques (ascending vertex order) in the subgraph induced by
    /// `allowed`, up to [`MAX_CLIQUES`]; `None` if the cap is hit.
    fn all_cliques(graph: &Graph, k: usize, allowed: &[bool]) -> Option<Vec<Vec<VertexId>>> {
        let mut cliques = Vec::new();
        let mut stack: Vec<Vec<VertexId>> = graph
            .vertices()
            .filter(|&v| allowed[v as usize])
            .map(|v| vec![v])
            .collect();
        while let Some(current) = stack.pop() {
            if current.len() == k {
                cliques.push(current);
                if cliques.len() > MAX_CLIQUES {
                    return None;
                }
                continue;
            }
            let last = *current.last().expect("non-empty partial clique");
            for &cand in graph.neighbors(last) {
                // Ascending order generates each clique exactly once.
                if cand <= last || !allowed[cand as usize] {
                    continue;
                }
                if current.iter().all(|&m| graph.has_edge(m, cand)) {
                    let mut next = current.clone();
                    next.push(cand);
                    stack.push(next);
                }
            }
        }
        Some(cliques)
    }

    /// The k-clique community of `q` for a specific k, if any k-clique
    /// contains q.
    pub fn community_at_k(&self, graph: &Graph, q: VertexId, k: usize) -> Option<Vec<VertexId>> {
        if k < 2 {
            return None;
        }
        // Every member of a k-clique lies in the (k−1)-core; restricting
        // the enumeration there keeps the clique count tractable.
        let core = core_decomp::core_numbers(graph);
        if core[q as usize] < k - 1 {
            return None;
        }
        let allowed: Vec<bool> = core.iter().map(|&c| c >= k - 1).collect();
        let cliques = Self::all_cliques(graph, k, &allowed)?;
        let seed = cliques.iter().position(|c| c.contains(&q))?;
        // Percolate: BFS over cliques sharing k−1 vertices.
        let share = |a: &[VertexId], b: &[VertexId]| -> bool {
            let mut count = 0;
            for v in a {
                if b.binary_search(v).is_ok() {
                    count += 1;
                    if count >= k - 1 {
                        return true;
                    }
                }
            }
            false
        };
        let mut visited = vec![false; cliques.len()];
        let mut queue = VecDeque::new();
        visited[seed] = true;
        queue.push_back(seed);
        let mut members: Vec<VertexId> = cliques[seed].clone();
        while let Some(i) = queue.pop_front() {
            for j in 0..cliques.len() {
                if !visited[j] && share(&cliques[i], &cliques[j]) {
                    visited[j] = true;
                    queue.push_back(j);
                    members.extend_from_slice(&cliques[j]);
                }
            }
        }
        members.sort_unstable();
        members.dedup();
        Some(members)
    }

    /// The community for the largest feasible k (descending from the
    /// query's core number + 1), falling back to the plain edge (k = 2).
    pub fn search_one(&self, graph: &Graph, q: VertexId) -> Vec<VertexId> {
        let core = core_decomp::core_numbers(graph);
        let mut k = core[q as usize] + 1;
        if self.max_k > 0 {
            k = k.min(self.max_k);
        }
        while k >= 2 {
            if let Some(c) = self.community_at_k(graph, q, k) {
                if c.len() > 1 {
                    return c;
                }
            }
            k -= 1;
        }
        vec![q]
    }
}

impl CommunityMethod for KClique {
    fn name(&self) -> &'static str {
        "k-Clique"
    }

    fn supports_attrs(&self) -> bool {
        false
    }

    fn supports_multi_vertex(&self) -> bool {
        false
    }

    fn search(&self, graph: &AttributedGraph, query: &Query) -> Vec<VertexId> {
        let q = *query.vertices.first().expect("k-clique needs a query vertex");
        self.search_one(graph.graph(), q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two triangles sharing an edge {1,2} plus a pendant 4–5.
    fn bowtie() -> Graph {
        Graph::from_edges(6, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5)])
    }

    #[test]
    fn triangles_sharing_edge_percolate() {
        let g = bowtie();
        let kc = KClique::new();
        // 3-cliques {0,1,2} and {1,2,3} share 2 vertices → one community.
        let c = kc.community_at_k(&g, 0, 3).unwrap();
        assert_eq!(c, vec![0, 1, 2, 3]);
    }

    #[test]
    fn pendant_vertex_falls_back_to_edge() {
        let g = bowtie();
        let kc = KClique::new();
        let c = kc.search_one(&g, 5);
        assert!(c.contains(&5) && c.contains(&4));
    }

    #[test]
    fn k_too_large_returns_none() {
        let g = bowtie();
        let kc = KClique::new();
        assert!(kc.community_at_k(&g, 0, 4).is_none() || kc.community_at_k(&g, 0, 4).unwrap().len() <= 1);
    }

    #[test]
    fn disjoint_triangles_do_not_percolate() {
        // Two triangles connected by a single edge (share 1 < k−1 = 2).
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)]);
        let kc = KClique::new();
        let c = kc.community_at_k(&g, 0, 3).unwrap();
        assert_eq!(c, vec![0, 1, 2], "bridge edge must not percolate 3-cliques");
    }

    #[test]
    fn clique_returns_whole_clique() {
        let mut edges = Vec::new();
        for i in 0..5u32 {
            for j in i + 1..5 {
                edges.push((i, j));
            }
        }
        let g = Graph::from_edges(5, &edges);
        let kc = KClique::new();
        let c = kc.search_one(&g, 0);
        assert_eq!(c, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn method_trait_basics() {
        let kc = KClique::new();
        assert!(!kc.supports_attrs());
        assert!(!kc.supports_multi_vertex());
        assert_eq!(kc.name(), "k-Clique");
    }
}
