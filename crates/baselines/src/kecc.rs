//! k-ECC — maximum edge-connectivity community (Chang et al., SIGMOD'15).
//!
//! The answer is the k-edge-connected component containing all query
//! vertices for the largest feasible k. The authors use a connectivity
//! index; this implementation searches directly with core-peeling +
//! recursive Stoer–Wagner cuts (see `qdgnn_graph::conn`), which matches
//! the definition and exposes the same latency *shape* — cost grows with
//! the graph, unlike GNN inference.

use qdgnn_data::Query;
use qdgnn_graph::{conn, AttributedGraph, VertexId};

use crate::CommunityMethod;

/// The k-ECC method (no index state; the search is self-contained).
#[derive(Clone, Copy, Debug, Default)]
pub struct KEcc;

impl KEcc {
    /// Creates the method.
    pub fn new() -> Self {
        KEcc
    }
}

impl CommunityMethod for KEcc {
    fn name(&self) -> &'static str {
        "ECC"
    }

    fn supports_attrs(&self) -> bool {
        false
    }

    fn supports_multi_vertex(&self) -> bool {
        true
    }

    fn search(&self, graph: &AttributedGraph, query: &Query) -> Vec<VertexId> {
        let (_, members) = conn::max_kecc_containing(graph.graph(), &query.vertices);
        if members.is_empty() {
            query.vertices.clone()
        } else {
            members
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdgnn_graph::Graph;

    fn attributed(graph: Graph) -> AttributedGraph {
        let n = graph.num_vertices();
        AttributedGraph::new(graph, vec![vec![]; n], 1)
    }

    #[test]
    fn finds_dense_side_of_barbell() {
        let g = Graph::from_edges(
            8,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
                (4, 6),
                (4, 7),
                (5, 6),
                (5, 7),
                (6, 7),
            ],
        );
        let ag = attributed(g);
        let kecc = KEcc::new();
        let q = Query { vertices: vec![0], attrs: vec![], truth: vec![] };
        assert_eq!(kecc.search(&ag, &q), vec![0, 1, 2, 3]);
    }

    #[test]
    fn isolated_query_returns_itself() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let ag = attributed(g);
        let kecc = KEcc::new();
        let q = Query { vertices: vec![2], attrs: vec![], truth: vec![] };
        assert_eq!(kecc.search(&ag, &q), vec![2]);
    }
}
