//! CTC — closest truss community (Huang et al., PVLDB'15).
//!
//! The CTC answer is the connected k-truss of **maximum k** containing
//! all query vertices, shrunk to reduce query distance ("free rider"
//! removal): vertices at maximal BFS distance from the query are removed
//! in rounds as long as the queries stay connected in what remains. The
//! original uses bulk deletion with truss maintenance; this
//! implementation re-peels the truss after each distance round, which
//! preserves the result structure at small-graph scale (documented in
//! DESIGN.md).

use qdgnn_data::Query;
use qdgnn_graph::truss::{truss_decomposition, TrussDecomposition};
use qdgnn_graph::{traversal, AttributedGraph, Graph, VertexId};

use crate::CommunityMethod;

/// Maximum free-rider removal rounds (each strictly shrinks the answer).
const MAX_SHRINK_ROUNDS: usize = 64;

/// The CTC method with its precomputed truss index.
pub struct Ctc {
    decomp: TrussDecomposition,
    n: usize,
}

impl Ctc {
    /// Builds the truss index for `graph` (the offline stage).
    pub fn index(graph: &Graph) -> Self {
        Ctc { decomp: truss_decomposition(graph), n: graph.num_vertices() }
    }

    /// The connected k-truss component of maximum k containing `query`,
    /// before free-rider removal. Returns `(k, members)`.
    pub fn max_truss_community(&self, query: &[VertexId]) -> (usize, Vec<VertexId>) {
        if query.is_empty() {
            return (0, Vec::new());
        }
        for k in (2..=self.decomp.max_truss()).rev() {
            let tg = self.decomp.k_truss_graph(self.n, k);
            let component = traversal::component_of(&tg, query[0]);
            if component.len() == 1 && tg.degree(query[0]) == 0 {
                continue;
            }
            if query.iter().all(|&q| component.binary_search(&q).is_ok()) {
                return (k, component);
            }
        }
        (0, Vec::new())
    }

    /// Full CTC answer: maximum truss community + distance-based
    /// shrinking with truss re-peeling.
    pub fn search_vertices(&self, graph: &Graph, query: &[VertexId]) -> Vec<VertexId> {
        let (k, mut members) = self.max_truss_community(query);
        if members.is_empty() {
            // No truss contains the whole query; fall back to the plain
            // connected component (maximal 2-truss-or-less answer).
            let comp = traversal::component_of(graph, query[0]);
            return if query.iter().all(|&q| comp.binary_search(&q).is_ok()) {
                comp
            } else {
                query.to_vec()
            };
        }
        for _ in 0..MAX_SHRINK_ROUNDS {
            let sub = graph.induced_subgraph(&members);
            let local_query: Vec<VertexId> =
                query.iter().filter_map(|&q| sub.local(q)).collect();
            let dist = traversal::bfs_distances(&sub.graph, &local_query);
            let dmax = (0..sub.len())
                .map(|v| dist[v])
                .filter(|&d| d != usize::MAX)
                .max()
                .unwrap_or(0);
            if dmax <= 1 {
                break;
            }
            // Remove the farthest layer, then restore the k-truss property
            // and connectivity.
            let kept: Vec<VertexId> = (0..sub.len() as VertexId)
                .filter(|&v| dist[v as usize] < dmax)
                .collect();
            let kept_global = sub.to_global(&kept);
            let Some(shrunk) = re_peel(graph, &kept_global, query, k) else { break };
            if shrunk.len() >= members.len() {
                break;
            }
            members = shrunk;
        }
        members
    }
}

/// Restores the k-truss property on the subgraph induced by `vertices`
/// and returns the connected component containing all `query` vertices,
/// or `None` if the queries fall out or get separated.
fn re_peel(
    graph: &Graph,
    vertices: &[VertexId],
    query: &[VertexId],
    k: usize,
) -> Option<Vec<VertexId>> {
    let sub = graph.induced_subgraph(vertices);
    let decomp = truss_decomposition(&sub.graph);
    let tg = decomp.k_truss_graph(sub.len(), k);
    let q0 = sub.local(query[0])?;
    let component = traversal::component_of(&tg, q0);
    if component.len() == 1 && tg.degree(q0) == 0 {
        return None;
    }
    for &q in query {
        let lq = sub.local(q)?;
        if component.binary_search(&lq).is_err() {
            return None;
        }
    }
    Some(sub.to_global(&component))
}

impl CommunityMethod for Ctc {
    fn name(&self) -> &'static str {
        "CTC"
    }

    fn supports_attrs(&self) -> bool {
        false
    }

    fn supports_multi_vertex(&self) -> bool {
        true
    }

    fn search(&self, graph: &AttributedGraph, query: &Query) -> Vec<VertexId> {
        self.search_vertices(graph.graph(), &query.vertices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4-clique {0..3} bridged by the path 3–4–5 to a triangle {5,6,7}.
    fn clique_path_triangle() -> Graph {
        Graph::from_edges(
            8,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (5, 7),
                (6, 7),
            ],
        )
    }

    #[test]
    fn finds_clique_for_clique_member() {
        let g = clique_path_triangle();
        let ctc = Ctc::index(&g);
        assert_eq!(ctc.search_vertices(&g, &[1]), vec![0, 1, 2, 3]);
    }

    #[test]
    fn finds_triangle_for_triangle_member() {
        let g = clique_path_triangle();
        let ctc = Ctc::index(&g);
        assert_eq!(ctc.search_vertices(&g, &[6]), vec![5, 6, 7]);
    }

    #[test]
    fn spanning_query_falls_back_to_connecting_structure() {
        let g = clique_path_triangle();
        let ctc = Ctc::index(&g);
        let c = ctc.search_vertices(&g, &[0, 6]);
        assert!(c.contains(&0) && c.contains(&6));
        assert!(traversal::is_connected_subset(&g, &c));
    }

    #[test]
    fn free_rider_removal_trims_far_vertices() {
        // Triangle chain: the query triangle plus a far triangle glued by
        // a shared vertex — same trussness everywhere, distance separates.
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (0, 2),
                (2, 3),
                (3, 4),
                (2, 4),
                (4, 5),
                (5, 6),
                (4, 6),
            ],
        );
        let ctc = Ctc::index(&g);
        let c = ctc.search_vertices(&g, &[0]);
        // The farthest triangle {5,6} should be shaved off.
        assert!(c.contains(&0) && c.contains(&1) && c.contains(&2));
        assert!(!c.contains(&6));
    }

    #[test]
    fn disconnected_query_returns_query_only() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let ctc = Ctc::index(&g);
        assert_eq!(ctc.search_vertices(&g, &[0, 2]), vec![0, 2]);
    }
}
