//! ICS-GNN — lightweight interactive community search via GNN
//! (Gao et al., PVLDB'21).
//!
//! For every query, ICS-GNN (1) extracts a candidate subgraph around the
//! query vertices, (2) **trains a fresh Vanilla GCN from scratch** on
//! that subgraph — query vertices are positive labels, far-away vertices
//! negative labels — and (3) returns the k highest-scoring vertices
//! reachable from the query. The per-query re-training is exactly the
//! cost the paper's QD-GNN framework removes.
//!
//! The model here is the two-layer GCN of Kipf & Welling with symmetric
//! normalization, matching §3.2's description of Vanilla GCN.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use qdgnn_core::interactive::{candidate_by_bfs, select_k_by_scores, SubgraphScorer};
use qdgnn_core::inputs::GraphTensors;
use qdgnn_data::Query;
use qdgnn_graph::{traversal, AttributedGraph, VertexId};
use qdgnn_tensor::{Adam, AdamConfig, Dense, GradStore, ParamStore, Tape};

use crate::CommunityMethod;

/// ICS-GNN hyper-parameters (defaults follow the original paper's
/// lightweight setting).
#[derive(Clone, Debug)]
pub struct IcsGnnConfig {
    /// GCN hidden width.
    pub hidden: usize,
    /// Per-query training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Candidate subgraph size cap.
    pub candidate_size: usize,
    /// Negative labels sampled per positive label.
    pub negative_ratio: usize,
    /// Initialization / sampling seed.
    pub seed: u64,
}

impl Default for IcsGnnConfig {
    fn default() -> Self {
        IcsGnnConfig {
            hidden: 128,
            epochs: 60,
            lr: 0.01,
            candidate_size: 400,
            negative_ratio: 3,
            seed: 99,
        }
    }
}

/// The ICS-GNN baseline.
#[derive(Clone, Debug, Default)]
pub struct IcsGnn {
    /// Hyper-parameters.
    pub config: IcsGnnConfig,
}

impl IcsGnn {
    /// Creates the baseline with the given configuration.
    pub fn new(config: IcsGnnConfig) -> Self {
        IcsGnn { config }
    }

    /// Trains a fresh two-layer GCN on the candidate subgraph and returns
    /// per-vertex scores. `query` is in local vertex ids.
    pub fn train_and_score(
        &self,
        tensors: &GraphTensors,
        query_vertices: &[VertexId],
        seed: u64,
    ) -> Vec<f32> {
        let cfg = &self.config;
        let n = tensors.n;
        let mut rng = StdRng::seed_from_u64(seed ^ cfg.seed);

        // Labels: positives = query vertices; negatives = the farthest
        // vertices from the query (likely outside the community).
        let mut target = Dense::zeros(n, 1);
        let mut weight = Dense::zeros(n, 1);
        for &q in query_vertices {
            target.set(q as usize, 0, 1.0);
            weight.set(q as usize, 0, 1.0);
        }
        let dist = traversal::bfs_distances(&tensors.graph, query_vertices);
        let mut by_distance: Vec<VertexId> = (0..n as VertexId)
            .filter(|&v| !query_vertices.contains(&v))
            .collect();
        by_distance.sort_by_key(|&v| std::cmp::Reverse(dist[v as usize].min(n)));
        let num_neg = (query_vertices.len() * cfg.negative_ratio).min(by_distance.len());
        let mut negatives: Vec<VertexId> = by_distance[..num_neg.max(1).min(by_distance.len())]
            .to_vec();
        negatives.shuffle(&mut rng);
        for &v in &negatives {
            weight.set(v as usize, 0, 1.0);
        }
        let target = Arc::new(target);
        let weight = Arc::new(weight);

        // Fresh GCN parameters.
        let mut store = ParamStore::new();
        let w1 = store.xavier("gcn.w1", tensors.d, cfg.hidden, &mut rng);
        let b1 = store.zeros("gcn.b1", 1, cfg.hidden);
        let w2 = store.xavier("gcn.w2", cfg.hidden, 1, &mut rng);
        let b2 = store.zeros("gcn.b2", 1, 1);
        let mut opt = Adam::new(AdamConfig { lr: cfg.lr, ..Default::default() }, &store);

        let forward = |store: &ParamStore, tape: &mut Tape| {
            let w1v = tape.leaf(Arc::clone(store.value(w1)));
            let b1v = tape.leaf(Arc::clone(store.value(b1)));
            let w2v = tape.leaf(Arc::clone(store.value(w2)));
            let b2v = tape.leaf(Arc::clone(store.value(b2)));
            let xw = tape.spmm(&tensors.feat, &tensors.feat_t, w1v);
            let xwb = tape.add_row(xw, b1v);
            let h1 = tape.spmm(&tensors.adj, &tensors.adj_t, xwb);
            let h1 = tape.relu(h1);
            let hw = tape.matmul(h1, w2v);
            let hwb = tape.add_row(hw, b2v);
            let logits = tape.spmm(&tensors.adj, &tensors.adj_t, hwb);
            (logits, vec![(w1v, w1), (b1v, b1), (w2v, w2), (b2v, b2)])
        };

        for _ in 0..cfg.epochs {
            let mut tape = Tape::new();
            let (logits, leaves) = forward(&store, &mut tape);
            let loss = tape.bce_with_logits(logits, Arc::clone(&target), Some(Arc::clone(&weight)));
            let mut grads = tape.backward(loss);
            let mut gs = GradStore::for_store(&store);
            for (var, pid) in leaves {
                if let Some(g) = grads.take(var) {
                    gs.accumulate(pid, g);
                }
            }
            opt.step(&mut store, &gs);
        }

        let mut tape = Tape::new();
        let (logits, _) = forward(&store, &mut tape);
        let probs = tape.sigmoid(logits);
        tape.value(probs).as_slice().to_vec()
    }
}

impl SubgraphScorer for IcsGnn {
    fn label(&self) -> String {
        "ICS-GNN".to_string()
    }

    fn score_subgraph(
        &self,
        _sub: &AttributedGraph,
        tensors: &GraphTensors,
        query: &Query,
        seed: u64,
    ) -> Vec<f32> {
        self.train_and_score(tensors, &query.vertices, seed)
    }
}

impl CommunityMethod for IcsGnn {
    fn name(&self) -> &'static str {
        "ICS-GNN"
    }

    fn supports_attrs(&self) -> bool {
        false // the GCN uses graph attributes, but the *query* carries none
    }

    fn supports_multi_vertex(&self) -> bool {
        true
    }

    /// One non-interactive round: candidate extraction, per-query GCN
    /// training, k-sized selection with `k = |ground truth|` (ICS-GNN's k
    /// is user-provided; the evaluation grants every method the true
    /// size).
    fn search(&self, graph: &AttributedGraph, query: &Query) -> Vec<VertexId> {
        let candidate =
            candidate_by_bfs(graph.graph(), &query.vertices, self.config.candidate_size);
        let (sub, map) = graph.induced_subgraph(&candidate);
        let local_query: Vec<VertexId> =
            query.vertices.iter().filter_map(|&v| map.local(v)).collect();
        let tensors =
            GraphTensors::new(&sub, qdgnn_graph::attributed::AdjNorm::GcnSym, 100);
        let scores = self.train_and_score(&tensors, &local_query, 7);
        let k = query.truth.len().max(local_query.len());
        let local = select_k_by_scores(sub.graph(), &local_query, &scores, k);
        let mut global = map.to_global(&local);
        global.sort_unstable();
        global
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdgnn_data::{presets, queries as qgen, AttrMode};
    use qdgnn_graph::f1_score;

    fn fast_config() -> IcsGnnConfig {
        IcsGnnConfig { hidden: 16, epochs: 30, candidate_size: 60, ..Default::default() }
    }

    #[test]
    fn scores_separate_positives_from_negatives() {
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, qdgnn_graph::attributed::AdjNorm::GcnSym, 100);
        let ics = IcsGnn::new(fast_config());
        let q = &data.communities[0][..2];
        let scores = ics.train_and_score(&t, q, 1);
        assert_eq!(scores.len(), t.n);
        // Query vertices should be scored clearly above the global mean.
        let mean: f32 = scores.iter().sum::<f32>() / scores.len() as f32;
        for &v in q {
            assert!(
                scores[v as usize] > mean,
                "query vertex {v} scored {} ≤ mean {mean}",
                scores[v as usize]
            );
        }
    }

    #[test]
    fn search_finds_reasonable_toy_community() {
        let data = presets::toy();
        let ics = IcsGnn::new(fast_config());
        let q = qgen::generate(&data, 3, 2, 3, AttrMode::Empty, 5).remove(0);
        let c = ics.search(&data.graph, &q);
        let f1 = f1_score(&c, &q.truth);
        assert!(f1 > 0.3, "ICS-GNN should be non-trivial on toy data, F1={f1:.3}");
        // All query vertices present.
        for v in &q.vertices {
            assert!(c.contains(v));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let data = presets::toy();
        let t = GraphTensors::new(&data.graph, qdgnn_graph::attributed::AdjNorm::GcnSym, 100);
        let ics = IcsGnn::new(fast_config());
        let a = ics.train_and_score(&t, &[0, 1], 42);
        let b = ics.train_and_score(&t, &[0, 1], 42);
        assert_eq!(a, b);
    }
}
