//! ATC — attribute-driven truss community (Huang & Lakshmanan, PVLDB'17).
//!
//! ATC finds a connected k-truss containing the query vertices that
//! maximizes the attribute score
//! `f(H) = Σ_{w ∈ F_q} |V_w(H)|² / |H|`,
//! where `V_w(H)` are the members of `H` carrying attribute `w`. The
//! original `LocATC` peels vertices one at a time with truss maintenance;
//! this implementation starts from the maximum-trussness community and
//! greedily removes batches of lowest-contribution vertices while keeping
//! the query connected, returning the best-scoring intermediate —
//! the same candidate-generation → attribute-peeling structure, with the
//! truss-maintenance step replaced by connectivity maintenance at each
//! batch (documented simplification in DESIGN.md).

use qdgnn_data::Query;
use qdgnn_graph::attributed::AttrId;
use qdgnn_graph::truss::{truss_decomposition, TrussDecomposition};
use qdgnn_graph::{traversal, AttributedGraph, Graph, VertexId};

use crate::CommunityMethod;

/// Maximum peeling rounds.
const MAX_PEEL_ROUNDS: usize = 64;

/// The ATC method with its truss index.
pub struct Atc {
    decomp: TrussDecomposition,
    n: usize,
}

/// The ATC attribute score `f(H)` (§2 of the ATC paper; 0 for empty H).
pub fn attribute_score(graph: &AttributedGraph, members: &[VertexId], attrs: &[AttrId]) -> f64 {
    if members.is_empty() || attrs.is_empty() {
        return 0.0;
    }
    let mut score = 0.0;
    for &a in attrs {
        let covered = members.iter().filter(|&&v| graph.has_attr(v, a)).count();
        score += (covered * covered) as f64;
    }
    score / members.len() as f64
}

impl Atc {
    /// Builds the truss index (the offline stage the paper times out at 7
    /// days on Reddit — here it is just a decomposition).
    pub fn index(graph: &Graph) -> Self {
        Atc { decomp: truss_decomposition(graph), n: graph.num_vertices() }
    }

    fn max_truss_community(&self, query: &[VertexId]) -> Vec<VertexId> {
        for k in (2..=self.decomp.max_truss()).rev() {
            let tg = self.decomp.k_truss_graph(self.n, k);
            let component = traversal::component_of(&tg, query[0]);
            if component.len() == 1 && tg.degree(query[0]) == 0 {
                continue;
            }
            if query.iter().all(|&q| component.binary_search(&q).is_ok()) {
                return component;
            }
        }
        Vec::new()
    }

    /// Full ATC answer for query vertices + attributes.
    pub fn search_vertices(
        &self,
        graph: &AttributedGraph,
        query: &[VertexId],
        attrs: &[AttrId],
    ) -> Vec<VertexId> {
        if query.is_empty() {
            return Vec::new();
        }
        let mut current = self.max_truss_community(query);
        if current.is_empty() {
            let comp = traversal::component_of(graph.graph(), query[0]);
            return if query.iter().all(|&q| comp.binary_search(&q).is_ok()) {
                comp
            } else {
                query.to_vec()
            };
        }
        if attrs.is_empty() {
            return current;
        }
        let mut best = (attribute_score(graph, &current, attrs), current.clone());
        for _ in 0..MAX_PEEL_ROUNDS {
            if current.len() <= query.len().max(2) {
                break;
            }
            // Contribution of each removable vertex to the score numerators.
            let mut cover: Vec<usize> = attrs
                .iter()
                .map(|&a| current.iter().filter(|&&v| graph.has_attr(v, a)).count())
                .collect();
            let contribution = |v: VertexId, cover: &[usize]| -> usize {
                attrs
                    .iter()
                    .zip(cover)
                    .filter(|(&a, _)| graph.has_attr(v, a))
                    .map(|(_, &c)| c)
                    .sum()
            };
            let mut removable: Vec<(usize, VertexId)> = current
                .iter()
                .copied()
                .filter(|v| !query.contains(v))
                .map(|v| (contribution(v, &cover), v))
                .collect();
            if removable.is_empty() {
                break;
            }
            removable.sort_unstable();
            let batch = (current.len() / 8).max(1).min(removable.len());
            let to_remove: Vec<VertexId> =
                removable[..batch].iter().map(|&(_, v)| v).collect();
            let _ = &mut cover; // cover only informs the ranking above
            let kept: Vec<VertexId> =
                current.iter().copied().filter(|v| !to_remove.contains(v)).collect();
            // Maintain query connectivity.
            let sub = graph.graph().induced_subgraph(&kept);
            let Some(q0) = sub.local(query[0]) else { break };
            let component = traversal::component_of(&sub.graph, q0);
            if !query.iter().all(|&q| {
                sub.local(q).map(|l| component.binary_search(&l).is_ok()).unwrap_or(false)
            }) {
                break;
            }
            current = sub.to_global(&component);
            let score = attribute_score(graph, &current, attrs);
            if score > best.0 {
                best = (score, current.clone());
            }
        }
        best.1
    }
}

impl CommunityMethod for Atc {
    fn name(&self) -> &'static str {
        "ATC"
    }

    fn supports_attrs(&self) -> bool {
        true
    }

    fn supports_multi_vertex(&self) -> bool {
        true
    }

    fn search(&self, graph: &AttributedGraph, query: &Query) -> Vec<VertexId> {
        self.search_vertices(graph, &query.vertices, &query.attrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdgnn_graph::Graph;

    /// One 6-clique where half the members carry attribute 0.
    fn clique6() -> AttributedGraph {
        let mut edges = Vec::new();
        for i in 0..6u32 {
            for j in i + 1..6 {
                edges.push((i, j));
            }
        }
        let g = Graph::from_edges(6, &edges);
        let attrs = vec![vec![0], vec![0], vec![0], vec![1], vec![1], vec![1]];
        AttributedGraph::new(g, attrs, 2)
    }

    #[test]
    fn attribute_score_definition() {
        let ag = clique6();
        // f({0,1,2}) with attrs {0}: 3²/3 = 3.
        assert_eq!(attribute_score(&ag, &[0, 1, 2], &[0]), 3.0);
        // f(all six) with attrs {0}: 3²/6 = 1.5.
        assert_eq!(attribute_score(&ag, &[0, 1, 2, 3, 4, 5], &[0]), 1.5);
        assert_eq!(attribute_score(&ag, &[], &[0]), 0.0);
    }

    #[test]
    fn peeling_prefers_attribute_matching_half() {
        let ag = clique6();
        let atc = Atc::index(ag.graph());
        let c = atc.search_vertices(&ag, &[0], &[0]);
        // The attribute-0 half scores higher than the full clique.
        assert!(c.contains(&0) && c.contains(&1) && c.contains(&2));
        assert!(!c.contains(&5), "attribute-free vertices should be peeled: {c:?}");
    }

    #[test]
    fn no_attrs_returns_truss_community() {
        let ag = clique6();
        let atc = Atc::index(ag.graph());
        let c = atc.search_vertices(&ag, &[0], &[]);
        assert_eq!(c.len(), 6);
    }

    #[test]
    fn query_vertices_never_peeled() {
        let ag = clique6();
        let atc = Atc::index(ag.graph());
        // Query vertex 5 has attribute 1, query attrs = {0}: still kept.
        let c = atc.search_vertices(&ag, &[5], &[0]);
        assert!(c.contains(&5));
    }

    #[test]
    fn multi_vertex_query_stays_connected() {
        let ag = clique6();
        let atc = Atc::index(ag.graph());
        let c = atc.search_vertices(&ag, &[0, 5], &[0]);
        assert!(c.contains(&0) && c.contains(&5));
        assert!(traversal::is_connected_subset(ag.graph(), &c));
    }
}
