#![warn(missing_docs)]

//! # qdgnn-baselines
//!
//! Reimplementations of the five baselines the paper evaluates against
//! (§7.1.2):
//!
//! * [`ctc`] — **CTC** (closest truss community, Huang et al. PVLDB'15):
//!   maximum-trussness connected subgraph containing the query, with
//!   distance-based free-rider removal;
//! * [`kecc`] — **k-ECC** (Chang et al. SIGMOD'15): the k-edge-connected
//!   component containing the query for the largest feasible k;
//! * [`acq`] — **ACQ** (Fang et al. PVLDB'16): connected k-core whose
//!   members share the maximum number of query attributes;
//! * [`atc`] — **ATC** (Huang & Lakshmanan PVLDB'17): k-truss community
//!   maximizing an attribute score, found by greedy peeling;
//! * [`icsgnn`] — **ICS-GNN** (Gao et al. PVLDB'21): a Vanilla GCN
//!   re-trained per query on a candidate subgraph, selecting a k-sized
//!   community of maximum scores.
//!
//! All five implement [`CommunityMethod`], the interface the experiment
//! harness times and scores.

pub mod acq;
pub mod atc;
pub mod ctc;
pub mod icsgnn;
pub mod kclique;
pub mod kecc;

use qdgnn_data::Query;
use qdgnn_graph::{AttributedGraph, VertexId};

pub use acq::Acq;
pub use atc::Atc;
pub use ctc::Ctc;
pub use icsgnn::{IcsGnn, IcsGnnConfig};
pub use kclique::KClique;
pub use kecc::KEcc;

/// A community-search method with an offline index stage and an online
/// query stage (the interface Tables 2 and 4 time).
pub trait CommunityMethod {
    /// Method name as printed in the paper's tables.
    fn name(&self) -> &'static str;

    /// Whether query attributes influence the result.
    fn supports_attrs(&self) -> bool;

    /// Whether multi-vertex queries are supported (ACQ is single-vertex
    /// only, §7.2.2).
    fn supports_multi_vertex(&self) -> bool;

    /// Answers one query with a community (sorted vertex ids).
    fn search(&self, graph: &AttributedGraph, query: &Query) -> Vec<VertexId>;
}
