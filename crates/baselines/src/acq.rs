//! ACQ — attributed community query (Fang et al., PVLDB'16).
//!
//! ACQ returns a connected k-core containing the (single) query vertex
//! whose members share as many of the query attributes as possible. The
//! original explores attribute subsets with a tree index (CL-tree); this
//! implementation ranks the query attributes by frequency inside the
//! structural k-core and scans prefixes of that ranking from largest to
//! smallest — the same greedy core as the authors' `Dec` algorithm.
//! Crucially (and faithfully), attributes are required to match
//! **exactly**: related-but-different attributes count for nothing,
//! which is the weakness the paper's AQD-GNN exploits under AFN.

use qdgnn_data::Query;
use qdgnn_graph::attributed::AttrId;
use qdgnn_graph::{core_decomp, AttributedGraph, VertexId};

use crate::CommunityMethod;

/// The ACQ method.
#[derive(Clone, Copy, Debug, Default)]
pub struct Acq;

impl Acq {
    /// Creates the method.
    pub fn new() -> Self {
        Acq
    }

    /// ACQ for a single query vertex with attributes.
    pub fn search_one(
        &self,
        graph: &AttributedGraph,
        q: VertexId,
        query_attrs: &[AttrId],
    ) -> Vec<VertexId> {
        let (k, base) = core_decomp::max_core_containing(graph.graph(), &[q]);
        if base.is_empty() {
            return vec![q];
        }
        if query_attrs.is_empty() {
            return base;
        }

        // Rank query attributes by frequency within the structural core.
        let mut ranked: Vec<(usize, AttrId)> = query_attrs
            .iter()
            .map(|&a| {
                let freq = base.iter().filter(|&&v| graph.has_attr(v, a)).count();
                (freq, a)
            })
            .collect();
        ranked.sort_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)));
        let ranked: Vec<AttrId> = ranked.into_iter().map(|(_, a)| a).collect();

        // Largest shared-attribute prefix first (ACQ maximizes |S|).
        for s in (1..=ranked.len()).rev() {
            let subset = &ranked[..s];
            let mut candidates: Vec<VertexId> = base
                .iter()
                .copied()
                .filter(|&v| subset.iter().all(|&a| graph.has_attr(v, a)))
                .collect();
            if !candidates.contains(&q) {
                candidates.push(q);
                candidates.sort_unstable();
            }
            if candidates.len() <= 1 {
                continue;
            }
            // The answer must still be a connected k'-core for the largest
            // feasible k' and contain q.
            let sub = graph.graph().induced_subgraph(&candidates);
            let Some(q_local) = sub.local(q) else { continue };
            let (k_attr, members_local) =
                core_decomp::max_core_containing(&sub.graph, &[q_local]);
            if members_local.len() > 1 && k_attr >= 1.min(k) {
                return sub.to_global(&members_local);
            }
        }
        // No attribute subset yields a community: fall back to structure.
        base
    }
}

impl CommunityMethod for Acq {
    fn name(&self) -> &'static str {
        "ACQ"
    }

    fn supports_attrs(&self) -> bool {
        true
    }

    fn supports_multi_vertex(&self) -> bool {
        false
    }

    fn search(&self, graph: &AttributedGraph, query: &Query) -> Vec<VertexId> {
        // ACQ handles one query vertex (§7.2.2); extra vertices are
        // ignored, mirroring how the paper restricts its comparisons.
        let q = *query.vertices.first().expect("ACQ needs a query vertex");
        self.search_one(graph, q, &query.attrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdgnn_graph::Graph;

    /// Two 4-cliques sharing vertex 3; attrs 0 on the left, 1 on the
    /// right, vertex 3 has both.
    fn two_cliques() -> AttributedGraph {
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (3, 5),
                (3, 6),
                (4, 5),
                (4, 6),
                (5, 6),
            ],
        );
        let attrs = vec![
            vec![0],
            vec![0],
            vec![0],
            vec![0, 1],
            vec![1],
            vec![1],
            vec![1],
        ];
        AttributedGraph::new(g, attrs, 2)
    }

    #[test]
    fn attribute_filter_selects_matching_clique() {
        let ag = two_cliques();
        let acq = Acq::new();
        // Vertex 3 is in both cliques; attribute 0 selects the left one.
        let c = acq.search_one(&ag, 3, &[0]);
        assert_eq!(c, vec![0, 1, 2, 3]);
        let c = acq.search_one(&ag, 3, &[1]);
        assert_eq!(c, vec![3, 4, 5, 6]);
    }

    #[test]
    fn empty_attrs_returns_structural_core() {
        let ag = two_cliques();
        let acq = Acq::new();
        let c = acq.search_one(&ag, 0, &[]);
        assert!(c.contains(&0) && c.len() >= 4);
    }

    #[test]
    fn unmatchable_attrs_fall_back_to_structure() {
        let ag = two_cliques();
        let acq = Acq::new();
        // Attribute 1 exists only on the right; querying from vertex 0
        // cannot keep it, so ACQ falls back to the structural community.
        let c = acq.search_one(&ag, 0, &[1]);
        assert!(c.contains(&0));
        assert!(c.len() >= 4);
    }

    #[test]
    fn method_trait_uses_first_vertex() {
        let ag = two_cliques();
        let q = Query { vertices: vec![4, 0], attrs: vec![1], truth: vec![] };
        let c = Acq::new().search(&ag, &q);
        assert!(c.contains(&4));
        assert!(!Acq::new().supports_multi_vertex());
    }
}
