//! Edge connectivity: Stoer–Wagner global minimum cuts and
//! k-edge-connected component (k-ECC) search — the substrate of the
//! k-ECC baseline (Chang et al., SIGMOD'15).
//!
//! The authors use an index-based algorithm; here k-ECCs are found by the
//! classical recursive strategy — peel to the k-core (edge connectivity ≥ k
//! implies minimum degree ≥ k), compute a global min cut, and either accept
//! the component (cut ≥ k) or split along the cut and recurse. Stoer–Wagner
//! is `O(n³)` per cut on a dense working matrix, so components larger than
//! [`MAX_MINCUT_VERTICES`] are conservatively accepted as-is; this is a
//! documented approximation that only triggers on graphs far above the
//! sizes the paper runs k-ECC on.

use crate::core_decomp;
use crate::graph::{Graph, VertexId};
use crate::traversal;

/// Size guard for the dense Stoer–Wagner working matrix.
pub const MAX_MINCUT_VERTICES: usize = 3000;

/// Global minimum cut of an undirected graph given as a dense symmetric
/// weight matrix. Returns `(cut_weight, one_side_indices)`.
///
/// # Panics
/// Panics if `w` is not square or has fewer than 2 vertices.
pub fn stoer_wagner(mut w: Vec<Vec<f32>>) -> (f32, Vec<usize>) {
    let n = w.len();
    assert!(n >= 2, "min cut requires at least two vertices");
    for row in &w {
        assert_eq!(row.len(), n, "weight matrix must be square");
    }
    let mut merged_into: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    let mut vertices: Vec<usize> = (0..n).collect();
    let mut best_weight = f32::INFINITY;
    let mut best_side: Vec<usize> = Vec::new();

    while vertices.len() > 1 {
        let m = vertices.len();
        let mut added = vec![false; m];
        let mut weights: Vec<f32> = vertices.iter().map(|&v| w[vertices[0]][v]).collect();
        added[0] = true;
        let mut prev = 0usize;
        let mut last = 0usize;
        let mut cut_of_phase = 0.0f32;
        for _ in 1..m {
            let mut sel = usize::MAX;
            for i in 0..m {
                if !added[i] && (sel == usize::MAX || weights[i] > weights[sel]) {
                    sel = i;
                }
            }
            added[sel] = true;
            prev = last;
            last = sel;
            cut_of_phase = weights[sel];
            for i in 0..m {
                if !added[i] {
                    weights[i] += w[vertices[sel]][vertices[i]];
                }
            }
        }
        let last_v = vertices[last];
        let prev_v = vertices[prev];
        if cut_of_phase < best_weight {
            best_weight = cut_of_phase;
            best_side = merged_into[last_v].clone();
        }
        // Merge `last_v` into `prev_v`.
        let moved = std::mem::take(&mut merged_into[last_v]);
        merged_into[prev_v].extend(moved);
        for &v in &vertices {
            if v != prev_v && v != last_v {
                w[prev_v][v] += w[last_v][v];
                w[v][prev_v] = w[prev_v][v];
            }
        }
        vertices.swap_remove(last);
    }
    (best_weight, best_side)
}

/// Global minimum cut of a connected unweighted [`Graph`].
/// Returns `(cut_size, one_side_vertices)`.
pub fn min_cut(graph: &Graph) -> (usize, Vec<VertexId>) {
    let n = graph.num_vertices();
    assert!(n >= 2, "min cut requires at least two vertices");
    let mut w = vec![vec![0.0f32; n]; n];
    for (u, v) in graph.edges() {
        w[u as usize][v as usize] = 1.0;
        w[v as usize][u as usize] = 1.0;
    }
    let (weight, side) = stoer_wagner(w);
    (weight.round() as usize, side.into_iter().map(|v| v as VertexId).collect())
}

/// The k-edge-connected component containing every vertex of `query`, if
/// one exists: a maximal vertex set, containing the query, whose induced
/// subgraph has edge connectivity ≥ k. Returns sorted global vertex ids.
///
/// Singleton results are only returned when the query itself is a single
/// vertex (a lone vertex is vacuously k-edge-connected but useless as a
/// community).
pub fn kecc_containing(graph: &Graph, query: &[VertexId], k: usize) -> Option<Vec<VertexId>> {
    if query.is_empty() {
        return None;
    }
    if k == 0 {
        let comp = traversal::component_of(graph, query[0]);
        return query
            .iter()
            .all(|&q| comp.binary_search(&q).is_ok())
            .then_some(comp);
    }
    // Work on a shrinking candidate vertex set (global ids).
    let mut candidate: Vec<VertexId> = graph.vertices().collect();
    loop {
        let sub = graph.induced_subgraph(&candidate);
        // Peel to the k-core: edge connectivity ≥ k requires min degree ≥ k.
        let core = core_decomp::core_numbers(&sub.graph);
        let kept: Vec<VertexId> = (0..sub.len())
            .filter(|&v| core[v] >= k)
            .map(|v| v as VertexId)
            .collect();
        if kept.len() < sub.len() {
            let kept_global = sub.to_global(&kept);
            if !query.iter().all(|&q| kept_global.binary_search(&q).is_ok()) {
                return None;
            }
            candidate = kept_global;
            continue;
        }
        // Restrict to the connected component holding the query.
        let q0_local = sub.local(query[0])?;
        let comp = traversal::component_of(&sub.graph, q0_local);
        if !query.iter().all(|&q| {
            sub.local(q).map(|l| comp.binary_search(&l).is_ok()).unwrap_or(false)
        }) {
            return None;
        }
        if comp.len() < sub.len() {
            candidate = sub.to_global(&comp);
            continue;
        }
        // Connected, min degree ≥ k. A single vertex is k-connected
        // vacuously; accept only for single-vertex queries.
        if sub.len() == 1 {
            return (query.len() == 1).then(|| sub.globals.clone());
        }
        if sub.len() > MAX_MINCUT_VERTICES {
            // Documented approximation: accept without the cut check.
            candidate.sort_unstable();
            return Some(candidate);
        }
        let (cut, side) = min_cut(&sub.graph);
        if cut >= k {
            candidate.sort_unstable();
            return Some(candidate);
        }
        // Split along the cut; keep the side holding query[0].
        let keep: Vec<VertexId> = if side.contains(&q0_local) {
            side
        } else {
            let side_set: std::collections::HashSet<VertexId> = side.into_iter().collect();
            (0..sub.len() as VertexId).filter(|v| !side_set.contains(v)).collect()
        };
        let keep_global = sub.to_global(&keep);
        if !query.iter().all(|&q| keep_global.contains(&q)) {
            return None; // the cut separates the query vertices
        }
        candidate = keep_global;
    }
}

/// The largest `k` such that a k-ECC contains all `query` vertices,
/// together with that component: the k-ECC baseline's answer. Returns
/// `(0, component)` when the query is only plainly connected.
pub fn max_kecc_containing(graph: &Graph, query: &[VertexId]) -> (usize, Vec<VertexId>) {
    if query.is_empty() {
        return (0, Vec::new());
    }
    let core = core_decomp::core_numbers(graph);
    let k_upper = query.iter().map(|&q| core[q as usize]).min().unwrap_or(0);
    for k in (1..=k_upper).rev() {
        if let Some(members) = kecc_containing(graph, query, k) {
            if members.len() > 1 || query.len() == 1 {
                return (k, members);
            }
        }
    }
    (0, kecc_containing(graph, query, 0).unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two 4-cliques joined by a single bridge edge 3–4.
    fn barbell() -> Graph {
        Graph::from_edges(
            8,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
                (4, 6),
                (4, 7),
                (5, 6),
                (5, 7),
                (6, 7),
            ],
        )
    }

    #[test]
    fn min_cut_of_barbell_is_the_bridge() {
        let g = barbell();
        let (cut, side) = min_cut(&g);
        assert_eq!(cut, 1);
        let mut side = side;
        side.sort_unstable();
        assert!(side == vec![0, 1, 2, 3] || side == vec![4, 5, 6, 7]);
    }

    #[test]
    fn min_cut_of_cycle_is_two() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let (cut, _) = min_cut(&g);
        assert_eq!(cut, 2);
    }

    #[test]
    fn kecc_finds_clique_side() {
        let g = barbell();
        let members = kecc_containing(&g, &[0], 3).expect("3-ECC exists");
        assert_eq!(members, vec![0, 1, 2, 3]);
    }

    #[test]
    fn kecc_fails_across_bridge_for_high_k() {
        let g = barbell();
        assert!(kecc_containing(&g, &[0, 7], 2).is_none());
        // k = 1 keeps everything (the whole graph is 1-edge-connected).
        let members = kecc_containing(&g, &[0, 7], 1).expect("1-ECC");
        assert_eq!(members.len(), 8);
    }

    #[test]
    fn max_kecc_prefers_densest() {
        let g = barbell();
        let (k, members) = max_kecc_containing(&g, &[5]);
        assert_eq!(k, 3);
        assert_eq!(members, vec![4, 5, 6, 7]);
        let (k2, members2) = max_kecc_containing(&g, &[0, 7]);
        assert_eq!(k2, 1);
        assert_eq!(members2.len(), 8);
    }

    #[test]
    fn stoer_wagner_weighted() {
        // Weighted triangle: cheapest cut isolates the vertex with the
        // lightest incident weights.
        let w = vec![
            vec![0.0, 10.0, 1.0],
            vec![10.0, 0.0, 1.0],
            vec![1.0, 1.0, 0.0],
        ];
        let (cut, side) = stoer_wagner(w);
        assert!((cut - 2.0).abs() < 1e-6);
        assert_eq!(side, vec![2]);
    }

    #[test]
    fn kecc_zero_returns_component() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(kecc_containing(&g, &[0], 0), Some(vec![0, 1]));
        assert_eq!(kecc_containing(&g, &[0, 2], 0), None);
    }
}
