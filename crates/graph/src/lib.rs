#![warn(missing_docs)]

//! # qdgnn-graph
//!
//! Graph data structures and the classical community-search substrate the
//! paper builds on and compares against:
//!
//! * [`Graph`] — a compact undirected CSR graph;
//! * [`AttributedGraph`] — a graph plus per-vertex keyword attributes, the
//!   node–attribute bipartite graph of §6.3 and the fusion graph of §6.6;
//! * [`traversal`] — BFS, connected components and the paper's
//!   constrained-BFS community identification (Algorithm 1);
//! * [`core_decomp`] — k-core decomposition (substrate for ACQ);
//! * [`truss`] — k-truss decomposition (substrate for CTC and ATC);
//! * [`conn`] — Stoer–Wagner minimum cuts and k-edge-connected
//!   components (substrate for the k-ECC baseline);
//! * [`metrics`] — the aggregate precision / recall / F1 measures of
//!   §7.1.5.

pub mod attributed;
pub mod conn;
pub mod core_decomp;
pub mod graph;
pub mod metrics;
pub mod traversal;
pub mod truss;

pub use attributed::AttributedGraph;
pub use graph::{Graph, GraphBuilder, Subgraph, VertexId};
pub use metrics::{f1_score, CommunityMetrics};
