//! Compact undirected graphs in CSR form.

use std::collections::BTreeSet;

/// Vertex identifier. Graphs in the paper's evaluation range from a few
/// hundred vertices (WebKB, Facebook ego-nets) to millions
/// (Enlarged_Reddit), all comfortably within `u32`.
pub type VertexId = u32;

/// An undirected simple graph stored as CSR adjacency.
///
/// Invariants maintained by construction:
/// * no self-loops, no parallel edges;
/// * every neighbor list is sorted ascending;
/// * adjacency is symmetric (`u ∈ N(v) ⟺ v ∈ N(u)`).
///
/// ```
/// use qdgnn_graph::Graph;
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
/// assert_eq!(g.num_edges(), 4);
/// assert_eq!(g.neighbors(2), &[0, 1, 3]);
/// assert!(g.has_edge(0, 2) && !g.has_edge(0, 3));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<usize>,
    neighbors: Vec<VertexId>,
    num_edges: usize,
}

impl Graph {
    /// Builds a graph with `n` vertices from an edge list.
    ///
    /// Self-loops and duplicate edges (in either orientation) are dropped.
    ///
    /// # Panics
    /// Panics if an endpoint is `≥ n`.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut builder = GraphBuilder::new(n);
        for &(u, v) in edges {
            builder.add_edge(u, v);
        }
        builder.build()
    }

    /// An edgeless graph with `n` vertices.
    pub fn empty(n: usize) -> Self {
        Graph { offsets: vec![0; n + 1], neighbors: Vec::new(), num_edges: 0 }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.neighbors(v).len()
    }

    /// Whether the undirected edge `{u, v}` exists.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let (u, v) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over vertices `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.num_vertices() as VertexId
    }

    /// Iterator over undirected edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u).iter().copied().filter(move |&v| u < v).map(move |v| (u, v))
        })
    }

    /// Maximum degree (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// The subgraph induced by `vertices` (duplicates ignored), with a
    /// local↔global vertex mapping.
    pub fn induced_subgraph(&self, vertices: &[VertexId]) -> Subgraph {
        let globals: Vec<VertexId> = {
            let set: BTreeSet<VertexId> = vertices.iter().copied().collect();
            set.into_iter().collect()
        };
        let mut local_of = vec![VertexId::MAX; self.num_vertices()];
        for (local, &g) in globals.iter().enumerate() {
            local_of[g as usize] = local as VertexId;
        }
        let mut builder = GraphBuilder::new(globals.len());
        for (local, &g) in globals.iter().enumerate() {
            for &nb in self.neighbors(g) {
                let nb_local = local_of[nb as usize];
                if nb_local != VertexId::MAX && (local as VertexId) < nb_local {
                    builder.add_edge(local as VertexId, nb_local);
                }
            }
        }
        Subgraph { graph: builder.build(), globals, local_of }
    }
}

/// Incremental, deduplicating graph builder.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// Starts a builder for `n` vertices.
    pub fn new(n: usize) -> Self {
        GraphBuilder { n, edges: Vec::new() }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Queues the undirected edge `{u, v}`; self-loops are ignored.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u},{v}) out of range for {} vertices",
            self.n
        );
        if u == v {
            return;
        }
        self.edges.push(if u < v { (u, v) } else { (v, u) });
    }

    /// Finalizes into a CSR [`Graph`], deduplicating edges.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let num_edges = self.edges.len();
        let mut degree = vec![0usize; self.n];
        for &(u, v) in &self.edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = vec![0usize; self.n + 1];
        for v in 0..self.n {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let mut neighbors = vec![0 as VertexId; 2 * num_edges];
        let mut cursor = offsets.clone();
        for &(u, v) in &self.edges {
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Edges were inserted in sorted order per source, but symmetric
        // inserts interleave; sort each adjacency list.
        for v in 0..self.n {
            neighbors[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Graph { offsets, neighbors, num_edges }
    }
}

/// An induced subgraph with its vertex mapping back to the parent graph.
#[derive(Clone, Debug)]
pub struct Subgraph {
    /// The subgraph itself, over local vertex ids `0..k`.
    pub graph: Graph,
    /// `globals[local] = global` vertex id in the parent graph.
    pub globals: Vec<VertexId>,
    local_of: Vec<VertexId>,
}

impl Subgraph {
    /// Maps a parent-graph vertex to its local id, if included.
    pub fn local(&self, global: VertexId) -> Option<VertexId> {
        match self.local_of.get(global as usize) {
            Some(&l) if l != VertexId::MAX => Some(l),
            _ => None,
        }
    }

    /// Maps a local vertex back to the parent graph.
    pub fn global(&self, local: VertexId) -> VertexId {
        self.globals[local as usize]
    }

    /// Number of vertices in the subgraph.
    pub fn len(&self) -> usize {
        self.globals.len()
    }

    /// Whether the subgraph is empty.
    pub fn is_empty(&self) -> bool {
        self.globals.is_empty()
    }

    /// Translates a set of local vertices to global ids.
    pub fn to_global(&self, locals: &[VertexId]) -> Vec<VertexId> {
        locals.iter().map(|&l| self.global(l)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn builds_and_dedups() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (1, 1), (1, 2), (1, 2)]);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn edges_iterator_is_canonical() {
        let g = path4();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn degrees_and_max_degree() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn induced_subgraph_maps_both_ways() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let sub = g.induced_subgraph(&[4, 0, 1]);
        assert_eq!(sub.len(), 3);
        // Local ids follow sorted global order: [0, 1, 4] → 0,1,2.
        assert_eq!(sub.global(2), 4);
        assert_eq!(sub.local(4), Some(2));
        assert_eq!(sub.local(3), None);
        assert_eq!(sub.graph.num_edges(), 2); // edges {0,1} and {0,4}
        assert!(sub.graph.has_edge(0, 1));
        assert!(sub.graph.has_edge(0, 2));
        assert!(!sub.graph.has_edge(1, 2));
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(3);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.neighbors(0), &[] as &[VertexId]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 5);
    }
}
