//! Breadth-first traversal utilities and the paper's constrained-BFS
//! community identification (Algorithm 1).

use std::collections::VecDeque;

use crate::graph::{Graph, VertexId};

/// BFS distances from a set of sources; unreachable vertices get
/// `usize::MAX`.
pub fn bfs_distances(graph: &Graph, sources: &[VertexId]) -> Vec<usize> {
    let mut dist = vec![usize::MAX; graph.num_vertices()];
    let mut queue = VecDeque::new();
    for &s in sources {
        if dist[s as usize] == usize::MAX {
            dist[s as usize] = 0;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in graph.neighbors(u) {
            if dist[v as usize] == usize::MAX {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Vertices within `hops` BFS hops of any source (sources included).
pub fn k_hop_neighborhood(graph: &Graph, sources: &[VertexId], hops: usize) -> Vec<VertexId> {
    let dist = bfs_distances(graph, sources);
    dist.iter()
        .enumerate()
        .filter(|&(_, &d)| d <= hops)
        .map(|(v, _)| v as VertexId)
        .collect()
}

/// Connected components: returns `(component_id_per_vertex, #components)`.
pub fn connected_components(graph: &Graph) -> (Vec<usize>, usize) {
    let n = graph.num_vertices();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        comp[start] = next;
        queue.push_back(start as VertexId);
        while let Some(u) = queue.pop_front() {
            for &v in graph.neighbors(u) {
                if comp[v as usize] == usize::MAX {
                    comp[v as usize] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    (comp, next)
}

/// The connected component containing `start`, as a sorted vertex list.
pub fn component_of(graph: &Graph, start: VertexId) -> Vec<VertexId> {
    let mut seen = vec![false; graph.num_vertices()];
    let mut queue = VecDeque::new();
    let mut out = Vec::new();
    seen[start as usize] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        out.push(u);
        for &v in graph.neighbors(u) {
            if !seen[v as usize] {
                seen[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Whether all `vertices` lie in one connected component of their induced
/// subgraph.
pub fn is_connected_subset(graph: &Graph, vertices: &[VertexId]) -> bool {
    if vertices.is_empty() {
        return true;
    }
    let sub = graph.induced_subgraph(vertices);
    let (_, count) = connected_components(&sub.graph);
    count <= 1
}

/// Algorithm 1 of the paper: constrained BFS for community identification.
///
/// Starting from the query vertices, expands through neighbors whose model
/// score reaches the threshold `gamma`, guaranteeing the answer community
/// is connected to the queries. Query vertices are always included, as in
/// the paper (line 1 initializes `C_q = V_q`). The result is sorted.
///
/// `scores` holds the model output `h_q` (post-sigmoid, in `[0,1]`), one
/// entry per vertex of `graph`.
///
/// # Panics
/// Panics if `scores.len() != graph.num_vertices()`.
pub fn constrained_bfs(
    graph: &Graph,
    query: &[VertexId],
    scores: &[f32],
    gamma: f32,
) -> Vec<VertexId> {
    assert_eq!(
        scores.len(),
        graph.num_vertices(),
        "scores length must equal vertex count"
    );
    let mut in_community = vec![false; graph.num_vertices()];
    let mut visited = vec![false; graph.num_vertices()];
    let mut queue = VecDeque::new();
    for &q in query {
        if !in_community[q as usize] {
            in_community[q as usize] = true;
            visited[q as usize] = true;
            queue.push_back(q);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &v in graph.neighbors(u) {
            if visited[v as usize] {
                continue;
            }
            visited[v as usize] = true;
            if scores[v as usize] >= gamma {
                in_community[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    in_community
        .iter()
        .enumerate()
        .filter(|&(_, &m)| m)
        .map(|(v, _)| v as VertexId)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two triangles bridged by one edge: {0,1,2} – {3,4,5}.
    fn two_triangles() -> Graph {
        Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)])
    }

    #[test]
    fn bfs_distances_basic() {
        let g = two_triangles();
        let d = bfs_distances(&g, &[0]);
        assert_eq!(d, vec![0, 1, 1, 2, 3, 3]);
    }

    #[test]
    fn multi_source_bfs() {
        let g = two_triangles();
        let d = bfs_distances(&g, &[0, 5]);
        assert_eq!(d[3], 1);
        assert_eq!(d[1], 1);
    }

    #[test]
    fn k_hop_neighborhood_grows() {
        let g = two_triangles();
        assert_eq!(k_hop_neighborhood(&g, &[0], 1), vec![0, 1, 2]);
        assert_eq!(k_hop_neighborhood(&g, &[0], 2).len(), 4);
    }

    #[test]
    fn components_of_disconnected_graph() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3)]);
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[4]);
    }

    #[test]
    fn component_of_returns_sorted_members() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3)]);
        assert_eq!(component_of(&g, 3), vec![2, 3]);
        assert_eq!(component_of(&g, 4), vec![4]);
    }

    #[test]
    fn connected_subset_checks() {
        let g = two_triangles();
        assert!(is_connected_subset(&g, &[0, 1, 2]));
        assert!(!is_connected_subset(&g, &[0, 4]));
        assert!(is_connected_subset(&g, &[]));
    }

    #[test]
    fn constrained_bfs_respects_threshold_and_connectivity() {
        let g = two_triangles();
        // High scores on the far triangle, but vertex 3 blocks the path.
        let scores = [0.9, 0.9, 0.9, 0.1, 0.95, 0.95];
        let c = constrained_bfs(&g, &[0], &scores, 0.5);
        // 3 fails the threshold so 4,5 are unreachable despite high scores.
        assert_eq!(c, vec![0, 1, 2]);
    }

    #[test]
    fn constrained_bfs_always_keeps_query_vertices() {
        let g = two_triangles();
        let scores = [0.0; 6];
        let c = constrained_bfs(&g, &[4], &scores, 0.5);
        assert_eq!(c, vec![4]);
    }

    #[test]
    fn constrained_bfs_multiple_queries_disconnected_answer() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let scores = [1.0, 1.0, 0.0, 0.0];
        let c = constrained_bfs(&g, &[0, 3], &scores, 0.5);
        // Both query vertices kept; expansion only where scores pass, so
        // vertex 2 (score 0) is excluded even though it neighbors query 3.
        assert_eq!(c, vec![0, 1, 3]);
    }
}
