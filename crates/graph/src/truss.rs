//! k-truss decomposition — the structural substrate of the CTC (Huang et
//! al., PVLDB'15) and ATC (Huang & Lakshmanan, PVLDB'17) baselines.
//!
//! An edge has *support* `s` if it participates in `s` triangles; the
//! k-truss is the maximal subgraph whose every edge has support ≥ k−2.
//! The decomposition assigns each edge its *trussness*: the largest k for
//! which it survives in the k-truss.

use crate::graph::{Graph, VertexId};
use crate::traversal;

/// Result of a truss decomposition.
#[derive(Clone, Debug)]
pub struct TrussDecomposition {
    /// Canonical edge list, `(u, v)` with `u < v`, sorted.
    edges: Vec<(VertexId, VertexId)>,
    /// Trussness per edge (aligned with `edges`); ≥ 2 for every edge.
    truss: Vec<usize>,
    /// Start offset of each vertex's `(larger-endpoint)` edge ids.
    offsets: Vec<usize>,
    max_truss: usize,
}

/// Computes the truss decomposition of `graph` by support peeling.
///
/// Runs in `O(m^1.5)` time for triangle counting plus near-linear peeling.
///
/// ```
/// use qdgnn_graph::{truss, Graph};
///
/// // A 4-clique: every edge sits in two triangles → 4-truss.
/// let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
/// let d = truss::truss_decomposition(&g);
/// assert_eq!(d.max_truss(), 4);
/// assert_eq!(d.edge_truss(0, 3), Some(4));
/// ```
pub fn truss_decomposition(graph: &Graph) -> TrussDecomposition {
    let n = graph.num_vertices();
    let edges: Vec<(VertexId, VertexId)> = graph.edges().collect();
    let m = edges.len();

    // offsets[u] .. offsets[u+1] indexes edges whose smaller endpoint is u;
    // within the range, edges are sorted by larger endpoint (guaranteed by
    // Graph::edges iterating sorted adjacency).
    let mut offsets = vec![0usize; n + 1];
    for &(u, _) in &edges {
        offsets[u as usize + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let edge_id = |u: VertexId, v: VertexId| -> Option<usize> {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        let lo = offsets[a as usize];
        let hi = offsets[a as usize + 1];
        edges[lo..hi].binary_search(&(a, b)).ok().map(|k| lo + k)
    };

    // Triangle support per edge via sorted-adjacency intersection.
    let mut support = vec![0usize; m];
    for (eid, &(u, v)) in edges.iter().enumerate() {
        support[eid] = count_common(graph.neighbors(u), graph.neighbors(v));
    }

    // Peel edges in increasing support order (bucket queue).
    let max_sup = support.iter().copied().max().unwrap_or(0);
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); max_sup + 1];
    for (eid, &s) in support.iter().enumerate() {
        buckets[s].push(eid);
    }
    let mut truss = vec![0usize; m];
    let mut removed = vec![false; m];
    let mut cur = vec![0usize; m]; // current support during peeling
    cur.copy_from_slice(&support);
    let mut level = 0usize;
    let mut processed = 0usize;
    while processed < m {
        while level < buckets.len() && buckets[level].is_empty() {
            level += 1;
        }
        if level >= buckets.len() {
            break;
        }
        let Some(eid) = buckets[level].pop() else { continue };
        if removed[eid] || cur[eid] != level {
            // Stale bucket entry; the edge moved to a lower bucket.
            continue;
        }
        removed[eid] = true;
        processed += 1;
        truss[eid] = level + 2;
        let (u, v) = edges[eid];
        // For each triangle (u, v, w) still alive, decrement the supports
        // of (u, w) and (v, w).
        for &w in graph.neighbors(u) {
            if w == v || !graph.has_edge(v, w) {
                continue;
            }
            let (Some(e1), Some(e2)) = (edge_id(u, w), edge_id(v, w)) else { continue };
            if removed[e1] || removed[e2] {
                continue;
            }
            for e in [e1, e2] {
                if cur[e] > level {
                    cur[e] -= 1;
                    buckets[cur[e]].push(e);
                    if cur[e] < level {
                        level = cur[e];
                    }
                }
            }
        }
    }
    let max_truss = truss.iter().copied().max().unwrap_or(0);
    TrussDecomposition { edges, truss, offsets, max_truss }
}

fn count_common(a: &[VertexId], b: &[VertexId]) -> usize {
    let (mut i, mut j, mut c) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

impl TrussDecomposition {
    /// The canonical edge list.
    pub fn edges(&self) -> &[(VertexId, VertexId)] {
        &self.edges
    }

    /// Trussness of each edge, aligned with [`TrussDecomposition::edges`].
    pub fn trussness(&self) -> &[usize] {
        &self.truss
    }

    /// Largest trussness in the graph (0 if edgeless).
    pub fn max_truss(&self) -> usize {
        self.max_truss
    }

    /// Trussness of edge `{u, v}`, or `None` if absent.
    pub fn edge_truss(&self, u: VertexId, v: VertexId) -> Option<usize> {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        let lo = self.offsets[a as usize];
        let hi = self.offsets[a as usize + 1];
        self.edges[lo..hi].binary_search(&(a, b)).ok().map(|k| self.truss[lo + k])
    }

    /// The k-truss as a graph over the original vertex ids (vertices not
    /// incident to a surviving edge become isolated).
    pub fn k_truss_graph(&self, n: usize, k: usize) -> Graph {
        let kept: Vec<(VertexId, VertexId)> = self
            .edges
            .iter()
            .zip(&self.truss)
            .filter(|&(_, &t)| t >= k)
            .map(|(&e, _)| e)
            .collect();
        Graph::from_edges(n, &kept)
    }
}

/// The connected k-truss component containing all `query` vertices, for
/// the **largest** k for which one exists; returns `(k, sorted members)`.
///
/// Returns `(0, [])` when the query vertices are not even connected in the
/// 2-truss (i.e. by ordinary edges).
pub fn max_truss_containing(graph: &Graph, query: &[VertexId]) -> (usize, Vec<VertexId>) {
    if query.is_empty() {
        return (0, Vec::new());
    }
    let decomp = truss_decomposition(graph);
    let n = graph.num_vertices();
    for k in (2..=decomp.max_truss()).rev() {
        let tg = decomp.k_truss_graph(n, k);
        let component = traversal::component_of(&tg, query[0]);
        // A single isolated vertex only counts when it is the entire query.
        if component.len() == 1 && tg.degree(query[0]) == 0 && query.len() > 1 {
            continue;
        }
        if query.iter().all(|&q| component.binary_search(&q).is_ok())
            && component.iter().any(|&v| tg.degree(v) > 0)
        {
            return (k, component);
        }
    }
    (0, Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4-clique {0,1,2,3} plus a triangle {3,4,5} and a pendant 5–6.
    fn mixed() -> Graph {
        Graph::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (3, 5),
                (4, 5),
                (5, 6),
            ],
        )
    }

    #[test]
    fn trussness_of_clique_and_triangle() {
        let g = mixed();
        let d = truss_decomposition(&g);
        // Clique edges form a 4-truss.
        assert_eq!(d.edge_truss(0, 1), Some(4));
        assert_eq!(d.edge_truss(2, 3), Some(4));
        // Triangle edges form a 3-truss.
        assert_eq!(d.edge_truss(3, 4), Some(3));
        assert_eq!(d.edge_truss(4, 5), Some(3));
        // Pendant edge is a bare 2-truss.
        assert_eq!(d.edge_truss(5, 6), Some(2));
        assert_eq!(d.max_truss(), 4);
        assert_eq!(d.edge_truss(0, 6), None);
    }

    #[test]
    fn k_truss_graph_filters_edges() {
        let g = mixed();
        let d = truss_decomposition(&g);
        let t4 = d.k_truss_graph(7, 4);
        assert_eq!(t4.num_edges(), 6);
        assert_eq!(t4.degree(4), 0);
        let t3 = d.k_truss_graph(7, 3);
        assert_eq!(t3.num_edges(), 9);
    }

    #[test]
    fn max_truss_containing_clique_vertex() {
        let g = mixed();
        let (k, members) = max_truss_containing(&g, &[0]);
        assert_eq!(k, 4);
        assert_eq!(members, vec![0, 1, 2, 3]);
    }

    #[test]
    fn max_truss_containing_bridging_query() {
        let g = mixed();
        // Query {0, 4} spans the clique and triangle: only the 3-truss
        // connects them (through vertex 3).
        let (k, members) = max_truss_containing(&g, &[0, 4]);
        assert_eq!(k, 3);
        assert!(members.contains(&0) && members.contains(&4));
        assert!(!members.contains(&6));
    }

    #[test]
    fn max_truss_pendant_vertex() {
        let g = mixed();
        let (k, members) = max_truss_containing(&g, &[6]);
        assert_eq!(k, 2);
        assert!(members.contains(&6));
    }

    #[test]
    fn truss_of_triangle_free_graph_is_two() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let d = truss_decomposition(&g);
        assert!(d.trussness().iter().all(|&t| t == 2));
    }

    #[test]
    fn empty_graph_decomposition() {
        let g = Graph::empty(3);
        let d = truss_decomposition(&g);
        assert_eq!(d.max_truss(), 0);
        assert!(d.edges().is_empty());
    }
}
