//! Attributed graphs, the node–attribute bipartite graph (§6.3) and the
//! fusion graph (§6.6).

use qdgnn_tensor::Csr;

use crate::graph::{Graph, GraphBuilder, VertexId};

/// Attribute identifier within a graph's vocabulary `F̂`.
pub type AttrId = u32;

/// How to normalize the (self-loop-augmented) adjacency matrix used for
/// neighborhood aggregation.
///
/// The paper's propagation functions (Eq. 4, 5) use a plain `SUM` over
/// `N⁺(v)` "as Vanilla GCN does", and §3.2 notes that Vanilla GCN applies
/// Laplacian smoothing (the symmetric normalization). [`AdjNorm::GcnSym`]
/// is therefore the faithful default; the raw-sum and mean variants are
/// kept for the aggregation ablation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdjNorm {
    /// Raw `A + I` (unnormalized SUM aggregation).
    Sum,
    /// Symmetric GCN normalization `D̂^(−1/2) (A + I) D̂^(−1/2)`.
    GcnSym,
    /// Row normalization `D̂^(−1) (A + I)` (mean aggregation).
    Mean,
}

/// Builds the aggregation matrix for `graph` with the requested
/// normalization, including self-loops (the paper aggregates over
/// `N⁺(v) = N(v) ∪ {v}`).
pub fn adjacency_matrix(graph: &Graph, norm: AdjNorm) -> Csr {
    let n = graph.num_vertices();
    let mut triplets = Vec::with_capacity(2 * graph.num_edges() + n);
    match norm {
        AdjNorm::Sum => {
            for v in graph.vertices() {
                triplets.push((v as usize, v as usize, 1.0));
                for &u in graph.neighbors(v) {
                    triplets.push((v as usize, u as usize, 1.0));
                }
            }
        }
        AdjNorm::GcnSym => {
            let inv_sqrt: Vec<f32> =
                (0..n).map(|v| 1.0 / ((graph.degree(v as VertexId) + 1) as f32).sqrt()).collect();
            for v in graph.vertices() {
                let vi = v as usize;
                triplets.push((vi, vi, inv_sqrt[vi] * inv_sqrt[vi]));
                for &u in graph.neighbors(v) {
                    triplets.push((vi, u as usize, inv_sqrt[vi] * inv_sqrt[u as usize]));
                }
            }
        }
        AdjNorm::Mean => {
            for v in graph.vertices() {
                let vi = v as usize;
                let w = 1.0 / (graph.degree(v) + 1) as f32;
                triplets.push((vi, vi, w));
                for &u in graph.neighbors(v) {
                    triplets.push((vi, u as usize, w));
                }
            }
        }
    }
    Csr::from_triplets(n, n, &triplets)
}

/// A graph whose vertices carry sets of keyword attributes, plus the
/// derived structures the AQD-GNN model needs.
#[derive(Clone, Debug)]
pub struct AttributedGraph {
    graph: Graph,
    /// Sorted, deduplicated attribute ids per vertex.
    attrs: Vec<Vec<AttrId>>,
    num_attrs: usize,
    /// Inverted index: attribute → sorted vertices having it.
    inverted: Vec<Vec<VertexId>>,
}

impl AttributedGraph {
    /// Wraps a graph with per-vertex attribute sets over a vocabulary of
    /// `num_attrs` attributes. Attribute lists are sorted/deduplicated.
    ///
    /// # Panics
    /// Panics if `attrs.len() != graph.num_vertices()` or an attribute id
    /// is `≥ num_attrs`.
    pub fn new(graph: Graph, mut attrs: Vec<Vec<AttrId>>, num_attrs: usize) -> Self {
        assert_eq!(attrs.len(), graph.num_vertices(), "one attribute set per vertex required");
        let mut inverted = vec![Vec::new(); num_attrs];
        for (v, set) in attrs.iter_mut().enumerate() {
            set.sort_unstable();
            set.dedup();
            for &a in set.iter() {
                assert!((a as usize) < num_attrs, "attribute id {a} out of vocabulary");
                inverted[a as usize].push(v as VertexId);
            }
        }
        AttributedGraph { graph, attrs, num_attrs, inverted }
    }

    /// The underlying structure graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Vocabulary size `|F̂|`.
    #[inline]
    pub fn num_attrs(&self) -> usize {
        self.num_attrs
    }

    /// Sorted attributes of vertex `v`.
    #[inline]
    pub fn attrs_of(&self, v: VertexId) -> &[AttrId] {
        &self.attrs[v as usize]
    }

    /// Whether vertex `v` carries attribute `a`.
    pub fn has_attr(&self, v: VertexId, a: AttrId) -> bool {
        self.attrs[v as usize].binary_search(&a).is_ok()
    }

    /// Sorted vertices carrying attribute `a`.
    #[inline]
    pub fn vertices_with_attr(&self, a: AttrId) -> &[VertexId] {
        &self.inverted[a as usize]
    }

    /// Number of node–attribute bipartite edges `|E_B|`.
    pub fn bipartite_edge_count(&self) -> usize {
        self.attrs.iter().map(Vec::len).sum()
    }

    /// The vertex attribute matrix `F ∈ ℝ^{n×d}` as CSR, with each row
    /// L1-normalized (the paper feeds the *normalized* attribute vector to
    /// the Graph Encoder's first layer).
    pub fn attribute_matrix(&self) -> Csr {
        let mut m = self.bipartite_incidence();
        m.row_normalize();
        m
    }

    /// The raw node–attribute bipartite incidence matrix `B ∈ {0,1}^{n×d}`
    /// (Attribute Encoder propagation A→N uses `B`, N→A uses `Bᵀ`).
    pub fn bipartite_incidence(&self) -> Csr {
        let triplets: Vec<(usize, usize, f32)> = self
            .attrs
            .iter()
            .enumerate()
            .flat_map(|(v, set)| set.iter().map(move |&a| (v, a as usize, 1.0)))
            .collect();
        Csr::from_triplets(self.num_vertices(), self.num_attrs, &triplets)
    }

    /// The fusion graph `G_F` of §6.6: the structure graph plus an edge
    /// between every pair of vertices sharing an attribute.
    ///
    /// Attributes held by more than `max_attr_frequency` vertices are
    /// skipped: such near-universal keywords would add `Θ(freq²)` edges
    /// while carrying almost no community signal. The paper does not spell
    /// out a mitigation; the cap is configurable and documented here as a
    /// deviation (set it to `usize::MAX` for the literal construction).
    pub fn fusion_graph(&self, max_attr_frequency: usize) -> Graph {
        let mut builder = GraphBuilder::new(self.num_vertices());
        for (u, v) in self.graph.edges() {
            builder.add_edge(u, v);
        }
        for members in &self.inverted {
            if members.len() < 2 || members.len() > max_attr_frequency {
                continue;
            }
            for (i, &u) in members.iter().enumerate() {
                for &v in &members[i + 1..] {
                    builder.add_edge(u, v);
                }
            }
        }
        builder.build()
    }

    /// Number of attributes shared between vertex `v`'s set and `query`.
    pub fn shared_attr_count(&self, v: VertexId, query: &[AttrId]) -> usize {
        query.iter().filter(|&&a| self.has_attr(v, a)).count()
    }

    /// The `k` most frequent attributes among `vertices` (ties broken by
    /// attribute id, ascending) — used to build AFC/AFN query attributes.
    pub fn most_common_attrs(&self, vertices: &[VertexId], k: usize) -> Vec<AttrId> {
        let mut counts = vec![0usize; self.num_attrs];
        for &v in vertices {
            for &a in self.attrs_of(v) {
                counts[a as usize] += 1;
            }
        }
        let mut order: Vec<AttrId> =
            (0..self.num_attrs as AttrId).filter(|&a| counts[a as usize] > 0).collect();
        order.sort_by(|&a, &b| {
            counts[b as usize].cmp(&counts[a as usize]).then(a.cmp(&b))
        });
        order.truncate(k);
        order
    }

    /// The attributed subgraph induced by `vertices`, with its local↔global
    /// mapping (the attribute vocabulary is kept intact so query attribute
    /// vectors remain valid).
    pub fn induced_subgraph(&self, vertices: &[VertexId]) -> (AttributedGraph, crate::graph::Subgraph) {
        let sub = self.graph.induced_subgraph(vertices);
        let attrs: Vec<Vec<AttrId>> =
            sub.globals.iter().map(|&g| self.attrs[g as usize].clone()).collect();
        (AttributedGraph::new(sub.graph.clone(), attrs, self.num_attrs), sub)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 1 faculty graph (vertices 0-7 = paper's 1-8),
    /// attributes 0..6 = {IR, DM, GM, ML, DL, CV}.
    pub(crate) fn faculty() -> AttributedGraph {
        let graph = Graph::from_edges(
            8,
            &[(0, 1), (0, 2), (0, 3), (0, 5), (1, 2), (2, 3), (5, 6), (5, 7), (6, 7)],
        );
        let attrs = vec![
            vec![0],       // 1: IR
            vec![0, 1],    // 2: IR, DM
            vec![1],       // 3: DM
            vec![1, 2],    // 4: DM, GM
            vec![2],       // 5: GM
            vec![3],       // 6: ML
            vec![3, 4],    // 7: ML, DL
            vec![4, 5],    // 8: DL, CV
        ];
        AttributedGraph::new(graph, attrs, 6)
    }

    #[test]
    fn inverted_index_and_lookup() {
        let ag = faculty();
        assert_eq!(ag.vertices_with_attr(3), &[5, 6]);
        assert!(ag.has_attr(7, 4));
        assert!(!ag.has_attr(7, 3));
        assert_eq!(ag.bipartite_edge_count(), 12);
    }

    #[test]
    fn attribute_matrix_rows_normalized() {
        let ag = faculty();
        let f = ag.attribute_matrix();
        assert_eq!(f.rows(), 8);
        assert_eq!(f.cols(), 6);
        for v in 0..8 {
            let s: f32 = f.row_iter(v).map(|(_, x)| x).sum();
            assert!((s - 1.0).abs() < 1e-6, "row {v} sums to {s}");
        }
        // Vertex 6 (paper's 7) has two attributes, each weighted 1/2.
        assert_eq!(f.get(6, 3), 0.5);
        assert_eq!(f.get(6, 4), 0.5);
    }

    #[test]
    fn fusion_graph_links_same_attribute_vertices() {
        let ag = faculty();
        let gf = ag.fusion_graph(usize::MAX);
        // Paper's example: vertices 7 and 8 (here 6 and 7) share "DL".
        assert!(gf.has_edge(6, 7));
        // Structure edges survive.
        assert!(gf.has_edge(0, 1));
        // Vertices 0 and 1 share IR — fused even though already adjacent.
        assert!(gf.num_edges() > ag.graph().num_edges());
    }

    #[test]
    fn fusion_graph_frequency_cap() {
        let ag = faculty();
        // Cap 1 disables all attribute cliques.
        let gf = ag.fusion_graph(1);
        assert_eq!(gf.num_edges(), ag.graph().num_edges());
    }

    #[test]
    fn most_common_attrs_ranked() {
        let ag = faculty();
        // Among vertices 5,6,7: ML×2, DL×2, CV×1 → top2 = [ML, DL] (id order on tie).
        assert_eq!(ag.most_common_attrs(&[5, 6, 7], 2), vec![3, 4]);
        assert_eq!(ag.most_common_attrs(&[5, 6, 7], 10), vec![3, 4, 5]);
    }

    #[test]
    fn adjacency_matrix_norms() {
        let ag = faculty();
        let sum = adjacency_matrix(ag.graph(), AdjNorm::Sum);
        assert_eq!(sum.get(0, 0), 1.0);
        assert_eq!(sum.get(0, 1), 1.0);
        let mean = adjacency_matrix(ag.graph(), AdjNorm::Mean);
        let row0: f32 = mean.row_iter(0).map(|(_, v)| v).sum();
        assert!((row0 - 1.0).abs() < 1e-6);
        let symn = adjacency_matrix(ag.graph(), AdjNorm::GcnSym);
        // Symmetric: entry (u,v) equals (v,u).
        assert!((symn.get(0, 1) - symn.get(1, 0)).abs() < 1e-7);
    }

    #[test]
    fn induced_subgraph_keeps_vocabulary() {
        let ag = faculty();
        let (sub_ag, map) = ag.induced_subgraph(&[5, 6, 7]);
        assert_eq!(sub_ag.num_attrs(), 6);
        assert_eq!(sub_ag.num_vertices(), 3);
        let local6 = map.local(6).unwrap();
        assert_eq!(sub_ag.attrs_of(local6), &[3, 4]);
    }
}
