//! Evaluation metrics of §7.1.5: precision, recall and F1 aggregated over
//! a *set* of queries.
//!
//! The paper's definitions pool counts across queries before forming the
//! ratios (micro-averaging): `pre = Σ_q |Ĉ_q ∩ Y_q| / Σ_q |Ĉ_q|` and
//! `rec = Σ_q |Ĉ_q ∩ Y_q| / Σ_q |Y_q|`. A per-query (macro) F1 is also
//! provided for diagnostics.

use crate::graph::VertexId;

/// Micro-averaged precision / recall / F1 over a query set.
///
/// ```
/// use qdgnn_graph::CommunityMetrics;
///
/// let predicted = vec![vec![1, 2, 3]];
/// let truth = vec![vec![2, 3, 4, 5]];
/// let m = CommunityMetrics::micro(&predicted, &truth);
/// assert!((m.precision - 2.0 / 3.0).abs() < 1e-12);
/// assert!((m.recall - 0.5).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CommunityMetrics {
    /// Micro precision `Σ|Ĉ∩Y| / Σ|Ĉ|` (0 when nothing was predicted).
    pub precision: f64,
    /// Micro recall `Σ|Ĉ∩Y| / Σ|Y|` (0 when ground truth is empty).
    pub recall: f64,
    /// Harmonic mean of the two (0 when both are 0).
    pub f1: f64,
}

impl CommunityMetrics {
    /// Computes micro-averaged metrics from per-query predicted and
    /// ground-truth communities (vertex id lists, any order, no
    /// duplicates expected).
    ///
    /// # Panics
    /// Panics if the two slices have different lengths.
    pub fn micro(predicted: &[Vec<VertexId>], truth: &[Vec<VertexId>]) -> Self {
        assert_eq!(predicted.len(), truth.len(), "one ground truth per prediction");
        let mut hits = 0usize;
        let mut pred_total = 0usize;
        let mut truth_total = 0usize;
        for (p, t) in predicted.iter().zip(truth) {
            hits += intersection_size(p, t);
            pred_total += p.len();
            truth_total += t.len();
        }
        let precision = if pred_total == 0 { 0.0 } else { hits as f64 / pred_total as f64 };
        let recall = if truth_total == 0 { 0.0 } else { hits as f64 / truth_total as f64 };
        CommunityMetrics { precision, recall, f1: harmonic(precision, recall) }
    }
}

/// F1 of a single predicted community against its ground truth.
pub fn f1_score(predicted: &[VertexId], truth: &[VertexId]) -> f64 {
    let hits = intersection_size(predicted, truth);
    let p = if predicted.is_empty() { 0.0 } else { hits as f64 / predicted.len() as f64 };
    let r = if truth.is_empty() { 0.0 } else { hits as f64 / truth.len() as f64 };
    harmonic(p, r)
}

/// Macro-averaged (mean per-query) F1.
pub fn macro_f1(predicted: &[Vec<VertexId>], truth: &[Vec<VertexId>]) -> f64 {
    assert_eq!(predicted.len(), truth.len(), "one ground truth per prediction");
    if predicted.is_empty() {
        return 0.0;
    }
    let total: f64 = predicted.iter().zip(truth).map(|(p, t)| f1_score(p, t)).sum();
    total / predicted.len() as f64
}

fn harmonic(p: f64, r: f64) -> f64 {
    // qdgnn-analyze: allow(QD002, reason = "p and r are non-negative ratios; the sum is exactly 0.0 only when both are, which is the divide-by-zero case being guarded")
    if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    }
}

fn intersection_size(a: &[VertexId], b: &[VertexId]) -> usize {
    // Sort copies; inputs are small community lists.
    let mut a: Vec<VertexId> = a.to_vec();
    let mut b: Vec<VertexId> = b.to_vec();
    a.sort_unstable();
    b.sort_unstable();
    let (mut i, mut j, mut c) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let m = CommunityMetrics::micro(&[vec![1, 2, 3]], &[vec![3, 2, 1]]);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
    }

    #[test]
    fn half_precision_full_recall() {
        let m = CommunityMetrics::micro(&[vec![1, 2, 3, 4]], &[vec![1, 2]]);
        assert_eq!(m.precision, 0.5);
        assert_eq!(m.recall, 1.0);
        assert!((m.f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn micro_pools_across_queries() {
        // Query 1: predict 2 of 2 correctly; query 2: predict 0 of 2.
        let m = CommunityMetrics::micro(
            &[vec![1, 2], vec![9, 10]],
            &[vec![1, 2], vec![3, 4]],
        );
        assert_eq!(m.precision, 0.5);
        assert_eq!(m.recall, 0.5);
        // Macro average of the same data: (1.0 + 0.0) / 2.
        let mac = macro_f1(&[vec![1, 2], vec![9, 10]], &[vec![1, 2], vec![3, 4]]);
        assert_eq!(mac, 0.5);
    }

    #[test]
    fn empty_prediction_scores_zero() {
        let m = CommunityMetrics::micro(&[vec![]], &[vec![1]]);
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f1, 0.0);
    }

    #[test]
    fn single_query_f1() {
        assert_eq!(f1_score(&[1, 2], &[2, 3]), 0.5);
        assert_eq!(f1_score(&[], &[]), 0.0);
    }
}
