//! k-core decomposition — the structural substrate of the ACQ baseline
//! (Fang et al., PVLDB'16) and of the k-ECC search's shrinking step.

use crate::graph::{Graph, VertexId};
use crate::traversal;

/// Core number of every vertex, via the linear-time bucket peeling
/// algorithm (Batagelj–Zaveršnik).
///
/// ```
/// use qdgnn_graph::{core_decomp, Graph};
///
/// // A triangle with a pendant vertex.
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
/// assert_eq!(core_decomp::core_numbers(&g), vec![2, 2, 2, 1]);
/// ```
pub fn core_numbers(graph: &Graph) -> Vec<usize> {
    let n = graph.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut degree: Vec<usize> = (0..n).map(|v| graph.degree(v as VertexId)).collect();
    let max_deg = *degree.iter().max().unwrap();

    // Bucket sort vertices by degree.
    let mut bin = vec![0usize; max_deg + 2];
    for &d in &degree {
        bin[d + 1] += 1;
    }
    for i in 0..=max_deg {
        bin[i + 1] += bin[i];
    }
    let mut pos = vec![0usize; n];
    let mut vert = vec![0usize; n];
    let mut start = bin.clone();
    for v in 0..n {
        let d = degree[v];
        pos[v] = start[d];
        vert[pos[v]] = v;
        start[d] += 1;
    }

    let mut core = vec![0usize; n];
    let mut bin_start = bin;
    for i in 0..n {
        let v = vert[i];
        core[v] = degree[v];
        for &u in graph.neighbors(v as VertexId) {
            let u = u as usize;
            if degree[u] > degree[v] {
                // Move u one bucket down: swap with the first vertex of its
                // current bucket.
                let du = degree[u];
                let pu = pos[u];
                let pw = bin_start[du];
                let w = vert[pw];
                if u != w {
                    vert[pu] = w;
                    vert[pw] = u;
                    pos[u] = pw;
                    pos[w] = pu;
                }
                bin_start[du] += 1;
                degree[u] -= 1;
            }
        }
    }
    core
}

/// Vertices of the maximal k-core (may be empty or disconnected).
pub fn k_core_vertices(graph: &Graph, k: usize) -> Vec<VertexId> {
    core_numbers(graph)
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c >= k)
        .map(|(v, _)| v as VertexId)
        .collect()
}

/// The connected k-core component containing all `query` vertices, for the
/// **largest** k for which one exists; returns `(k, sorted members)`.
///
/// This is the structural step of ACQ: the community must be a connected
/// k-core containing the query, with k maximized. Falls back to `k = 0`
/// (the whole connected component) when the query spans core boundaries.
pub fn max_core_containing(graph: &Graph, query: &[VertexId]) -> (usize, Vec<VertexId>) {
    if query.is_empty() {
        return (0, Vec::new());
    }
    let core = core_numbers(graph);
    let k_max = query.iter().map(|&q| core[q as usize]).min().unwrap_or(0);
    for k in (0..=k_max).rev() {
        let members: Vec<VertexId> = core
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c >= k)
            .map(|(v, _)| v as VertexId)
            .collect();
        let sub = graph.induced_subgraph(&members);
        let Some(first_local) = sub.local(query[0]) else { continue };
        let component = traversal::component_of(&sub.graph, first_local);
        let all_in = query.iter().all(|&q| {
            sub.local(q)
                .map(|l| component.binary_search(&l).is_ok())
                .unwrap_or(false)
        });
        if all_in {
            return (k, sub.to_global(&component));
        }
    }
    (0, Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-clique {0,1,2,3} with a pendant path 3–4–5.
    fn clique_with_tail() -> Graph {
        Graph::from_edges(
            6,
            &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5)],
        )
    }

    #[test]
    fn core_numbers_of_clique_with_tail() {
        let g = clique_with_tail();
        assert_eq!(core_numbers(&g), vec![3, 3, 3, 3, 1, 1]);
    }

    #[test]
    fn core_numbers_of_cycle() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(core_numbers(&g), vec![2; 4]);
    }

    #[test]
    fn core_numbers_empty_and_edgeless() {
        assert!(core_numbers(&Graph::empty(0)).is_empty());
        assert_eq!(core_numbers(&Graph::empty(3)), vec![0, 0, 0]);
    }

    #[test]
    fn k_core_vertices_threshold() {
        let g = clique_with_tail();
        assert_eq!(k_core_vertices(&g, 3), vec![0, 1, 2, 3]);
        assert_eq!(k_core_vertices(&g, 1).len(), 6);
        assert!(k_core_vertices(&g, 4).is_empty());
    }

    #[test]
    fn max_core_containing_clique_member() {
        let g = clique_with_tail();
        let (k, members) = max_core_containing(&g, &[0]);
        assert_eq!(k, 3);
        assert_eq!(members, vec![0, 1, 2, 3]);
    }

    #[test]
    fn max_core_containing_tail_vertex_degrades() {
        let g = clique_with_tail();
        let (k, members) = max_core_containing(&g, &[5]);
        assert_eq!(k, 1);
        assert_eq!(members.len(), 6);
    }

    #[test]
    fn max_core_with_multi_vertex_query() {
        let g = clique_with_tail();
        let (k, members) = max_core_containing(&g, &[0, 4]);
        assert_eq!(k, 1);
        assert!(members.contains(&0) && members.contains(&4));
    }
}
