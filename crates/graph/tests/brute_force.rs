//! Property tests validating the optimized graph algorithms against
//! brute-force reference implementations on small random graphs.

use proptest::prelude::*;
use qdgnn_graph::{conn, core_decomp, traversal, truss, Graph, VertexId};

/// Strategy: a random simple graph with up to `n` vertices.
fn graph_strategy(max_n: usize) -> impl Strategy<Value = Graph> {
    (3usize..=max_n).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_edges)
            .prop_map(move |edges| Graph::from_edges(n, &edges))
    })
}

/// Reference core numbers via naive repeated peeling.
fn naive_core_numbers(graph: &Graph) -> Vec<usize> {
    let n = graph.num_vertices();
    let mut core = vec![0usize; n];
    for k in 1..=n {
        // Peel vertices of degree < k until fixpoint; survivors have
        // core number ≥ k.
        let mut alive = vec![true; n];
        loop {
            let mut changed = false;
            for v in 0..n {
                if !alive[v] {
                    continue;
                }
                let deg = graph
                    .neighbors(v as VertexId)
                    .iter()
                    .filter(|&&u| alive[u as usize])
                    .count();
                if deg < k {
                    alive[v] = false;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for v in 0..n {
            if alive[v] {
                core[v] = k;
            }
        }
    }
    core
}

/// Reference edge support (triangle count) per canonical edge.
fn naive_supports(graph: &Graph) -> Vec<((VertexId, VertexId), usize)> {
    graph
        .edges()
        .map(|(u, v)| {
            let s = graph
                .neighbors(u)
                .iter()
                .filter(|&&w| w != v && graph.has_edge(v, w))
                .count();
            ((u, v), s)
        })
        .collect()
}

/// Reference min cut by enumerating all vertex bipartitions (≤ 12
/// vertices).
fn naive_min_cut(graph: &Graph) -> usize {
    let n = graph.num_vertices();
    assert!((2..=12).contains(&n));
    let mut best = usize::MAX;
    for mask in 1u32..(1 << (n - 1)) {
        // Vertex n-1 always on side 0 to halve the enumeration.
        let side = |v: usize| -> bool { v < n - 1 && (mask >> v) & 1 == 1 };
        let cut = graph.edges().filter(|&(u, v)| side(u as usize) != side(v as usize)).count();
        best = best.min(cut);
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn core_numbers_match_naive(g in graph_strategy(14)) {
        prop_assert_eq!(core_decomp::core_numbers(&g), naive_core_numbers(&g));
    }

    #[test]
    fn truss_decomposition_respects_support_bounds(g in graph_strategy(12)) {
        let decomp = truss::truss_decomposition(&g);
        let supports = naive_supports(&g);
        prop_assert_eq!(decomp.edges().len(), supports.len());
        for ((edge, support), (decomp_edge, truss)) in
            supports.iter().zip(decomp.edges().iter().zip(decomp.trussness()))
        {
            prop_assert_eq!(edge, decomp_edge);
            prop_assert!(*truss >= 2 && *truss <= support + 2);
        }
        // The k-truss graph at max k must be non-empty and every edge in
        // it must have support ≥ k−2 *within that subgraph*.
        let k = decomp.max_truss();
        if k >= 2 {
            let tg = decomp.k_truss_graph(g.num_vertices(), k);
            prop_assert!(tg.num_edges() > 0);
            for (u, v) in tg.edges() {
                let s = tg
                    .neighbors(u)
                    .iter()
                    .filter(|&&w| w != v && tg.has_edge(v, w))
                    .count();
                prop_assert!(s >= k - 2, "edge ({u},{v}) support {s} < {}", k - 2);
            }
        }
    }

    #[test]
    fn min_cut_matches_enumeration(g in graph_strategy(9)) {
        // Restrict to connected graphs: Stoer–Wagner assumes one component.
        let (_, comps) = traversal::connected_components(&g);
        prop_assume!(comps == 1 && g.num_vertices() >= 2);
        let (cut, side) = conn::min_cut(&g);
        prop_assert_eq!(cut, naive_min_cut(&g));
        // The returned side must realize that cut weight.
        let in_side = |v: VertexId| side.contains(&v);
        let realized = g.edges().filter(|&(u, v)| in_side(u) != in_side(v)).count();
        prop_assert_eq!(realized, cut);
        prop_assert!(!side.is_empty() && side.len() < g.num_vertices());
    }

    #[test]
    fn kecc_members_induce_k_connected_subgraph(g in graph_strategy(10)) {
        let (_, comps) = traversal::connected_components(&g);
        prop_assume!(comps == 1 && g.num_vertices() >= 3);
        let query = [0 as VertexId];
        let (k, members) = conn::max_kecc_containing(&g, &query);
        prop_assume!(k >= 1 && members.len() >= 2);
        let sub = g.induced_subgraph(&members);
        // Edge connectivity of the answer must be ≥ k: its min cut is ≥ k.
        let (cut, _) = conn::min_cut(&sub.graph);
        prop_assert!(cut >= k, "answer claims {k}-connectivity but min cut is {cut}");
        // And k is maximal in the sense that the query's core number caps it.
        let cores = core_decomp::core_numbers(&g);
        prop_assert!(k <= cores[0]);
    }

    #[test]
    fn bfs_distances_satisfy_triangle_property(g in graph_strategy(14)) {
        let dist = traversal::bfs_distances(&g, &[0]);
        for (u, v) in g.edges() {
            let du = dist[u as usize];
            let dv = dist[v as usize];
            if du != usize::MAX && dv != usize::MAX {
                prop_assert!(du.abs_diff(dv) <= 1, "adjacent distances differ by >1");
            } else {
                prop_assert_eq!(du, dv, "adjacent vertices must share reachability");
            }
        }
    }

    #[test]
    fn induced_subgraph_preserves_edges_exactly(g in graph_strategy(12)) {
        let keep: Vec<VertexId> =
            (0..g.num_vertices() as VertexId).filter(|v| v % 2 == 0).collect();
        let sub = g.induced_subgraph(&keep);
        for (i, &gu) in sub.globals.iter().enumerate() {
            for (j, &gv) in sub.globals.iter().enumerate() {
                if i < j {
                    prop_assert_eq!(
                        sub.graph.has_edge(i as VertexId, j as VertexId),
                        g.has_edge(gu, gv)
                    );
                }
            }
        }
    }
}
