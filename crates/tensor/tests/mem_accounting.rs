//! Tensor memory accounting (feature `obs`): every `Dense`/`Csr` buffer
//! is counted on construction and drop, clones are deep-copy-accounted,
//! and the tape reports per-op output bytes plus retained bytes per
//! backward pass.
//!
//! One test function on purpose: the obs registry is process-global and
//! the arithmetic below assumes no concurrent allocations.

#![cfg(feature = "obs")]

use std::sync::Arc;

use qdgnn_tensor::{Csr, Dense, Tape};

#[test]
fn buffers_and_tape_are_accounted() {
    qdgnn_obs::reset();
    let base = qdgnn_obs::mem_live_bytes();

    // Dense: construction, clone, drop.
    let d = Dense::zeros(10, 10);
    let d_bytes = d.heap_bytes();
    assert_eq!(d_bytes, 400);
    assert_eq!(qdgnn_obs::mem_live_bytes(), base + 400);
    let d2 = d.clone();
    assert_eq!(qdgnn_obs::mem_live_bytes(), base + 800);
    drop(d2);
    assert_eq!(qdgnn_obs::mem_live_bytes(), base + 400);
    assert!(qdgnn_obs::mem_peak_bytes() >= base + 800, "peak saw both copies");

    // into_vec: the buffer leaves tracking with the returned Vec.
    let taken = d.into_vec();
    assert_eq!(qdgnn_obs::mem_live_bytes(), base);
    drop(taken);
    assert_eq!(qdgnn_obs::mem_live_bytes(), base);

    // Csr: all three buffers counted, transpose/clone tracked too.
    let live0 = qdgnn_obs::mem_live_bytes();
    let m = Csr::from_triplets(2, 3, &[(0, 0, 1.0), (1, 2, 2.0)]);
    let m_bytes = m.heap_bytes();
    assert!(m_bytes > 0);
    assert_eq!(qdgnn_obs::mem_live_bytes(), live0 + m_bytes);
    let t = m.transpose();
    assert_eq!(qdgnn_obs::mem_live_bytes(), live0 + m_bytes + t.heap_bytes());
    drop(t);
    drop(m);
    assert_eq!(qdgnn_obs::mem_live_bytes(), live0);

    // Tape: per-op output-byte counters and retained-bytes histogram.
    qdgnn_obs::reset();
    let mut tape = Tape::new();
    let x = tape.leaf(Arc::new(Dense::from_rows(&[&[1.0, -1.0], &[2.0, 0.5]])));
    let w = tape.leaf(Arc::new(Dense::from_rows(&[&[0.5], &[1.0]])));
    let h = tape.matmul(x, w);
    let r = tape.relu(h);
    let loss = tape.mean_all(r);
    let _grads = tape.backward(loss);

    let snap = qdgnn_obs::snapshot();
    // matmul output is 2×1 → 8 bytes recorded against the op.
    assert_eq!(snap.counter("tensor.matmul.bytes"), Some(8));
    assert_eq!(snap.counter("tensor.leaf.bytes"), Some(16 + 8));
    let retained = snap.hist("tensor.tape_retained_bytes").expect("backward observed");
    assert_eq!(retained.count, 1);
    // 5 nodes: x (16) + w (8) + h (8) + r (8) + loss (4).
    assert!((retained.max - 44.0).abs() < 1e-9, "retained {retained:?}");
    // The global gauges surfaced in the snapshot as well.
    assert!(snap.counter("mem.alloc_bytes").is_some());
    assert!(snap.gauge("mem.live_bytes").is_some());
    qdgnn_obs::reset();
}
