//! Property-based gradient checking: every tape operator's analytic
//! gradient must match central finite differences on random inputs.

use std::sync::Arc;

use proptest::prelude::*;
use qdgnn_tensor::{Csr, Dense, Tape, Var};

const FD_EPS: f32 = 1e-2;
const TOL: f32 = 2e-2;

/// Builds a scalar loss from input leaves via `f` and compares the tape
/// gradient of each input against central finite differences.
fn check_gradients(inputs: &[Dense], f: impl Fn(&mut Tape, &[Var]) -> Var) {
    // Analytic gradients.
    let mut tape = Tape::new();
    let vars: Vec<Var> = inputs.iter().map(|x| tape.leaf(Arc::new(x.clone()))).collect();
    let loss = f(&mut tape, &vars);
    assert_eq!(tape.shape(loss), (1, 1), "loss must be scalar");
    let grads = tape.backward(loss);

    // Finite differences, one input element at a time.
    for (i, input) in inputs.iter().enumerate() {
        let analytic = grads
            .get(vars[i])
            .cloned()
            .unwrap_or_else(|| Dense::zeros(input.rows(), input.cols()));
        for j in 0..input.len() {
            let eval = |delta: f32| -> f32 {
                let mut perturbed: Vec<Dense> = inputs.to_vec();
                perturbed[i].as_mut_slice()[j] += delta;
                let mut t = Tape::new();
                let vs: Vec<Var> = perturbed.iter().map(|x| t.leaf(Arc::new(x.clone()))).collect();
                let l = f(&mut t, &vs);
                t.value(l).get(0, 0)
            };
            let numeric = (eval(FD_EPS) - eval(-FD_EPS)) / (2.0 * FD_EPS);
            let got = analytic.as_slice()[j];
            let scale = 1.0f32.max(numeric.abs()).max(got.abs());
            assert!(
                (numeric - got).abs() <= TOL * scale,
                "input {i} element {j}: numeric {numeric} vs analytic {got}"
            );
        }
    }
}

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Dense> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |v| Dense::from_vec(rows, cols, v))
}

/// Values bounded away from zero, so ReLU's kink cannot sit inside the
/// finite-difference interval.
fn kink_free_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Dense> {
    proptest::collection::vec((0.1f32..2.0, proptest::bool::ANY), rows * cols).prop_map(
        move |v| {
            let data = v.into_iter().map(|(m, neg)| if neg { -m } else { m }).collect();
            Dense::from_vec(rows, cols, data)
        },
    )
}

fn positive_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Dense> {
    proptest::collection::vec(0.5f32..3.0, rows * cols)
        .prop_map(move |v| Dense::from_vec(rows, cols, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_chain(a in small_matrix(3, 2), b in small_matrix(2, 4), c in small_matrix(4, 2)) {
        check_gradients(&[a, b, c], |t, v| {
            let ab = t.matmul(v[0], v[1]);
            let abc = t.matmul(ab, v[2]);
            t.mean_all(abc)
        });
    }

    #[test]
    fn elementwise_mix(a in small_matrix(3, 3), b in small_matrix(3, 3)) {
        check_gradients(&[a, b], |t, v| {
            let s = t.add(v[0], v[1]);
            let d = t.sub(s, v[1]);
            let h = t.hadamard(d, v[0]);
            let sc = t.scale(h, 0.7);
            let sh = t.add_scalar(sc, 0.1);
            t.mean_all(sh)
        });
    }

    #[test]
    fn activations(a in kink_free_matrix(4, 2)) {
        check_gradients(&[a], |t, v| {
            let r = t.relu(v[0]);
            let s = t.sigmoid(r);
            t.mean_all(s)
        });
    }

    #[test]
    fn row_broadcasts(a in small_matrix(4, 3), r in small_matrix(1, 3), s in small_matrix(1, 3)) {
        check_gradients(&[a, r, s], |t, v| {
            let x = t.add_row(v[0], v[1]);
            let y = t.mul_row(x, v[2]);
            t.mean_all(y)
        });
    }

    #[test]
    fn column_broadcast_gating(a in small_matrix(4, 3), c in small_matrix(4, 1)) {
        // The attention-fusion primitive: per-row gates.
        check_gradients(&[a, c], |t, v| {
            let gate = t.sigmoid(v[1]);
            let y = t.mul_col(v[0], gate);
            t.mean_all(y)
        });
    }

    #[test]
    fn batchnorm_composition(a in small_matrix(5, 2), g in positive_matrix(1, 2), b in small_matrix(1, 2)) {
        // The exact op sequence qdgnn-nn uses for train-mode batch norm.
        check_gradients(&[a, g, b], |t, v| {
            let mu = t.col_mean(v[0]);
            let neg_mu = t.scale(mu, -1.0);
            let xc = t.add_row(v[0], neg_mu);
            let sq = t.hadamard(xc, xc);
            let var = t.col_mean(sq);
            let var_eps = t.add_scalar(var, 1e-3);
            let istd = t.rsqrt(var_eps);
            let xhat = t.mul_row(xc, istd);
            let scaled = t.mul_row(xhat, v[1]);
            let out = t.add_row(scaled, v[2]);
            let sq_out = t.hadamard(out, out);
            t.mean_all(sq_out)
        });
    }

    #[test]
    fn concat_and_slice(a in small_matrix(3, 2), b in small_matrix(3, 3)) {
        check_gradients(&[a, b], |t, v| {
            let c = t.concat_cols(&[v[0], v[1]]);
            let s = t.sigmoid(c);
            t.mean_all(s)
        });
    }

    #[test]
    fn bce_with_logits(a in small_matrix(2, 3)) {
        let target = Arc::new(Dense::from_rows(&[&[1.0, 0.0, 1.0], &[0.0, 0.0, 1.0]]));
        check_gradients(&[a], move |t, v| {
            t.bce_with_logits(v[0], Arc::clone(&target), None)
        });
    }

    #[test]
    fn spmm_through_sparse(b in small_matrix(4, 3)) {
        let m = Arc::new(Csr::from_triplets(
            3,
            4,
            &[(0, 0, 1.0), (0, 2, -0.5), (1, 1, 2.0), (2, 3, 1.5), (2, 0, 0.25)],
        ));
        let mt = Arc::new(m.transpose());
        // Sigmoid (smooth) instead of ReLU: the sparse product can land
        // arbitrarily close to ReLU's kink, where finite differences are
        // systematically off by ~2× regardless of correctness.
        check_gradients(&[b], move |t, v| {
            let y = t.spmm(&m, &mt, v[0]);
            let r = t.sigmoid(y);
            t.mean_all(r)
        });
    }
}
