//! Extra optimizer semantics: weight decay, lazy updates, determinism.

use qdgnn_tensor::{Adam, AdamConfig, Dense, GradStore, ParamStore};

#[test]
fn weight_decay_pulls_parameters_toward_zero() {
    let mut params = ParamStore::new();
    let id = params.add("w", Dense::row_vector(&[10.0]));
    let mut opt = Adam::new(
        AdamConfig { lr: 0.1, weight_decay: 0.1, ..Default::default() },
        &params,
    );
    for _ in 0..200 {
        // Zero task gradient: only decay acts.
        let mut grads = GradStore::for_store(&params);
        grads.accumulate(id, Dense::row_vector(&[0.0]));
        opt.step(&mut params, &grads);
    }
    assert!(
        params.value(id).get(0, 0).abs() < 1.0,
        "decay should shrink the weight, got {}",
        params.value(id).get(0, 0)
    );
}

#[test]
fn adam_is_deterministic_across_instances() {
    let run = || {
        let mut params = ParamStore::new();
        let id = params.add("w", Dense::row_vector(&[1.0, -2.0]));
        let mut opt = Adam::new(AdamConfig::default(), &params);
        for step in 0..50 {
            let mut grads = GradStore::for_store(&params);
            let g = ((step % 7) as f32 - 3.0) * 0.1;
            grads.accumulate(id, Dense::row_vector(&[g, -g]));
            opt.step(&mut params, &grads);
        }
        params.value(id).as_slice().to_vec()
    };
    assert_eq!(run(), run());
}

#[test]
fn gradient_accumulation_orders_do_not_matter_for_sums() {
    // GradStore::merge is a sum; A+B == B+A elementwise for these values.
    let mut params = ParamStore::new();
    let id = params.zeros("w", 1, 3);
    let mk = |v: [f32; 3]| {
        let mut g = GradStore::for_store(&params);
        g.accumulate(id, Dense::row_vector(&v));
        g
    };
    let mut ab = mk([1.0, 2.0, 3.0]);
    ab.merge(mk([0.5, -1.0, 2.0]));
    let mut ba = mk([0.5, -1.0, 2.0]);
    ba.merge(mk([1.0, 2.0, 3.0]));
    assert!(ab.get(id).unwrap().approx_eq(ba.get(id).unwrap(), 0.0));
}
