//! Compressed sparse row (CSR) matrices and sparse–dense products.
//!
//! CSR matrices appear in three places in the paper's models:
//! the (Laplacian-normalized or raw) adjacency matrix used by every
//! encoder's neighborhood aggregation, the vertex attribute matrix `F`
//! that seeds the Graph Encoder, and the node–attribute bipartite
//! incidence matrix `B` used by the Attribute Encoder. All of them are
//! constants with respect to differentiation, so SpMM only needs a
//! backward rule for its dense operand (`dB = Aᵀ · dY`).

use crate::dense::Dense;

/// A compressed sparse row matrix of `f32`.
///
/// ```
/// use qdgnn_tensor::{Csr, Dense};
///
/// let m = Csr::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, -1.0)]);
/// assert_eq!(m.nnz(), 3);
/// let d = Dense::from_rows(&[&[1.0], &[10.0], &[100.0]]);
/// let out = m.spmm(&d);
/// assert_eq!(out.as_slice(), &[201.0, -10.0]);
/// ```
#[derive(Debug, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl Clone for Csr {
    fn clone(&self) -> Self {
        // Manual impl so the copy's buffers are accounted like any other
        // (see `tracked`).
        Csr::tracked(
            self.rows,
            self.cols,
            self.indptr.clone(),
            self.indices.clone(),
            self.values.clone(),
        )
    }
}

impl Drop for Csr {
    fn drop(&mut self) {
        qdgnn_obs::mem_free(self.heap_bytes());
    }
}

impl Csr {
    /// The sole constructor: accounts all three buffers, then builds the
    /// value. No method reallocates them afterwards (`row_normalize`
    /// mutates in place), so the capacity freed on drop equals the one
    /// counted here.
    #[inline]
    fn tracked(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        let m = Csr { rows, cols, indptr, indices, values };
        qdgnn_obs::mem_alloc(m.heap_bytes());
        m
    }

    /// Bytes of heap this matrix owns across its three buffers.
    #[inline]
    pub fn heap_bytes(&self) -> u64 {
        (self.indptr.capacity() * std::mem::size_of::<usize>()
            + self.indices.capacity() * std::mem::size_of::<u32>()
            + self.values.capacity() * std::mem::size_of::<f32>()) as u64
    }

    /// Builds a CSR matrix from (row, col, value) triplets.
    ///
    /// Duplicate coordinates are summed. Triplets need not be sorted.
    ///
    /// # Panics
    /// Panics if any coordinate is out of range.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f32)]) -> Self {
        let mut counts = vec![0usize; rows + 1];
        for &(r, c, _) in triplets {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of {rows}x{cols}");
            counts[r + 1] += 1;
        }
        for i in 0..rows {
            counts[i + 1] += counts[i];
        }
        let mut col_buf = vec![0u32; triplets.len()];
        let mut val_buf = vec![0.0f32; triplets.len()];
        let mut next = counts.clone();
        for &(r, c, v) in triplets {
            let slot = next[r];
            col_buf[slot] = c as u32;
            val_buf[slot] = v;
            next[r] += 1;
        }
        // Sort each row by column and merge duplicates.
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        indptr.push(0);
        let mut scratch: Vec<(u32, f32)> = Vec::new();
        for r in 0..rows {
            scratch.clear();
            scratch.extend(
                col_buf[counts[r]..counts[r + 1]]
                    .iter()
                    .copied()
                    .zip(val_buf[counts[r]..counts[r + 1]].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let (c, mut v) = scratch[i];
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == c {
                    v += scratch[j].1;
                    j += 1;
                }
                indices.push(c);
                values.push(v);
                i = j;
            }
            indptr.push(indices.len());
        }
        Csr::tracked(rows, cols, indptr, indices, values)
    }

    /// Builds a CSR matrix directly from raw components.
    ///
    /// # Panics
    /// Panics if the component lengths are inconsistent or column indices
    /// are out of range or unsorted within a row.
    pub fn from_raw(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        assert_eq!(indptr.len(), rows + 1, "indptr length");
        assert_eq!(indices.len(), values.len(), "indices/values length");
        assert_eq!(*indptr.last().unwrap_or(&0), indices.len(), "indptr terminator");
        for r in 0..rows {
            let row = &indices[indptr[r]..indptr[r + 1]];
            for w in row.windows(2) {
                assert!(w[0] < w[1], "row {r} columns not strictly increasing");
            }
            if let Some(&last) = row.last() {
                assert!((last as usize) < cols, "column index out of range in row {r}");
            }
        }
        Csr::tracked(rows, cols, indptr, indices, values)
    }

    /// A sparse identity matrix.
    pub fn identity(n: usize) -> Self {
        Csr::tracked(n, n, (0..=n).collect(), (0..n as u32).collect(), vec![1.0; n])
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structurally non-zero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Iterator over `(col, value)` pairs of row `r`.
    pub fn row_iter(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let lo = self.indptr[r];
        let hi = self.indptr[r + 1];
        self.indices[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Value at `(r, c)`, or 0 if not stored.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        let lo = self.indptr[r];
        let hi = self.indptr[r + 1];
        match self.indices[lo..hi].binary_search(&(c as u32)) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Transposed copy (CSR of the transpose).
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let indptr = counts.clone();
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0.0f32; self.nnz()];
        let mut next = counts;
        for r in 0..self.rows {
            for (c, v) in self.row_iter(r) {
                let slot = next[c];
                indices[slot] = r as u32;
                values[slot] = v;
                next[c] += 1;
            }
        }
        Csr::tracked(self.cols, self.rows, indptr, indices, values)
    }

    /// Sparse × dense product `self * d`.
    ///
    /// Cost is `O(nnz · d.cols())`; rows are processed independently and
    /// split across threads when the work is large enough.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn spmm(&self, d: &Dense) -> Dense {
        assert_eq!(
            self.cols,
            d.rows(),
            "spmm shape mismatch: {}x{} * {}x{}",
            self.rows,
            self.cols,
            d.rows(),
            d.cols()
        );
        let mut out = Dense::zeros(self.rows, d.cols());
        let work = self.nnz() * d.cols();
        if work >= 4_000_000 && self.rows > 1 {
            self.spmm_parallel(d, &mut out);
        } else {
            self.spmm_rows(d, &mut out, 0, self.rows);
        }
        out
    }

    fn spmm_rows(&self, d: &Dense, out: &mut Dense, row_start: usize, row_end: usize) {
        let n = d.cols();
        for r in row_start..row_end {
            // Split borrows: rows of `out` are disjoint from `d`.
            let out_row_ptr = r * n;
            for (c, v) in self.row_iter(r) {
                let d_row = d.row(c);
                let out_slice = &mut out.as_mut_slice()[out_row_ptr..out_row_ptr + n];
                for (o, &dv) in out_slice.iter_mut().zip(d_row) {
                    *o += v * dv;
                }
            }
        }
    }

    fn spmm_parallel(&self, d: &Dense, out: &mut Dense) {
        let threads =
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(self.rows);
        if threads <= 1 {
            self.spmm_rows(d, out, 0, self.rows);
            return;
        }
        let n = d.cols();
        let chunk_rows = self.rows.div_ceil(threads);
        let chunks: Vec<&mut [f32]> = out.as_mut_slice().chunks_mut(chunk_rows * n).collect();
        crossbeam::thread::scope(|scope| {
            for (idx, chunk) in chunks.into_iter().enumerate() {
                let row_start = idx * chunk_rows;
                let row_end = (row_start + chunk.len() / n).min(self.rows);
                scope.spawn(move |_| {
                    for r in row_start..row_end {
                        let off = (r - row_start) * n;
                        let out_row = &mut chunk[off..off + n];
                        for (c, v) in self.row_iter(r) {
                            let d_row = d.row(c);
                            for (o, &dv) in out_row.iter_mut().zip(d_row) {
                                *o += v * dv;
                            }
                        }
                    }
                });
            }
        })
        .expect("spmm worker thread panicked");
    }

    /// Block-diagonal sparse × dense product: applies `self` to each of
    /// `blocks` vertically-stacked row blocks of `d` independently.
    ///
    /// `d` must have `blocks · self.cols()` rows; the result has
    /// `blocks · self.rows()` rows. Block `k` of the output equals
    /// `self.spmm(block k of d)` bit-for-bit: each output row accumulates
    /// its products in the same column order as [`Csr::spmm`], so batched
    /// serving stays bit-identical to the sequential path. Blocks are
    /// independent and split across threads when the work is large enough.
    ///
    /// # Panics
    /// Panics if `blocks` is zero or `d.rows() != blocks · self.cols()`.
    pub fn spmm_blocked(&self, d: &Dense, blocks: usize) -> Dense {
        assert!(blocks > 0, "spmm_blocked: blocks must be positive");
        assert_eq!(
            self.cols * blocks,
            d.rows(),
            "spmm_blocked shape mismatch: {}x{} over {} blocks * {}x{}",
            self.rows,
            self.cols,
            blocks,
            d.rows(),
            d.cols()
        );
        let mut out = Dense::zeros(self.rows * blocks, d.cols());
        if self.rows * d.cols() == 0 {
            return out;
        }
        let work = self.nnz() * d.cols() * blocks;
        let threads =
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(blocks);
        if work >= 4_000_000 && threads > 1 {
            let n = d.cols();
            let per = blocks.div_ceil(threads);
            let chunks: Vec<&mut [f32]> =
                out.as_mut_slice().chunks_mut(per * self.rows * n).collect();
            crossbeam::thread::scope(|scope| {
                for (idx, chunk) in chunks.into_iter().enumerate() {
                    scope.spawn(move |_| {
                        for (i, block_out) in chunk.chunks_mut(self.rows * n).enumerate() {
                            self.spmm_block_into(d, idx * per + i, block_out);
                        }
                    });
                }
            })
            .expect("spmm_blocked worker thread panicked");
        } else {
            let block_len = self.rows * d.cols();
            for (b, block_out) in out.as_mut_slice().chunks_mut(block_len).enumerate() {
                self.spmm_block_into(d, b, block_out);
            }
        }
        out
    }

    /// Serial kernel for one block of [`Csr::spmm_blocked`]; identical
    /// accumulation order to [`Csr::spmm`]'s per-row kernel.
    fn spmm_block_into(&self, d: &Dense, block: usize, out_block: &mut [f32]) {
        let n = d.cols();
        let row_off = block * self.cols;
        for r in 0..self.rows {
            let out_row = &mut out_block[r * n..(r + 1) * n];
            for (c, v) in self.row_iter(r) {
                let d_row = d.row(row_off + c);
                for (o, &dv) in out_row.iter_mut().zip(d_row) {
                    *o += v * dv;
                }
            }
        }
    }

    /// Densifies the matrix (testing / small problems only).
    pub fn to_dense(&self) -> Dense {
        let mut out = Dense::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_iter(r) {
                out.set(r, c, v);
            }
        }
        out
    }

    /// Row-normalizes the matrix in place so each non-empty row sums to 1.
    pub fn row_normalize(&mut self) {
        for r in 0..self.rows {
            let lo = self.indptr[r];
            let hi = self.indptr[r + 1];
            let s: f32 = self.values[lo..hi].iter().sum();
            // qdgnn-analyze: allow(QD002, reason = "guards division by an exactly-zero row sum (empty row); any nonzero sum, however small, is a valid divisor")
            if s != 0.0 {
                for v in &mut self.values[lo..hi] {
                    *v /= s;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        Csr::from_triplets(
            3,
            4,
            &[(0, 1, 2.0), (0, 3, -1.0), (1, 0, 4.0), (2, 2, 1.5), (2, 2, 0.5)],
        )
    }

    #[test]
    fn triplets_sorted_and_merged() {
        let m = sample();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(2, 2), 2.0);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 3), 0.0);
        let row0: Vec<_> = m.row_iter(0).collect();
        assert_eq!(row0, vec![(1, 2.0), (3, -1.0)]);
    }

    #[test]
    fn spmm_matches_dense() {
        let m = sample();
        let d = Dense::from_rows(&[
            &[1.0, 0.0],
            &[0.0, 1.0],
            &[2.0, 3.0],
            &[-1.0, 1.0],
        ]);
        let out = m.spmm(&d);
        let expect = m.to_dense().matmul(&d);
        assert!(out.approx_eq(&expect, 1e-6));
    }

    #[test]
    fn transpose_round_trip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.cols(), 3);
        assert!(t.transpose().to_dense().approx_eq(&m.to_dense(), 0.0));
        assert!(t.to_dense().approx_eq(&m.to_dense().transpose(), 0.0));
    }

    #[test]
    fn identity_spmm_is_noop() {
        let d = Dense::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Csr::identity(2);
        assert!(i.spmm(&d).approx_eq(&d, 0.0));
    }

    #[test]
    fn spmm_blocked_matches_per_block_spmm_bitwise() {
        let m = sample();
        let blocks = 3;
        let mut data = Vec::new();
        for b in 0..blocks {
            for i in 0..m.cols() * 2 {
                data.push((b * 7 + i) as f32 * 0.25 - 1.0);
            }
        }
        let d = Dense::from_vec(m.cols() * blocks, 2, data);
        let out = m.spmm_blocked(&d, blocks);
        assert_eq!(out.shape(), (m.rows() * blocks, 2));
        for b in 0..blocks {
            let mut block = Dense::zeros(m.cols(), 2);
            for r in 0..m.cols() {
                for c in 0..2 {
                    block.set(r, c, d.get(b * m.cols() + r, c));
                }
            }
            let expect = m.spmm(&block);
            for r in 0..m.rows() {
                for c in 0..2 {
                    // Bit-identity, not approximate equality.
                    assert_eq!(
                        out.get(b * m.rows() + r, c).to_bits(),
                        expect.get(r, c).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn spmm_blocked_single_block_equals_spmm() {
        let m = sample();
        let d = Dense::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[2.0, 3.0], &[-1.0, 1.0]]);
        assert!(m.spmm_blocked(&d, 1).approx_eq(&m.spmm(&d), 0.0));
    }

    #[test]
    fn row_normalize_sums_to_one() {
        let mut m = sample();
        m.row_normalize();
        let s: f32 = m.row_iter(0).map(|(_, v)| v).sum();
        assert!((s - 1.0).abs() < 1e-6);
    }
}
