//! Process-level allocator tuning for batch-inference workloads.
//!
//! Batched forward passes allocate buffers `K×` larger than single-query
//! passes. With glibc's default malloc tunables those buffers cross the
//! dynamic mmap/trim thresholds, so every batch round-trips its working
//! set through the kernel: freed at batch end, re-faulted page by page on
//! the next batch. Measured on a 1-core host this costs ~80–180 minor
//! faults *per query* and roughly doubles batched latency, while the
//! single-query path (small, bin-recycled buffers) faults not at all.
//!
//! [`tune_for_batch_serving`] raises `M_TRIM_THRESHOLD` and
//! `M_MMAP_THRESHOLD` via `mallopt(3)` so the heap retains the batch
//! working set between rounds. glibc is already linked through `std`, so
//! the `extern` declaration adds no dependency; on non-glibc targets the
//! function is a no-op and batched serving merely keeps the default
//! allocator behaviour.

/// `mallopt(3)` parameter: heap-top trim threshold (glibc `malloc.h`).
#[cfg(all(target_os = "linux", target_env = "gnu"))]
const M_TRIM_THRESHOLD: i32 = -1;
/// `mallopt(3)` parameter: mmap allocation threshold.
#[cfg(all(target_os = "linux", target_env = "gnu"))]
const M_MMAP_THRESHOLD: i32 = -3;

/// Retain up to this much freed heap instead of returning it to the OS.
#[cfg(all(target_os = "linux", target_env = "gnu"))]
const TRIM_BYTES: i32 = 256 * 1024 * 1024;
/// Serve mmap (and its page-fault churn) only for allocations above this.
#[cfg(all(target_os = "linux", target_env = "gnu"))]
const MMAP_BYTES: i32 = 64 * 1024 * 1024;

#[cfg(all(target_os = "linux", target_env = "gnu"))]
extern "C" {
    // Part of glibc, which std already links on *-linux-gnu targets.
    fn mallopt(param: i32, value: i32) -> i32;
}

/// Tunes the process allocator for steady-state batched inference:
/// freed batch buffers stay in the heap for the next batch instead of
/// being returned to (and re-faulted from) the kernel.
///
/// Idempotent and safe to call from any thread; later manual `mallopt`
/// calls by the embedding application still win. Returns `true` when the
/// tuning was applied (glibc target, both calls accepted), `false` on
/// platforms without `mallopt` where the default allocator is kept.
pub fn tune_for_batch_serving() -> bool {
    #[cfg(all(target_os = "linux", target_env = "gnu"))]
    {
        use std::sync::OnceLock;
        static APPLIED: OnceLock<bool> = OnceLock::new();
        *APPLIED.get_or_init(|| {
            // SAFETY: mallopt only adjusts allocator parameters; it is
            // documented as callable at any time and touches no memory
            // owned by Rust.
            let trim = unsafe { mallopt(M_TRIM_THRESHOLD, TRIM_BYTES) };
            let mmap = unsafe { mallopt(M_MMAP_THRESHOLD, MMAP_BYTES) };
            trim == 1 && mmap == 1
        })
    }
    #[cfg(not(all(target_os = "linux", target_env = "gnu")))]
    {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuning_is_idempotent_and_reports_support() {
        let first = tune_for_batch_serving();
        let second = tune_for_batch_serving();
        assert_eq!(first, second);
        if cfg!(all(target_os = "linux", target_env = "gnu")) {
            assert!(first, "mallopt should accept both thresholds on glibc");
        } else {
            assert!(!first);
        }
    }
}
