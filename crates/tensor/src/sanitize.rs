//! Runtime finiteness sanitizer (enabled by the `sanitize` cargo
//! feature).
//!
//! The static pass in `qdgnn-analyze` proves what it can from source;
//! this module catches the rest dynamically: under `--features
//! sanitize`, every value recorded on the [`crate::Tape`] is scanned
//! for NaN/Inf and the first offender aborts with the *producing op's
//! name* and coordinates — NaN provenance instead of a NaN loss ten
//! layers later.
//!
//! Checks can be turned off at runtime (e.g. by tests that exercise
//! divergence recovery and *want* non-finite values to flow) with
//! [`scoped_off`], an RAII guard that restores the previous state on
//! drop. Without the cargo feature every entry point compiles to a
//! no-op.

use std::sync::atomic::{AtomicBool, Ordering};

use crate::Dense;

/// Process-global toggle; checks run only while this is `true` (and the
/// `sanitize` feature is compiled in).
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether sanitizer checks are currently active.
#[inline]
pub fn enabled() -> bool {
    cfg!(feature = "sanitize") && ENABLED.load(Ordering::Relaxed)
}

/// RAII guard from [`scoped_off`]; re-enables checks on drop.
pub struct ScopedOff {
    prev: bool,
}

/// Disables sanitizer checks until the returned guard drops.
///
/// Intended for tests that deliberately drive training into divergence
/// to exercise recovery paths — the process-global flag means the scope
/// covers worker threads spawned inside it too.
pub fn scoped_off() -> ScopedOff {
    ScopedOff { prev: ENABLED.swap(false, Ordering::Relaxed) }
}

impl Drop for ScopedOff {
    fn drop(&mut self) {
        ENABLED.store(self.prev, Ordering::Relaxed);
    }
}

/// Panics if `value` contains NaN/Inf, naming `op` (the producer) and
/// the first offending coordinate. No-op while checks are off.
#[inline]
pub fn check_finite(op: &str, value: &Dense) {
    if !enabled() {
        return;
    }
    check_finite_slow(op, value);
}

#[cold]
fn check_finite_slow(op: &str, value: &Dense) {
    let (rows, cols) = value.shape();
    for (i, &v) in value.as_slice().iter().enumerate() {
        if !v.is_finite() {
            panic!(
                "sanitize: op `{op}` produced non-finite value {v} at [{r},{c}] of a {rows}x{cols} output",
                r = i / cols.max(1),
                c = i % cols.max(1),
            );
        }
    }
}

/// Serializes tests that flip the global [`ENABLED`] toggle or rely on
/// it being on, so the parallel test runner can't interleave them.
#[cfg(all(test, feature = "sanitize"))]
pub(crate) static TEST_MUTEX: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Locks [`TEST_MUTEX`], surviving poisoning from `should_panic` tests.
#[cfg(all(test, feature = "sanitize"))]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    TEST_MUTEX.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(all(test, feature = "sanitize"))]
mod tests {
    use super::*;

    #[test]
    fn finite_values_pass() {
        check_finite("test", &Dense::from_vec(2, 2, vec![1.0, -2.0, 0.0, 3.5]));
    }

    #[test]
    #[should_panic(expected = "op `test` produced non-finite value")]
    fn nan_panics_with_op_name() {
        let _lock = test_lock();
        check_finite("test", &Dense::from_vec(1, 2, vec![1.0, f32::NAN]));
    }

    #[test]
    fn scoped_off_suppresses_and_restores() {
        let _lock = test_lock();
        {
            let _guard = scoped_off();
            assert!(!enabled());
            // Would panic if checks were live.
            check_finite("off", &Dense::from_vec(1, 1, vec![f32::INFINITY]));
        }
        assert!(enabled());
    }
}
